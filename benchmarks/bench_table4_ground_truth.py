"""Table 4 — per-network estimates vs ground truth.

For six validation networks (the last of which blocks active probing,
like the paper's network F), compares pingable, observed, Poisson-LLM
and truncated-Poisson-LLM estimates with the true peak usage, all as
percentages of the network size.  The paper's pattern: observation
under-counts badly, CR lands near the truth, and the right-truncated
Poisson beats the plain Poisson.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.selection import select_model
from repro.core.histories import tabulate_histories
from repro.core.loglinear import LoglinearModel
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.ipset import IPSet


def evaluate_networks(pipeline, internet, window):
    datasets = pipeline.datasets(window)
    rows = []
    for network in internet.ground_truth_networks():
        prefix = network.allocation.prefix
        block = IntervalSet([(prefix.base, prefix.end)])
        local = {
            name: d.restrict(block) for name, d in datasets.items()
        }
        local = {name: d for name, d in local.items() if len(d)}
        if len(local) < 3:
            continue
        size = prefix.size
        ping = len(local.get("IPING", IPSet.empty()))
        observed = len(IPSet.empty().union(*local.values()))
        table = tabulate_histories(local)
        selection = select_model(table, criterion="bic", divisor="adaptive1000")
        poisson = selection.fit.estimate().population
        truncated = (
            LoglinearModel(table.num_sources, selection.fit.terms)
            .fit(table, "truncated", limit=float(size))
            .estimate()
            .population
        )
        truth_peak = internet.population.peak_simultaneous_usage(
            network.allocation, window.midpoint
        )
        in_block = internet.population.alloc_index == network.allocation.index
        truth_window = int(
            (in_block & internet.population.used_in_window(
                window.start, window.end
            )).sum()
        )
        rows.append({
            "label": network.label,
            "blocked": network.blocks_pings,
            "size": size,
            "ping": 100 * ping / size,
            "observed": 100 * observed / size,
            "poisson": 100 * poisson / size,
            "truncated": 100 * truncated / size,
            "truth": 100 * truth_peak / size,
            "truth_window": 100 * truth_window / size,
        })
    return rows


def test_table4_ground_truth(benchmark, bench_pipeline, bench_internet,
                             last_window):
    rows = benchmark.pedantic(
        evaluate_networks,
        args=(bench_pipeline, bench_internet, last_window),
        rounds=1, iterations=1,
    )
    printable = [
        [
            r["label"],
            f"{r['ping']:.1f}",
            f"{r['observed']:.1f}",
            f"{r['poisson']:.1f}({r['poisson'] - r['truth']:+.1f})",
            f"{r['truncated']:.1f}({r['truncated'] - r['truth']:+.1f})",
            f"{r['truth']:.1f}",
            f"{r['truth_window']:.1f}",
        ]
        for r in rows
    ]
    print()
    print(format_table(
        ["network", "ping %", "obs %", "poisson(err) %", "truncpois(err) %",
         "truth(peak) %", "truth(window) %"],
        printable,
        title="Table 4 — network estimates vs ground truth (peak "
              "watermark and window usage)",
    ))

    assert len(rows) >= 5
    # Network F (ping-blocked) shows ~0 pingable addresses.
    blocked = [r for r in rows if r["blocked"]]
    assert blocked and blocked[0]["ping"] < 0.5
    # Pinging badly under-counts every network (paper's first column).
    assert all(r["ping"] < 0.75 * r["truth"] for r in rows)
    # Against the window-usage truth (what a 12-month CR run actually
    # estimates), CR is closer than raw observation for most networks.
    wins = sum(
        1
        for r in rows
        if abs(r["truncated"] - r["truth_window"])
        < abs(r["observed"] - r["truth_window"])
    )
    assert wins >= len(rows) - 2
    # The paper's churn signature: truncated estimates tend to sit at
    # or above the peak watermark ("higher than the truth... the cause
    # may be dynamic addresses") — except the ping-blocked network,
    # which under-estimates (the paper's network F is the one negative
    # error in Table 4).
    open_rows = [r for r in rows if not r["blocked"]]
    at_or_above = sum(1 for r in open_rows if r["truncated"] > 0.9 * r["truth"])
    assert at_or_above >= len(open_rows) - 1
    assert blocked[0]["truncated"] < blocked[0]["truth_window"]
    # The truncated estimates never exceed the network size.
    assert all(r["truncated"] <= 100.0 + 1e-6 for r in rows)
    # Truncation is no worse than plain Poisson on average against the
    # window truth (Table 4's column comparison).
    pois_err = np.mean(
        [abs(r["poisson"] - r["truth_window"]) for r in rows]
    )
    trunc_err = np.mean(
        [abs(r["truncated"] - r["truth_window"]) for r in rows]
    )
    assert trunc_err <= pois_err * 1.05
