"""Section 7.2.1 — router FIB capacity if all unused prefixes route.

The paper counts ~0.78 M unused prefixes of /24 or larger, adds the
existing >0.5 M routed prefixes, and concludes everything fits within
the ~2 M-route FIBs of 2007-era big iron (and comfortably within the
~10 M claimed feasible).  This bench recomputes the arithmetic from the
simulator's vacancy histogram (rescaling prefix counts to real
magnitude) plus the market valuation of the unused space (Section 8's
US$11 B figure).
"""

from repro.analysis.fib import FIB_CAPACITY_2007, forecast_fib
from repro.analysis.market import value_unused_subnets
from repro.analysis.report import format_table, to_real
from repro.ipspace.blocks import vacant_block_histogram
from repro.ipspace.ipset import IPSet
from benchmarks.conftest import BENCH_SCALE


def run(pipeline, internet, window):
    datasets = pipeline.datasets(window)
    universe = internet.routing.window(window.start, window.end)
    observed = IPSet.empty().union(*datasets.values())
    vacancy = vacant_block_histogram(observed.addresses, universe)
    table = internet.routing.routing_table(window.start, window.end)
    forecast = forecast_fib(vacancy, len(table))
    # The paper: "FIB compression techniques can reduce size of FIBs".
    from repro.ipspace.aggregation import compress_prefixes

    compression = compress_prefixes(table.prefixes())
    result = pipeline.run_window(window)
    unused_24s = result.routed_subnets - result.estimated_subnets
    valuation = value_unused_subnets(
        to_real(max(unused_24s, 0.0), BENCH_SCALE)
    )
    return forecast, valuation, compression


def test_sec721_fib_and_market(benchmark, bench_pipeline, bench_internet,
                               last_window):
    forecast, valuation, compression = benchmark.pedantic(
        run, args=(bench_pipeline, bench_internet, last_window),
        rounds=1, iterations=1,
    )
    # Prefix *counts* do not rescale linearly with the address scale
    # (the simulator shrinks block sizes, not just block counts), so
    # the FIB comparison is made in relative terms: the paper's 2 M
    # capacity is 4x its >0.5 M current table, and its fully advertised
    # total is ~2.6x the current table.
    growth_factor = forecast.total_routes / max(forecast.current_routes, 1)
    print()
    print(format_table(
        ["quantity", "simulated", "relative to current table"],
        [
            ["current routed prefixes", forecast.current_routes, "1.0x"],
            ["unused routable prefixes", forecast.unused_routable_prefixes,
             f"{forecast.unused_routable_prefixes / forecast.current_routes:.2f}x"],
            ["total if all advertised", forecast.total_routes,
             f"{growth_factor:.2f}x (paper: ~2.6x)"],
            ["2007 FIB capacity", "-",
             f"{FIB_CAPACITY_2007 / 500_000:.0f}x (paper basis)"],
        ],
        title="Section 7.2.1 — FIB capacity forecast",
    ))
    print(f"\nFIB compression: {compression.original_count} routes "
          f"aggregate losslessly to {compression.compressed_count} "
          f"({compression.ratio:.2f}x)")
    print(f"Section 8 — unused routed space valuation: "
          f"{valuation.describe()} (paper: ~US$11 B)")

    # Lossless aggregation helps but is no magic wand (the paper treats
    # it as headroom, not a solution).
    assert 1.0 <= compression.ratio < 3.0

    # The paper's conclusion in relative form: advertising every unused
    # prefix grows the table by well under the 4x headroom of 2007-era
    # FIBs.
    assert 1.0 < growth_factor < 4.0
    assert forecast.unused_routable_prefixes > 0
    # Valuation lands within the right order of the paper's US$11 B
    # (the /24-level supply rescales linearly, unlike prefix counts).
    assert 1e9 < valuation.mid < 40e9
