"""Figure 3 — cross-validation: per-source estimates normalised on truth.

Holds out each source as the universe and plots (as a table) the
ping-covered fraction, the all-sources-covered fraction, and the
profile-likelihood range of the CR estimate, all normalised on the true
source size.  The paper's findings checked: ICMP covers only about half
of most sources (50-60 %), every range is a substantial improvement
over the observed count, and most ranges bracket 1.0.
"""

import numpy as np

from repro.analysis.crossval import cross_validate_all
from repro.analysis.report import format_table


def run_crossval(pipeline, window):
    datasets = pipeline.datasets(window)
    return cross_validate_all(datasets, with_range=True)


def test_fig3_crossvalidation(benchmark, bench_pipeline, last_window):
    results = benchmark.pedantic(
        run_crossval, args=(bench_pipeline, last_window), rounds=1,
        iterations=1,
    )
    rows = []
    for r in results:
        low, high = r.normalised_range()
        rows.append([
            r.source,
            f"{r.observed_by_ping / r.universe_size:.2f}",
            f"{r.observed_by_others / r.universe_size:.2f}",
            f"[{low:.2f}, {high:.2f}]",
            f"{(r.observed_by_others + r.true_unseen) / r.universe_size:.2f}",
        ])
    print()
    print(format_table(
        ["held-out source", "obs ping", "obs all", "LLM range (norm.)",
         "truth (=1)"],
        rows,
        title="Figure 3 — cross-validation normalised on the true size "
              "of each held-out source",
    ))

    non_census = [r for r in results if r.source not in ("IPING", "TPING")]
    # Pinging covers only part of each passive source (paper: 50-60 %).
    ping_cover = [r.observed_by_ping / r.universe_size for r in non_census]
    assert np.median(ping_cover) < 0.8
    # The CR estimate improves on the observed count for most sources.
    improvements = 0
    for r in results:
        mid = 0.5 * (r.range_low + r.range_high)
        if abs(mid - r.universe_size) < r.true_unseen:
            improvements += 1
    assert improvements >= len(results) - 2
    # Most normalised ranges bracket 1 (the paper: "quite good" for six
    # of nine, slightly off for the rest).
    bracketing = sum(
        1
        for r in results
        if r.range_low <= r.universe_size <= r.range_high * 1.05
    )
    assert bracketing >= len(results) // 2
