"""Ablation — classical closed-population family vs the paper's LLMs.

Fits M0 / Mt / Mb / Mh-jackknife (the Otis-et-al. family behind the
paper's references [9, 21]) on the full nine-source window and compares
them with the selected log-linear model against the simulation truth.
Expected shape: Mt == independence-LLM and undershoots under
heterogeneity; the jackknife corrects upward; the dependence-aware LLM
is the most accurate.
"""

from repro.analysis.report import fmt_real_millions, format_table
from repro.core.closed_models import fit_all_closed_models
from repro.core.histories import tabulate_histories
from benchmarks.conftest import BENCH_SCALE


def run(pipeline, window):
    table = tabulate_histories(pipeline.datasets(window))
    family = fit_all_closed_models(table)
    llm = pipeline.run_window(window).estimated_addresses
    return table, family, llm


def test_ablation_closed_family(benchmark, bench_pipeline, bench_internet,
                                last_window):
    table, family, llm = benchmark.pedantic(
        run, args=(bench_pipeline, last_window), rounds=1, iterations=1
    )
    truth = bench_internet.truth_used_addresses(
        last_window.start, last_window.end
    )
    import math

    rows = [
        [
            est.model,
            "unbounded" if math.isinf(est.population)
            else fmt_real_millions(est.population, BENCH_SCALE),
            "(degenerate)" if math.isinf(est.population)
            else f"{100 * (est.population - truth) / truth:+.1f}%",
        ]
        for est in family
    ]
    rows.append([
        "log-linear (paper)",
        fmt_real_millions(llm, BENCH_SCALE),
        f"{100 * (llm - truth) / truth:+.1f}%",
    ])
    rows.append(["truth", fmt_real_millions(truth, BENCH_SCALE), ""])
    print()
    print(format_table(
        ["model", "estimate [M]", "error"],
        rows,
        title="Ablation — classical closed-population models vs the LLM",
    ))

    by_model = {est.model[:2]: est for est in family}
    # Mt (homogeneous individuals) undershoots under heterogeneity.
    assert by_model["Mt"].population < truth
    # The heterogeneity-aware jackknife sits above Mt.
    assert by_model["Mh"].population > by_model["Mt"].population
    # The paper's LLM is the most accurate of the lot.
    llm_err = abs(llm - truth)
    for est in family:
        assert llm_err <= abs(est.population - truth) * 1.05, est.model
