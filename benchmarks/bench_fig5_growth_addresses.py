"""Figure 5 — growth of routed, observed and estimated IPv4 addresses.

The address-level companion to Figure 4: estimated sits 25-60 % above
observed (vs a few percent for /24s), growth is roughly linear at a
rate comparable to the paper's 170 M addresses/year once rescaled, and
relative growth outpaces the routed space.
"""

import numpy as np

from repro.analysis.growth import series_from_results
from repro.analysis.report import fmt_real_millions, format_table, to_real
from benchmarks.conftest import BENCH_SCALE


def test_fig5_address_growth(benchmark, all_window_results, bench_pipeline):
    series = benchmark.pedantic(
        series_from_results, args=(all_window_results, "addresses"),
        rounds=1, iterations=1,
    )
    # The paper: the address estimate range is within ±3 % of the point
    # estimates.  Check the final window's profile range.
    interval = bench_pipeline.address_estimator(
        all_window_results[-1].window
    ).profile_interval(alpha=1e-7)
    half_width = 0.5 * (interval.population_high - interval.population_low)
    assert half_width / series.estimated[-1] < 0.06
    est_norm = series.normalized("estimated")
    routed_norm = series.normalized("routed")
    rows = []
    for i, label in enumerate(series.labels):
        rows.append([
            label,
            fmt_real_millions(series.routed[i], BENCH_SCALE),
            fmt_real_millions(series.observed[i], BENCH_SCALE),
            fmt_real_millions(series.estimated[i], BENCH_SCALE),
            fmt_real_millions(series.truth[i], BENCH_SCALE),
            f"{est_norm[i]:.3f}",
        ])
    print()
    print(format_table(
        ["window", "routed[M]", "obs[M]", "est[M]", "truth[M]", "est rel"],
        rows,
        title="Figure 5 — IPv4 addresses over time "
              "(real-equivalent millions)",
    ))
    growth = to_real(series.growth_per_year("estimated"), BENCH_SCALE)
    print(f"\nestimated growth: {growth / 1e6:.0f} M addresses/year "
          "(paper: ~170 M)")

    # Address correction is large (paper: estimated 50-60 % above
    # observed; our sources are a bit more complete, so accept >= 25 %).
    ratio = series.estimated / series.observed
    assert (ratio > 1.25).all()
    # Estimated grows faster than routed in relative terms.
    assert est_norm[-1] > routed_norm[-1]
    # Roughly linear growth.
    t = series.window_ends
    fit = np.polyval(np.polyfit(t, series.estimated, 1), t)
    assert (np.abs(fit - series.estimated) / series.estimated).max() < 0.10
    # Growth magnitude lands in the right order (paper: 170 M/yr; the
    # simulator's truth slope is the target, give-or-take estimator
    # noise).
    truth_growth = series.growth_per_year("truth")
    est_growth = series.growth_per_year("estimated")
    assert 0.5 * truth_growth < est_growth < 2.0 * truth_growth
    # Tracks the truth in every window.
    assert (np.abs(series.estimated - series.truth) < 0.25 * series.truth).all()
