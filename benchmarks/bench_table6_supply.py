"""Table 6 — available space, growth and runout year per RIR.

Regenerates the supply table at both address and /24 granularity and
checks the regional pattern the paper emphasises: APNIC and LACNIC are
the pressure points, ARIN and RIPE have a decade or more, and a 75 %
utilisation cap pulls every runout year in.
"""

import math

from repro.analysis.report import fmt_real_millions, format_table
from repro.analysis.supply import supply_by_rir, world_supply
from benchmarks.conftest import BENCH_SCALE


def run_supply(pipeline, first, last):
    addr = supply_by_rir(pipeline, first, last, level="addresses")
    subs = supply_by_rir(pipeline, first, last, level="subnets")
    capped = supply_by_rir(
        pipeline, first, last, level="addresses", utilisation_cap=0.75
    )
    return addr, subs, capped


def fmt_year(year):
    return "never" if math.isinf(year) else f"{year:.0f}"


def test_table6_supply(benchmark, bench_pipeline, first_window, last_window):
    addr, subs, capped = benchmark.pedantic(
        run_supply,
        args=(bench_pipeline, first_window, last_window),
        rounds=1, iterations=1,
    )
    rows = []
    for a, s, c in zip(addr, subs, capped):
        rows.append([
            a.label,
            fmt_real_millions(a.available, BENCH_SCALE),
            fmt_real_millions(a.growth_per_year, BENCH_SCALE),
            fmt_year(a.runout_year),
            fmt_real_millions(s.available, BENCH_SCALE),
            fmt_year(s.runout_year),
            fmt_year(c.runout_year),
        ])
    world = world_supply(addr, now=last_window.end)
    world24 = world_supply(subs, now=last_window.end)
    rows.append([
        "World",
        fmt_real_millions(world.available, BENCH_SCALE),
        fmt_real_millions(world.growth_per_year, BENCH_SCALE),
        fmt_year(world.runout_year),
        fmt_real_millions(world24.available, BENCH_SCALE),
        fmt_year(world24.runout_year),
        "-",
    ])
    print()
    print(format_table(
        ["RIR", "avail IPs[M]", "growth[M/yr]", "runout IPs",
         "avail /24[M]", "runout /24", "runout@75%"],
        rows,
        title="Table 6 — IPv4 supply per RIR (real-equivalent millions)",
    ))

    by_label = {r.label: r for r in addr}
    capped_by = {r.label: r for r in capped}
    # The paper's pressure points run out before the comfortable RIRs.
    assert by_label["APNIC"].runout_year < by_label["ARIN"].runout_year
    assert by_label["LACNIC"].runout_year < by_label["ARIN"].runout_year
    # ARIN holds the largest available reserve (830 M in the paper).
    assert by_label["ARIN"].available == max(r.available for r in addr)
    # Capping utilisation tightens every region.
    for label, row in by_label.items():
        assert capped_by[label].runout_year <= row.runout_year
    # World runout lands within a plausible horizon of the paper's 2023.
    assert 2016 <= world.runout_year <= 2040
