"""Performance microbenchmarks for the hot paths.

Unlike the table/figure benches (one-shot experiment reproductions),
these time the substrate operations that dominate a full pipeline run:
IPSet algebra, capture-history tabulation, Poisson IRLS fits and
vacancy histograms.  They guard against performance regressions — a
full 11-window campaign runs hundreds of each.

``test_perf_window_sweep_parallel`` exercises the staged engine
end-to-end: serial vs process-pool window sweep, asserting bit-identical
results always and a >=1.5x speedup when the machine has >=4 cores.
"""

import os
from time import perf_counter

import numpy as np
import pytest

from repro.core.design import main_effect_terms
from repro.core.glm import fit_poisson
from repro.core.histories import tabulate_histories
from repro.core.loglinear import LoglinearModel
from repro.ipspace.blocks import vacant_block_histogram
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.ipset import IPSet

RNG = np.random.default_rng(1)
N = 300_000


@pytest.fixture(scope="module")
def big_sets():
    a = IPSet(RNG.integers(0, 2**32, N, dtype=np.uint64).astype(np.uint32))
    b = IPSet(RNG.integers(0, 2**32, N, dtype=np.uint64).astype(np.uint32))
    return a, b


@pytest.fixture(scope="module")
def nine_sources():
    pop = np.sort(
        RNG.choice(2**31, size=N, replace=False)
    ).astype(np.uint32)
    return {
        f"s{i}": IPSet.from_sorted_unique(pop[RNG.random(N) < 0.3])
        for i in range(9)
    }


def test_perf_ipset_union(benchmark, big_sets):
    a, b = big_sets
    result = benchmark(lambda: a | b)
    assert len(result) >= max(len(a), len(b))


def test_perf_ipset_membership(benchmark, big_sets):
    a, b = big_sets
    probes = b.addresses
    result = benchmark(lambda: a.contains(probes))
    assert result.shape == probes.shape


def test_perf_tabulate_nine_sources(benchmark, nine_sources):
    table = benchmark(lambda: tabulate_histories(nine_sources))
    assert table.num_sources == 9


def test_perf_poisson_irls(benchmark, nine_sources):
    table = tabulate_histories(nine_sources)
    from repro.core.design import design_matrix

    X, _ = design_matrix(9, main_effect_terms(9))
    y = table.counts[1:].astype(float)
    fit = benchmark(lambda: fit_poisson(X, y))
    assert np.isfinite(fit.loglik)


def test_perf_llm_estimate(benchmark, nine_sources):
    table = tabulate_histories(nine_sources)
    model = LoglinearModel(9, main_effect_terms(9))
    est = benchmark(lambda: model.fit(table).estimate())
    assert est.population > 0


def test_perf_select_model(benchmark, nine_sources):
    """Stepwise selection over t=9 sources, pairwise interactions.

    The heaviest fit-layer consumer: one selection fits dozens of
    candidate models, so warm starts + memoisation dominate here.
    Pinned to the sequential kernel so this median keeps guarding the
    one-at-a-time path (the ``--no-batch-fits`` escape hatch).
    """
    from repro.core import fitkernel
    from repro.core.selection import select_model

    table = tabulate_histories(nine_sources)
    fitkernel.set_batch_fits(False)
    try:
        selection = benchmark(lambda: select_model(table, max_order=2))
    finally:
        fitkernel.set_batch_fits(True)
    assert np.isfinite(selection.selected_ic)
    assert selection.fit.estimate().population > table.num_observed


def test_perf_select_model_batched(benchmark, nine_sources):
    """Same selection through the batched kernel: each stepwise round's
    candidates become one stacked lattice solve."""
    from repro.core.selection import select_model

    table = tabulate_histories(nine_sources)
    selection = benchmark(lambda: select_model(table, max_order=2))
    assert np.isfinite(selection.selected_ic)
    assert selection.fit.estimate().population > table.num_observed


def test_perf_profile_interval(benchmark, nine_sources):
    """Profile-likelihood interval scan (hundreds of refits per call)."""
    from repro.core.profile_ci import profile_likelihood_interval

    table = tabulate_histories(nine_sources)
    terms = main_effect_terms(9)
    interval = benchmark(
        lambda: profile_likelihood_interval(table, terms, alpha=0.001)
    )
    assert interval.population_low <= interval.population_high


def test_perf_sweep_batched(benchmark):
    """Four-window engine sweep, batched kernel, serial pool.

    The regression gate's *required* benchmark (see
    ``check_regression.REQUIRED_BENCHMARKS``): this median is the
    committed evidence that batching pays on the full staged path, so a
    candidate run that silently drops it fails the gate.
    """
    from repro.analysis.windows import TimeWindow
    from repro.engine import Executor
    from repro.simnet.internet import SimulationConfig, SyntheticInternet

    windows = [
        TimeWindow(2011.0, 2012.0),
        TimeWindow(2012.0, 2013.0),
        TimeWindow(2013.0, 2014.0),
        TimeWindow(2013.5, 2014.5),
    ]
    internet = SyntheticInternet(SimulationConfig(scale=2.0**-14, seed=20140630))

    def sweep():
        return Executor(internet).run_windows(windows, workers=1)

    results = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert len(results) == len(windows)
    assert all(r.estimate_addresses.population > 0 for r in results)


def test_perf_vacancy_histogram(benchmark):
    used = np.unique(
        RNG.integers(0, 2**28, 200_000, dtype=np.uint64).astype(np.uint32)
    )
    universe = IntervalSet([(0, 2**28)])
    hist = benchmark(lambda: vacant_block_histogram(used, universe))
    assert hist.sum() > 0


def test_perf_window_sweep_parallel():
    """Serial vs parallel window sweep through the staged engine.

    Bit-identity is asserted unconditionally; the speedup bound only on
    machines with enough cores to make it meaningful.
    """
    from repro.analysis.windows import TimeWindow
    from repro.engine import Executor
    from repro.simnet.internet import SimulationConfig, SyntheticInternet

    windows = [
        TimeWindow(2011.0, 2012.0),
        TimeWindow(2012.0, 2013.0),
        TimeWindow(2013.0, 2014.0),
        TimeWindow(2013.5, 2014.5),
    ]
    internet = SyntheticInternet(SimulationConfig(scale=2.0**-13, seed=20140630))
    cores = os.cpu_count() or 1

    serial = Executor(internet)
    start = perf_counter()
    serial_results = serial.run_windows(windows, workers=1)
    serial_seconds = perf_counter() - start

    parallel = Executor(internet)
    start = perf_counter()
    parallel_results = parallel.run_windows(windows, workers=min(4, cores))
    parallel_seconds = perf_counter() - start

    for s, p in zip(serial_results, parallel_results):
        assert s.estimate_addresses.population == p.estimate_addresses.population
        assert s.estimate_subnets.population == p.estimate_subnets.population
        for name in s.datasets:
            assert np.array_equal(
                s.datasets[name].addresses, p.datasets[name].addresses
            )

    stats = serial.report.to_dict()
    print(
        f"\nwindow sweep: serial {serial_seconds:.2f}s, "
        f"parallel({min(4, cores)}) {parallel_seconds:.2f}s on {cores} cores; "
        f"serial engine: {stats['cache_hits']} cache hits / "
        f"{stats['cache_misses']} misses"
    )
    assert stats["cache_misses"] > 0
    assert serial.report.cache_hits >= len(windows)  # datasets reused per window
    if cores >= 4:
        assert serial_seconds / parallel_seconds >= 1.5, (
            f"expected >=1.5x speedup, got "
            f"{serial_seconds / parallel_seconds:.2f}x"
        )
