"""Figure 2 — spoof filtering's effect on /24 observations and estimates.

Compares three configurations over a late window (where CALT's March
2014 spoof spike hits): unfiltered NetFlow, filtered NetFlow, and no
NetFlow at all.  The paper's pattern: unfiltered estimates blow up
(beyond plausibility), while filtered estimates agree with the
no-NetFlow estimates.
"""

from repro.analysis.pipeline import EstimationPipeline
from repro.analysis.report import format_table
from repro.analysis.windows import TimeWindow
from repro.core.estimator import CaptureRecapture, EstimatorOptions
from repro.ipspace.ipset import IPSet

WINDOW = TimeWindow(2013.5, 2014.5)


def subnet_estimate(datasets, routed24):
    projected = {n: d.subnets24() for n, d in datasets.items()}
    cr = CaptureRecapture(
        projected, EstimatorOptions(limit=float(routed24))
    )
    observed = len(IPSet.empty().union(*projected.values()))
    return observed, cr.estimate().population


def run_configurations(internet, sources):
    routed24 = internet.routing.subnet24_count(WINDOW.start, WINDOW.end)
    pipeline = EstimationPipeline(internet, sources)
    configs = {}
    unfiltered = pipeline.datasets(WINDOW, spoof_filtering=False)
    filtered = pipeline.datasets(WINDOW, spoof_filtering=True)
    no_netflow = {
        n: d for n, d in filtered.items() if n not in ("SWIN", "CALT")
    }
    configs["unfiltered"] = subnet_estimate(unfiltered, routed24)
    configs["filtered"] = subnet_estimate(filtered, routed24)
    configs["no_SWIN/CALT"] = subnet_estimate(no_netflow, routed24)
    truth = internet.truth_used_subnets(WINDOW.start, WINDOW.end)
    return configs, routed24, truth


def test_fig2_spoof_filtering(benchmark, bench_internet, bench_sources):
    configs, routed24, truth = benchmark.pedantic(
        run_configurations,
        args=(bench_internet, bench_sources),
        rounds=1, iterations=1,
    )
    rows = [
        [name, obs, f"{est:.0f}"]
        for name, (obs, est) in configs.items()
    ]
    rows.append(["(routed /24s)", routed24, "-"])
    rows.append(["(truth /24s)", truth, "-"])
    print()
    print(format_table(
        ["configuration", "observed /24s", "estimated /24s"],
        rows,
        title=f"Figure 2 — /24 subnets with/without spoof filtering "
              f"({WINDOW.label()})",
    ))

    unf_obs, unf_est = configs["unfiltered"]
    fil_obs, fil_est = configs["filtered"]
    ref_obs, ref_est = configs["no_SWIN/CALT"]
    # Unfiltered observations inflate well past the truth.
    assert unf_obs > 1.15 * truth
    # Filtering brings the observed count back near (or below) truth.
    assert fil_obs < unf_obs
    assert abs(fil_obs - truth) < abs(unf_obs - truth)
    # Filtered and no-NetFlow estimates agree (paper: "quite
    # consistent"); unfiltered disagrees by much more.
    assert abs(fil_est - ref_est) < 0.15 * ref_est
    assert abs(unf_est - ref_est) > abs(fil_est - ref_est)
