"""Figure 7 — yearly address growth by allocation prefix size.

Stratifies by the real-equivalent allocation prefix length (/8-/24) and
checks the paper's shape: absolute growth concentrates in the mid-size
allocations (/10-/16), legacy /8s barely grow, and the post-runout
final-policy small blocks (/21-/22) show strong *relative* growth.
"""

import numpy as np

from repro.analysis.growth import stratified_yearly_growth
from repro.analysis.report import fmt_real_millions, format_table
from benchmarks.conftest import BENCH_SCALE


def test_fig7_by_prefix_size(benchmark, bench_pipeline, first_window,
                             last_window):
    rows = benchmark.pedantic(
        stratified_yearly_growth,
        args=(bench_pipeline, "prefix", first_window, last_window),
        rounds=1, iterations=1,
    )
    by_len = {int(r.label): r for r in rows if int(r.label) >= 8}
    printable = [
        [
            f"/{length}",
            fmt_real_millions(row.observed_per_year, BENCH_SCALE),
            fmt_real_millions(row.estimated_per_year, BENCH_SCALE),
            f"{row.estimated_relative:.0f}%",
        ]
        for length, row in sorted(by_len.items())
    ]
    print()
    print(format_table(
        ["alloc prefix", "obs growth[M/yr]", "est growth[M/yr]",
         "rel growth/yr"],
        printable,
        title="Figure 7 — yearly growth by allocation prefix size "
              "(real-equivalent millions)",
    ))

    lengths = sorted(by_len)
    assert lengths[0] == 8 and lengths[-1] >= 22
    # Absolute growth concentrates in the mid sizes: the top grower is
    # between /10 and /17.
    top = max(by_len, key=lambda l: by_len[l].estimated_per_year)
    assert 9 <= top <= 17
    # Legacy /8s grow less than the mid sizes in absolute terms.
    mid_growth = max(
        by_len[l].estimated_per_year for l in lengths if 10 <= l <= 16
    )
    assert by_len[8].estimated_per_year < mid_growth
    # Relative growth of the post-runout /21-/22 blocks is strong:
    # above the /8s' relative growth.
    small_rel = np.nanmax([
        by_len[l].estimated_relative for l in lengths if l in (21, 22)
    ])
    assert small_rel > by_len[8].estimated_relative
