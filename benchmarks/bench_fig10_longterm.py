"""Figure 10 — long-term view: allocated, routed, pingable, observed,
estimated 2003-2014.

Splices the published pre-2011 series (USC/LANDER pings, RIR allocation
and Route Views magnitudes) with the simulator's window series (scaled
to real units) and checks the figure's qualitative content: allocation
boom then slowdown; pingable addresses growing far slower than
allocated until 2011; and the estimated-used curve climbing much faster
than the pingable one.
"""

import numpy as np

from repro.analysis.growth import series_from_results
from repro.analysis.report import format_table, to_real
from repro.data.historical import (
    allocated_addresses_series,
    historical_ping_series,
    routed_addresses_series,
)
from benchmarks.conftest import BENCH_SCALE


def build_panorama(all_window_results):
    sim = series_from_results(all_window_results, "addresses")
    ping_hist_t, ping_hist = historical_ping_series()
    alloc_t, alloc = allocated_addresses_series()
    routed_t, routed = routed_addresses_series()
    sim_ping = [
        to_real(r.ping_addresses, BENCH_SCALE) / 1e6
        for r in all_window_results
    ]
    sim_obs = to_real(sim.observed, BENCH_SCALE) / 1e6
    sim_est = to_real(sim.estimated, BENCH_SCALE) / 1e6
    return {
        "historical_ping": (ping_hist_t, ping_hist),
        "allocated": (alloc_t, alloc),
        "routed": (routed_t, routed),
        "sim_times": sim.window_ends,
        "sim_ping": np.array(sim_ping),
        "sim_observed": sim_obs,
        "sim_estimated": sim_est,
    }


def test_fig10_longterm(benchmark, all_window_results):
    data = benchmark.pedantic(
        build_panorama, args=(all_window_results,), rounds=1, iterations=1
    )
    rows = []
    alloc_t, alloc = data["allocated"]
    for t, v in zip(*data["historical_ping"]):
        rows.append([f"{t:.1f}", f"{v:.0f}", "-", "-", "(published)"])
    for i, t in enumerate(data["sim_times"]):
        rows.append([
            f"{t:.2f}",
            f"{data['sim_ping'][i]:.0f}",
            f"{data['sim_observed'][i]:.0f}",
            f"{data['sim_estimated'][i]:.0f}",
            "(simulated)",
        ])
    print()
    print(format_table(
        ["year", "pingable[M]", "observed[M]", "estimated[M]", "source"],
        rows,
        title="Figure 10 — pingable / observed / estimated used IPv4 "
              "addresses, 2003-2014 (millions)",
    ))

    # Allocation boom 2004-2011 then slowdown (asserted on the series).
    boom_rate = (alloc[list(alloc_t).index(2011.0)]
                 - alloc[list(alloc_t).index(2004.0)]) / 7
    tail_rate = (alloc[-1] - alloc[list(alloc_t).index(2012.0)]) / 2.5
    assert boom_rate > 2 * tail_rate
    # The published ping series joins the simulated one continuously
    # (within a factor ~2 at the 2011/2012 seam).
    seam_hist = data["historical_ping"][1][-1]
    seam_sim = data["sim_ping"][0]
    assert 0.4 < seam_sim / seam_hist < 2.5
    # Estimated used grows much faster than pingable (paper's headline
    # of the figure).
    est_growth = data["sim_estimated"][-1] - data["sim_estimated"][0]
    ping_growth = data["sim_ping"][-1] - data["sim_ping"][0]
    assert est_growth > 1.5 * ping_growth
    # Estimated stays below routed at all simulated times.
    routed_t, routed = data["routed"]
    assert data["sim_estimated"][-1] < routed[-1] * 1.1
