"""Figure 11 + Section 6.9 — Internet users and the implied address growth.

Prints the ITU user series (Figure 11) and evaluates the paper's
plausibility argument: user growth of ~250 M/yr, household/workplace
sharing parameters H in [2,5] and W in [2,200], employment 65 %, imply
an address-growth band of roughly 50-205 M/yr — which must contain
both the paper's 170 M/yr figure and this reproduction's own scaled CR
growth estimate.
"""

from repro.analysis.growth import series_from_results
from repro.analysis.report import format_table, to_real
from repro.analysis.users import expected_growth_band, user_growth_per_year
from repro.data.itu import internet_users_series
from benchmarks.conftest import BENCH_SCALE


def run(all_window_results):
    years, users = internet_users_series()
    growth = user_growth_per_year(2007, 2012)
    band = expected_growth_band(user_growth=growth)
    sim = series_from_results(all_window_results, "addresses")
    cr_growth = to_real(sim.growth_per_year("estimated"), BENCH_SCALE) / 1e6
    return years, users, band, cr_growth


def test_fig11_user_growth(benchmark, all_window_results):
    years, users, band, cr_growth = benchmark.pedantic(
        run, args=(all_window_results,), rounds=1, iterations=1
    )
    rows = [[int(y), f"{u:.0f}"] for y, u in zip(years, users)]
    print()
    print(format_table(
        ["year", "Internet users [M]"],
        rows,
        title="Figure 11 — ITU Internet users",
    ))
    print(
        f"\nSection 6.9: user growth {band.user_growth_per_year:.0f} M/yr "
        f"-> implied address growth band [{band.low:.0f}, {band.high:.0f}] "
        f"M/yr; paper CR estimate 170, this reproduction "
        f"{cr_growth:.0f} (rescaled)"
    )

    # ~250 M new users per year over 2007-2012.
    assert 200 < band.user_growth_per_year < 300
    # The band reproduces the paper's 50-205 M/yr.
    assert 35 < band.low < 70
    assert 160 < band.high < 260
    # The paper's 170 M/yr estimate falls inside the band.
    assert band.contains(170)
    # Our own rescaled CR growth is of the same order: the simulator's
    # realised growth is tuned to the paper's *levels* (0.72 -> 1.2 B),
    # whose endpoint arithmetic (192 M/yr) already brushes the band's
    # top, so allow a modest overshoot.
    assert band.low * 0.7 < cr_growth < band.high * 1.4
