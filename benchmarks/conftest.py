"""Shared benchmark fixtures.

Every bench reproduces one table or figure of the paper on a common
simulated Internet (scale 2^-12 ≈ 1/4096 of the real one).  Simulated
counts are printed both raw and scaled back to real-Internet magnitude
(millions) so they can be laid side by side with the paper's numbers;
absolute agreement is not expected — the *shape* (who wins, ratios,
crossovers) is what the asserts check.
"""

from __future__ import annotations

import pytest

from repro.analysis.pipeline import EstimationPipeline, PipelineOptions
from repro.analysis.windows import TimeWindow, standard_windows
from repro.simnet.internet import SimulationConfig, SyntheticInternet
from repro.sources.catalog import build_standard_sources

#: Simulation scale for all benchmarks.
BENCH_SCALE = 2.0**-12
BENCH_SEED = 20140630


@pytest.fixture(scope="session")
def bench_internet() -> SyntheticInternet:
    return SyntheticInternet(SimulationConfig(scale=BENCH_SCALE, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_sources(bench_internet):
    return build_standard_sources(bench_internet)


@pytest.fixture(scope="session")
def bench_pipeline(bench_internet, bench_sources) -> EstimationPipeline:
    return EstimationPipeline(
        bench_internet,
        bench_sources,
        PipelineOptions(min_stratum_observed=30),
    )


@pytest.fixture(scope="session")
def first_window() -> TimeWindow:
    return TimeWindow(2011.0, 2012.0)


@pytest.fixture(scope="session")
def last_window() -> TimeWindow:
    return TimeWindow(2013.5, 2014.5)


@pytest.fixture(scope="session")
def all_window_results(bench_pipeline):
    """The 11 standard windows, run once and shared (Figs 4, 5, 10)."""
    return bench_pipeline.run_all(standard_windows())


@pytest.fixture(scope="session")
def last_window_result(bench_pipeline, last_window):
    return bench_pipeline.run_window(last_window)
