"""Table 5 — used-space totals at end-June 2014 by stratification.

Reproduces the paper's headline table: pingable, observed, estimated
and unseen addresses and /24s, with the estimated total recomputed
under every stratification (none / RIR / country / age / prefix /
industry / static-dynamic).  The paper's key observations checked:
totals are consistent across stratifications, estimates stay below the
routed space, and the est/ping quotient exceeds Heidemann's 1.86.
"""

from repro.analysis.report import fmt_real_millions, format_table
from benchmarks.conftest import BENCH_SCALE

STRATIFICATIONS = ["rir", "country", "age", "prefix", "industry", "dynamic"]


def run_totals(pipeline, window):
    result = pipeline.run_window(window)
    addr_totals = {"none": result.estimated_addresses}
    sub_totals = {"none": result.estimated_subnets}
    for kind in STRATIFICATIONS:
        addr_totals[kind] = pipeline.stratified_addresses(
            window, kind
        ).population
        sub_totals[kind] = pipeline.stratified_subnets(window, kind).population
    return result, addr_totals, sub_totals


def test_table5_totals(benchmark, bench_pipeline, last_window):
    result, addr_totals, sub_totals = benchmark.pedantic(
        run_totals, args=(bench_pipeline, last_window), rounds=1, iterations=1
    )

    def row(label, totals, ping, observed, routed, truth):
        cells = [label]
        cells.extend(
            fmt_real_millions(totals[k], BENCH_SCALE)
            for k in ["none"] + STRATIFICATIONS
        )
        cells.append(fmt_real_millions(ping, BENCH_SCALE))
        cells.append(fmt_real_millions(observed, BENCH_SCALE))
        cells.append(fmt_real_millions(totals["none"] - observed, BENCH_SCALE))
        cells.append(fmt_real_millions(routed, BENCH_SCALE))
        cells.append(fmt_real_millions(truth, BENCH_SCALE))
        return cells

    print()
    print(format_table(
        ["level", "est none", "rir", "country", "age", "prefix", "industry",
         "stat/dyn", "ping", "obs", "unseen", "routed", "truth"],
        [
            row("IPs [M]", addr_totals, result.ping_addresses,
                result.observed_addresses, result.routed_addresses,
                result.truth_addresses),
            row("/24 [M]", sub_totals, result.ping_subnets,
                result.observed_subnets, result.routed_subnets,
                result.truth_subnets),
        ],
        title="Table 5 — estimated used IPv4 space at end-June 2014 "
              "(real-equivalent millions)",
    ))

    base = addr_totals["none"]
    for kind, total in addr_totals.items():
        # Paper: estimates "fairly consistent across stratifications"
        # (1.08-1.17 B, a ~8 % spread).
        assert abs(total - base) < 0.15 * base, kind
        # Always plausible: below the routed space.
        assert total <= result.routed_addresses, kind
    for kind, total in sub_totals.items():
        assert abs(total - sub_totals["none"]) < 0.15 * sub_totals["none"]
        assert total <= result.routed_subnets
    # est/ping quotient larger than Heidemann's 1.86 correction factor.
    assert base / result.ping_addresses > 1.86
    # Observed fraction of routed below estimated fraction (27 % -> 45 %).
    assert result.observed_addresses / result.routed_addresses < base / (
        result.routed_addresses
    )
