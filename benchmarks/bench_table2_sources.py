"""Table 2 — data sources and observed unique IPs / /24s per year.

Regenerates the per-source, per-year unique-address and unique-/24
counts (after preprocessing and spoof filtering, as in the paper's
table) and checks the qualitative size relations the paper reports.
"""

from repro.analysis.report import fmt_real_millions, format_table
from repro.analysis.windows import TimeWindow
from benchmarks.conftest import BENCH_SCALE

YEARS = [2011, 2012, 2013]


def collect_yearly(pipeline):
    per_year = {}
    for year in YEARS:
        window = TimeWindow(float(year), float(year) + 1.0)
        per_year[year] = pipeline.datasets(window)
    return per_year


def test_table2_source_inventory(benchmark, bench_pipeline):
    per_year = benchmark.pedantic(
        collect_yearly, args=(bench_pipeline,), rounds=1, iterations=1
    )
    names = sorted(
        {name for datasets in per_year.values() for name in datasets},
        key=lambda n: ("WIKI SPAM MLAB WEB GAME SWIN CALT IPING "
                       "TPING").split().index(n),
    )
    rows = []
    for name in names:
        row = [name]
        for year in YEARS:
            dataset = per_year[year].get(name)
            if dataset is None:
                row.extend(["-", "-"])
            else:
                row.append(fmt_real_millions(len(dataset), BENCH_SCALE))
                row.append(
                    fmt_real_millions(len(dataset.subnets24()), BENCH_SCALE)
                )
        rows.append(row)
    print()
    print(format_table(
        ["source", "2011 IPs[M]", "/24[M]", "2012 IPs[M]", "/24[M]",
         "2013 IPs[M]", "/24[M]"],
        rows,
        title="Table 2 — observed unique IPv4 addresses and /24s per year "
              "(real-equivalent millions)",
    ))

    d2013 = per_year[2013]
    # Availability pattern: SPAM/TPING start 2012, CALT mid-2013.
    assert "SPAM" not in per_year[2011]
    assert "TPING" not in per_year[2011]
    assert "CALT" not in per_year[2012]
    assert "CALT" in d2013
    # Size relations: the censuses and NetFlow giants dominate the logs.
    assert len(d2013["IPING"]) > len(d2013["WEB"]) > len(d2013["WIKI"])
    assert len(d2013["CALT"]) > len(d2013["SWIN"])
    assert len(d2013["IPING"]) > len(d2013["TPING"])
    # /24 coverage is much flatter than address coverage (Table 2).
    ip_spread = len(d2013["IPING"]) / len(d2013["WIKI"])
    sub_spread = len(d2013["IPING"].subnets24()) / len(
        d2013["WIKI"].subnets24()
    )
    assert sub_spread < ip_spread
