"""Performance benchmark for the streaming estimator's warm advance.

The streaming contract (docs/STREAM.md) promises that absorbing one
new quarter of observations and bringing every window current is much
cheaper than recomputing the sweep from scratch: closed windows stay
cached, ingestion touches only the journal tail, and only the
newly-coverable window is actually fit.  This bench pins that promise
to a number — the warm one-quarter ``advance`` must be at least 5x
faster than a from-scratch replay of the same journal — and commits
the warm-advance median (``BENCH_perf_stream.json``) so
``check_regression.py`` catches the architecture quietly degrading
into recompute-everything.
"""

from time import perf_counter

import pytest

from repro.engine.stages import PipelineOptions
from repro.simnet.internet import SimulationConfig, SyntheticInternet
from repro.stream.estimator import StreamEstimator
from repro.stream.journal import journal_from_sources
from repro.sources.catalog import build_standard_sources

#: Smaller than the table/figure benches' 2^-12: this bench replays the
#: full journal several times (scratch + per-round warm setup).
STREAM_SCALE_LOG2 = -14
STREAM_SEED = 20140630

#: The warm state holds everything through this time; the timed advance
#: absorbs the one quarter beyond it and closes the final window.
WARM_THROUGH = 2014.25

#: Floor on scratch-replay / warm-advance wall time (the acceptance
#: criterion; measured ~30x on an idle machine, 5x leaves CI headroom).
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def stream_world(tmp_path_factory):
    internet = SyntheticInternet(
        SimulationConfig(scale=2.0**STREAM_SCALE_LOG2, seed=STREAM_SEED)
    )
    sources = build_standard_sources(internet)
    tmp = tmp_path_factory.mktemp("stream-bench")
    journal = journal_from_sources(sources, tmp / "journal")
    # Deltas are journalled in time order, so the records up to
    # WARM_THROUGH are exactly a prefix of the full journal; its length
    # is the warm state's ingest limit.
    n_through = len(
        journal_from_sources(sources, tmp / "prefix", through=WARM_THROUGH)
    )
    assert 0 < n_through < len(journal)
    return internet, journal, n_through


def _fresh(stream_world):
    internet, journal, _ = stream_world
    return StreamEstimator(internet, journal, options=PipelineOptions())


def test_perf_stream_warm_advance(benchmark, stream_world):
    """Warm one-quarter advance, >=5x faster than a scratch replay."""
    _, _, n_through = stream_world

    # The reference: a cold estimator replays the whole journal and
    # closes every window from scratch.
    t0 = perf_counter()
    scratch = _fresh(stream_world)
    scratch_results = scratch.advance()
    scratch_seconds = perf_counter() - t0
    assert len(scratch_results) == 11

    state = {}

    def setup():
        # Rebuild the warm state each round: everything through
        # WARM_THROUGH ingested and every then-coverable window closed
        # (close() directly — advance() would absorb the tail early).
        stream = _fresh(stream_world)
        stream.ingest(limit=n_through)
        coverable = stream.closeable_windows()
        assert len(coverable) == len(scratch_results) - 1
        for window in coverable:
            stream.close(window)
        state["stream"] = stream

    def warm_advance():
        stream = state["stream"]
        stream.ingest()
        return stream.advance()

    results = benchmark.pedantic(
        warm_advance, setup=setup, rounds=3, iterations=1
    )
    assert len(results) == len(scratch_results)

    warm_seconds = benchmark.stats.stats.median
    speedup = scratch_seconds / warm_seconds
    print(
        f"\nscratch replay {scratch_seconds:.3f} s, warm advance "
        f"{warm_seconds:.3f} s -> {speedup:.1f}x (floor {MIN_SPEEDUP:.0f}x)"
    )
    assert speedup >= MIN_SPEEDUP

    # The warm advance must agree with the scratch replay exactly.
    for warm_result, scratch_result in zip(results, scratch_results):
        assert warm_result.window == scratch_result.window
        assert warm_result.estimated_addresses == pytest.approx(
            scratch_result.estimated_addresses, rel=1e-8
        )
