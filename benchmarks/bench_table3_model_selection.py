"""Table 3 — cross-validation errors per model-selection setting.

Sweeps the paper's seven (IC, divisor) combinations through
leave-one-source-out cross-validation and reports RMSE/MAE, checking
the paper's conclusion: the adaptive divisor is competitive on both
address- and /24-level data, where fixed divisors trade one off against
the other.
"""

import numpy as np

from repro.analysis.crossval import TABLE3_SETTINGS, sweep_selection_settings
from repro.analysis.report import format_table, to_real
from repro.analysis.windows import TimeWindow
from benchmarks.conftest import BENCH_SCALE

#: Two representative windows (the paper uses all but the first).
WINDOWS = [TimeWindow(2012.5, 2013.5), TimeWindow(2013.5, 2014.5)]


def run_sweep(pipeline):
    address_sets = [pipeline.datasets(w) for w in WINDOWS]
    subnet_sets = [
        {name: d.subnets24() for name, d in datasets.items()}
        for datasets in address_sets
    ]
    return (
        sweep_selection_settings(address_sets, TABLE3_SETTINGS),
        sweep_selection_settings(subnet_sets, TABLE3_SETTINGS),
    )


def test_table3_selection_settings(benchmark, bench_pipeline):
    addr_rows, sub_rows = benchmark.pedantic(
        run_sweep, args=(bench_pipeline,), rounds=1, iterations=1
    )
    table = []
    for a, s in zip(addr_rows, sub_rows):
        table.append([
            a.setting,
            f"{to_real(a.rmse, BENCH_SCALE) / 1e6:.1f}",
            f"{to_real(a.mae, BENCH_SCALE) / 1e6:.1f}",
            f"{to_real(s.rmse, BENCH_SCALE) / 1e3:.1f}",
            f"{to_real(s.mae, BENCH_SCALE) / 1e3:.1f}",
        ])
    print()
    print(format_table(
        ["setting", "IP RMSE[M]", "IP MAE[M]", "/24 RMSE[k]", "/24 MAE[k]"],
        table,
        title="Table 3 — cross-validation error by selection setting "
              "(real-equivalent units)",
    ))

    by_name = {row.setting: row for row in addr_rows}
    sub_by_name = {row.setting: row for row in sub_rows}
    adaptive = by_name["BIC-adaptive1000"]
    # The adaptive divisor must be competitive on addresses: not much
    # worse than the best fixed setting (paper: "errors not much larger
    # than the minimum errors").
    best_rmse = min(row.rmse for row in addr_rows)
    assert adaptive.rmse <= 2.5 * best_rmse
    # And on /24s the adaptive settings stay near the best too.
    best_sub = min(row.rmse for row in sub_rows)
    assert sub_by_name["BIC-adaptive1000"].rmse <= 2.5 * best_sub
    # Every setting produced finite errors.
    for row in addr_rows + sub_rows:
        assert np.isfinite(row.rmse) and np.isfinite(row.mae)
