"""Figure 6 — estimated IPv4 addresses per RIR, absolute and relative.

Stratifies the estimate by RIR on the first and last windows and
checks the paper's regional story: APNIC/ARIN/RIPE hold the most used
addresses, while AfriNIC (and LACNIC) grow fastest in relative terms
and RIPE slowest among the big three.
"""

from repro.analysis.growth import stratified_yearly_growth
from repro.analysis.report import fmt_real_millions, format_table
from repro.registry.rir import RIR
from benchmarks.conftest import BENCH_SCALE


def test_fig6_by_rir(benchmark, bench_pipeline, first_window, last_window):
    rows = benchmark.pedantic(
        stratified_yearly_growth,
        args=(bench_pipeline, "rir", first_window, last_window),
        rounds=1, iterations=1,
    )
    by_rir = {RIR(int(r.label)).name: r for r in rows if int(r.label) >= 0}
    printable = [
        [
            name,
            fmt_real_millions(row.estimated_first, BENCH_SCALE),
            fmt_real_millions(row.estimated_last, BENCH_SCALE),
            fmt_real_millions(row.estimated_per_year, BENCH_SCALE),
            f"{row.estimated_relative:.0f}%",
        ]
        for name, row in sorted(by_rir.items())
    ]
    print()
    print(format_table(
        ["RIR", "est Dec'11[M]", "est Jun'14[M]", "growth[M/yr]",
         "rel growth/yr"],
        printable,
        title="Figure 6 — estimated addresses by RIR "
              "(real-equivalent millions)",
    ))

    assert set(by_rir) == {"AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE"}
    # Absolute holdings: the big three dwarf AfriNIC and LACNIC.
    for small in ("AFRINIC", "LACNIC"):
        for big in ("APNIC", "ARIN", "RIPE"):
            assert by_rir[small].estimated_last < by_rir[big].estimated_last
    # Relative growth: AfriNIC and LACNIC lead (the paper's order is
    # AfriNIC then LACNIC; at simulation scale the two can swap);
    # RIPE slowest of the big three.
    rel = {name: row.estimated_relative for name, row in by_rir.items()}
    top_two = sorted(rel, key=rel.get)[-2:]
    assert set(top_two) == {"AFRINIC", "LACNIC"}
    assert rel["RIPE"] <= rel["APNIC"] + 5
    assert rel["RIPE"] <= rel["ARIN"] + 5
    # Everyone grew.
    assert all(row.estimated_per_year > 0 for row in by_rir.values())
