"""Ablation — right-truncated vs plain Poisson across stratum sizes.

The paper notes truncation "improves estimates substantially for small
strata, where the counters are relatively close to the limit, but
otherwise makes little difference".  This bench sweeps network size:
for large blocks the two estimates coincide; for small, sparsely
overlapping blocks the Poisson estimate can explode past the block size
while the truncated one stays plausible.
"""

from repro.analysis.report import format_table
from repro.core.histories import tabulate_histories
from repro.core.loglinear import LoglinearModel
from repro.core.selection import select_model
from repro.ipspace.intervals import IntervalSet


def run(pipeline, internet, window):
    datasets = pipeline.datasets(window)
    candidates = [
        a
        for a in internet.registry
        if a.is_routed_ever and not a.darknet and a.routed_from <= 2011.0
    ]
    candidates.sort(key=lambda a: a.prefix.size)
    rows = []
    for alloc in candidates[:: max(1, len(candidates) // 40)]:
        prefix = alloc.prefix
        block = IntervalSet([(prefix.base, prefix.end)])
        local = {
            name: d.restrict(block) for name, d in datasets.items()
        }
        local = {n: d for n, d in local.items() if len(d) > 2}
        if len(local) < 3:
            continue
        table = tabulate_histories(local)
        selection = select_model(table, divisor=1, criterion="bic")
        poisson = selection.fit.estimate().population
        truncated = (
            LoglinearModel(table.num_sources, selection.fit.terms)
            .fit(table, "truncated", limit=float(prefix.size))
            .estimate()
            .population
        )
        rows.append({
            "size": prefix.size,
            "observed": table.num_observed,
            "poisson": poisson,
            "truncated": truncated,
        })
    return rows


def test_ablation_truncation(benchmark, bench_pipeline, bench_internet,
                             last_window):
    rows = benchmark.pedantic(
        run, args=(bench_pipeline, bench_internet, last_window),
        rounds=1, iterations=1,
    )
    printable = [
        [
            r["size"],
            r["observed"],
            f"{r['poisson']:.0f}",
            f"{r['truncated']:.0f}",
        ]
        for r in rows[:25]
    ]
    print()
    print(format_table(
        ["block size", "observed", "poisson est", "truncated est"],
        printable,
        title="Ablation — truncation effect by block size (sample)",
    ))

    assert len(rows) >= 10
    # Truncated estimates never exceed the block size.
    assert all(r["truncated"] <= r["size"] * (1 + 1e-9) for r in rows)
    # For blocks where Poisson stays well under the limit, the two
    # agree closely (truncation 'makes little difference').
    comfortable = [
        r for r in rows if r["poisson"] < 0.5 * r["size"]
    ]
    assert comfortable
    for r in comfortable:
        assert abs(r["truncated"] - r["poisson"]) < 0.05 * r["poisson"] + 1
    # Implausible Poisson estimates (above the block size) exist in the
    # sweep and are repaired by truncation.
    exploded = [r for r in rows if r["poisson"] > r["size"]]
    for r in exploded:
        assert r["truncated"] <= r["size"]
