"""Figure 12 — addresses in unused prefixes by routed prefix length.

Fits the Section 7 occupancy model (f_i ratios estimated by merging
IPING/GAME/WEB/WIKI one at a time into the rest, SWIN/CALT excluded),
distributes the CR-predicted unseen addresses over the vacant blocks,
and prints the observed-vs-estimated unused-address histogram.  Checks:
ghost placement strictly shrinks the unused space by exactly the unseen
mass, most vacancy sits in long prefixes, and the Section 7 /24-count
cross-check against the /24 LLM lands within an order of magnitude
(the paper's mutual-validation).
"""

import numpy as np

from repro.analysis.report import fmt_real_millions, format_table
from repro.analysis.unused import build_unused_space_model
from benchmarks.conftest import BENCH_SCALE


def run(pipeline, internet, window):
    result = pipeline.run_window(window)
    datasets = pipeline.datasets(window)
    universe = internet.routing.window(window.start, window.end)
    model = build_unused_space_model(
        datasets, universe, result.estimate_addresses.unseen
    )
    return result, model


def test_fig12_unused_prefixes(benchmark, bench_pipeline, bench_internet,
                               last_window):
    result, model = benchmark.pedantic(
        run, args=(bench_pipeline, bench_internet, last_window),
        rounds=1, iterations=1,
    )
    obs = model.observed_unused_addresses
    est = model.estimated_unused_addresses
    rows = []
    for length in range(8, 33):
        if obs[length] == 0 and est[length] < 1:
            continue
        rows.append([
            f"/{length}",
            f"{model.vacancy_observed[length]:.0f}",
            fmt_real_millions(obs[length], BENCH_SCALE),
            fmt_real_millions(est[length], BENCH_SCALE),
        ])
    print()
    print(format_table(
        ["unused prefix", "vacant blocks", "obs addrs[M]", "est addrs[M]"],
        rows,
        title="Figure 12 — addresses in unused prefixes "
              "(real-equivalent millions)",
    ))
    check_24s = model.new_subnet24_equivalent()
    llm_24s = result.estimate_subnets.unseen
    print(f"\nSection 7 new-/24 equivalent: {check_24s:.0f}; "
          f"independent /24 LLM unseen: {llm_24s:.0f}")

    # Ghost placement removes exactly the unseen mass from free space.
    np.testing.assert_allclose(obs.sum() - est.sum(), model.unseen, rtol=0.05)
    # Majority of *blocks* are long prefixes (paper: most empty
    # prefixes are longer than /20).
    vac = model.vacancy_observed
    assert vac[21:].sum() > vac[:21].sum()
    # Estimated vacancy never exceeds observed at any length by more
    # than numerical noise (ghosts only consume space).
    assert (est <= obs + 1e-6 * (1 + obs)).all()
    # Mutual-validation with the /24-level LLM: same order of magnitude
    # when the /24 model reports a meaningful unseen count.
    if llm_24s > 20:
        assert 0.1 < check_24s / llm_24s < 10.0
