"""Figure 4 — growth of routed, observed and estimated /24 subnets.

Regenerates both panels (absolute counts and series normalised on the
first window) over the 11 standard windows and checks the paper's
shape: estimated sits a few percent above observed, both grow
substantially faster than the routed space, and growth is roughly
linear.
"""

import numpy as np

from repro.analysis.growth import series_from_results
from repro.analysis.report import fmt_real_millions, format_table
from benchmarks.conftest import BENCH_SCALE


def test_fig4_subnet_growth(benchmark, all_window_results, bench_pipeline):
    series = benchmark.pedantic(
        series_from_results, args=(all_window_results, "subnets"),
        rounds=1, iterations=1,
    )
    # The paper: the /24 estimate range is within ±1 % of the point
    # estimates.  Check the final window's profile range.
    interval = bench_pipeline.subnet_estimator(
        all_window_results[-1].window
    ).profile_interval(alpha=1e-7)
    point = series.estimated[-1]
    half_width = 0.5 * (interval.population_high - interval.population_low)
    assert half_width / point < 0.03
    rows = []
    obs_norm = series.normalized("observed")
    est_norm = series.normalized("estimated")
    routed_norm = series.normalized("routed")
    for i, label in enumerate(series.labels):
        rows.append([
            label,
            fmt_real_millions(series.routed[i], BENCH_SCALE),
            fmt_real_millions(series.observed[i], BENCH_SCALE),
            fmt_real_millions(series.estimated[i], BENCH_SCALE),
            fmt_real_millions(series.truth[i], BENCH_SCALE),
            f"{routed_norm[i]:.3f}",
            f"{obs_norm[i]:.3f}",
            f"{est_norm[i]:.3f}",
        ])
    print()
    print(format_table(
        ["window", "routed[M]", "obs[M]", "est[M]", "truth[M]",
         "routed rel", "obs rel", "est rel"],
        rows,
        title="Figure 4 — /24 subnets over time (real-equivalent millions)",
    ))

    # Estimated stays a modest correction above observed (paper: 5-10 %).
    ratio = series.estimated / series.observed
    assert (ratio >= 1.0).all()
    assert ratio.max() < 1.25
    # Observed and estimated grow faster than the routed space
    # (paper: 22 % vs 7 % over the period).
    assert est_norm[-1] > routed_norm[-1]
    assert obs_norm[-1] > routed_norm[-1]
    assert est_norm[-1] > 1.05
    # Roughly linear growth: a linear fit explains nearly everything.
    t = series.window_ends
    fit = np.polyval(np.polyfit(t, series.estimated, 1), t)
    residual = np.abs(fit - series.estimated) / series.estimated
    assert residual.max() < 0.08
    # Tracks the true /24 usage throughout.
    assert (np.abs(series.estimated - series.truth) < 0.2 * series.truth).all()
