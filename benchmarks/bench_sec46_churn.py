"""Section 4.6 — dynamic addressing: IPs churn, /24s barely do.

Reruns the paper's 16-day game-session experiment: after every client
has logged in at least once (paper: day 4), distinct addresses grew
another 2.7x while distinct /24s grew only 1.2x.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.simnet.dynamics import simulate_session_churn


def run():
    rng = np.random.default_rng(416)
    return simulate_session_churn(rng, num_clients=150_000, num_days=16)


def test_sec46_dynamic_churn(benchmark):
    obs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [int(day), int(obs.distinct_addresses[i]), int(obs.distinct_subnets[i])]
        for i, day in enumerate(obs.days)
    ]
    print()
    print(format_table(
        ["day", "distinct IPs", "distinct /24s"],
        rows,
        title="Section 4.6 — 16-day session experiment",
    ))
    addr_factor, subnet_factor = obs.growth_after_saturation()
    print(f"\nsaturation day {obs.all_seen_day + 1}; post-saturation growth: "
          f"IPs {addr_factor:.2f}x (paper 2.7x), /24s {subnet_factor:.2f}x "
          "(paper 1.2x)")

    # All clients seen within the first week (paper: four days).
    assert obs.all_seen_day <= 6
    # The paper's factors, with generous tolerance.
    assert 2.0 < addr_factor < 3.6
    assert 1.05 < subnet_factor < 1.5
    assert addr_factor / subnet_factor > 1.7
