#!/usr/bin/env python
"""Performance regression gate for the committed benchmark baselines.

Compares a candidate ``pytest-benchmark`` JSON export against the
committed baselines (``BENCH_perf_core.json`` overridden by the newer
``BENCH_perf_fit.json`` / ``BENCH_perf_stream.json`` where several
cover a benchmark) and fails when any benchmark's median slows down by
more than the threshold.

CI usage (the ``perf-baseline`` job)::

    pytest benchmarks/bench_perf_core.py benchmarks/bench_perf_stream.py \
        --benchmark-json=candidate.json
    python benchmarks/check_regression.py candidate.json

Thresholds are generous (default +30% on the median) because shared CI
runners are noisy; the gate exists to catch step-change regressions
(an accidental O(n^2), a dropped cache), not 5% drift.  Benchmarks
present only on one side are reported but never fail the gate, so
adding a benchmark does not require regenerating every baseline.

``--self-test`` runs the gate against a synthetic candidate derived
from the baselines with one benchmark slowed 2x, and exits 0 iff the
gate (a) fails the slowed candidate and (b) passes an identical one —
CI runs it first so a broken gate cannot silently wave regressions
through.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent

#: Committed baselines, oldest first: later files override earlier
#: ones per benchmark name, so the newest committed numbers win.
BASELINE_FILES = (
    "BENCH_perf_core.json",
    "BENCH_perf_fit.json",
    "BENCH_perf_stream.json",
)

#: Allowed slowdown of the median before the gate fails.
DEFAULT_THRESHOLD = 0.30

#: Benchmarks the candidate run must contain.  Ordinary benchmarks
#: missing on one side are reported but never fail (adding one does not
#: force regenerating every baseline); these are load-bearing evidence
#: — the batched sweep median proves the batched kernel still pays on
#: the full staged path — so a candidate that silently drops one fails.
REQUIRED_BENCHMARKS = (
    "test_perf_sweep_batched",
    "test_perf_stream_warm_advance",
)

#: Committed metrics export of the reference observability sweep.
#: Schema 2 nests a cold and a warm (second run against a shared
#: artifact store) export under ``{"schema": 2, "cold": ..., "warm":
#: ...}``; schema 1 was a single flat ``--metrics-out`` export and is
#: still accepted (treated as cold-only).
METRICS_BASELINE = "BENCH_metrics.json"

#: Allowed drop in cache hit rate (absolute) before the gate fails.
METRICS_HIT_RATE_SLACK = 0.05

#: Floor on the warm-run (second run, shared store) cache hit rate.
DEFAULT_MIN_WARM_HIT_RATE = 0.90


def load_medians(path: Path) -> dict[str, float]:
    """``{benchmark name: median seconds}`` from one pytest-benchmark JSON."""
    with open(path) as fh:
        data = json.load(fh)
    return {
        bench["name"]: float(bench["stats"]["median"])
        for bench in data.get("benchmarks", [])
    }


def load_baselines(files=BASELINE_FILES) -> dict[str, float]:
    """Merge the committed baselines (later files override earlier)."""
    merged: dict[str, float] = {}
    for name in files:
        path = HERE / name
        if path.exists():
            merged.update(load_medians(path))
    if not merged:
        raise FileNotFoundError(
            f"no baseline files found in {HERE} (expected {files})"
        )
    return merged


def compare(
    baseline: dict[str, float],
    candidate: dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Human-readable comparison rows; regressions are marked ``FAIL``."""
    rows = []
    for name in sorted(set(baseline) | set(candidate) | set(REQUIRED_BENCHMARKS)):
        required = name in REQUIRED_BENCHMARKS
        if name not in candidate:
            verdict = "FAIL" if required else "SKIP"
            rows.append(f"{verdict} {name}: not in candidate run")
            continue
        if name not in baseline:
            verdict = "FAIL" if required else "SKIP"
            rows.append(f"{verdict} {name}: no committed baseline")
            continue
        base, cand = baseline[name], candidate[name]
        ratio = cand / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > 1.0 + threshold else "ok"
        rows.append(
            f"{verdict:4s} {name}: {cand * 1e3:.3f} ms vs baseline "
            f"{base * 1e3:.3f} ms ({ratio:.2f}x baseline)"
        )
    return rows


def gate(candidate_path: Path, threshold: float) -> int:
    baseline = load_baselines()
    candidate = load_medians(candidate_path)
    rows = compare(baseline, candidate, threshold)
    for row in rows:
        print(row)
    failures = [row for row in rows if row.startswith("FAIL")]
    if failures:
        print(
            f"\n{len(failures)} benchmark(s) slowed down more than "
            f"{threshold:.0%} past baseline",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(candidate)} benchmark(s) within {threshold:.0%} of baseline")
    return 0


def self_test(threshold: float) -> int:
    """Prove the gate can both fail a 2x slowdown and pass a clean run."""
    baseline = load_baselines()
    slowed_name = sorted(baseline)[0]

    clean = dict(baseline)
    slowed = copy.deepcopy(baseline)
    slowed[slowed_name] *= 2.0

    clean_rows = compare(baseline, clean, threshold)
    slowed_rows = compare(baseline, slowed, threshold)
    clean_fails = [r for r in clean_rows if r.startswith("FAIL")]
    slowed_fails = [r for r in slowed_rows if r.startswith("FAIL")]

    ok = not clean_fails and len(slowed_fails) == 1
    print(f"self-test: synthetic 2x slowdown of {slowed_name}")
    for row in slowed_fails or slowed_rows:
        print(f"  {row}")
    if not ok:
        print(
            "self-test FAILED: gate did not flag exactly the slowed "
            f"benchmark (clean fails: {len(clean_fails)}, slowed fails: "
            f"{len(slowed_fails)})",
            file=sys.stderr,
        )
        return 1
    print("self-test passed: gate flags the slowdown and only the slowdown")

    # The required-benchmark gate: a candidate that silently drops a
    # required benchmark must fail even though every present median is
    # clean.
    for required in REQUIRED_BENCHMARKS:
        if required not in baseline:
            continue
        dropped = dict(baseline)
        dropped.pop(required)
        dropped_rows = compare(baseline, dropped, threshold)
        dropped_fails = [r for r in dropped_rows if r.startswith("FAIL")]
        if len(dropped_fails) != 1 or required not in dropped_fails[0]:
            print(
                "self-test FAILED: gate did not flag the dropped required "
                f"benchmark {required} (fails: {dropped_fails})",
                file=sys.stderr,
            )
            return 1
        print(f"self-test passed: gate flags a dropped {required}")

    # Same drill for the cache-efficiency gate: a synthetic candidate
    # with half the baseline's hits must fail, an identical one pass.
    metrics_path = HERE / METRICS_BASELINE
    if metrics_path.exists():
        cold, _ = load_metrics_baseline(metrics_path)
        degraded = dict(cold)
        degraded["cache_hits_total"] = cold.get("cache_hits_total", 0.0) / 2
        degraded["cache_misses_total"] = (
            cold.get("cache_misses_total", 0.0)
            + cold.get("cache_hits_total", 0.0) / 2
        )
        _, clean_failed = compare_metrics(cold, dict(cold))
        _, degraded_failed = compare_metrics(cold, degraded)
        if clean_failed or not degraded_failed:
            print(
                "self-test FAILED: metrics gate did not flag a synthetic "
                f"hit-rate halving (clean: {clean_failed}, degraded: "
                f"{degraded_failed})",
                file=sys.stderr,
            )
            return 1
        print("self-test passed: metrics gate flags a synthetic hit-rate drop")
    return 0


def _counters_of(data: dict) -> dict[str, float]:
    """Unlabelled counter totals from one loaded metrics export."""
    return {
        c["name"]: float(c["value"])
        for c in data.get("counters", [])
        if not c.get("labels")
    }


def _counter_totals(path: Path) -> dict[str, float]:
    """Unlabelled counter totals from a ``--metrics-out`` JSON export."""
    with open(path) as fh:
        data = json.load(fh)
    return _counters_of(data)


def load_metrics_baseline(
    path: Path,
) -> tuple[dict[str, float], dict[str, float] | None]:
    """``(cold counters, warm counters or None)`` from the committed baseline.

    Accepts both the schema-2 nested ``{"schema": 2, "cold": ...,
    "warm": ...}`` layout and the historical flat export (cold-only).
    """
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema", 1) >= 2:
        warm = data.get("warm")
        return _counters_of(data["cold"]), (
            _counters_of(warm) if warm is not None else None
        )
    return _counters_of(data), None


def _hit_rate(counters: dict[str, float]) -> float | None:
    hits = counters.get("cache_hits_total", 0.0)
    misses = counters.get("cache_misses_total", 0.0)
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def compare_metrics(
    baseline: dict[str, float], candidate: dict[str, float]
) -> tuple[list[str], bool]:
    """Comparison rows plus whether the hit-rate gate failed."""
    rows: list[str] = []
    base_rate = _hit_rate(baseline)
    cand_rate = _hit_rate(candidate)
    if base_rate is None or cand_rate is None:
        rows.append("metrics: no cache counters on one side, skipping")
        return rows, False
    drop = base_rate - cand_rate
    failed = drop > METRICS_HIT_RATE_SLACK
    verdict = "FAIL" if failed else "ok"
    rows.append(
        f"{verdict:4s} cache hit rate: {cand_rate:.1%} vs baseline "
        f"{base_rate:.1%} ({drop:+.1%} drop)"
    )
    for name in (
        "cache_evictions_total",
        "cache_corrupt_evictions_total",
        "cache_persistent_corrupt_entries_total",
    ):
        base_v, cand_v = baseline.get(name, 0.0), candidate.get(name, 0.0)
        if cand_v > base_v:
            rows.append(f"WARN {name}: {cand_v:.0f} vs baseline {base_v:.0f}")
    return rows, failed


def metrics_diff(candidate_path: Path, baseline_path: Path | None = None) -> int:
    """Cache-efficiency gate between a candidate export and the baseline.

    A hit-rate drop beyond ``METRICS_HIT_RATE_SLACK`` fails the build:
    with content-addressed keys the reference sweep's hit rate is
    deterministic, so a drop means a changed artifact key or a stage
    that silently stopped caching.  Eviction and corrupt-entry counter
    increases remain warn-only (they vary with runner memory pressure).
    """
    baseline_path = baseline_path or HERE / METRICS_BASELINE
    if not baseline_path.exists():
        print(f"metrics: no committed baseline at {baseline_path}, skipping")
        return 0
    baseline, _ = load_metrics_baseline(baseline_path)
    candidate = _counter_totals(candidate_path)
    rows, failed = compare_metrics(baseline, candidate)
    for row in rows:
        print(row)
    if failed:
        print(
            "cache hit rate dropped past the slack: look for a changed "
            "artifact key or a stage no longer caching",
            file=sys.stderr,
        )
        return 1
    return 0


def warm_gate(
    warm_path: Path,
    min_rate: float = DEFAULT_MIN_WARM_HIT_RATE,
    baseline_path: Path | None = None,
) -> int:
    """Fail unless the warm run (second run, shared store) mostly hit.

    The warm sweep reruns the reference pipeline against a store already
    populated by the cold run, so nearly every stage lookup should hit
    the persistent tier; a rate under ``min_rate`` means the store keys
    drifted between identical runs or persistence silently broke.
    """
    candidate = _counter_totals(warm_path)
    rate = _hit_rate(candidate)
    if rate is None:
        print("FAIL warm run: no cache counters in export", file=sys.stderr)
        return 1
    verdict = "FAIL" if rate < min_rate else "ok"
    print(f"{verdict:4s} warm-store hit rate: {rate:.1%} (floor {min_rate:.0%})")
    tier_note = []
    for name in ("cache_persistent_hits_total", "cache_fitmemo_hits_total"):
        if name in candidate:
            tier_note.append(f"{name.removeprefix('cache_')}={candidate[name]:.0f}")
    if tier_note:
        print("     " + "  ".join(tier_note))
    baseline_path = baseline_path or HERE / METRICS_BASELINE
    if baseline_path.exists():
        _, warm_baseline = load_metrics_baseline(baseline_path)
        if warm_baseline is not None:
            base_rate = _hit_rate(warm_baseline)
            if base_rate is not None:
                print(f"     committed warm baseline: {base_rate:.1%}")
    if verdict == "FAIL":
        print(
            f"warm-store hit rate {rate:.1%} is below the {min_rate:.0%} "
            "floor: identical reruns stopped hitting the persistent store "
            "(key drift or broken persistence)",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "candidate",
        nargs="?",
        type=Path,
        help="pytest-benchmark JSON export of the candidate run",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed median slowdown fraction (default %(default)s)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate detects a synthetic 2x slowdown, then exit",
    )
    parser.add_argument(
        "--metrics",
        type=Path,
        help="metrics JSON export (repro --metrics-out) of the cold run; "
        "fails on a cache hit-rate drop past the slack vs the committed "
        "BENCH_metrics.json",
    )
    parser.add_argument(
        "--warm-metrics",
        type=Path,
        help="metrics JSON export of the warm rerun against a shared "
        "--store directory; fails if its hit rate is under "
        "--min-warm-hit-rate",
    )
    parser.add_argument(
        "--min-warm-hit-rate",
        type=float,
        default=DEFAULT_MIN_WARM_HIT_RATE,
        help="warm-run cache hit-rate floor (default %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test(args.threshold)
    code = 0
    if args.metrics is not None:
        code |= metrics_diff(args.metrics)
    if args.warm_metrics is not None:
        code |= warm_gate(args.warm_metrics, args.min_warm_hit_rate)
    if args.candidate is None:
        if args.metrics is None and args.warm_metrics is None:
            parser.error(
                "candidate JSON required unless --self-test/--metrics/"
                "--warm-metrics"
            )
        return code
    return code | gate(args.candidate, args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
