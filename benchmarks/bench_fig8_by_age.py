"""Figure 8 — yearly address growth by allocation age.

Stratifies by allocation year (bucketed into eras for stable cells at
simulation scale) and checks the paper's correlation: recent
allocations grow the most, both absolutely and relatively, while old
legacy space still shows some growth.
"""

from repro.analysis.growth import stratified_yearly_growth
from repro.analysis.report import fmt_real_millions, format_table
from benchmarks.conftest import BENCH_SCALE

ERAS = [(1983, 1998), (1998, 2004), (2004, 2008), (2008, 2011), (2011, 2015)]


def era_of(year: int) -> str:
    for lo, hi in ERAS:
        if lo <= year < hi:
            return f"{lo}-{hi - 1}"
    return "other"


def run(pipeline, first_window, last_window):
    rows = stratified_yearly_growth(
        pipeline, "age", first_window, last_window
    )
    buckets: dict[str, dict[str, float]] = {}
    for row in rows:
        if int(row.label) < 0:
            continue
        era = era_of(int(row.label))
        bucket = buckets.setdefault(
            era, {"obs": 0.0, "est": 0.0, "est_first": 0.0}
        )
        bucket["obs"] += row.observed_per_year
        bucket["est"] += row.estimated_per_year
        bucket["est_first"] += row.estimated_first
    return buckets


def test_fig8_by_allocation_age(benchmark, bench_pipeline, first_window,
                                last_window):
    buckets = benchmark.pedantic(
        run, args=(bench_pipeline, first_window, last_window),
        rounds=1, iterations=1,
    )
    printable = []
    for era in sorted(buckets):
        b = buckets[era]
        rel = 100 * b["est"] / b["est_first"] if b["est_first"] else float(
            "nan"
        )
        printable.append([
            era,
            fmt_real_millions(b["obs"], BENCH_SCALE),
            fmt_real_millions(b["est"], BENCH_SCALE),
            f"{rel:.0f}%",
        ])
    print()
    print(format_table(
        ["allocation era", "obs growth[M/yr]", "est growth[M/yr]",
         "rel growth/yr"],
        printable,
        title="Figure 8 — yearly growth by allocation age "
              "(real-equivalent millions)",
    ))

    assert len(buckets) >= 4
    recent = buckets["2011-2014"]
    legacy = buckets["1983-1997"]
    # Recent allocations show the strongest relative growth (they start
    # from nothing and fill fast).
    recent_rel = recent["est"] / max(recent["est_first"], 1e-9)
    legacy_rel = legacy["est"] / max(legacy["est_first"], 1e-9)
    assert recent_rel > legacy_rel
    # Old space still grows a little (the paper sees 20 %+ in places).
    assert legacy["est"] > 0
    # Positive correlation between recency and relative growth across
    # all eras (Spearman-style: eras sorted by start year).
    eras_sorted = sorted(buckets)
    rels = [
        buckets[e]["est"] / max(buckets[e]["est_first"], 1e-9)
        for e in eras_sorted
    ]
    assert rels[-1] == max(rels)
