"""Ablation — model complexity: independence vs pairwise vs 3-way terms.

DESIGN.md calls out the stepwise-search scope as a design choice.  This
bench fits the last window's table with (a) the independence model,
(b) stepwise pairwise selection (the default), and (c) stepwise search
allowed three-way terms, and compares estimates against the truth —
quantifying the paper's claim that source dependence must be modelled,
and that ever-higher-order terms stop paying off (over-fitting).
"""

from repro.analysis.report import fmt_real_millions, format_table
from repro.core.design import main_effect_terms
from repro.core.histories import tabulate_histories
from repro.core.loglinear import LoglinearModel
from repro.core.selection import select_model
from benchmarks.conftest import BENCH_SCALE


def run(pipeline, window):
    table = tabulate_histories(pipeline.datasets(window))
    independence = (
        LoglinearModel(table.num_sources, main_effect_terms(table.num_sources))
        .fit(table)
        .estimate()
    )
    pairwise = select_model(table, criterion="bic", max_order=2)
    threeway = select_model(table, criterion="bic", max_order=3)
    return table, independence, pairwise, threeway


def test_ablation_term_order(benchmark, bench_pipeline, bench_internet,
                             last_window):
    table, independence, pairwise, threeway = benchmark.pedantic(
        run, args=(bench_pipeline, last_window), rounds=1, iterations=1
    )
    truth = bench_internet.truth_used_addresses(
        last_window.start, last_window.end
    )
    rows = []
    for label, est, num_terms in [
        ("independence", independence, table.num_sources),
        ("stepwise pairwise", pairwise.fit.estimate(),
         len(pairwise.fit.terms)),
        ("stepwise + 3-way", threeway.fit.estimate(),
         len(threeway.fit.terms)),
    ]:
        rows.append([
            label,
            num_terms,
            fmt_real_millions(est.population, BENCH_SCALE),
            f"{100 * (est.population - truth) / truth:+.1f}%",
        ])
    rows.append(["truth", "-", fmt_real_millions(truth, BENCH_SCALE), ""])
    print()
    print(format_table(
        ["model", "terms", "estimate [M]", "error"],
        rows,
        title="Ablation — model complexity vs estimate quality",
    ))

    pw_est = pairwise.fit.estimate().population
    tw_est = threeway.fit.estimate().population
    ind_est = independence.population
    # Interaction terms matter: the selected model beats independence.
    assert abs(pw_est - truth) < abs(ind_est - truth)
    # Pairwise terms were actually selected.
    assert len(pairwise.fit.terms) > table.num_sources
    # Adding three-way terms does not blow the estimate up: it stays
    # within a modest factor of the pairwise answer (over-fitting is
    # contained by the IC + divisor heuristics).
    assert 0.6 * pw_est < tw_est < 1.6 * pw_est
