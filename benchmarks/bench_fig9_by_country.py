"""Figure 9 — yearly address growth by country (largest countries).

Stratifies by country, keeps the countries with enough observed
addresses (the paper's >= 1.5 M cut, rescaled), and checks the shape:
US and CN lead in absolute growth and the configured fast growers
(BR, RO, VN, ...) beat the mature markets in relative growth.
"""

import numpy as np

from repro.analysis.growth import stratified_yearly_growth
from repro.analysis.report import fmt_real_millions, format_table
from benchmarks.conftest import BENCH_SCALE

#: The paper's 1.5 M-observed cut, at simulation scale.
MIN_OBSERVED = 1.5e6 * BENCH_SCALE


def test_fig9_by_country(benchmark, bench_pipeline, first_window,
                         last_window):
    rows = benchmark.pedantic(
        stratified_yearly_growth,
        args=(bench_pipeline, "country", first_window, last_window),
        kwargs={"min_observed": MIN_OBSERVED},
        rounds=1, iterations=1,
    )
    rows = [r for r in rows if r.label != "??"]
    rows.sort(key=lambda r: -r.estimated_per_year)
    printable = [
        [
            r.label,
            fmt_real_millions(r.estimated_last, BENCH_SCALE),
            fmt_real_millions(r.estimated_per_year, BENCH_SCALE),
            f"{r.estimated_relative:.0f}%",
        ]
        for r in rows[:20]
    ]
    print()
    print(format_table(
        ["country", "est Jun'14[M]", "growth[M/yr]", "rel growth/yr"],
        printable,
        title="Figure 9 — yearly growth by country, top 20 by absolute "
              "growth (real-equivalent millions)",
    ))

    by_code = {r.label: r for r in rows}
    assert len(rows) >= 10
    # US and CN lead absolute growth (the two largest holdings).
    top4 = [r.label for r in rows[:4]]
    assert "US" in top4 and "CN" in top4
    # Fast growers beat mature markets in relative terms where present.
    fast = [c for c in ("BR", "RO", "VN", "ID", "CO") if c in by_code]
    slow = [c for c in ("DE", "JP", "SE", "NL") if c in by_code]
    assert fast and slow
    fast_rel = np.nanmedian([by_code[c].estimated_relative for c in fast])
    slow_rel = np.nanmedian([by_code[c].estimated_relative for c in slow])
    assert fast_rel > slow_rel
