"""Ablation — log-linear models vs the classical baselines.

The paper argues Lincoln-Petersen's assumptions fail for IPv4 sources
and uses log-linear models instead.  With simulation ground truth we
can quantify that argument: on the full nine-source window, compare the
observed union, the best/worst two-source L-P estimates, Chao's lower
bound and the selected LLM against the truth.
"""

from itertools import combinations

import numpy as np

from repro.analysis.report import fmt_real_millions, format_table
from repro.core.chao import chao_estimate
from repro.core.histories import tabulate_histories
from repro.core.lincoln_petersen import (
    CaptureRecaptureError,
    lincoln_petersen_from_sets,
)
from repro.ipspace.ipset import IPSet
from benchmarks.conftest import BENCH_SCALE


def run(pipeline, window, truth):
    datasets = pipeline.datasets(window)
    union = len(IPSet.empty().union(*datasets.values()))
    lp_estimates = {}
    for a, b in combinations(datasets, 2):
        try:
            lp = lincoln_petersen_from_sets(datasets[a], datasets[b])
        except CaptureRecaptureError:
            continue
        lp_estimates[(a, b)] = lp.population
    table = tabulate_histories(datasets)
    chao = chao_estimate(table).population
    llm = pipeline.run_window(window).estimated_addresses
    return union, lp_estimates, chao, llm


def test_ablation_baselines(benchmark, bench_pipeline, bench_internet,
                            last_window):
    truth = bench_internet.truth_used_addresses(
        last_window.start, last_window.end
    )
    union, lp_estimates, chao, llm = benchmark.pedantic(
        run, args=(bench_pipeline, last_window, truth), rounds=1, iterations=1
    )
    lp_values = np.array(list(lp_estimates.values()))
    best_pair = min(lp_estimates, key=lambda k: abs(lp_estimates[k] - truth))
    rows = [
        ["observed union", fmt_real_millions(union, BENCH_SCALE),
         f"{100 * (union - truth) / truth:+.0f}%"],
        ["L-P median (36 pairs)",
         fmt_real_millions(float(np.median(lp_values)), BENCH_SCALE),
         f"{100 * (np.median(lp_values) - truth) / truth:+.0f}%"],
        [f"L-P best pair {best_pair}",
         fmt_real_millions(lp_estimates[best_pair], BENCH_SCALE),
         f"{100 * (lp_estimates[best_pair] - truth) / truth:+.0f}%"],
        ["Chao lower bound", fmt_real_millions(chao, BENCH_SCALE),
         f"{100 * (chao - truth) / truth:+.0f}%"],
        ["log-linear (paper)", fmt_real_millions(llm, BENCH_SCALE),
         f"{100 * (llm - truth) / truth:+.0f}%"],
        ["truth", fmt_real_millions(truth, BENCH_SCALE), ""],
    ]
    print()
    print(format_table(
        ["estimator", "estimate [M]", "error"],
        rows,
        title="Ablation — estimator baselines vs ground truth "
              "(real-equivalent millions)",
    ))

    # The LLM beats the observed union, the typical L-P pair and Chao.
    assert abs(llm - truth) < abs(union - truth)
    assert abs(llm - truth) < abs(float(np.median(lp_values)) - truth)
    assert abs(llm - truth) < abs(chao - truth)
    # Typical L-P underestimates (positive apparent dependence).
    assert np.median(lp_values) < truth
