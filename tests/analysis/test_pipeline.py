"""End-to-end pipeline behaviour (paper-shape assertions)."""

import pytest

from repro.analysis.pipeline import EstimationPipeline, PipelineOptions
from repro.analysis.windows import TimeWindow


class TestWindowResult:
    def test_ordering_of_magnitudes(self, last_window_result):
        r = last_window_result
        # ping <= observed <= estimated; everything below routed.
        assert r.ping_addresses <= r.observed_addresses
        assert r.observed_addresses <= r.estimated_addresses
        assert r.estimated_addresses <= r.routed_addresses
        assert r.ping_subnets <= r.observed_subnets <= r.routed_subnets

    def test_estimate_tracks_truth(self, last_window_result):
        """The headline result: the LLM estimate is far closer to the
        truth than the observed count is."""
        r = last_window_result
        obs_gap = abs(r.truth_addresses - r.observed_addresses)
        est_gap = abs(r.truth_addresses - r.estimated_addresses)
        assert est_gap < 0.5 * obs_gap

    def test_est_over_ping_ratio(self, last_window_result):
        """Paper: estimated/pinged = 2.6-2.7 (>> Heidemann's 1.86)."""
        ratio = (
            last_window_result.estimated_addresses
            / last_window_result.ping_addresses
        )
        assert 2.0 < ratio < 4.0

    def test_subnet_estimate_small_correction(self, last_window_result):
        """Paper: /24 estimates only ~1-10 % above observed."""
        r = last_window_result
        ratio = r.estimated_subnets / r.observed_subnets
        assert 1.0 <= ratio < 1.2

    def test_address_correction_large(self, last_window_result):
        """Paper: address estimates 50-60 % above observed."""
        r = last_window_result
        assert r.estimated_addresses > 1.25 * r.observed_addresses

    def test_result_cached(self, tiny_pipeline, last_window):
        assert tiny_pipeline.run_window(last_window) is (
            tiny_pipeline.run_window(last_window)
        )


class TestPipelineConfig:
    def test_exclude_sources(self, tiny_internet):
        pipeline = EstimationPipeline(
            tiny_internet,
            options=PipelineOptions(exclude_sources=("SWIN", "CALT")),
        )
        window = TimeWindow(2013.5, 2014.5)
        datasets = pipeline.datasets(window)
        assert "SWIN" not in datasets and "CALT" not in datasets
        assert "IPING" in datasets

    def test_early_window_lacks_late_sources(self, tiny_pipeline,
                                             first_window):
        datasets = tiny_pipeline.datasets(first_window)
        assert "CALT" not in datasets
        assert "SPAM" not in datasets
        assert "TPING" not in datasets
        assert "IPING" in datasets

    def test_estimators_expose_options(self, tiny_pipeline, last_window):
        est = tiny_pipeline.address_estimator(last_window)
        assert est.options.criterion == "bic"
        assert est.options.limit is not None


class TestStratifiedViews:
    @pytest.mark.parametrize("kind", ["rir", "industry", "dynamic"])
    def test_stratified_total_consistent(self, tiny_pipeline, last_window,
                                         last_window_result, kind):
        """Table 5's observation: totals are stable across
        stratifications (within ~15 % of the unstratified estimate)."""
        strat = tiny_pipeline.stratified_addresses(last_window, kind)
        plain = last_window_result.estimated_addresses
        assert strat.population == pytest.approx(plain, rel=0.15)

    def test_stratified_observed_matches_union(self, tiny_pipeline,
                                               last_window,
                                               last_window_result):
        strat = tiny_pipeline.stratified_addresses(last_window, "rir")
        assert strat.observed == last_window_result.observed_addresses

    def test_stratified_subnets(self, tiny_pipeline, last_window,
                                last_window_result):
        strat = tiny_pipeline.stratified_subnets(last_window, "rir")
        assert strat.population == pytest.approx(
            last_window_result.estimated_subnets, rel=0.15
        )

    def test_rir_strata_sizes_ordered(self, tiny_pipeline, last_window):
        """APNIC/ARIN/RIPE dwarf AfriNIC in used addresses (Fig 6)."""
        from repro.registry.rir import RIR

        strat = tiny_pipeline.stratified_addresses(last_window, "rir")
        pops = {label: s.population for label, s in strat.strata.items()}
        assert pops[int(RIR.AFRINIC)] < pops[int(RIR.APNIC)]
        assert pops[int(RIR.AFRINIC)] < pops[int(RIR.ARIN)]
        assert pops[int(RIR.AFRINIC)] < pops[int(RIR.RIPE)]
