"""FIB accounting (7.2.1) and market valuation (Section 8)."""

import numpy as np
import pytest

from repro.analysis.fib import (
    FIB_CAPACITY_2007,
    FIB_CAPACITY_FEASIBLE,
    forecast_fib,
    routable_unused_prefixes,
)
from repro.analysis.market import (
    MarketValuation,
    value_unused_space,
    value_unused_subnets,
)
from repro.ipspace.blocks import NUM_LEVELS


class TestFib:
    def make_vacancy(self, **levels):
        vac = np.zeros(NUM_LEVELS)
        for length, count in levels.items():
            vac[int(length.lstrip("l"))] = count
        return vac

    def test_routable_counts_only_24_or_larger(self):
        vac = self.make_vacancy(l8=2, l16=10, l24=100, l25=50, l32=1000)
        assert routable_unused_prefixes(vac) == 112

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            routable_unused_prefixes(np.zeros(5))

    def test_paper_arithmetic(self):
        """0.78 M unused + 0.5 M current fits the 2 M FIB."""
        vac = self.make_vacancy(l24=780_000)
        forecast = forecast_fib(vac, current_routes=500_000)
        assert forecast.total_routes == 1_280_000
        assert forecast.fits_current_hardware
        assert forecast.fits_feasible_hardware
        assert forecast.utilisation == pytest.approx(1_280_000 / 2_000_000)

    def test_overflow_detected(self):
        vac = self.make_vacancy(l24=3_000_000)
        forecast = forecast_fib(vac, current_routes=500_000)
        assert not forecast.fits_current_hardware
        assert forecast.fits_feasible_hardware
        assert FIB_CAPACITY_2007 < forecast.total_routes < (
            FIB_CAPACITY_FEASIBLE
        )

    def test_negative_routes_rejected(self):
        with pytest.raises(ValueError):
            forecast_fib(np.zeros(NUM_LEVELS), current_routes=-1)


class TestMarket:
    def test_paper_valuation(self):
        """4.4 M unused /24s at US$10/IP ~ US$11 B."""
        valuation = value_unused_subnets(4.4e6)
        assert valuation.mid == pytest.approx(11.3e9, rel=0.02)
        assert valuation.low < valuation.mid < valuation.high

    def test_price_band(self):
        v = value_unused_space(1000)
        assert v.low == 8_000 and v.mid == 10_000 and v.high == 17_000

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            value_unused_space(-1)
        with pytest.raises(ValueError):
            value_unused_space(10, price_low=5, price_avg=3, price_high=9)

    def test_describe(self):
        v = MarketValuation(addresses=1.1e9, low=9e9, mid=11e9, high=19e9)
        text = v.describe()
        assert "11.0 B" in text and "1100 M" in text
