"""Supply runout prediction (Table 6)."""

import math

import pytest

from repro.analysis.supply import SupplyRow, supply_by_rir, world_supply
from repro.analysis.windows import TimeWindow
from repro.registry.rir import RIR


@pytest.fixture(scope="module")
def supply_rows(tiny_pipeline):
    return supply_by_rir(
        tiny_pipeline,
        TimeWindow(2011.0, 2012.0),
        TimeWindow(2013.5, 2014.5),
    )


class TestSupplyRows:
    def test_all_rirs_present(self, supply_rows):
        assert {r.label for r in supply_rows} == {r.name for r in RIR}

    def test_available_nonnegative(self, supply_rows):
        assert all(r.available >= 0 for r in supply_rows)

    def test_runout_after_now(self, supply_rows):
        for row in supply_rows:
            assert row.runout_year > 2014.5

    def test_regional_pressure_ordering(self, supply_rows):
        """The paper's pressure points: APNIC and LACNIC run out well
        before ARIN."""
        by_label = {r.label: r for r in supply_rows}
        arin = by_label["ARIN"].runout_year
        assert by_label["APNIC"].runout_year < arin
        assert by_label["LACNIC"].runout_year < arin

    def test_utilisation_cap_tightens_runout(self, tiny_pipeline):
        full = supply_by_rir(
            tiny_pipeline,
            TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5),
        )
        capped = supply_by_rir(
            tiny_pipeline,
            TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5),
            utilisation_cap=0.75,
        )
        for f, c in zip(full, capped):
            assert c.available <= f.available
            assert c.runout_year <= f.runout_year

    def test_invalid_cap_rejected(self, tiny_pipeline):
        with pytest.raises(ValueError):
            supply_by_rir(
                tiny_pipeline,
                TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5),
                utilisation_cap=0.0,
            )

    def test_subnet_level(self, tiny_pipeline):
        rows = supply_by_rir(
            tiny_pipeline,
            TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5),
            level="subnets",
        )
        assert len(rows) == 5
        assert all(r.available > 0 for r in rows)


class TestWorld:
    def test_world_aggregates(self, supply_rows):
        world = world_supply(supply_rows, now=2014.5)
        assert world.label == "World"
        assert world.available == pytest.approx(
            sum(r.available for r in supply_rows)
        )
        assert world.growth_per_year == pytest.approx(
            sum(r.growth_per_year for r in supply_rows)
        )

    def test_zero_growth_never_runs_out(self):
        row = SupplyRow("X", available=100.0, growth_per_year=0.0,
                        runout_year=math.inf)
        assert SupplyRow.runout(2014.5, 100.0, 0.0) == math.inf
        assert row.runout_year == math.inf
