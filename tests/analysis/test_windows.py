"""Observation-window machinery."""

import pytest

from repro.analysis.windows import TimeWindow, standard_windows


class TestTimeWindow:
    def test_length_and_midpoint(self):
        w = TimeWindow(2011.0, 2012.0)
        assert w.length == 1.0
        assert w.midpoint == 2011.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow(2012.0, 2012.0)

    def test_ordering(self):
        assert TimeWindow(2011.0, 2012.0) < TimeWindow(2011.25, 2012.25)

    @pytest.mark.parametrize(
        "end,label",
        [(2012.0, "Dec 2011"), (2012.25, "Mar 2012"),
         (2012.5, "Jun 2012"), (2012.75, "Sep 2012"),
         (2014.5, "Jun 2014")],
    )
    def test_labels(self, end, label):
        assert TimeWindow(end - 1.0, end).label() == label


class TestStandardWindows:
    def test_eleven_windows(self):
        windows = standard_windows()
        assert len(windows) == 11

    def test_paper_boundaries(self):
        windows = standard_windows()
        assert windows[0] == TimeWindow(2011.0, 2012.0)
        assert windows[-1] == TimeWindow(2013.5, 2014.5)

    def test_quarterly_steps(self):
        windows = standard_windows()
        steps = [b.start - a.start for a, b in zip(windows, windows[1:])]
        assert all(abs(s - 0.25) < 1e-9 for s in steps)

    def test_all_twelve_months(self):
        assert all(abs(w.length - 1.0) < 1e-9 for w in standard_windows())
