"""Block-level usage analytics."""

import numpy as np
import pytest

from repro.analysis.block_usage import block_usage_profile
from repro.ipspace.ipset import IPSet


def dataset_from_blocks(block_sizes):
    """A dataset with given per-/24 occupancies."""
    addrs = []
    for i, size in enumerate(block_sizes):
        base = i * 256
        addrs.extend(base + b for b in range(size))
    return IPSet(np.array(addrs, dtype=np.uint32))


class TestProfile:
    def test_counts(self):
        profile = block_usage_profile(dataset_from_blocks([3, 10, 200]))
        assert profile.num_blocks == 3
        assert profile.num_addresses == 213
        assert list(profile.occupancy) == [3, 10, 200]
        assert profile.mean_per_block == pytest.approx(71.0)
        assert profile.median_per_block == 10.0

    def test_fractions(self):
        profile = block_usage_profile(dataset_from_blocks([1, 1, 50, 200]))
        assert profile.fraction_below(2) == 0.5
        assert profile.fraction_dense(128) == 0.25

    def test_empty_dataset(self):
        profile = block_usage_profile(IPSet.empty())
        assert profile.num_blocks == 0
        assert profile.gini() == 0.0
        assert profile.fraction_below(5) == 0.0

    def test_gini_uniform_is_zero(self):
        profile = block_usage_profile(dataset_from_blocks([50] * 10))
        assert profile.gini() == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_is_high(self):
        profile = block_usage_profile(dataset_from_blocks([1] * 9 + [250]))
        assert profile.gini() > 0.7

    def test_histogram_sums_to_blocks(self):
        profile = block_usage_profile(
            dataset_from_blocks([1, 3, 7, 20, 100, 250])
        )
        hist = profile.histogram()
        assert sum(count for _, count in hist) == profile.num_blocks


class TestSimulatorShape:
    def test_simulated_truth_is_bimodal(self, tiny_internet):
        """The simulator reproduces the Cai & Heidemann shape: many
        sparse /24s, a dense pool mode, strong inequality."""
        truth = tiny_internet.population.used_ipset(2013.5, 2014.5)
        profile = block_usage_profile(truth)
        assert profile.fraction_below(32) > 0.15  # sparse mode
        assert profile.fraction_dense(128) > 0.25  # dense mode
        assert profile.gini() > 0.25
        # Mean per used /24 near the paper-implied ~190... at least
        # clearly above 100.
        assert profile.mean_per_block > 100

    def test_observed_sparser_than_truth(self, tiny_pipeline, tiny_internet,
                                         last_window):
        """Sources undersample inside blocks, so observed occupancy
        sits below the truth's."""
        datasets = tiny_pipeline.datasets(last_window)
        union = datasets["IPING"]
        observed = block_usage_profile(union)
        truth = block_usage_profile(
            tiny_internet.population.used_ipset(
                last_window.start, last_window.end
            )
        )
        assert observed.mean_per_block < truth.mean_per_block
