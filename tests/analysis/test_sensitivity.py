"""Leave-one-source-out sensitivity."""

import pytest

from repro.analysis.sensitivity import leave_one_out_sensitivity
from repro.core.estimator import EstimatorOptions
from repro.ipspace.ipset import IPSet
from tests.conftest import make_independent_sources


class TestSensitivity:
    def test_basic_report(self, rng):
        _, sources = make_independent_sources(
            rng, 20_000, [0.3, 0.35, 0.25, 0.3]
        )
        report = leave_one_out_sensitivity(sources)
        assert len(report.rows) == 4
        assert report.baseline > 0
        for row in report.rows:
            assert row.estimate_without > 0

    def test_independent_sources_robust(self, rng):
        """Dropping any one of four independent sources barely moves
        the estimate."""
        _, sources = make_independent_sources(
            rng, 30_000, [0.3, 0.35, 0.25, 0.3]
        )
        report = leave_one_out_sensitivity(sources)
        assert report.is_robust(threshold=0.1)

    def test_pivotal_source_detected(self, rng):
        """A source that uniquely covers half the population has high
        leverage: without it the estimate collapses."""
        import numpy as np

        N = 30_000
        pop = np.sort(rng.choice(2**30, N, replace=False)).astype(np.uint32)
        visible = rng.random(N) < 0.5  # half the population
        sources = {
            # Two ordinary sources only ever see the visible half...
            "a": IPSet.from_sorted_unique(
                pop[visible & (rng.random(N) < 0.6)]
            ),
            "b": IPSet.from_sorted_unique(
                pop[visible & (rng.random(N) < 0.6)]
            ),
            # ...and one census sees everyone.
            "census": IPSet.from_sorted_unique(pop[rng.random(N) < 0.7]),
        }
        report = leave_one_out_sensitivity(
            sources, EstimatorOptions(criterion="aic", divisor=1)
        )
        assert report.max_leverage().source == "census"
        assert not report.is_robust(threshold=0.15)

    def test_needs_three_sources(self, rng):
        _, sources = make_independent_sources(rng, 1_000, [0.5, 0.5])
        with pytest.raises(ValueError):
            leave_one_out_sensitivity(sources)

    def test_pipeline_estimate_is_robust(self, tiny_pipeline, last_window):
        """The nine-source pipeline estimate does not hinge on any
        single dataset (the paper's diversity argument)."""
        datasets = tiny_pipeline.datasets(last_window)
        report = leave_one_out_sensitivity(datasets)
        assert report.is_robust(threshold=0.3)
