"""Growth-series extraction."""

import numpy as np
import pytest

from repro.analysis.growth import (
    linear_growth_per_year,
    normalized,
    series_from_results,
    stratified_yearly_growth,
)
from repro.analysis.windows import TimeWindow


@pytest.fixture(scope="module")
def three_window_results(tiny_pipeline):
    windows = [
        TimeWindow(2011.0, 2012.0),
        TimeWindow(2012.25, 2013.25),
        TimeWindow(2013.5, 2014.5),
    ]
    return tiny_pipeline.run_all(windows)


class TestSeries:
    def test_series_alignment(self, three_window_results):
        series = series_from_results(three_window_results, "addresses")
        assert len(series.window_ends) == 3
        assert series.labels == ("Dec 2011", "Mar 2013", "Jun 2014")

    def test_growth_shapes(self, three_window_results):
        """Observed and estimated grow; estimated grows faster than
        routed in relative terms (Figures 4/5)."""
        for level in ("addresses", "subnets"):
            series = series_from_results(three_window_results, level)
            assert series.estimated[-1] > series.estimated[0]
            assert series.observed[-1] > series.observed[0]
            est_rel = series.normalized("estimated")[-1]
            routed_rel = series.normalized("routed")[-1]
            assert est_rel > routed_rel

    def test_estimated_tracks_truth_everywhere(self, three_window_results):
        series = series_from_results(three_window_results, "addresses")
        assert np.all(
            np.abs(series.estimated - series.truth) < 0.25 * series.truth
        )

    def test_unknown_level_rejected(self, three_window_results):
        with pytest.raises(ValueError):
            series_from_results(three_window_results, "hosts")

    def test_growth_per_year_positive(self, three_window_results):
        series = series_from_results(three_window_results, "addresses")
        assert series.growth_per_year("estimated") > 0


class TestHelpers:
    def test_normalized(self):
        assert list(normalized(np.array([2.0, 4.0, 6.0]))) == [1.0, 2.0, 3.0]

    def test_normalized_rejects_zero_start(self):
        with pytest.raises(ValueError):
            normalized(np.array([0.0, 1.0]))

    def test_linear_growth(self):
        times = np.array([2011.0, 2012.0, 2013.0])
        series = np.array([10.0, 20.0, 30.0])
        assert linear_growth_per_year(times, series) == pytest.approx(10.0)

    def test_linear_growth_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_growth_per_year(np.array([2011.0]), np.array([1.0]))


class TestStratifiedGrowth:
    def test_rir_growth_rows(self, tiny_pipeline):
        rows = stratified_yearly_growth(
            tiny_pipeline,
            "rir",
            TimeWindow(2011.0, 2012.0),
            TimeWindow(2013.5, 2014.5),
        )
        assert len(rows) == 5
        # Every RIR grew over the period.
        assert all(r.estimated_per_year > 0 for r in rows)

    def test_fast_regions_grow_faster(self, tiny_pipeline):
        """AfriNIC/LACNIC outpace RIPE in relative growth (Fig 6)."""
        from repro.registry.rir import RIR

        rows = {
            r.label: r
            for r in stratified_yearly_growth(
                tiny_pipeline,
                "rir",
                TimeWindow(2011.0, 2012.0),
                TimeWindow(2013.5, 2014.5),
            )
        }
        assert (
            rows[int(RIR.AFRINIC)].estimated_relative
            > rows[int(RIR.RIPE)].estimated_relative
        )

    def test_min_observed_filters(self, tiny_pipeline):
        all_rows = stratified_yearly_growth(
            tiny_pipeline, "country",
            TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5),
        )
        big_rows = stratified_yearly_growth(
            tiny_pipeline, "country",
            TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5),
            min_observed=1000,
        )
        assert len(big_rows) < len(all_rows)

    def test_windows_must_be_ordered(self, tiny_pipeline):
        with pytest.raises(ValueError):
            stratified_yearly_growth(
                tiny_pipeline, "rir",
                TimeWindow(2013.5, 2014.5), TimeWindow(2011.0, 2012.0),
            )
