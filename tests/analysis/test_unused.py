"""Section 7: unused-space prediction."""

import numpy as np
import pytest

from repro.analysis.unused import (
    build_unused_space_model,
    estimate_occupancy_ratios,
    observed_allocation_vector,
    occupancy_ratios,
    predict_allocation,
)
from repro.ipspace.blocks import NUM_LEVELS, vacant_block_histogram
from repro.ipspace.intervals import IntervalSet


class TestAllocationVector:
    def test_recovers_known_insertion(self):
        universe = IntervalSet([(0, 2**16)])
        before = vacant_block_histogram(np.array([7], dtype=np.uint32),
                                        universe)
        after = vacant_block_histogram(np.array([7, 40_000], dtype=np.uint32),
                                       universe)
        n = observed_allocation_vector(before, after)
        assert n.sum() == pytest.approx(1.0)
        # The new address fell into some single maximal vacant block.
        level = int(np.argmax(n))
        assert n[level] == pytest.approx(1.0)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            observed_allocation_vector(np.zeros(5), np.zeros(5))


class TestOccupancyRatios:
    def test_normalised_at_32(self):
        x = np.ones(NUM_LEVELS) * 10
        n = np.ones(NUM_LEVELS)
        f = occupancy_ratios(x, n)
        assert f[32] == pytest.approx(1.0)

    def test_zero_available_handled(self):
        x = np.zeros(NUM_LEVELS)
        n = np.zeros(NUM_LEVELS)
        f = occupancy_ratios(x, n)
        assert np.isfinite(f).all()


class TestPredictAllocation:
    def test_conserves_unseen_mass(self):
        x = np.zeros(NUM_LEVELS)
        x[20] = 50  # fifty vacant /20s
        f = np.ones(NUM_LEVELS)
        alloc, final = predict_allocation(x, f, unseen=1000.0)
        assert alloc.sum() == pytest.approx(1000.0, rel=1e-6)
        assert np.isfinite(final).all()

    def test_zero_unseen(self):
        x = np.ones(NUM_LEVELS)
        alloc, final = predict_allocation(x, np.ones(NUM_LEVELS), 0.0)
        assert alloc.sum() == 0
        assert np.array_equal(final, x)

    def test_negative_unseen_rejected(self):
        with pytest.raises(ValueError):
            predict_allocation(np.ones(NUM_LEVELS), np.ones(NUM_LEVELS), -5)

    def test_vacancy_never_driven_hard_negative(self):
        x = np.zeros(NUM_LEVELS)
        x[24] = 4.0
        f = np.zeros(NUM_LEVELS)
        f[24] = 1.0
        alloc, final = predict_allocation(x, f, unseen=3.0)
        assert final[24] >= 0.9  # 4 blocks, 3 addresses placed

    def test_allocations_shift_to_smaller_blocks_over_time(self):
        """As big blocks fill, later batches land in the fragments."""
        x = np.zeros(NUM_LEVELS)
        x[16] = 2.0
        f = np.ones(NUM_LEVELS)
        alloc, _ = predict_allocation(x, f, unseen=100.0)
        assert alloc[17:].sum() > 0  # fragments got used


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def model(self, tiny_pipeline, tiny_internet, last_window,
              last_window_result):
        datasets = tiny_pipeline.datasets(last_window)
        universe = tiny_internet.routing.window(
            last_window.start, last_window.end
        )
        unseen = last_window_result.estimate_addresses.unseen
        return build_unused_space_model(datasets, universe, unseen)

    def test_ratios_shape(self, model):
        assert model.ratios.shape == (NUM_LEVELS,)
        assert model.ratios[32] == pytest.approx(1.0)
        assert (model.ratios >= 0).all()

    def test_predicted_vacancy_shrinks(self, model):
        before = model.observed_unused_addresses.sum()
        after = model.estimated_unused_addresses.sum()
        assert after < before
        assert before - after == pytest.approx(model.unseen, rel=0.05)

    def test_subnet24_consistency_check(self, model, last_window_result):
        """The paper's mutual-validation: the Section 7 model's new-/24
        count is the same order as the /24 LLM's unseen estimate."""
        model_24s = model.new_subnet24_equivalent()
        llm_24s = last_window_result.estimate_subnets.unseen
        assert model_24s > 0
        if llm_24s > 10:
            assert 0.1 < model_24s / llm_24s < 10.0

    def test_estimate_ratio_estimation_requires_deltas(self, tiny_pipeline,
                                                       last_window,
                                                       tiny_internet):
        datasets = tiny_pipeline.datasets(last_window)
        universe = tiny_internet.routing.window(
            last_window.start, last_window.end
        )
        with pytest.raises(ValueError):
            estimate_occupancy_ratios(datasets, universe, deltas=())
