"""Internet-user growth model (Section 6.9)."""

import pytest

from repro.analysis.users import (
    address_growth_from_users,
    expected_growth_band,
    user_growth_per_year,
)


class TestUserGrowth:
    def test_paper_period_growth(self):
        """~250 M new users per year between 2007 and 2012."""
        growth = user_growth_per_year(2007, 2012)
        assert growth == pytest.approx(250, rel=0.15)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            user_growth_per_year(2013, 2013)


class TestAddressGrowth:
    def test_formula(self):
        # g_I = (1/H + p_E/W) g_U with H=4, W=10, p_E=0.65, g_U=200.
        expected = (1 / 4 + 0.65 / 10) * 200
        assert address_growth_from_users(200, 4, 10) == pytest.approx(expected)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            address_growth_from_users(200, 0, 10)
        with pytest.raises(ValueError):
            address_growth_from_users(200, 4, 10, employment_ratio=1.5)

    def test_band_matches_paper(self):
        """H in [2,5], W in [2,200] -> roughly 50-205 M/yr."""
        band = expected_growth_band()
        assert band.low == pytest.approx(50, rel=0.25)
        assert band.high == pytest.approx(205, rel=0.25)

    def test_paper_estimate_inside_band(self):
        """The paper's 170 M/yr CR estimate falls in the band."""
        assert expected_growth_band().contains(170)

    def test_band_ordering(self):
        band = expected_growth_band(user_growth=100)
        assert band.low < band.high
