"""Report formatting helpers."""

import pytest

from repro.analysis.report import (
    fmt_millions,
    fmt_real_millions,
    format_table,
    to_real,
)


class TestScaling:
    def test_to_real(self):
        assert to_real(100, 2.0**-10) == 102400

    def test_to_real_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            to_real(1, 0)

    def test_fmt_millions_precision(self):
        assert fmt_millions(1_234_000_000) == "1234"
        assert fmt_millions(56_700_000) == "56.7"
        assert fmt_millions(5_670_000) == "5.67"

    def test_fmt_real_millions(self):
        assert fmt_real_millions(1000, 2.0**-10) == "1.02"


class TestTable:
    def test_rendering(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1], ["beta", 22]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) == {"-"}
        assert "alpha" in lines[3] and "22" in lines[4]

    def test_column_alignment(self):
        text = format_table(["a"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[-1])
