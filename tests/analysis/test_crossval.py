"""Cross-validation machinery (Table 3, Figure 3)."""

import numpy as np
import pytest

from repro.analysis.crossval import (
    TABLE3_SETTINGS,
    cross_validate_all,
    cross_validate_source,
    sweep_selection_settings,
)


@pytest.fixture(scope="module")
def window_datasets(tiny_pipeline, last_window):
    return tiny_pipeline.datasets(last_window)


class TestCrossValidateSource:
    def test_accounting(self, window_datasets):
        result = cross_validate_source(window_datasets, "WEB")
        assert result.source == "WEB"
        assert result.universe_size == len(window_datasets["WEB"])
        assert result.observed_by_others + result.true_unseen == (
            result.universe_size
        )
        assert result.estimated_unseen >= 0

    def test_estimate_beats_observed(self, window_datasets):
        """CR's estimate of the hidden part must beat the trivial
        'nothing unseen' baseline for most sources (Fig 3's point)."""
        results = cross_validate_all(window_datasets)
        wins = sum(
            1
            for r in results
            if abs(r.estimated_unseen - r.true_unseen) < r.true_unseen
        )
        assert wins >= len(results) - 2

    def test_ping_coverage_recorded(self, window_datasets):
        result = cross_validate_source(window_datasets, "WEB")
        assert 0 < result.observed_by_ping <= result.universe_size

    def test_with_range(self, window_datasets):
        result = cross_validate_source(
            window_datasets, "WIKI", with_range=True, alpha=1e-3
        )
        assert result.range_low is not None
        assert result.range_low <= result.range_high
        low, high = result.normalised_range()
        assert 0 < low <= high

    def test_unknown_source_rejected(self, window_datasets):
        with pytest.raises(KeyError):
            cross_validate_source(window_datasets, "NOPE")

    def test_needs_three_sources(self, window_datasets):
        two = {k: window_datasets[k] for k in ("WIKI", "WEB")}
        with pytest.raises(ValueError):
            cross_validate_source(two, "WIKI")


class TestSweep:
    def test_table3_settings_shape(self):
        labels = [s[0] for s in TABLE3_SETTINGS]
        assert "AIC-fixed1" in labels
        assert "BIC-adaptive1000" in labels
        assert len(TABLE3_SETTINGS) == 7

    def test_sweep_rows(self, window_datasets):
        settings = (("AIC-fixed1", "aic", 1), ("BIC-adaptive", "bic",
                                               "adaptive1000"))
        rows = sweep_selection_settings([window_datasets], settings)
        assert [r.setting for r in rows] == ["AIC-fixed1", "BIC-adaptive"]
        for row in rows:
            assert np.isfinite(row.rmse) and np.isfinite(row.mae)
            assert row.rmse >= row.mae >= 0
