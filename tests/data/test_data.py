"""Embedded published data series."""

import numpy as np

from repro.data.historical import (
    allocated_addresses_series,
    historical_ping_series,
    routed_addresses_series,
)
from repro.data.itu import internet_users_series


class TestItu:
    def test_endpoints_match_paper(self):
        years, users = internet_users_series()
        assert years[0] == 1995 and users[0] == 16
        assert years[-1] == 2013
        assert 2700 <= users[-1] <= 2800  # ~2.75 B

    def test_monotone_growth(self):
        _, users = internet_users_series()
        assert (np.diff(users) > 0).all()

    def test_linear_regime_after_2007(self):
        """The paper: growth looks linear from 2006/2007 onwards."""
        years, users = internet_users_series()
        mask = years >= 2007
        slope, intercept = np.polyfit(years[mask], users[mask], 1)
        fitted = slope * years[mask] + intercept
        residual = np.abs(fitted - users[mask]) / users[mask]
        assert residual.max() < 0.05


class TestHistorical:
    def test_ping_series_anchors(self):
        years, pings = historical_ping_series()
        # Pryadkin 2003/04: 62 M; Heidemann 2007: 112 M.
        assert pings[0] == 62
        assert 100 <= pings[list(years).index(2007.5)] <= 120

    def test_allocation_boom_then_slowdown(self):
        """Allocations grew fast 2004-2011 then flattened (Fig 10)."""
        years, alloc = allocated_addresses_series()
        boom = (alloc[list(years).index(2011.0)] -
                alloc[list(years).index(2004.0)]) / 7
        tail = (alloc[-1] - alloc[list(years).index(2012.0)]) / 2.5
        assert boom > 2.5 * tail

    def test_routed_below_allocated(self):
        ry, routed = routed_addresses_series()
        ay, alloc = allocated_addresses_series()
        alloc_map = dict(zip(ay, alloc))
        for year, value in zip(ry, routed):
            assert value < alloc_map[year]

    def test_all_series_monotone(self):
        for series_fn in (historical_ping_series,
                          allocated_addresses_series,
                          routed_addresses_series):
            _, values = series_fn()
            assert (np.diff(values) >= 0).all()
