"""Fault injection and the executor's recovery paths.

Every scenario here drives a real failure mode — injected exceptions,
worker kills, hung tasks, corrupted spill files — through the engine
with a deterministic :class:`FaultInjector` and asserts both the
recovery (results identical to a clean run) and the accounting
(``retried`` / ``degraded`` records in the :class:`RunReport`).
"""

import pathlib

import numpy as np
import pytest

from repro.analysis.crossval import cross_validate_all
from repro.analysis.sensitivity import leave_one_out_sensitivity
from repro.analysis.windows import TimeWindow, missing_windows
from repro.engine import (
    ExecutionPolicy,
    Executor,
    FaultInjected,
    FaultInjector,
    FaultSpec,
    fan_out,
)
from repro.engine.artifacts import ArtifactCache
from repro.engine.faults import backoff_seconds
from repro.engine.report import RunReport
from repro.simnet.internet import SimulationConfig, SyntheticInternet

WINDOWS = [TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5)]

#: Fast retry schedule so failure tests don't sleep for real.
FAST = ExecutionPolicy(retries=1, backoff_base=0.001, backoff_max=0.002)


@pytest.fixture(scope="module")
def small_internet():
    """A very small Internet for whole-sweep tests (scale 2^-14)."""
    return SyntheticInternet(SimulationConfig(scale=2.0**-14, seed=99))


def _double(payload, item):
    return payload * item


class TestFaultSpec:
    def test_parse_full_form(self):
        spec = FaultSpec.parse("crossval:delay:3:2:5.0")
        assert spec == FaultSpec("crossval", "delay", index=3, count=2, seconds=5.0)

    def test_parse_defaults(self):
        spec = FaultSpec.parse("preprocess:corrupt")
        assert spec == FaultSpec("preprocess", "corrupt", index=0, count=1)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("just-a-stage")
        with pytest.raises(ValueError):
            FaultSpec.parse("fit:meltdown")

    def test_matches_counts_attempts(self):
        spec = FaultSpec("fit", "error", index=1, count=2)
        assert spec.matches("fit", 1, 0)
        assert spec.matches("fit", 1, 1)
        assert not spec.matches("fit", 1, 2)  # quiet after `count` attempts
        assert not spec.matches("fit", 0, 0)
        assert not spec.matches("tabulate", 1, 0)

    def test_wildcard_stage(self):
        spec = FaultSpec("*", "error")
        assert spec.matches("anything", 0, 0)

    def test_injector_fire_raises_in_parent(self):
        injector = FaultInjector([FaultSpec("fit", "error")])
        with pytest.raises(FaultInjected):
            injector.fire("fit", 0, 0)
        injector.fire("fit", 0, 1)  # attempt past count: no fault
        injector.fire("tabulate", 0, 0)  # other stage: no fault

    def test_kill_in_parent_degrades_to_exception(self):
        injector = FaultInjector([FaultSpec("fit", "kill")])
        with pytest.raises(FaultInjected):
            injector.fire("fit", 0, 0)  # must not os._exit the test run


class TestBackoff:
    def test_deterministic(self):
        a = backoff_seconds(0.05, 2.0, 0.25, 7, "fit", 3, 2)
        b = backoff_seconds(0.05, 2.0, 0.25, 7, "fit", 3, 2)
        assert a == b

    def test_grows_and_caps(self):
        delays = [
            backoff_seconds(0.05, 0.4, 0.0, 0, "fit", 0, attempt)
            for attempt in range(1, 7)
        ]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.05)
        assert max(delays) <= 0.4

    def test_jitter_bounded(self):
        base = backoff_seconds(0.1, 2.0, 0.0, 0, "fit", 0, 1)
        for index in range(20):
            jittered = backoff_seconds(0.1, 2.0, 0.5, 0, "fit", index, 1)
            assert base <= jittered <= base * 1.5


class TestFanOutSerial:
    def test_retry_then_succeed(self):
        report = RunReport()
        faults = FaultInjector([FaultSpec("demo", "error", index=1, count=1)])
        out = fan_out(
            2, _double, [1, 2, 3],
            report=report, stage="demo", policy=FAST, faults=faults,
        )
        assert out == [2, 4, 6]
        statuses = [(r.status, r.attempts) for r in report.records]
        assert statuses == [("ok", 1), ("retried", 2), ("ok", 1)]
        assert report.retry_count == 1

    def test_exhausted_task_degrades_to_none(self):
        report = RunReport()
        faults = FaultInjector([FaultSpec("demo", "error", index=1, count=5)])
        out = fan_out(
            2, _double, [1, 2, 3],
            report=report, stage="demo", policy=FAST, faults=faults,
        )
        assert out == [2, None, 6]
        degraded = report.degraded_records()
        assert len(degraded) == 1
        assert degraded[0].stage == "demo"
        assert "injected error" in degraded[0].error

    def test_degrade_off_raises(self):
        faults = FaultInjector([FaultSpec("demo", "error", index=0, count=5)])
        policy = ExecutionPolicy(retries=1, backoff_base=0.001, degrade=False)
        with pytest.raises(FaultInjected):
            fan_out(2, _double, [1, 2], stage="demo", policy=policy, faults=faults)

    def test_report_dict_and_summary_expose_fault_tolerance(self):
        report = RunReport()
        faults = FaultInjector([
            FaultSpec("demo", "error", index=0, count=1),
            FaultSpec("demo", "error", index=1, count=5),
        ])
        fan_out(
            2, _double, [1, 2],
            report=report, stage="demo", policy=FAST, faults=faults,
        )
        blob = report.to_dict()["fault_tolerance"]
        assert blob["retries"] == 1
        assert blob["degraded"][0]["stage"] == "demo"
        assert "degraded" in report.summary()


class TestFanOutPool:
    def test_worker_kill_recovers(self):
        report = RunReport()
        faults = FaultInjector([FaultSpec("demo", "kill", index=1, count=1)])
        out = fan_out(
            3, _double, [1, 2, 3, 4],
            workers=2, report=report, stage="demo", policy=FAST, faults=faults,
        )
        assert out == [3, 6, 9, 12]
        retried = report.retried_records()
        assert retried and all(r.stage == "demo" for r in retried)

    def test_repeat_killer_falls_back_to_serial(self):
        report = RunReport()
        faults = FaultInjector([FaultSpec("demo", "kill", index=0, count=2)])
        out = fan_out(
            3, _double, [1, 2],
            workers=2, report=report, stage="demo", policy=FAST, faults=faults,
        )
        assert out == [3, 6]
        record = next(r for r in report.records if r.key == repr(1))
        assert record.status == "retried"
        assert record.attempts == 3  # two kills + the in-parent success

    def test_hung_task_times_out_and_retries(self):
        report = RunReport()
        faults = FaultInjector(
            [FaultSpec("demo", "delay", index=0, count=1, seconds=30.0)]
        )
        policy = ExecutionPolicy(
            retries=1, backoff_base=0.001, task_timeout=0.5
        )
        out = fan_out(
            3, _double, [1, 2],
            workers=2, report=report, stage="demo", policy=policy, faults=faults,
        )
        assert out == [3, 6]
        record = next(r for r in report.records if r.key == repr(1))
        assert record.status == "retried"
        assert "exceeded" in (record.error or "")

    def test_pool_matches_serial_under_faults(self):
        def run(workers):
            faults = FaultInjector([FaultSpec("demo", "kill", index=2, count=1)])
            return fan_out(
                5, _double, [1, 2, 3, 4],
                workers=workers, stage="demo", policy=FAST, faults=faults,
            )

        assert run(1) == run(2) == [5, 10, 15, 20]


class TestExecutorStageFaults:
    def test_stage_retry_then_succeed(self, tiny_internet, tiny_sources):
        clean = Executor(tiny_internet, tiny_sources)
        expected = clean.run("tabulate", WINDOWS[0])

        faults = FaultInjector([FaultSpec("tabulate", "error", index=0, count=1)])
        engine = Executor(
            tiny_internet, tiny_sources, policy=FAST, faults=faults
        )
        table = engine.run("tabulate", WINDOWS[0])
        assert np.array_equal(table.counts, expected.counts)
        record = next(
            r for r in engine.report.records if r.stage == "tabulate"
        )
        assert record.status == "retried"
        assert record.attempts == 2

    def test_stage_exhaustion_records_failed_and_raises(
        self, tiny_internet, tiny_sources
    ):
        faults = FaultInjector([FaultSpec("tabulate", "error", index=0, count=9)])
        engine = Executor(
            tiny_internet, tiny_sources, policy=FAST, faults=faults
        )
        with pytest.raises(FaultInjected):
            engine.run("tabulate", WINDOWS[0])
        failed = [r for r in engine.report.records if r.status == "failed"]
        assert failed and failed[0].stage == "tabulate"

    def test_dependency_failure_heals_upstream(self, small_internet):
        # The first tabulate resolution exhausts its own retries, but
        # the dependent stage's retry re-resolves it (a fresh miss, so
        # a fresh fault index) and the window still completes.
        faults = FaultInjector([FaultSpec("tabulate", "error", index=0, count=9)])
        engine = Executor(small_internet, policy=FAST, faults=faults)
        results = engine.run_windows(WINDOWS, workers=1)
        assert [r.window for r in results] == WINDOWS
        statuses = {r.stage: r.status for r in engine.report.records}
        failed = [r for r in engine.report.records if r.status == "failed"]
        assert failed and failed[0].stage == "tabulate"
        assert engine.report.retried_records()
        assert statuses["window_result"] == "ok"

    def test_serial_sweep_degrades_failed_window(self, small_internet):
        # window_result itself fails on every attempt for window 0;
        # the sweep must keep going and deliver window 1.
        faults = FaultInjector(
            [FaultSpec("window_result", "error", index=0, count=9)]
        )
        engine = Executor(small_internet, policy=FAST, faults=faults)
        results = engine.run_windows(WINDOWS, workers=1)
        assert [r.window for r in results] == [WINDOWS[1]]
        assert engine.report.degraded_count == 1
        assert missing_windows(WINDOWS, results) == [WINDOWS[0]]


class TestAnalysisDegradation:
    def test_crossval_drops_degraded_fold(self, tiny_pipeline):
        datasets = tiny_pipeline.engine.datasets(WINDOWS[0])
        report = RunReport()
        faults = FaultInjector([FaultSpec("crossval", "error", index=2, count=9)])
        results = cross_validate_all(
            datasets, report=report, policy=FAST, faults=faults,
        )
        clean = cross_validate_all(datasets)
        assert len(results) == len(clean) - 1
        lost = sorted({r.source for r in clean} - {r.source for r in results})
        assert lost == [list(datasets)[2]]
        assert report.degraded_count == 1

    def test_sensitivity_needs_baseline(self, tiny_pipeline):
        datasets = tiny_pipeline.engine.datasets(WINDOWS[0])
        faults = FaultInjector([FaultSpec("sensitivity", "error", index=0, count=9)])
        with pytest.raises(RuntimeError, match="baseline"):
            leave_one_out_sensitivity(
                datasets, policy=FAST, faults=faults,
            )

    def test_sensitivity_survives_degraded_drop(self, tiny_pipeline):
        datasets = tiny_pipeline.engine.datasets(WINDOWS[0])
        faults = FaultInjector([FaultSpec("sensitivity", "error", index=1, count=9)])
        sens = leave_one_out_sensitivity(datasets, policy=FAST, faults=faults)
        assert len(sens.rows) == len(datasets) - 1


class TestSpillFaults:
    def test_injected_corruption_evicts_and_recomputes(self, tmp_path):
        from repro.engine.artifacts import MISS, ArtifactKey
        from repro.ipspace.ipset import IPSet

        faults = FaultInjector([FaultSpec("collect", "corrupt", index=0)])
        cache = ArtifactCache(
            max_bytes=64, spill_dir=tmp_path, faults=faults
        )
        key = ArtifactKey("collect", ("w",))
        value = IPSet.from_sorted_unique(np.arange(100, dtype=np.uint32))
        cache.put(key, value)
        cache.put(ArtifactKey("collect", ("w2",)), IPSet.empty())  # evict+spill
        assert cache.get(key) is MISS
        assert cache.corrupt_evictions == 1
        assert not list(tmp_path.glob(f"{key.token()}*"))


class TestFaultySweepAcceptance:
    def test_kill_and_corrupt_sweep_matches_clean_run(
        self, small_internet, tmp_path
    ):
        windows = [*WINDOWS, TimeWindow(2012.5, 2013.5)]
        clean = Executor(small_internet)
        expected = clean.run_windows(windows, workers=2)

        faults = FaultInjector([
            FaultSpec("window_result", "kill", index=1, count=1),
            FaultSpec("preprocess", "corrupt", index=0, count=1),
        ])
        cache = ArtifactCache(
            max_bytes=300_000, spill_dir=pathlib.Path(tmp_path), faults=faults
        )
        engine = Executor(
            small_internet,
            cache=cache,
            policy=ExecutionPolicy(retries=2, backoff_base=0.001),
            faults=faults,
        )
        results = engine.run_windows(windows, workers=2)

        assert [r.window for r in results] == [r.window for r in expected]
        for got, want in zip(results, expected):
            assert got.estimate_addresses.population == (
                want.estimate_addresses.population
            )
            for name in want.datasets:
                assert np.array_equal(
                    got.datasets[name].addresses, want.datasets[name].addresses
                )
        assert engine.report.retried_records()
        assert engine.report.degraded_count == 0

        # Serial re-derivation in the parent walks the spill files —
        # including the corrupted one, which must be evicted and
        # recomputed rather than parsed into a wrong estimate.
        rereads = [engine.window_result(w) for w in windows]
        for got, want in zip(rereads, expected):
            assert got.estimate_addresses.population == (
                want.estimate_addresses.population
            )
        assert cache.corrupt_evictions >= 1
