"""The persistent artifact store: canonical keys, backends, tiers.

Covers the storage-layer refactor end to end: the canonical type-tagged
key encoding (stable digests replacing the repr()-based token), the
persistent content-addressed :class:`LocalStore` (round-trips, corrupt
entries degrading to misses, gc, verify), the write-through
:class:`TieredStore`, the persistent fit-memo warm starts, and the
concurrency contract (two processes hammering one store directory).
"""

import concurrent.futures
import dataclasses
import os

import numpy as np
import pytest

from repro._canonical import (
    KEY_SCHEMA_VERSION,
    canonical_digest,
    canonical_encode,
)
from repro.analysis.windows import TimeWindow
from repro.core import fitkernel
from repro.core.histories import ContingencyTable
from repro.engine import Executor
from repro.engine.artifacts import MISS, ArtifactCache, ArtifactKey
from repro.engine.store import (
    ArtifactStore,
    FitMemoStore,
    LocalStore,
    TieredStore,
    open_store,
)
from repro.ipspace.ipset import IPSet

WINDOW = TimeWindow(2013.5, 2014.5)


def key(stage="tabulate", **params):
    return ArtifactKey(stage=stage, params=tuple(sorted(params.items())))


def ipset(n, start=0):
    return IPSet.from_sorted_unique(
        np.arange(start, start + n, dtype=np.uint32)
    )


class TestCanonicalEncoding:
    def test_deterministic(self):
        value = {"b": (1, 2.5), "a": [None, True, "x"]}
        assert canonical_encode(value) == canonical_encode(value)
        assert canonical_digest(value) == canonical_digest(value)

    def test_dict_order_independent(self):
        assert canonical_digest({"a": 1, "b": 2}) == canonical_digest(
            {"b": 2, "a": 1}
        )

    def test_type_tags_distinguish_lookalikes(self):
        # repr() would conflate several of these; the tagged encoding
        # must not.
        assert canonical_digest(1) != canonical_digest(1.0)
        assert canonical_digest(True) != canonical_digest(1)
        assert canonical_digest((1,)) != canonical_digest([1])
        assert canonical_digest("1") != canonical_digest(1)
        assert canonical_digest(b"x") != canonical_digest("x")

    def test_numpy_scalars_coerce_to_python(self):
        assert canonical_digest(np.float64(2013.5)) == canonical_digest(2013.5)
        assert canonical_digest(np.int64(7)) == canonical_digest(7)

    def test_float_encoding_is_bitwise(self):
        # 0.1 + 0.2 != 0.3 exactly: the digest must see the difference,
        # which string formatting ("0.30000000000000004" vs "0.3" at
        # different precisions) historically has not guaranteed.
        assert canonical_digest(0.1 + 0.2) != canonical_digest(0.3)

    def test_ndarray_dtype_and_shape_matter(self):
        a = np.arange(6, dtype=np.int64)
        assert canonical_digest(a) == canonical_digest(a.copy())
        assert canonical_digest(a) != canonical_digest(a.astype(np.int32))
        assert canonical_digest(a) != canonical_digest(a.reshape(2, 3))

    def test_sets_sorted_by_encoding(self):
        assert canonical_digest(frozenset({3, 1, 2})) == canonical_digest(
            frozenset({2, 3, 1})
        )
        assert canonical_digest({1, 2}) != canonical_digest(frozenset())

    def test_dataclass_tagged_by_class(self):
        @dataclasses.dataclass(frozen=True)
        class Opts:
            x: int = 1

        assert canonical_digest(Opts()) == canonical_digest(Opts())
        assert canonical_digest(Opts()) != canonical_digest({"x": 1})


class TestArtifactKeyDigest:
    def test_token_is_stage_prefixed_short_digest(self):
        k = key(window=(2011.0, 2012.0))
        assert k.token() == f"tabulate-{k.digest()[:16]}"
        assert len(k.digest()) == 64

    def test_digest_cached_and_stable(self):
        k = key(i=1)
        assert k.digest() is k.digest()
        assert k.digest() == key(i=1).digest()

    def test_params_and_stage_change_digest(self):
        assert key(i=1).digest() != key(i=2).digest()
        assert key("fit", i=1).digest() != key("tabulate", i=1).digest()

    def test_schema_version_changes_digest(self, monkeypatch):
        before = key(i=1).digest()
        monkeypatch.setattr(
            "repro.engine.artifacts.KEY_SCHEMA_VERSION",
            KEY_SCHEMA_VERSION + 1,
        )
        assert key(i=1).digest() != before


class TestLocalStoreRoundTrip:
    def test_ipset_npz_roundtrip(self, tmp_path):
        store = LocalStore(tmp_path)
        k = key(i=0)
        value = ipset(100)
        assert store.get(k) is MISS
        store.put(k, value)
        assert k in store
        restored = store.get(k)
        assert np.array_equal(restored.addresses, value.addresses)
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1

    def test_table_roundtrip(self, tmp_path):
        store = LocalStore(tmp_path)
        table = ContingencyTable(
            2, np.array([0, 5, 3, 2]), source_names=("x", "y")
        )
        store.put(key("fit"), table)
        restored = store.get(key("fit"))
        assert isinstance(restored, ContingencyTable)
        assert np.array_equal(restored.counts, table.counts)
        assert restored.source_names == ("x", "y")

    def test_mapping_roundtrip(self, tmp_path):
        store = LocalStore(tmp_path)
        sets = {"WEB": ipset(50), "IPING": ipset(30, start=500)}
        store.put(key("preprocess"), sets)
        restored = store.get(key("preprocess"))
        assert set(restored) == set(sets)
        for name in sets:
            assert np.array_equal(
                restored[name].addresses, sets[name].addresses
            )

    def test_generic_value_pickle_roundtrip(self, tmp_path):
        store = LocalStore(tmp_path)
        value = {"estimate": 1234.5, "arr": np.arange(4)}
        store.put(key("estimate"), value)
        restored = store.get(key("estimate"))
        assert restored["estimate"] == 1234.5
        assert np.array_equal(restored["arr"], np.arange(4))
        assert any(p.suffix == ".pkl" for p in store.entries())

    def test_put_is_idempotent_and_refreshes_mtime(self, tmp_path):
        store = LocalStore(tmp_path)
        k = key(i=0)
        store.put(k, ipset(10))
        (path,) = store.entries()
        os.utime(path, (1.0, 1.0))  # pretend it is ancient
        store.put(k, ipset(10))
        assert store.puts == 1
        assert store.put_skips == 1
        assert path.stat().st_mtime > 1.0

    def test_entries_live_under_versioned_stage_dirs(self, tmp_path):
        store = LocalStore(tmp_path)
        store.put(key("tabulate", i=0), ipset(10))
        (path,) = store.entries()
        assert path.parent.name == "tabulate"
        assert path.parent.parent.name == f"v{KEY_SCHEMA_VERSION}"
        assert path.stem == key("tabulate", i=0).token()

    def test_no_temp_files_left_behind(self, tmp_path):
        store = LocalStore(tmp_path)
        store.put(key(i=0), ipset(100))
        store.put(key("estimate"), {"x": 1})
        leftovers = [
            p
            for p in tmp_path.rglob("*")
            if p.is_file() and p.suffix not in (".npz", ".pkl")
        ]
        assert leftovers == []

    def test_describe_and_spec(self, tmp_path):
        store = LocalStore(tmp_path)
        assert store.describe()["backend"] == "local"
        assert store.describe()["key_schema"] == KEY_SCHEMA_VERSION
        assert store.spec() == {"path": str(tmp_path)}

    def test_is_artifact_store(self, tmp_path):
        assert isinstance(LocalStore(tmp_path), ArtifactStore)
        assert isinstance(ArtifactCache(), ArtifactStore)


class TestLocalStoreCorruption:
    """Corrupt entries degrade to recomputing misses, never bad data."""

    def put_one(self, tmp_path, observer=None, kind="npz"):
        store = LocalStore(tmp_path, observer=observer)
        k = key(i=0) if kind == "npz" else key("estimate", i=0)
        value = ipset(100) if kind == "npz" else {"x": 1.0}
        store.put(k, value)
        (path,) = store.entries()
        return store, k, path

    def test_truncated_npz_degrades_to_miss(self, tmp_path):
        store, k, path = self.put_one(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.get(k) is MISS
        assert store.corrupt_entries == 1
        assert not path.exists()
        store.put(k, ipset(100))  # recompute path is clean again
        assert store.get(k) is not MISS

    def test_bitflipped_npz_fails_checksum(self, tmp_path):
        store, k, path = self.put_one(tmp_path)
        data = bytearray(path.read_bytes())
        data[-20] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get(k) is MISS
        assert store.corrupt_entries == 1

    def test_bitflipped_pickle_fails_checksum(self, tmp_path):
        store, k, path = self.put_one(tmp_path, kind="pkl")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get(k) is MISS
        assert store.corrupt_entries == 1
        assert not path.exists()

    def test_bad_magic_pickle_rejected(self, tmp_path):
        store, k, path = self.put_one(tmp_path, kind="pkl")
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        assert store.get(k) is MISS
        assert store.corrupt_entries == 1

    def test_truncated_pickle_header_rejected(self, tmp_path):
        store, k, path = self.put_one(tmp_path, kind="pkl")
        path.write_bytes(path.read_bytes()[:3])
        assert store.get(k) is MISS
        assert store.corrupt_entries == 1

    def test_half_written_temp_file_is_invisible(self, tmp_path):
        store, k, path = self.put_one(tmp_path)
        # A writer killed mid-write leaves only a dotted temp name; the
        # entry under the final name stays intact and readable.
        junk = path.with_name(f".{path.name}.9999-0.tmp")
        junk.write_bytes(b"partial garbage")
        assert store.get(k) is not MISS
        assert junk not in list(store.entries())

    def test_corrupt_event_carries_key_and_crc(self, tmp_path):
        from repro.obs.observer import Observer

        obs = Observer()
        store, k, path = self.put_one(tmp_path, observer=obs)
        data = bytearray(path.read_bytes())
        data[-20] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get(k) is MISS
        (event,) = [
            e for e in obs.events if e["name"] == "cache.corrupt_spill"
        ]
        assert event["level"] == "warning"
        assert event["key"] == k.token()
        assert event["stage"] == k.stage
        if "stored_crc" in event:
            assert event["stored_crc"] != event["computed_crc"]

    def test_without_observer_falls_back_to_logging(self, tmp_path, caplog):
        import logging

        store, k, path = self.put_one(tmp_path)
        path.write_bytes(path.read_bytes()[:10])
        with caplog.at_level(logging.WARNING, logger="repro.engine.store"):
            assert store.get(k) is MISS
        assert "cache.corrupt_spill" in caplog.text


class TestLocalStoreMaintenance:
    def fill(self, tmp_path, n=4):
        store = LocalStore(tmp_path)
        for i in range(n):
            store.put(key(i=i), ipset(100, start=i * 1000))
        return store

    def test_usage_scans_entries(self, tmp_path):
        store = self.fill(tmp_path)
        usage = store.usage()
        assert usage["entries"] == 4
        assert usage["bytes"] > 0
        assert usage["stages"] == {"tabulate": 4}

    def test_gc_by_age(self, tmp_path):
        store = self.fill(tmp_path)
        for path in list(store.entries())[:2]:
            os.utime(path, (1.0, 1.0))
        summary = store.gc(max_age=3600.0)
        assert summary["removed"] == 2
        assert summary["kept"] == 2

    def test_gc_by_size_drops_oldest_first(self, tmp_path):
        store = self.fill(tmp_path)
        paths = list(store.entries())
        sizes = {p: p.stat().st_size for p in paths}
        for age, path in enumerate(paths):
            os.utime(path, (1000.0 + age, 1000.0 + age))
        keep_bytes = sizes[paths[-1]] + sizes[paths[-2]]
        summary = store.gc(max_bytes=keep_bytes)
        assert summary["removed"] == 2
        survivors = set(store.entries())
        assert survivors == set(paths[-2:])  # newest mtimes survive

    def test_gc_sweeps_stale_temp_files(self, tmp_path):
        store = self.fill(tmp_path, n=1)
        (path,) = store.entries()
        stale = path.with_name(f".{path.name}.1-0.tmp")
        stale.write_bytes(b"junk")
        os.utime(stale, (1.0, 1.0))
        fresh = path.with_name(f".{path.name}.1-1.tmp")
        fresh.write_bytes(b"junk")  # a live writer: must survive
        summary = store.gc()
        assert summary["tmp_removed"] == 1
        assert not stale.exists() and fresh.exists()

    def test_verify_finds_and_deletes_corrupt(self, tmp_path):
        store = self.fill(tmp_path)
        victim = list(store.entries())[1]
        data = bytearray(victim.read_bytes())
        data[-20] ^= 0xFF
        victim.write_bytes(bytes(data))
        summary = store.verify()
        assert summary["checked"] == 4
        assert summary["corrupt"] == 1
        assert summary["corrupt_paths"] == [str(victim)]
        assert victim.exists()  # verify without delete is read-only
        summary = store.verify(delete=True)
        assert summary["deleted"] == 1
        assert not victim.exists()
        assert store.verify() == {
            "checked": 3, "corrupt": 0, "corrupt_paths": [], "deleted": 0,
        }


class TestTieredStore:
    def test_put_lands_in_both_tiers(self, tmp_path):
        store = open_store(tmp_path)
        store.put(key(i=0), ipset(10))
        assert key(i=0) in store.memory
        assert key(i=0) in store.persistent

    def test_get_promotes_persistent_hit_to_memory(self, tmp_path):
        seeded = LocalStore(tmp_path)
        seeded.put(key(i=0), ipset(10))
        store = open_store(tmp_path)
        assert store.get(key(i=0)) is not MISS
        assert store.last_hit_tier == "persistent"
        assert store.get(key(i=0)) is not MISS
        assert store.last_hit_tier == "memory"

    def test_miss_clears_last_hit_tier(self, tmp_path):
        store = open_store(tmp_path)
        store.put(key(i=0), ipset(10))
        store.get(key(i=0))
        assert store.get(key(i=99)) is MISS
        assert store.last_hit_tier is None

    def test_stats_merge_tiers_under_prefixes(self, tmp_path):
        store = open_store(tmp_path)
        store.put(key(i=0), ipset(10))
        store.get(key(i=0))
        store.get(key(i=1))
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["persistent_puts"] == 1
        assert stats["persistent_misses"] == 1  # the key(i=1) fall-through
        assert "fitmemo_puts" in stats

    def test_spec_rebuilds_equivalent_store(self, tmp_path):
        store = open_store(tmp_path, memory_bytes=12345)
        spec = store.spec()
        rebuilt = open_store(**spec)
        assert isinstance(rebuilt, TieredStore)
        assert rebuilt.persistent.root == store.persistent.root
        assert rebuilt.memory.max_bytes == 12345

    def test_observer_propagates_to_tiers(self, tmp_path):
        from repro.obs.observer import Observer

        store = open_store(tmp_path)
        obs = Observer()
        store.observer = obs
        assert store.memory.observer is obs
        assert store.persistent.observer is obs
        assert store.fitmemo.observer is obs

    def test_describe_nests_backends(self, tmp_path):
        desc = open_store(tmp_path).describe()
        assert desc["backend"] == "tiered"
        assert desc["persistent"]["path"] == str(tmp_path)


class TestFitMemoStore:
    SPEC = dict(
        num_sources=3,
        terms=frozenset({frozenset({0}), frozenset({1}), frozenset({2})}),
        counts=np.arange(8, dtype=np.int64),
        distribution="poisson",
        limit=None,
        divisor=4,
    )

    def test_roundtrip(self, tmp_path):
        memo = FitMemoStore(tmp_path)
        coef = np.array([1.0, -0.5, 0.25, 0.125])
        assert memo.lookup(**self.SPEC) is None
        memo.store(coef, **self.SPEC)
        restored = memo.lookup(**self.SPEC)
        assert np.array_equal(restored, coef)

    def test_exact_digest_match_only(self, tmp_path):
        memo = FitMemoStore(tmp_path)
        memo.store(np.ones(4), **self.SPEC)
        for change in (
            {"divisor": 8},
            {"distribution": "truncated"},
            {"limit": 100.0},
            {"counts": np.arange(8, dtype=np.int64) + 1},
        ):
            assert memo.lookup(**{**self.SPEC, **change}) is None


# -- two-process hammer -------------------------------------------------------

#: (key index -> deterministic value) — both processes write identical
#: values per key, so any write interleaving must yield readable data.
HAMMER_KEYS = 8


def _hammer_worker(args):
    """Write/read loop over a shared store; returns observed anomalies."""
    root, rounds = args
    store = LocalStore(root)
    anomalies = 0
    for i in range(rounds):
        idx = i % HAMMER_KEYS
        k = key(i=idx)
        value = ipset(50 + idx, start=idx * 1000)
        store.put(k, value)
        got = store.get(k)
        if got is MISS or not np.array_equal(got.addresses, value.addresses):
            anomalies += 1
    return anomalies


class TestConcurrentStoreAccess:
    def test_two_processes_hammer_one_store(self, tmp_path):
        """Two processes writing the same store directory never clobber
        each other: every read returns intact data and no temp files or
        corrupt entries survive."""
        rounds = 50
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            results = list(
                pool.map(
                    _hammer_worker,
                    [(str(tmp_path), rounds), (str(tmp_path), rounds)],
                )
            )
        assert results == [0, 0]
        store = LocalStore(tmp_path)
        usage = store.usage()
        assert usage["entries"] == HAMMER_KEYS
        summary = store.verify()
        assert summary["corrupt"] == 0
        leftovers = [
            p
            for p in tmp_path.rglob("*")
            if p.is_file() and p.suffix not in (".npz", ".pkl")
        ]
        assert leftovers == []


class TestWarmRunIntegration:
    """Second run against a warm store: identical results, no recompute."""

    def test_warm_window_is_bit_identical_and_persistent_hit(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        cold_ex = Executor(
            tiny_internet, tiny_sources, cache=open_store(tmp_path / "store")
        )
        cold = cold_ex.window_result(WINDOW)
        assert cold_ex.report.cache_misses > 0  # actually computed

        warm_ex = Executor(
            tiny_internet, tiny_sources, cache=open_store(tmp_path / "store")
        )
        warm = warm_ex.window_result(WINDOW)
        assert warm.estimate_addresses == cold.estimate_addresses
        assert warm.estimate_subnets == cold.estimate_subnets
        assert warm_ex.report.cache_hits == 1
        assert warm_ex.report.cache_misses == 0
        assert warm_ex.report.hit_tiers() == {"persistent": 1}
        (record,) = warm_ex.report.records
        assert record.tier == "persistent"

    def test_fitmemo_seeds_final_refit(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        store_dir = tmp_path / "store"
        cold_ex = Executor(
            tiny_internet, tiny_sources, cache=open_store(store_dir)
        )
        cold_fit = cold_ex.run("fit", WINDOW)
        assert cold_ex.cache.stats()["fitmemo_puts"] >= 1

        # Drop the fit artifact (keeping the fit-memo entries) so the
        # second run actually refits — now seeded at the answer.
        warm_ex = Executor(
            tiny_internet, tiny_sources, cache=open_store(store_dir)
        )
        for path in (store_dir / f"v{KEY_SCHEMA_VERSION}" / "fit").iterdir():
            path.unlink()
        before = fitkernel.snapshot().warm_store_hits
        warm_fit = warm_ex.run("fit", WINDOW)
        assert fitkernel.snapshot().warm_store_hits > before
        # Seeded-at-the-answer IRLS still runs to convergence, so the
        # coefficients agree to float tolerance rather than bitwise
        # (same contract as the in-process warm starts).
        assert np.allclose(
            warm_fit.fit.coef, cold_fit.fit.coef, rtol=1e-8, atol=1e-10
        )

    def test_storeless_executor_clears_warm_store(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        Executor(
            tiny_internet, tiny_sources, cache=open_store(tmp_path / "store")
        )
        assert fitkernel.get_warm_store() is not None
        Executor(tiny_internet, tiny_sources)
        assert fitkernel.get_warm_store() is None


class TestWorkerStoreSharing:
    def test_pool_workers_write_shared_store(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        windows = [TimeWindow(2011.0, 2012.0), WINDOW]
        ex = Executor(
            tiny_internet, tiny_sources, cache=open_store(tmp_path / "store")
        )
        results = ex.run_windows(windows, workers=2)
        assert len(results) == 2
        # The workers computed the windows and wrote them through to the
        # shared persistent directory; the parent's own put then skips.
        stage_dirs = {
            p.name
            for p in (tmp_path / "store" / f"v{KEY_SCHEMA_VERSION}").iterdir()
        }
        assert "window_result" in stage_dirs
        assert "fit" in stage_dirs
        assert ex.cache.stats()["persistent_put_skips"] >= 2

        serial = Executor(tiny_internet, tiny_sources).run_windows(windows)
        for parallel_result, serial_result in zip(results, serial):
            assert (
                parallel_result.estimate_addresses
                == serial_result.estimate_addresses
            )
