"""Executor behaviour: cache keys, determinism and parallel fan-out."""

import numpy as np
import pytest

from repro.analysis.pipeline import EstimationPipeline
from repro.analysis.windows import TimeWindow
from repro.core.stratified import stratified_estimate
from repro.engine import (
    ArtifactCache,
    Executor,
    PipelineOptions,
    fan_out,
    spoof_filter_seed,
)
from repro.engine.report import RunReport
from repro.simnet.internet import SimulationConfig, SyntheticInternet
from tests.conftest import make_heterogeneous_sources

WINDOWS = [TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5)]


@pytest.fixture(scope="module")
def small_internet():
    """A very small Internet for whole-sweep tests (scale 2^-14)."""
    return SyntheticInternet(SimulationConfig(scale=2.0**-14, seed=99))


class TestCacheKeys:
    def test_identical_request_hits(self, tiny_internet, tiny_sources):
        engine = Executor(tiny_internet, tiny_sources)
        window = WINDOWS[0]
        first = engine.run("collect", window)
        second = engine.run("collect", window)
        assert second is first  # identity: served from cache
        assert engine.report.cache_hits == 1
        assert engine.report.cache_misses == 1

    def test_changed_options_miss(self, tiny_internet, tiny_sources):
        cache = ArtifactCache()
        window = WINDOWS[0]
        a = Executor(tiny_internet, tiny_sources, PipelineOptions(), cache=cache)
        b = Executor(
            tiny_internet,
            tiny_sources,
            PipelineOptions(criterion="aic"),
            cache=cache,
        )
        a.run("collect", window)
        b.run("collect", window)
        assert cache.stats()["misses"] == 2  # no cross-options sharing
        assert a.key_for("collect", window) != b.key_for("collect", window)

    def test_stage_params_participate_in_key(self, tiny_internet, tiny_sources):
        engine = Executor(tiny_internet, tiny_sources)
        window = WINDOWS[0]
        addr = engine.key_for("tabulate", window, level="addresses")
        subnet = engine.key_for("tabulate", window, level="subnets")
        assert addr != subnet
        assert addr == engine.key_for("tabulate", window, level="addresses")

    def test_windows_do_not_collide(self, tiny_internet, tiny_sources):
        engine = Executor(tiny_internet, tiny_sources)
        assert engine.key_for("collect", WINDOWS[0]) != engine.key_for(
            "collect", WINDOWS[1]
        )


class TestSpoofFilterDeterminism:
    def test_seed_is_hash_randomization_free(self):
        # crc32, not hash(): stable across interpreters / PYTHONHASHSEED.
        assert spoof_filter_seed(77, "SWIN") == 77 + 894
        assert spoof_filter_seed(77, "CALT") == 77 + 372
        assert spoof_filter_seed(0, "SWIN") == spoof_filter_seed(0, "SWIN")

    def test_fresh_pipelines_agree(self, tiny_internet, tiny_sources, last_window):
        first = EstimationPipeline(tiny_internet, tiny_sources)
        second = EstimationPipeline(tiny_internet, tiny_sources)
        datasets_a = first.datasets(last_window)
        datasets_b = second.datasets(last_window)
        assert set(datasets_a) == set(datasets_b)
        for name in datasets_a:
            assert np.array_equal(
                datasets_a[name].addresses, datasets_b[name].addresses
            ), name


class TestParallelWindows:
    def test_parallel_bit_identical_to_serial(self, small_internet):
        serial = Executor(small_internet)
        parallel = Executor(small_internet)
        serial_results = serial.run_windows(WINDOWS, workers=1)
        parallel_results = parallel.run_windows(WINDOWS, workers=2)
        assert len(serial_results) == len(parallel_results) == len(WINDOWS)
        for s, p in zip(serial_results, parallel_results):
            assert s.window == p.window
            assert s.observed_addresses == p.observed_addresses
            assert s.estimate_addresses.population == p.estimate_addresses.population
            assert s.estimate_subnets.population == p.estimate_subnets.population
            assert set(s.datasets) == set(p.datasets)
            for name in s.datasets:
                assert np.array_equal(
                    s.datasets[name].addresses, p.datasets[name].addresses
                ), name

    def test_parallel_run_leaves_parent_queryable(self, small_internet):
        engine = Executor(small_internet)
        results = engine.run_windows(WINDOWS, workers=2)
        # Window results were inserted into the parent cache ...
        again = engine.run_windows(WINDOWS, workers=2)
        for first, second in zip(results, again):
            assert second is first
        # ... and the workers' stage records were merged back.
        stages = {r.stage for r in engine.report.records}
        assert {"collect", "fit", "estimate", "window_result"} <= stages
        assert engine.report.cache_misses > 0


def _double(payload, item):
    return payload * item


class TestFanOut:
    def test_parallel_matches_serial_in_order(self):
        items = list(range(8))
        serial = fan_out(3, _double, items, workers=1)
        parallel = fan_out(3, _double, items, workers=2)
        assert serial == parallel == [3 * i for i in items]

    def test_report_records_one_per_task(self):
        report = RunReport()
        fan_out(1, _double, [1, 2, 3], workers=1, report=report, stage="demo")
        assert len(report.records) == 3
        assert all(r.stage == "demo" for r in report.records)


class TestStratifiedThreads:
    def test_thread_pool_matches_serial(self, rng):
        _, sources = make_heterogeneous_sources(rng, 12_000, num_sources=4)

        def labeler(addrs):
            return (addrs >> 28).astype(np.int64)

        serial = stratified_estimate(
            sources, labeler, min_observed=50, max_workers=1
        )
        threaded = stratified_estimate(
            sources, labeler, min_observed=50, max_workers=3
        )
        assert list(serial.strata) == list(threaded.strata)
        for label in serial.strata:
            assert (
                serial.strata[label].population
                == threaded.strata[label].population
            ), label
        assert serial.population == threaded.population
