"""Tests for the staged execution engine (cache, executor, fan-out)."""
