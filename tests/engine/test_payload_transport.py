"""Shared-memory worker payload transport.

The pool workers' big read-only inputs travel through one
``multiprocessing.shared_memory`` segment published per run; per-task
pickles shrink to a tiny spec.  These tests cover the round-trip, the
pickle fallback, segment lifecycle (including after worker kills), and
the ledger counters that make the win visible.
"""

import pickle

import numpy as np
import pytest

from repro.analysis.windows import TimeWindow
from repro.engine import ExecutionPolicy, Executor, FaultInjector, FaultSpec, fan_out
from repro.engine.executor import (
    _ACTIVE_SEGMENTS,
    POOL_PAYLOAD_METRIC,
    POOL_SHM_METRIC,
    load_payload,
    publish_payload,
)
from repro.engine.report import RunReport
from repro.obs.metrics import get_global_metrics
from repro.simnet.internet import SimulationConfig, SyntheticInternet

WINDOWS = [TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5)]

FAST = ExecutionPolicy(retries=1, backoff_base=0.001, backoff_max=0.002)


@pytest.fixture(scope="module")
def small_internet():
    return SyntheticInternet(SimulationConfig(scale=2.0**-14, seed=99))


def _double(payload, item):
    return payload * item


class TestPublishLoadRoundTrip:
    def test_arrays_round_trip_and_spec_is_tiny(self):
        rng = np.random.default_rng(31)
        obj = {
            "membership": rng.integers(0, 2, size=(64, 1024), dtype=np.int8),
            "counts": rng.poisson(3.0, size=4096).astype(np.int64),
            "label": "window-2013",
        }
        shipment = publish_payload(obj)
        try:
            assert "shm" in shipment.spec
            spec_bytes = len(pickle.dumps(shipment.spec))
            payload_bytes = len(pickle.dumps(obj))
            assert spec_bytes * 10 <= payload_bytes
            loaded = load_payload(shipment.spec)
            np.testing.assert_array_equal(loaded["counts"], obj["counts"])
            np.testing.assert_array_equal(
                loaded["membership"], obj["membership"]
            )
            assert loaded["label"] == obj["label"]
            # Zero-copy views must come back read-only: a worker
            # scribbling on the segment would poison its siblings.
            assert not loaded["counts"].flags.writeable
        finally:
            shipment.dispose()

    def test_dispose_unlinks_segment_and_registry(self):
        from multiprocessing import shared_memory

        shipment = publish_payload({"x": np.arange(100)})
        name = shipment.spec["shm"]
        assert name in _ACTIVE_SEGMENTS
        shipment.dispose()
        assert name not in _ACTIVE_SEGMENTS
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        shipment.dispose()  # idempotent

    def test_pickle_fallback_when_shared_memory_unavailable(self, monkeypatch):
        from multiprocessing import shared_memory

        def boom(*args, **kwargs):
            raise OSError("no /dev/shm")

        monkeypatch.setattr(shared_memory, "SharedMemory", boom)
        obj = {"counts": np.arange(32)}
        shipment = publish_payload(obj)
        assert "data" in shipment.spec
        loaded = load_payload(shipment.spec)
        np.testing.assert_array_equal(loaded["counts"], obj["counts"])
        shipment.dispose()  # no segment: a no-op


class TestPoolLifecycle:
    def test_sweep_drains_segments_and_records_counters(self, small_internet):
        registry = get_global_metrics()
        payload_before = registry.value(POOL_PAYLOAD_METRIC)
        shm_before = registry.value(POOL_SHM_METRIC)
        engine = Executor(small_internet)
        results = engine.run_windows(WINDOWS, workers=2)
        assert len(results) == len(WINDOWS)
        assert not _ACTIVE_SEGMENTS  # every published segment disposed
        payload = registry.value(POOL_PAYLOAD_METRIC) - payload_before
        shm = registry.value(POOL_SHM_METRIC) - shm_before
        assert shm > 0
        # The acceptance bar: per-pool pickled bytes shrink >= 10x.
        assert payload * 10 <= shm

    def test_segments_survive_worker_kill_then_clean_up(self):
        report = RunReport()
        faults = FaultInjector([FaultSpec("demo", "kill", index=1, count=1)])
        out = fan_out(
            3, _double, [1, 2, 3, 4],
            workers=2, report=report, stage="demo", policy=FAST, faults=faults,
        )
        assert out == [3, 6, 9, 12]
        assert report.retried_records()
        assert not _ACTIVE_SEGMENTS
