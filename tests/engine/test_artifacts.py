"""The keyed artifact cache: LRU accounting, spill and restore."""

import numpy as np
import pytest

from repro.core.histories import ContingencyTable
from repro.engine.artifacts import (
    MISS,
    ArtifactCache,
    ArtifactKey,
    artifact_nbytes,
)
from repro.ipspace.ipset import IPSet


def key(stage="tabulate", **params):
    return ArtifactKey(stage=stage, params=tuple(sorted(params.items())))


def ipset(n, start=0):
    return IPSet.from_sorted_unique(
        np.arange(start, start + n, dtype=np.uint32)
    )


class TestArtifactKey:
    def test_equal_params_equal_key(self):
        assert key(window=(2011.0, 2012.0)) == key(window=(2011.0, 2012.0))

    def test_changed_params_changes_key(self):
        assert key(window=(2011.0, 2012.0)) != key(window=(2013.5, 2014.5))
        assert key(stage="fit") != key(stage="tabulate")

    def test_token_is_stable_and_stage_prefixed(self):
        k = key(window=(2011.0, 2012.0))
        assert k.token() == k.token()
        assert k.token().startswith("tabulate-")
        assert k.token() != key(window=(2013.5, 2014.5)).token()


class TestNbytes:
    def test_ipset_counts_array_bytes(self):
        assert artifact_nbytes(ipset(100)) == 400  # uint32

    def test_mapping_sums_values(self):
        sets = {"a": ipset(10), "b": ipset(20)}
        assert artifact_nbytes(sets) >= 40 + 80

    def test_table_counts_array(self):
        table = ContingencyTable(2, np.array([0, 5, 3, 2]))
        assert artifact_nbytes(table) == table.counts.nbytes


class TestCacheBasics:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        k = key()
        assert cache.get(k) is MISS
        value = ipset(10)
        cache.put(k, value)
        assert cache.get(k) is value  # object identity preserved
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_contains(self):
        cache = ArtifactCache()
        k = key()
        assert k not in cache
        cache.put(k, ipset(1))
        assert k in cache

    def test_put_refresh_replaces_accounting(self):
        cache = ArtifactCache()
        k = key()
        cache.put(k, ipset(100))
        cache.put(k, ipset(10))
        assert cache.current_bytes == 40
        assert len(cache) == 1

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_bytes=0)


class TestLRUEviction:
    def test_evicts_least_recently_used_first(self):
        cache = ArtifactCache(max_bytes=1000)
        keys = [key(i=i) for i in range(3)]
        for k in keys:
            cache.put(k, ipset(100))  # 400 bytes each; third put evicts
        assert keys[0] not in cache
        assert keys[1] in cache and keys[2] in cache
        assert cache.evictions == 1
        assert cache.current_bytes <= 1000

    def test_get_refreshes_recency(self):
        cache = ArtifactCache(max_bytes=1000)
        a, b, c = key(i=0), key(i=1), key(i=2)
        cache.put(a, ipset(100))
        cache.put(b, ipset(100))
        cache.get(a)  # a becomes most recent; b is now LRU
        cache.put(c, ipset(100))
        assert b not in cache
        assert a in cache and c in cache

    def test_never_evicts_sole_entry(self):
        cache = ArtifactCache(max_bytes=8)
        k = key()
        cache.put(k, ipset(1000))  # far over budget, but the only entry
        assert k in cache


class TestSpill:
    def test_ipset_spills_and_restores(self, tmp_path):
        cache = ArtifactCache(max_bytes=500, spill_dir=tmp_path)
        a, b = key(i=0), key(i=1)
        first = ipset(100)
        cache.put(a, first)
        cache.put(b, ipset(100, start=1000))  # evicts + spills `a`
        assert cache.spills == 1
        assert list(tmp_path.glob("*.npz"))
        assert a in cache  # spilled still counts as present
        restored = cache.get(a)
        assert restored is not MISS
        assert np.array_equal(restored.addresses, first.addresses)
        assert cache.restores == 1

    def test_dataset_mapping_spills_and_restores(self, tmp_path):
        cache = ArtifactCache(max_bytes=500, spill_dir=tmp_path)
        sets = {"WEB": ipset(50), "IPING": ipset(30, start=500)}
        a, b = key(i=0), key(i=1)
        cache.put(a, sets)
        cache.put(b, ipset(200))
        restored = cache.get(a)
        assert set(restored) == {"WEB", "IPING"}
        for name in sets:
            assert np.array_equal(
                restored[name].addresses, sets[name].addresses
            )

    def test_table_spills_and_restores(self, tmp_path):
        cache = ArtifactCache(max_bytes=40, spill_dir=tmp_path)
        table = ContingencyTable(
            2, np.array([0, 5, 3, 2]), source_names=("x", "y")
        )
        a, b = key(i=0), key(i=1)
        cache.put(a, table)
        cache.put(b, ipset(100))
        restored = cache.get(a)
        assert isinstance(restored, ContingencyTable)
        assert np.array_equal(restored.counts, table.counts)
        assert restored.source_names == ("x", "y")

    def test_unspillable_artifacts_are_dropped(self, tmp_path):
        cache = ArtifactCache(max_bytes=120, spill_dir=tmp_path)
        a, b = key(i=0), key(i=1)
        cache.put(a, np.zeros(25))  # plain ndarray: evictable, not spillable
        cache.put(b, np.ones(25))
        assert cache.evictions == 1 and cache.spills == 0
        assert cache.get(a) is MISS

    def test_no_spill_dir_means_plain_eviction(self):
        cache = ArtifactCache(max_bytes=500)
        a, b = key(i=0), key(i=1)
        cache.put(a, ipset(100))
        cache.put(b, ipset(100))
        assert cache.get(a) is MISS
        assert cache.spills == 0


class TestSpillIntegrity:
    def test_spill_write_is_atomic(self, tmp_path):
        cache = ArtifactCache(max_bytes=64, spill_dir=tmp_path)
        cache.put(key(i=0), ipset(100))
        cache.put(key(i=1), ipset(100, start=200))  # evicts + spills i=0
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".npz"]
        assert leftovers == []  # no temp files under any other name

    def test_spill_carries_checksum(self, tmp_path):
        from repro.engine.artifacts import CHECKSUM_KEY

        cache = ArtifactCache(max_bytes=64, spill_dir=tmp_path)
        cache.put(key(i=0), ipset(100))
        cache.put(key(i=1), ipset(100, start=200))
        (path,) = tmp_path.glob("*.npz")
        with np.load(path) as archive:
            assert CHECKSUM_KEY in archive.files

    def test_truncated_spill_is_evicted_not_loaded(self, tmp_path):
        cache = ArtifactCache(max_bytes=64, spill_dir=tmp_path)
        a = key(i=0)
        cache.put(a, ipset(100))
        cache.put(key(i=1), ipset(100, start=200))
        (path,) = tmp_path.glob("*.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.get(a) is MISS
        assert cache.corrupt_evictions == 1
        assert not path.exists()

    def test_bitflipped_spill_fails_checksum(self, tmp_path):
        cache = ArtifactCache(max_bytes=64, spill_dir=tmp_path)
        a = key(i=0)
        cache.put(a, ipset(100))
        cache.put(key(i=1), ipset(100, start=200))
        (path,) = tmp_path.glob("*.npz")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert cache.get(a) is MISS
        assert cache.corrupt_evictions == 1

    def test_stats_count_corrupt_evictions(self, tmp_path):
        cache = ArtifactCache(max_bytes=64, spill_dir=tmp_path)
        assert cache.stats()["corrupt_evictions"] == 0


class TestCorruptSpillEvents:
    """Corrupt-entry eviction emits a structured warning (satellite of
    the observability layer): key, path and the crc mismatch."""

    def corrupt_one(self, tmp_path, observer=None):
        cache = ArtifactCache(max_bytes=64, spill_dir=tmp_path, observer=observer)
        a = key(i=0)
        cache.put(a, ipset(100))
        cache.put(key(i=1), ipset(100, start=200))
        (path,) = tmp_path.glob("*.npz")
        data = bytearray(path.read_bytes())
        data[-20] ^= 0xFF  # flip a payload bit; npz structure survives
        path.write_bytes(bytes(data))
        assert cache.get(a) is MISS
        return a

    def test_event_carries_key_and_crc_mismatch(self, tmp_path):
        from repro.obs.observer import Observer

        obs = Observer()
        a = self.corrupt_one(tmp_path, observer=obs)
        (event,) = [e for e in obs.events if e["name"] == "cache.corrupt_spill"]
        assert event["level"] == "warning"
        assert event["key"] == a.token()
        assert event["stage"] == a.stage
        assert "spill" in event["error"]
        assert obs.metrics.value("events_warning_total") == 1.0

    def test_crc_values_attached_when_known(self, tmp_path):
        from repro.obs.observer import Observer

        obs = Observer()
        self.corrupt_one(tmp_path, observer=obs)
        (event,) = [e for e in obs.events if e["name"] == "cache.corrupt_spill"]
        if "stored_crc" in event:  # structural damage has no crc pair
            assert event["stored_crc"] != event["computed_crc"]

    def test_without_observer_falls_back_to_logging(self, tmp_path, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.engine.artifacts"):
            self.corrupt_one(tmp_path, observer=None)
        assert "cache.corrupt_spill" in caplog.text
