"""Campaign lifecycle end-to-end: spec identity, scheduling, ledgers.

A campaign must be a pure re-packaging of the existing stage graph:
its results equal the direct executor's to the bit, its identity is
content-addressed (resubmission is a lookup), and once the query
ledger exists, answers are served with zero GLM fits.
"""

import pytest

from repro.analysis.windows import TimeWindow
from repro.core import fitkernel
from repro.engine.faults import FaultInjector
from repro.service.campaign import (
    CampaignSpec,
    CampaignStatus,
    decompose,
    task_id_for,
)
from repro.service.queryledger import entry_key
from repro.service.scheduler import (
    CampaignScheduler,
    default_executor_factory,
)

#: Small enough to run the full service path in seconds, large enough
#: for the simulator to produce well-conditioned tabulations.
SCALE_LOG2 = -14
SEED = 3

WINDOWS = ((2013.0, 2014.0), (2013.5, 2014.5))


def small_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        windows=WINDOWS,
        scale_log2=SCALE_LOG2,
        seed=SEED,
        drop_sources=("SWIN",),
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


@pytest.fixture(scope="module")
def completed(tmp_path_factory):
    """One campaign run to completion, shared by the read-side tests."""
    root = tmp_path_factory.mktemp("campaigns")
    scheduler = CampaignScheduler(root)
    spec = small_spec()
    campaign_id = scheduler.submit(spec)
    status = scheduler.run(campaign_id)
    return scheduler, spec, campaign_id, status


class TestSpecIdentity:
    def test_equal_specs_share_an_id(self):
        assert small_spec().campaign_id() == small_spec().campaign_id()

    def test_id_depends_on_the_request(self):
        base = small_spec().campaign_id()
        assert small_spec(seed=SEED + 1).campaign_id() != base
        assert small_spec(drop_sources=()).campaign_id() != base
        assert small_spec(windows=WINDOWS[:1]).campaign_id() != base

    def test_json_round_trip_preserves_identity(self):
        spec = small_spec()
        restored = CampaignSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.campaign_id() == spec.campaign_id()

    def test_window_objects_normalise_to_bounds(self):
        spec = small_spec(windows=(TimeWindow(2013.0, 2014.0),
                                   TimeWindow(2013.5, 2014.5)))
        assert spec.windows == WINDOWS
        assert spec.campaign_id() == small_spec().campaign_id()

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="at least one window"):
            small_spec(windows=())


class TestDecompose:
    def test_windows_first_then_sensitivity_grid(self):
        tasks = decompose(small_spec())
        assert [t.kind for t in tasks] == [
            "window", "window", "sensitivity", "sensitivity",
        ]
        assert [t.index for t in tasks] == [0, 1, 2, 3]
        assert tasks[2].bounds == WINDOWS[0]
        assert tasks[2].exclude == ("SWIN",)

    def test_task_ids_are_content_addressed(self):
        tasks = decompose(small_spec())
        assert tasks[0].task_id == task_id_for("window", WINDOWS[0], ())
        assert len({t.task_id for t in tasks}) == len(tasks)


class TestEndToEnd:
    def test_campaign_completes(self, completed):
        _, _, _, status = completed
        assert status.finished
        assert status.counts["done"] == 4
        assert status.counts["degraded"] == 0
        assert status.total == 4

    def test_results_equal_the_direct_executor(self, completed):
        scheduler, spec, campaign_id, _ = completed
        executor = default_executor_factory(spec)
        direct = executor.run("window_result", TimeWindow(*WINDOWS[1]))
        row = scheduler.ledger(campaign_id).window(WINDOWS[1])
        assert row["estimated_addresses"] == float(direct.estimated_addresses)
        assert row["observed_addresses"] == int(direct.observed_addresses)
        assert row["truth_addresses"] == int(direct.truth_addresses)

    def test_sensitivity_grid_in_ledger(self, completed):
        scheduler, _, campaign_id, _ = completed
        rows = scheduler.ledger(campaign_id).sensitivity()
        assert [r["source"] for r in rows] == ["SWIN", "SWIN"]
        assert all(r["estimate_without"] > 0 for r in rows)

    def test_status_readable_from_another_scheduler(self, completed):
        scheduler, _, campaign_id, _ = completed
        other = CampaignScheduler(scheduler.root)
        status = other.status(campaign_id)
        assert status.finished
        assert "completed" in status.summary()

    def test_unknown_campaign_raises(self, completed):
        scheduler, _, _, _ = completed
        with pytest.raises(FileNotFoundError):
            scheduler.status("c0000000000000000")

    def test_workers_floor_enforced(self, completed):
        scheduler, _, campaign_id, _ = completed
        with pytest.raises(ValueError, match="workers"):
            scheduler.run(campaign_id, workers=0)


class TestQueryLedger:
    def test_served_without_fits(self, completed):
        scheduler, _, campaign_id, _ = completed
        before = fitkernel.snapshot().fits
        ledger = scheduler.ledger(campaign_id)
        totals = ledger.totals()
        growth = ledger.growth()
        windows = ledger.windows()
        assert fitkernel.snapshot().fits == before
        assert totals["window"] == "Jun 2014"
        assert totals["estimated_addresses"] > totals["observed_addresses"]
        assert set(growth) == {"routed", "observed", "estimated", "truth"}
        assert len(windows) == 2

    def test_entry_keys_are_content_addressed(self, completed):
        scheduler, spec, campaign_id, _ = completed
        ledger = scheduler.ledger(campaign_id)
        key = entry_key(spec.options, WINDOWS[0])
        assert ledger.document["windows"][key]["label"] == "Dec 2013"
        assert ledger.window((1999.0, 2000.0)) is None

    def test_growth_series_round_trips_exactly(self, completed):
        scheduler, _, campaign_id, _ = completed
        ledger = scheduler.ledger(campaign_id)
        series = ledger.growth_series()
        rows = ledger.windows()
        assert list(series.estimated) == [
            r["estimated_addresses"] for r in rows
        ]
        assert series.labels == tuple(r["label"] for r in rows)

    def test_provenance_recorded(self, completed):
        scheduler, spec, campaign_id, _ = completed
        provenance = scheduler.ledger(campaign_id).provenance
        assert provenance["seed"] == spec.seed
        assert provenance["scale_log2"] == spec.scale_log2
        assert provenance["wall_seconds"] > 0

    def test_resubmission_is_a_lookup(self, completed):
        scheduler, spec, campaign_id, _ = completed
        before = fitkernel.snapshot().fits
        assert scheduler.submit(spec) == campaign_id
        status = scheduler.run(campaign_id)
        assert status.finished
        assert fitkernel.snapshot().fits == before


class TestFaultSemantics:
    def test_transient_fault_retried_to_success(self, tmp_path):
        faults = FaultInjector(["campaign:error:0:1"])
        scheduler = CampaignScheduler(tmp_path, faults=faults, retries=1)
        spec = small_spec(drop_sources=())
        campaign_id = scheduler.submit(spec)
        status = scheduler.run(campaign_id)
        assert status.finished
        assert status.counts["done"] == 2
        assert status.counts["degraded"] == 0
        rows = scheduler.ledger(campaign_id).windows()
        assert len(rows) == 2

    def test_persistent_fault_degrades_and_is_listed_missing(self, tmp_path):
        faults = FaultInjector(["campaign:error:0:99"])
        scheduler = CampaignScheduler(tmp_path, faults=faults, retries=1)
        spec = small_spec(drop_sources=())
        campaign_id = scheduler.submit(spec)
        status = scheduler.run(campaign_id)
        assert status.finished
        assert status.counts["degraded"] == 1
        assert status.counts["done"] == 1
        ledger = scheduler.ledger(campaign_id)
        missing = ledger.missing()
        assert len(missing) == 1
        assert missing[0]["label"] == "Dec 2013"
        assert missing[0]["attempts"] == 2
        assert "FaultInjected" in missing[0]["error"]
        # The surviving window still serves.
        assert len(ledger.windows()) == 1

    def test_degraded_campaign_results_equal_surviving_direct(self, tmp_path):
        faults = FaultInjector(["campaign:error:0:99"])
        scheduler = CampaignScheduler(tmp_path, faults=faults, retries=0)
        spec = small_spec(drop_sources=())
        campaign_id = scheduler.submit(spec)
        scheduler.run(campaign_id)
        row = scheduler.ledger(campaign_id).window(WINDOWS[1])
        direct = default_executor_factory(spec).run(
            "window_result", TimeWindow(*WINDOWS[1])
        )
        assert row["estimated_addresses"] == float(direct.estimated_addresses)


class TestParallelDrain:
    def test_two_workers_match_one(self, tmp_path, completed):
        scheduler_serial, spec, campaign_id, _ = completed
        scheduler = CampaignScheduler(tmp_path)
        assert scheduler.submit(spec) == campaign_id
        status = scheduler.run(campaign_id, workers=2)
        assert status.finished
        assert status.counts["done"] == 4
        serial = scheduler_serial.ledger(campaign_id).document
        parallel = scheduler.ledger(campaign_id).document
        assert parallel["windows"] == serial["windows"]
        assert parallel["sensitivity"] == serial["sensitivity"]
        assert parallel["series"] == serial["series"]


class TestStatusModel:
    def test_json_round_trip(self):
        status = CampaignStatus(
            campaign_id="cdeadbeefdeadbeef",
            state="running",
            counts={"pending": 1, "running": 1, "done": 2, "degraded": 0},
            total=4,
        )
        assert CampaignStatus.from_json(status.to_json()) == status
        assert not status.finished
        assert "running" in status.summary()
