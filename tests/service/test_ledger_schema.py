"""LedgerSchemaError: structured attributes and the three-way message."""

import pytest

from repro.service.queryledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerSchemaError,
)


class TestAttributes:
    def test_carries_found_and_supported(self):
        err = LedgerSchemaError(7)
        assert err.found == 7
        assert err.supported == LEDGER_SCHEMA_VERSION

    def test_supported_can_be_overridden(self):
        err = LedgerSchemaError(5, supported=4)
        assert err.supported == 4

    def test_is_a_value_error(self):
        assert issubclass(LedgerSchemaError, ValueError)


class TestMessages:
    def test_missing_schema_field(self):
        message = str(LedgerSchemaError(None))
        assert "no schema field" in message

    def test_newer_build_wording(self):
        message = str(LedgerSchemaError(LEDGER_SCHEMA_VERSION + 1))
        assert "newer build" in message
        assert str(LEDGER_SCHEMA_VERSION + 1) in message
        assert str(LEDGER_SCHEMA_VERSION) in message

    def test_non_integer_schema_is_unsupported_not_newer(self):
        message = str(LedgerSchemaError("v2"))
        assert "unsupported" in message
        assert "newer build" not in message

    def test_older_integer_schema_is_unsupported_not_newer(self):
        # Only strictly-newer versions get the upgrade hint; an older
        # int means the document predates this reader's floor.
        message = str(LedgerSchemaError(0))
        assert "unsupported" in message
        assert "newer build" not in message
