"""The backend contract: lease/ack/fail/heartbeat under fault pressure.

These are the semantics a distributed queue backend must reproduce, so
they are pinned against the reference :class:`InProcessBackend`:
FIFO dispatch, at-most-one active lease per task, fencing-token
idempotency, attempt accounting that mirrors ``ExecutionPolicy``
(first attempt + ``retries`` extras), and heartbeat-expiry reclaim.
"""

import pytest

from repro.service.backend import InProcessBackend


class FakeClock:
    """Injectable monotonic clock for deterministic expiry tests."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def filled(backend: InProcessBackend, n: int = 3) -> list[str]:
    ids = [f"t{i}" for i in range(n)]
    for task_id in ids:
        backend.enqueue(task_id, {"payload": task_id})
    return ids


class TestLeaseAndAck:
    def test_fifo_dispatch(self):
        backend = InProcessBackend()
        ids = filled(backend)
        leased = [backend.lease("w0").task_id for _ in ids]
        assert leased == ids
        assert backend.lease("w0") is None

    def test_enqueue_is_idempotent(self):
        backend = InProcessBackend()
        backend.enqueue("t0", 1)
        backend.enqueue("t0", 2)
        lease = backend.lease("w0")
        assert lease.payload == 1
        assert backend.lease("w0") is None

    def test_ack_commits_result(self):
        backend = InProcessBackend()
        filled(backend, 1)
        lease = backend.lease("w0")
        assert backend.ack(lease, {"answer": 42})
        assert backend.done()
        assert backend.result("t0") == {"answer": 42}
        assert backend.counts()["done"] == 1

    def test_double_ack_is_idempotent(self):
        backend = InProcessBackend()
        filled(backend, 1)
        lease = backend.lease("w0")
        assert backend.ack(lease, "first")
        assert not backend.ack(lease, "second")
        assert backend.result("t0") == "first"

    def test_attempts_charged_at_lease_time(self):
        backend = InProcessBackend()
        filled(backend, 1)
        assert backend.attempts("t0") == 0
        backend.lease("w0")
        assert backend.attempts("t0") == 1


class TestRetryBudget:
    def test_failed_task_requeued_exactly_once_per_retry(self):
        backend = InProcessBackend(retries=1)
        filled(backend, 1)
        lease = backend.lease("w0")
        assert backend.fail(lease, "boom") == "requeued"
        assert backend.counts()["pending"] == 1
        retry = backend.lease("w1")
        assert retry.task_id == "t0"
        assert retry.token != lease.token
        assert backend.fail(retry, "boom again") == "degraded"
        assert backend.counts()["degraded"] == 1
        assert backend.attempts("t0") == 2
        assert backend.error("t0") == "boom again"
        assert backend.done()

    def test_zero_retries_degrades_on_first_failure(self):
        backend = InProcessBackend(retries=0)
        filled(backend, 1)
        assert backend.fail(backend.lease("w0"), "boom") == "degraded"

    def test_retry_after_failure_can_still_succeed(self):
        backend = InProcessBackend(retries=2)
        filled(backend, 1)
        backend.fail(backend.lease("w0"), "flake")
        assert backend.ack(backend.lease("w0"), "recovered")
        assert backend.result("t0") == "recovered"
        assert backend.error("t0") == "flake"  # blame is preserved

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            InProcessBackend(retries=-1)


class TestFencingTokens:
    def test_stale_ack_after_requeue_refused(self):
        backend = InProcessBackend(retries=1)
        filled(backend, 1)
        stale = backend.lease("w0")
        backend.fail(stale, "boom")
        fresh = backend.lease("w1")
        # The dead worker's ack must not clobber the live retry.
        assert not backend.ack(stale, "zombie result")
        assert backend.ack(fresh, "live result")
        assert backend.result("t0") == "live result"

    def test_stale_fail_reported_stale(self):
        backend = InProcessBackend(retries=1)
        filled(backend, 1)
        stale = backend.lease("w0")
        backend.fail(stale, "boom")
        backend.lease("w1")
        assert backend.fail(stale, "late boom") == "stale"


class TestHeartbeat:
    def test_heartbeat_extends_deadline(self):
        clock = FakeClock()
        backend = InProcessBackend(heartbeat_timeout=10.0, clock=clock)
        filled(backend, 1)
        lease = backend.lease("w0")
        assert lease.deadline == pytest.approx(clock.now + 10.0)
        clock.advance(8.0)
        assert backend.heartbeat(lease)
        clock.advance(8.0)  # past the original deadline, not the renewed
        assert backend.requeue_expired() == []
        assert backend.counts()["running"] == 1

    def test_expired_lease_requeued(self):
        clock = FakeClock()
        backend = InProcessBackend(
            retries=1, heartbeat_timeout=5.0, clock=clock
        )
        filled(backend, 1)
        lease = backend.lease("w0")
        clock.advance(6.0)
        assert backend.requeue_expired() == ["t0"]
        assert backend.counts()["pending"] == 1
        assert "heartbeat expired" in backend.error("t0")
        # The dead worker's lease is fenced out.
        assert not backend.heartbeat(lease)
        assert not backend.ack(lease, "zombie")

    def test_expiry_consumes_retry_budget(self):
        clock = FakeClock()
        backend = InProcessBackend(
            retries=1, heartbeat_timeout=5.0, clock=clock
        )
        filled(backend, 1)
        backend.lease("w0")
        clock.advance(6.0)
        assert backend.requeue_expired() == ["t0"]
        backend.lease("w1")
        clock.advance(6.0)
        assert backend.requeue_expired() == ["t0"]
        assert backend.counts()["degraded"] == 1
        assert backend.done()

    def test_no_timeout_means_no_expiry(self):
        clock = FakeClock()
        backend = InProcessBackend(heartbeat_timeout=None, clock=clock)
        filled(backend, 1)
        lease = backend.lease("w0")
        assert lease.deadline is None
        clock.advance(1e6)
        assert backend.requeue_expired() == []
        assert backend.heartbeat(lease)
