"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_window_parsing(self):
        args = build_parser().parse_args(
            ["estimate", "--window", "2012.0:2013.0"]
        )
        assert args.window.start == 2012.0 and args.window.end == 2013.0

    def test_bad_window_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--window", "bogus"])

    def test_scale_default(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scale_log2 == -12

    def test_store_flag_default_off(self):
        args = build_parser().parse_args(["estimate"])
        assert args.store is None

    def test_size_and_age_suffixes(self):
        args = build_parser().parse_args(
            ["store", "gc", "x", "--max-bytes", "2g", "--max-age", "7d"]
        )
        assert args.max_bytes == 2 * 1024**3
        assert args.max_age == 7 * 86400.0

    def test_bad_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["store", "gc", "x", "--max-bytes", "lots"]
            )

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_workers_zero_is_a_parse_error(self, capsys):
        for argv in (["windows", "--workers", "0"],
                     ["crossval", "--workers", "0"],
                     ["sensitivity", "--workers", "-2"],
                     ["campaign", "submit", "--workers", "0"]):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args(argv)
            assert excinfo.value.code == 2
            assert "must be >= 1" in capsys.readouterr().err

    def test_workers_help_not_duplicated(self, capsys):
        # One canonical --workers definition via the shared parent
        # parser: each command's help shows the flag exactly once in
        # the usage line and once in the options list, never more.
        for command in ("windows", "crossval", "sensitivity",
                        ("campaign", "submit")):
            argv = [command] if isinstance(command, str) else list(command)
            with pytest.raises(SystemExit):
                build_parser().parse_args(argv + ["--help"])
            help_text = capsys.readouterr().out
            assert help_text.count("--workers") == 2, command

    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_query_what_choices(self):
        args = build_parser().parse_args(["query", "--what", "growth"])
        assert args.what == "growth" and args.campaign_id is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--what", "everything"])


class TestCommands:
    """Each command runs end to end on a very small Internet."""

    ARGS = ["--scale-log2", "-14", "--seed", "3"]

    def test_simulate(self, capsys):
        assert main(self.ARGS + ["simulate"]) == 0
        out = capsys.readouterr().out
        assert "routed" in out and "used addrs" in out

    def test_estimate(self, capsys):
        assert main(self.ARGS + ["estimate"]) == 0
        out = capsys.readouterr().out
        assert "estimated" in out and "est/ping" in out

    def test_crossval(self, capsys):
        assert main(self.ARGS + ["crossval"]) == 0
        out = capsys.readouterr().out
        assert "held-out" in out and "IPING" in out

    def test_supply(self, capsys):
        assert main(self.ARGS + ["supply"]) == 0
        out = capsys.readouterr().out
        assert "World" in out and "runout" in out

    def test_sensitivity(self, capsys):
        assert main(self.ARGS + ["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "dropped source" in out and "robust" in out

    def test_churn(self, capsys):
        assert main(self.ARGS + ["churn", "--clients", "5000"]) == 0
        out = capsys.readouterr().out
        assert "post-saturation" in out


class TestEstimateFiles:
    def make_files(self, tmp_path, rng):
        import numpy as np

        from repro.ipspace.addresses import format_addr

        pop = rng.choice(2**30, 4000, replace=False).astype(np.uint32)
        paths = []
        for name, p in [("alpha", 0.5), ("beta", 0.45), ("gamma", 0.4)]:
            seen = pop[rng.random(4000) < p]
            path = tmp_path / f"{name}.txt"
            path.write_text("\n".join(format_addr(a) for a in seen) + "\n")
            paths.append(str(path))
        return paths

    def test_estimate_files(self, capsys, tmp_path, rng):
        paths = self.make_files(tmp_path, rng)
        assert main(["estimate-files", *paths]) == 0
        out = capsys.readouterr().out
        assert "parsed datasets" in out and "estimate:" in out

    def test_estimate_files_needs_two(self, capsys, tmp_path, rng):
        paths = self.make_files(tmp_path, rng)
        assert main(["estimate-files", paths[0]]) == 2


class TestObservability:
    """--trace / --metrics-out and the `report` renderer."""

    ARGS = ["--scale-log2", "-14", "--seed", "3"]

    def test_trace_writes_ledger_and_report_renders(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        assert main(self.ARGS + ["--trace", str(run_dir), "estimate"]) == 0
        out = capsys.readouterr().out
        assert "run ledger written" in out
        for name in ("run.json", "trace.jsonl", "metrics.json",
                     "metrics.prom", "events.jsonl", "report.json"):
            assert (run_dir / name).exists(), name
        assert main(["report", str(run_dir)]) == 0
        report = capsys.readouterr().out
        assert "per-stage timings" in report
        assert "fit kernel:" in report
        assert "slowest spans" in report

    def test_metrics_out_alone(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert main(self.ARGS + ["--metrics-out", str(path), "estimate"]) == 0
        assert "metrics written" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        names = {c["name"] for c in payload["counters"]}
        assert "cache_misses_total" in names
        assert any(n.startswith("fit_") for n in names)

    def test_report_on_missing_directory_fails_cleanly(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "no run directory" in capsys.readouterr().err

    def test_default_run_has_no_observability_output(self, capsys):
        assert main(self.ARGS + ["estimate"]) == 0
        out = capsys.readouterr().out
        assert "run ledger" not in out
        assert "metrics written" not in out


class TestCampaignCli:
    """The service verbs end to end on a very small Internet."""

    ARGS = ["--scale-log2", "-14", "--seed", "3"]

    def submit(self, tmp_path, capsys):
        service = str(tmp_path / "campaigns")
        assert main(self.ARGS + [
            "campaign", "submit", "--service", service,
            "--window", "2013.0:2014.0", "--window", "2013.5:2014.5",
            "--drop", "SWIN",
        ]) == 0
        out = capsys.readouterr().out
        campaign_id = out.split("campaign ", 1)[1].split(":", 1)[0]
        return service, campaign_id, out

    def test_submit_runs_to_completion(self, capsys, tmp_path):
        _, campaign_id, out = self.submit(tmp_path, capsys)
        assert campaign_id.startswith("c") and len(campaign_id) == 17
        assert "completed" in out
        assert "4 done" in out

    def test_status_results_and_query(self, capsys, tmp_path):
        from repro.core import fitkernel

        service, campaign_id, _ = self.submit(tmp_path, capsys)
        assert main(["campaign", "status", campaign_id,
                     "--service", service]) == 0
        assert "completed" in capsys.readouterr().out
        assert main(["campaign", "results", campaign_id,
                     "--service", service]) == 0
        results = capsys.readouterr().out
        assert "window sweep" in results
        assert "Jun 2014" in results
        assert "sensitivity grid" in results
        # Every query kind answers from the ledger: zero fit delta.
        before = fitkernel.snapshot().fits
        for what in ("totals", "growth", "windows", "sensitivity"):
            assert main(["query", campaign_id, "--what", what,
                         "--service", service]) == 0
            out = capsys.readouterr().out
            assert "served from query ledger" in out
        assert fitkernel.snapshot().fits == before

    def test_query_defaults_to_latest_campaign(self, capsys, tmp_path):
        service, campaign_id, _ = self.submit(tmp_path, capsys)
        assert main(["query", "--service", service]) == 0
        out = capsys.readouterr().out
        assert campaign_id in out
        assert "totals" in out

    def test_resubmission_served_from_ledger(self, capsys, tmp_path):
        from repro.core import fitkernel

        service, _, _ = self.submit(tmp_path, capsys)
        before = fitkernel.snapshot().fits
        assert main(self.ARGS + [
            "campaign", "submit", "--service", service,
            "--window", "2013.0:2014.0", "--window", "2013.5:2014.5",
            "--drop", "SWIN",
        ]) == 0
        assert "already complete" in capsys.readouterr().out
        assert fitkernel.snapshot().fits == before

    def test_unknown_campaign_exits_2(self, capsys, tmp_path):
        service = str(tmp_path / "campaigns")
        assert main(["campaign", "status", "c0000000000000000",
                     "--service", service]) == 2
        assert "no campaign" in capsys.readouterr().err
        assert main(["query", "--service", service]) == 2
        assert "no campaigns" in capsys.readouterr().err


class TestArtifactStoreCli:
    """--store on pipeline commands and the `store` subcommands."""

    ARGS = ["--scale-log2", "-14", "--seed", "3"]

    def warm_store(self, tmp_path, capsys):
        """Two estimate runs against one store; returns their outputs."""
        store = str(tmp_path / "store")
        assert main(self.ARGS + ["--store", store, "estimate"]) == 0
        cold = capsys.readouterr().out
        assert main(self.ARGS + ["--store", store, "estimate"]) == 0
        warm = capsys.readouterr().out
        return store, cold, warm

    def test_warm_run_output_is_identical(self, capsys, tmp_path):
        _, cold, warm = self.warm_store(tmp_path, capsys)
        assert warm == cold
        assert "estimated" in warm

    def test_store_stats_lists_stage_entries(self, capsys, tmp_path):
        store, _, _ = self.warm_store(tmp_path, capsys)
        assert main(["store", "stats", store]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out
        assert "window_result" in out
        assert "fitmemo" in out

    def test_store_verify_clean_then_corrupt(self, capsys, tmp_path):
        from pathlib import Path

        store, _, _ = self.warm_store(tmp_path, capsys)
        assert main(["store", "verify", store]) == 0
        assert "corrupt: 0" in capsys.readouterr().out
        victim = next(Path(store).rglob("*.npz"))
        data = bytearray(victim.read_bytes())
        data[-20] ^= 0xFF
        victim.write_bytes(bytes(data))
        assert main(["store", "verify", store]) == 1
        assert "corrupt: 1" in capsys.readouterr().out
        assert main(["store", "verify", store, "--delete"]) == 1
        assert not victim.exists()
        assert main(["store", "verify", store]) == 0

    def test_store_gc_by_age_empties_store(self, capsys, tmp_path):
        store, _, _ = self.warm_store(tmp_path, capsys)
        assert main(["store", "gc", store, "--max-age", "0s"]) == 0
        out = capsys.readouterr().out
        assert "kept:    0 entries" in out
        assert main(["store", "stats", store]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_store_commands_on_missing_directory(self, capsys, tmp_path):
        missing = str(tmp_path / "nope")
        # stats treats a missing directory as an empty store ...
        assert main(["store", "stats", missing]) == 0
        assert "entries: 0" in capsys.readouterr().out
        # ... but maintenance on one is a caller mistake.
        for sub in ("gc", "verify"):
            assert main(["store", sub, missing]) == 2
            assert "no store directory" in capsys.readouterr().err

    def test_report_diff_across_runs(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        cold_dir, warm_dir = str(tmp_path / "cold"), str(tmp_path / "warm")
        for run_dir in (cold_dir, warm_dir):
            assert main(
                self.ARGS
                + ["--store", store, "--trace", run_dir, "estimate"]
            ) == 0
            capsys.readouterr()
        assert main(["report", warm_dir, "--diff", cold_dir]) == 0
        out = capsys.readouterr().out
        assert "run diff" in out
        assert "cache hit rate" in out

    def test_report_diff_missing_baseline(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        assert main(self.ARGS + ["--trace", str(run_dir), "estimate"]) == 0
        capsys.readouterr()
        missing = str(tmp_path / "nope")
        assert main(["report", str(run_dir), "--diff", missing]) == 2
        assert "no run directory" in capsys.readouterr().err
