"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_window_parsing(self):
        args = build_parser().parse_args(
            ["estimate", "--window", "2012.0:2013.0"]
        )
        assert args.window.start == 2012.0 and args.window.end == 2013.0

    def test_bad_window_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--window", "bogus"])

    def test_scale_default(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scale_log2 == -12


class TestCommands:
    """Each command runs end to end on a very small Internet."""

    ARGS = ["--scale-log2", "-14", "--seed", "3"]

    def test_simulate(self, capsys):
        assert main(self.ARGS + ["simulate"]) == 0
        out = capsys.readouterr().out
        assert "routed" in out and "used addrs" in out

    def test_estimate(self, capsys):
        assert main(self.ARGS + ["estimate"]) == 0
        out = capsys.readouterr().out
        assert "estimated" in out and "est/ping" in out

    def test_crossval(self, capsys):
        assert main(self.ARGS + ["crossval"]) == 0
        out = capsys.readouterr().out
        assert "held-out" in out and "IPING" in out

    def test_supply(self, capsys):
        assert main(self.ARGS + ["supply"]) == 0
        out = capsys.readouterr().out
        assert "World" in out and "runout" in out

    def test_sensitivity(self, capsys):
        assert main(self.ARGS + ["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "dropped source" in out and "robust" in out

    def test_churn(self, capsys):
        assert main(self.ARGS + ["churn", "--clients", "5000"]) == 0
        out = capsys.readouterr().out
        assert "post-saturation" in out


class TestEstimateFiles:
    def make_files(self, tmp_path, rng):
        import numpy as np

        from repro.ipspace.addresses import format_addr

        pop = rng.choice(2**30, 4000, replace=False).astype(np.uint32)
        paths = []
        for name, p in [("alpha", 0.5), ("beta", 0.45), ("gamma", 0.4)]:
            seen = pop[rng.random(4000) < p]
            path = tmp_path / f"{name}.txt"
            path.write_text("\n".join(format_addr(a) for a in seen) + "\n")
            paths.append(str(path))
        return paths

    def test_estimate_files(self, capsys, tmp_path, rng):
        paths = self.make_files(tmp_path, rng)
        assert main(["estimate-files", *paths]) == 0
        out = capsys.readouterr().out
        assert "parsed datasets" in out and "estimate:" in out

    def test_estimate_files_needs_two(self, capsys, tmp_path, rng):
        paths = self.make_files(tmp_path, rng)
        assert main(["estimate-files", paths[0]]) == 2


class TestObservability:
    """--trace / --metrics-out and the `report` renderer."""

    ARGS = ["--scale-log2", "-14", "--seed", "3"]

    def test_trace_writes_ledger_and_report_renders(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        assert main(self.ARGS + ["--trace", str(run_dir), "estimate"]) == 0
        out = capsys.readouterr().out
        assert "run ledger written" in out
        for name in ("run.json", "trace.jsonl", "metrics.json",
                     "metrics.prom", "events.jsonl", "report.json"):
            assert (run_dir / name).exists(), name
        assert main(["report", str(run_dir)]) == 0
        report = capsys.readouterr().out
        assert "per-stage timings" in report
        assert "fit kernel:" in report
        assert "slowest spans" in report

    def test_metrics_out_alone(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert main(self.ARGS + ["--metrics-out", str(path), "estimate"]) == 0
        assert "metrics written" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        names = {c["name"] for c in payload["counters"]}
        assert "cache_misses_total" in names
        assert any(n.startswith("fit_") for n in names)

    def test_report_on_missing_directory_fails_cleanly(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "no run directory" in capsys.readouterr().err

    def test_default_run_has_no_observability_output(self, capsys):
        assert main(self.ARGS + ["estimate"]) == 0
        out = capsys.readouterr().out
        assert "run ledger" not in out
        assert "metrics written" not in out
