"""Special-use registry and public space."""

from repro.ipspace.addresses import ADDRESS_SPACE_SIZE, parse_addr
from repro.ipspace.special import (
    SPECIAL_USE_PREFIXES,
    public_space,
    special_use_intervals,
    special_use_prefixes,
)


class TestSpecialUse:
    def test_registry_parses(self):
        assert len(special_use_prefixes()) == len(SPECIAL_USE_PREFIXES)

    def test_private_space_is_special(self):
        s = special_use_intervals()
        for addr in ("10.1.2.3", "172.16.0.1", "192.168.1.1", "127.0.0.1"):
            assert parse_addr(addr) in s

    def test_multicast_and_class_e_special(self):
        s = special_use_intervals()
        assert parse_addr("224.0.0.1") in s
        assert parse_addr("240.0.0.1") in s
        assert parse_addr("255.255.255.255") in s

    def test_ordinary_space_not_special(self):
        s = special_use_intervals()
        for addr in ("8.8.8.8", "203.0.112.1", "99.1.2.3"):
            assert parse_addr(addr) not in s


class TestPublicSpace:
    def test_partitions_with_special(self):
        assert (
            public_space().size() + special_use_intervals().size()
            == ADDRESS_SPACE_SIZE
        )

    def test_public_contains_ordinary(self):
        p = public_space()
        assert parse_addr("8.8.8.8") in p
        assert parse_addr("10.0.0.1") not in p

    def test_public_size_plausible(self):
        # Multicast+class E alone remove 1/8 of the space.
        size = public_space().size()
        assert 3.5e9 < size < 3.8e9
