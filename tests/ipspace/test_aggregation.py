"""FIB compression (prefix aggregation)."""

import pytest

from repro.ipspace.aggregation import compress_prefixes, compression_potential
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.prefixes import Prefix


def P(text):
    return Prefix.parse(text)


class TestCompression:
    def test_sibling_merge(self):
        report = compress_prefixes([P("10.0.0.0/24"), P("10.0.1.0/24")])
        assert report.compressed_count == 1
        assert report.prefixes == (P("10.0.0.0/23"),)
        assert report.ratio == 2.0

    def test_containment_removal(self):
        report = compress_prefixes([P("10.0.0.0/8"), P("10.5.0.0/16")])
        assert report.prefixes == (P("10.0.0.0/8"),)
        assert report.saved == 1

    def test_non_mergeable_neighbours(self):
        # Adjacent but not siblings: 10.0.1.0/24 + 10.0.2.0/24.
        report = compress_prefixes([P("10.0.1.0/24"), P("10.0.2.0/24")])
        assert report.compressed_count == 2

    def test_cascading_merge(self):
        quads = [P(f"10.0.{i}.0/24") for i in range(4)]
        report = compress_prefixes(quads)
        assert report.prefixes == (P("10.0.0.0/22"),)
        assert report.ratio == 4.0

    def test_coverage_preserved(self):
        prefixes = [P("10.0.0.0/24"), P("10.0.1.0/24"), P("192.0.2.0/25"),
                    P("10.0.0.0/25")]
        report = compress_prefixes(prefixes)
        before = IntervalSet.from_prefixes(prefixes)
        after = IntervalSet.from_prefixes(report.prefixes)
        assert before == after

    def test_empty(self):
        report = compress_prefixes([])
        assert report.compressed_count == 0
        assert report.ratio == 1.0
        assert compression_potential([]) == 0.0

    def test_potential(self):
        assert compression_potential(
            [P("10.0.0.0/24"), P("10.0.1.0/24")]
        ) == pytest.approx(0.5)

    def test_routing_table_scale(self, tiny_internet):
        """A simulated routing table compresses somewhat (adjacent
        allocations from the same carve-out) but not trivially."""
        table = tiny_internet.routing.routing_table(2013.5, 2014.5)
        report = compress_prefixes(table.prefixes())
        assert 1.0 <= report.ratio < 3.0


class TestCompressionProperties:
    """Property-based checks on random prefix lists."""

    def test_random_lists(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=40, deadline=None)
        @given(st.lists(
            st.tuples(st.integers(0, 2**32 - 1), st.integers(12, 30)),
            max_size=12,
        ))
        def check(items):
            prefixes = [Prefix.containing(a, l) for a, l in items]
            report = compress_prefixes(prefixes)
            # Coverage preserved exactly.
            assert IntervalSet.from_prefixes(prefixes) == (
                IntervalSet.from_prefixes(report.prefixes)
            )
            # Never more entries than the input's distinct prefixes.
            assert report.compressed_count <= len(set(prefixes))
            # Compressed list is itself incompressible (idempotent).
            again = compress_prefixes(report.prefixes)
            assert again.compressed_count == report.compressed_count

        check()
