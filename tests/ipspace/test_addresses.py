"""Address parsing, formatting and octet arithmetic."""

import numpy as np
import pytest

from repro.ipspace.addresses import (
    ADDRESS_SPACE_SIZE,
    AddressError,
    as_addr_array,
    block_index,
    format_addr,
    format_addrs,
    last_octet,
    octet,
    parse_addr,
    parse_addrs,
    subnet24_of,
)


class TestParseAddr:
    def test_basic(self):
        assert parse_addr("0.0.0.0") == 0
        assert parse_addr("0.0.0.1") == 1
        assert parse_addr("1.0.0.0") == 2**24
        assert parse_addr("255.255.255.255") == ADDRESS_SPACE_SIZE - 1

    def test_known_value(self):
        assert parse_addr("192.0.2.1") == (192 << 24) | (2 << 8) | 1

    def test_whitespace_tolerated(self):
        assert parse_addr("  10.0.0.1 ") == parse_addr("10.0.0.1")

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "a.b.c.d", "1.2.3.256", "1.2.-3.4", "1..2.3"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_addr(bad)


class TestFormatAddr:
    def test_roundtrip(self):
        for text in ["0.0.0.0", "10.1.2.3", "172.16.254.1", "255.255.255.255"]:
            assert format_addr(parse_addr(text)) == text

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            format_addr(ADDRESS_SPACE_SIZE)
        with pytest.raises(AddressError):
            format_addr(-1)

    def test_accepts_numpy_scalar(self):
        assert format_addr(np.uint32(256)) == "0.0.1.0"


class TestBulkApi:
    def test_parse_addrs(self):
        arr = parse_addrs(["1.2.3.4", "10.0.0.1"])
        assert arr.dtype == np.uint32
        assert list(arr) == [parse_addr("1.2.3.4"), parse_addr("10.0.0.1")]

    def test_format_addrs_roundtrip(self):
        texts = ["9.9.9.9", "128.0.0.1", "203.0.113.7"]
        assert format_addrs(parse_addrs(texts)) == texts

    def test_as_addr_array_from_strings(self):
        arr = as_addr_array(["1.2.3.4"])
        assert arr.dtype == np.uint32 and arr[0] == parse_addr("1.2.3.4")

    def test_as_addr_array_from_ints(self):
        arr = as_addr_array([0, 1, 2**32 - 1])
        assert arr.dtype == np.uint32

    def test_as_addr_array_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            as_addr_array([2**32])

    def test_as_addr_array_passthrough(self):
        orig = np.array([5, 6], dtype=np.uint32)
        assert as_addr_array(orig) is orig


class TestOctets:
    def test_subnet24_zeroes_last_octet(self):
        arr = parse_addrs(["10.1.2.3", "10.1.2.250"])
        assert format_addrs(subnet24_of(arr)) == ["10.1.2.0", "10.1.2.0"]

    def test_last_octet(self):
        arr = parse_addrs(["10.1.2.3", "1.1.1.254"])
        assert list(last_octet(arr)) == [3, 254]

    def test_octet_extraction(self):
        arr = parse_addrs(["11.22.33.44"])
        assert [int(octet(arr, i)[0]) for i in range(4)] == [11, 22, 33, 44]

    def test_octet_rejects_bad_index(self):
        with pytest.raises(AddressError):
            octet(parse_addrs(["1.2.3.4"]), 4)


class TestBlockIndex:
    def test_block_index_24(self):
        arr = parse_addrs(["10.1.2.3", "10.1.2.200", "10.1.3.1"])
        idx = block_index(arr, 24)
        assert idx[0] == idx[1] != idx[2]

    def test_block_index_zero_maps_all_to_one_block(self):
        arr = parse_addrs(["1.1.1.1", "200.2.2.2"])
        assert set(block_index(arr, 0)) == {0}

    def test_block_index_32_is_identity(self):
        arr = parse_addrs(["1.2.3.4"])
        assert block_index(arr, 32)[0] == parse_addr("1.2.3.4")

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            block_index(parse_addrs(["1.2.3.4"]), 33)
