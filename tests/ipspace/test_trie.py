"""Prefix trie longest-prefix matching."""

import pytest

from repro.ipspace.addresses import parse_addr
from repro.ipspace.prefixes import Prefix
from repro.ipspace.trie import PrefixTrie


def build(entries):
    trie = PrefixTrie()
    for text, value in entries:
        trie.insert(Prefix.parse(text), value)
    return trie


class TestInsertLookup:
    def test_exact(self):
        trie = build([("10.0.0.0/8", "a")])
        assert trie.exact(Prefix.parse("10.0.0.0/8")) == "a"

    def test_exact_missing_raises(self):
        trie = build([("10.0.0.0/8", "a")])
        with pytest.raises(KeyError):
            trie.exact(Prefix.parse("10.0.0.0/9"))

    def test_insert_replaces(self):
        trie = build([("10.0.0.0/8", "a"), ("10.0.0.0/8", "b")])
        assert trie.exact(Prefix.parse("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_len(self):
        trie = build([("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("9.0.0.0/8", 3)])
        assert len(trie) == 3


class TestLongestMatch:
    def test_prefers_longest(self):
        trie = build([("10.0.0.0/8", "big"), ("10.1.0.0/16", "small")])
        prefix, value = trie.longest_match(parse_addr("10.1.2.3"))
        assert value == "small" and prefix.length == 16

    def test_falls_back_to_shorter(self):
        trie = build([("10.0.0.0/8", "big"), ("10.1.0.0/16", "small")])
        prefix, value = trie.longest_match(parse_addr("10.2.0.1"))
        assert value == "big" and prefix.length == 8

    def test_no_match(self):
        trie = build([("10.0.0.0/8", "big")])
        assert trie.longest_match(parse_addr("11.0.0.1")) is None

    def test_default_route(self):
        trie = build([("0.0.0.0/0", "default"), ("10.0.0.0/8", "ten")])
        _, value = trie.longest_match(parse_addr("200.0.0.1"))
        assert value == "default"

    def test_host_route(self):
        trie = build([("1.2.3.4/32", "host")])
        assert trie.longest_match(parse_addr("1.2.3.4"))[1] == "host"
        assert trie.longest_match(parse_addr("1.2.3.5")) is None

    def test_covers(self):
        trie = build([("10.0.0.0/8", True)])
        assert trie.covers(parse_addr("10.255.255.255"))
        assert not trie.covers(parse_addr("11.0.0.0"))


class TestRemoveAndItems:
    def test_remove(self):
        trie = build([("10.0.0.0/8", "a"), ("10.1.0.0/16", "b")])
        assert trie.remove(Prefix.parse("10.1.0.0/16"))
        assert trie.longest_match(parse_addr("10.1.2.3"))[1] == "a"
        assert len(trie) == 1

    def test_remove_missing_returns_false(self):
        trie = build([("10.0.0.0/8", "a")])
        assert not trie.remove(Prefix.parse("11.0.0.0/8"))

    def test_items_in_address_order(self):
        trie = build(
            [("192.0.0.0/8", 1), ("10.0.0.0/8", 2), ("10.128.0.0/9", 3)]
        )
        prefixes = trie.prefixes()
        assert [str(p) for p in prefixes] == [
            "10.0.0.0/8",
            "10.128.0.0/9",
            "192.0.0.0/8",
        ]

    def test_routing_table_scenario(self):
        # A small BGP-like table: more-specific wins, withdrawals fall back.
        trie = build(
            [
                ("0.0.0.0/0", "upstream"),
                ("203.0.0.0/12", "peer"),
                ("203.0.113.0/24", "customer"),
            ]
        )
        addr = parse_addr("203.0.113.9")
        assert trie.longest_match(addr)[1] == "customer"
        trie.remove(Prefix.parse("203.0.113.0/24"))
        assert trie.longest_match(addr)[1] == "peer"
        trie.remove(Prefix.parse("203.0.0.0/12"))
        assert trie.longest_match(addr)[1] == "upstream"
