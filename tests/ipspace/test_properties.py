"""Property-based tests for the ipspace substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipspace.addresses import ADDRESS_SPACE_SIZE, format_addr, parse_addr
from repro.ipspace.blocks import vacant_address_totals, vacant_block_histogram
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.ipset import IPSet
from repro.ipspace.prefixes import summarize_range

addresses = st.integers(min_value=0, max_value=ADDRESS_SPACE_SIZE - 1)
address_lists = st.lists(addresses, max_size=200)
intervals = st.tuples(
    st.integers(0, ADDRESS_SPACE_SIZE - 1), st.integers(1, 2**20)
).map(lambda t: (t[0], min(t[0] + t[1], ADDRESS_SPACE_SIZE)))
interval_lists = st.lists(intervals, max_size=20)


@given(addresses)
def test_address_roundtrip(addr):
    assert parse_addr(format_addr(addr)) == addr


@given(address_lists, address_lists)
def test_ipset_algebra_matches_python_sets(a, b):
    sa, sb = IPSet(a), IPSet(b)
    pa, pb = set(a), set(b)
    assert set(sa | sb) == pa | pb
    assert set(sa & sb) == pa & pb
    assert set(sa - sb) == pa - pb
    assert sa.overlap_count(sb) == len(pa & pb)


@given(address_lists)
def test_ipset_invariant_holds(a):
    s = IPSet(a)
    s.validate()
    assert len(s) == len(set(a))


@given(interval_lists, interval_lists)
def test_intervalset_algebra_on_sample_points(a, b):
    sa, sb = IntervalSet(a), IntervalSet(b)
    probes = np.unique(
        np.array(
            [p for s, e in a + b for p in (s, max(s, e - 1), e % ADDRESS_SPACE_SIZE)]
            or [0],
            dtype=np.uint64,
        )
    )
    in_a = sa.contains(probes)
    in_b = sb.contains(probes)
    assert np.array_equal((sa | sb).contains(probes), in_a | in_b)
    assert np.array_equal((sa & sb).contains(probes), in_a & in_b)
    assert np.array_equal((sa - sb).contains(probes), in_a & ~in_b)
    assert np.array_equal(sa.complement().contains(probes), ~in_a)


@given(interval_lists)
def test_interval_sizes_consistent(a):
    s = IntervalSet(a)
    assert s.size() + s.complement().size() == ADDRESS_SPACE_SIZE


@given(interval_lists)
def test_cidr_decomposition_roundtrip(a):
    s = IntervalSet(a)
    assert IntervalSet.from_prefixes(s.to_prefixes()) == s


@given(
    st.integers(0, ADDRESS_SPACE_SIZE - 1),
    st.integers(0, 2**16),
)
def test_summarize_range_covers_exactly(start, length):
    end = min(start + length, ADDRESS_SPACE_SIZE)
    blocks = summarize_range(start, end)
    assert sum(b.size for b in blocks) == end - start
    cursor = start
    for b in sorted(blocks):
        assert b.base == cursor
        cursor = b.end
    # Maximality: no block's supernet fits inside the range.
    for b in blocks:
        if b.length > 0:
            sup = b.supernet()
            assert sup.base < start or sup.end > end


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 2**16 - 1), min_size=0, max_size=50, unique=True)
)
def test_vacancy_conserves_addresses(used):
    universe = IntervalSet([(0, 2**16)])
    arr = np.array(sorted(used), dtype=np.uint32)
    hist = vacant_block_histogram(arr, universe)
    assert vacant_address_totals(hist).sum() == 2**16 - len(used)
    # All vacant blocks fit inside the universe.
    assert hist[:16].sum() == 0
