"""IntervalSet algebra and block counting."""

import numpy as np
import pytest

from repro.ipspace.addresses import ADDRESS_SPACE_SIZE
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.prefixes import Prefix


class TestConstruction:
    def test_merges_adjacent(self):
        s = IntervalSet([(0, 10), (10, 20)])
        assert list(s.intervals()) == [(0, 20)]

    def test_merges_overlapping(self):
        s = IntervalSet([(0, 15), (10, 20), (30, 40)])
        assert list(s.intervals()) == [(0, 20), (30, 40)]

    def test_drops_empty(self):
        assert len(IntervalSet([(5, 5)])) == 0

    def test_rejects_out_of_space(self):
        with pytest.raises(ValueError):
            IntervalSet([(0, ADDRESS_SPACE_SIZE + 1)])

    def test_from_prefixes(self):
        s = IntervalSet.from_prefixes(
            [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.1.0/24")]
        )
        assert s.size() == 512 and s.num_intervals == 1

    def test_everything(self):
        assert IntervalSet.everything().size() == ADDRESS_SPACE_SIZE


class TestMembership:
    def test_contains_vectorised(self):
        s = IntervalSet([(10, 20), (30, 40)])
        got = s.contains(np.array([9, 10, 19, 20, 35]))
        assert list(got) == [False, True, True, False, True]

    def test_contains_scalar(self):
        s = IntervalSet([(10, 20)])
        assert 10 in s and 19 in s and 20 not in s

    def test_empty_set_contains_nothing(self):
        assert not IntervalSet().contains(np.array([0, 1])).any()

    def test_contains_interval(self):
        s = IntervalSet([(10, 100)])
        assert s.contains_interval(10, 100)
        assert s.contains_interval(20, 30)
        assert not s.contains_interval(5, 15)
        assert not s.contains_interval(90, 110)
        assert s.contains_interval(50, 50)  # empty is vacuously inside


class TestAlgebra:
    def test_union(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(5, 20)])
        assert list((a | b).intervals()) == [(0, 20)]

    def test_intersection(self):
        a = IntervalSet([(0, 10), (20, 30)])
        b = IntervalSet([(5, 25)])
        assert list((a & b).intervals()) == [(5, 10), (20, 25)]

    def test_difference(self):
        a = IntervalSet([(0, 30)])
        b = IntervalSet([(10, 20)])
        assert list((a - b).intervals()) == [(0, 10), (20, 30)]

    def test_complement_roundtrip(self):
        s = IntervalSet([(100, 200), (1000, 5000)])
        assert s.complement().complement() == s

    def test_complement_partitions_space(self):
        s = IntervalSet([(0, 50), (80, 120)])
        assert s.size() + s.complement().size() == ADDRESS_SPACE_SIZE

    def test_intersection_with_complement_is_empty(self):
        s = IntervalSet([(7, 77)])
        assert (s & s.complement()).size() == 0

    def test_equality_and_hash(self):
        a = IntervalSet([(0, 10), (10, 20)])
        b = IntervalSet([(0, 20)])
        assert a == b and hash(a) == hash(b)


class TestCidrViews:
    def test_to_prefixes_roundtrip(self):
        s = IntervalSet([(3, 700), (2**20, 2**20 + 2**12)])
        back = IntervalSet.from_prefixes(s.to_prefixes())
        assert back == s

    def test_count_blocks_exact(self):
        # One /24 plus half of another: intersects two /24 blocks.
        s = IntervalSet([(0, 256 + 128)])
        assert s.count_blocks(24) == 2

    def test_count_blocks_shared_boundary(self):
        # Two intervals inside the same /24 must count it once.
        s = IntervalSet([(0, 10), (200, 210)])
        assert s.count_blocks(24) == 1

    def test_count_blocks_whole_space(self):
        assert IntervalSet.everything().count_blocks(0) == 1
        assert IntervalSet.everything().count_blocks(8) == 256

    def test_subnet24_count(self):
        s = IntervalSet.from_prefixes([Prefix.parse("10.0.0.0/22")])
        assert s.subnet24_count() == 4

    def test_count_blocks_rejects_bad_length(self):
        with pytest.raises(ValueError):
            IntervalSet().count_blocks(40)
