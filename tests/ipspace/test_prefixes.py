"""CIDR prefix arithmetic."""

import pytest

from repro.ipspace.addresses import parse_addr
from repro.ipspace.prefixes import (
    Prefix,
    PrefixError,
    parse_prefixes,
    summarize_range,
)


class TestConstruction:
    def test_parse(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.base == parse_addr("10.0.0.0") and p.length == 8

    def test_parse_bare_address_is_host(self):
        assert Prefix.parse("1.2.3.4").length == 32

    def test_rejects_misaligned_base(self):
        with pytest.raises(PrefixError):
            Prefix(parse_addr("10.0.0.1"), 24)

    def test_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix(0, 33)

    def test_containing_aligns(self):
        p = Prefix.containing(parse_addr("10.1.2.3"), 24)
        assert str(p) == "10.1.2.0/24"

    def test_parse_prefixes(self):
        ps = parse_prefixes(["10.0.0.0/8", "192.168.0.0/16"])
        assert [p.length for p in ps] == [8, 16]

    def test_parse_rejects_garbage_length(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/abc")


class TestGeometry:
    def test_size_and_bounds(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.size == 256
        assert p.first == parse_addr("10.0.0.0")
        assert p.last == parse_addr("10.0.0.255")
        assert p.end == p.last + 1

    def test_contains_address(self):
        p = Prefix.parse("10.0.0.0/24")
        assert parse_addr("10.0.0.7") in p
        assert parse_addr("10.0.1.0") not in p

    def test_contains_prefix(self):
        big = Prefix.parse("10.0.0.0/8")
        small = Prefix.parse("10.5.0.0/16")
        assert big.contains_prefix(small)
        assert not small.contains_prefix(big)
        assert big.contains_prefix(big)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/9")
        b = Prefix.parse("10.0.0.0/8")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_ordering_is_by_range(self):
        assert Prefix.parse("9.0.0.0/8") < Prefix.parse("10.0.0.0/8")


class TestHierarchy:
    def test_supernet(self):
        assert str(Prefix.parse("10.128.0.0/9").supernet()) == "10.0.0.0/8"

    def test_supernet_of_zero_fails(self):
        with pytest.raises(PrefixError):
            Prefix(0, 0).supernet()

    def test_split_halves(self):
        low, high = Prefix.parse("10.0.0.0/8").split()
        assert str(low) == "10.0.0.0/9" and str(high) == "10.128.0.0/9"

    def test_split_host_fails(self):
        with pytest.raises(PrefixError):
            Prefix.parse("1.2.3.4").split()

    def test_subnets_enumeration(self):
        subs = list(Prefix.parse("10.0.0.0/22").subnets(24))
        assert len(subs) == 4
        assert str(subs[0]) == "10.0.0.0/24" and str(subs[-1]) == "10.0.3.0/24"

    def test_subnets_rejects_shorter(self):
        with pytest.raises(PrefixError):
            list(Prefix.parse("10.0.0.0/24").subnets(8))


class TestSummarizeRange:
    def test_aligned_block(self):
        blocks = summarize_range(0, 256)
        assert [str(b) for b in blocks] == ["0.0.0.0/24"]

    def test_unaligned_start(self):
        blocks = summarize_range(1, 256)
        assert sum(b.size for b in blocks) == 255
        # Every block is maximal: its supernet must spill out of range.
        for b in blocks:
            if b.length > 0:
                sup = b.supernet()
                assert sup.base < 1 or sup.end > 256

    def test_covers_exactly_no_overlap(self):
        blocks = summarize_range(13, 777)
        covered = []
        for b in blocks:
            covered.extend(range(b.base, b.end))
        assert covered == list(range(13, 777))

    def test_empty_range(self):
        assert summarize_range(10, 10) == []

    def test_full_space(self):
        blocks = summarize_range(0, 2**32)
        assert len(blocks) == 1 and blocks[0].length == 0

    def test_rejects_reversed(self):
        with pytest.raises(Exception):
            summarize_range(20, 10)
