"""Vacant/occupied block accounting and the A-matrix dynamics."""

import numpy as np
import pytest

from repro.ipspace.blocks import (
    NUM_LEVELS,
    allocation_matrix,
    apply_allocations,
    count_occupied_blocks,
    free_ranges,
    occupied_block_histogram,
    range_block_histogram,
    vacant_address_totals,
    vacant_block_histogram,
)
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.prefixes import summarize_range


def brute_force_vacancy(used, universe):
    """Reference implementation via explicit CIDR decomposition."""
    hist = np.zeros(NUM_LEVELS, dtype=np.int64)
    used = sorted(set(int(u) for u in used))
    for start, end in universe.intervals():
        inside = [u for u in used if start <= u < end]
        cursor = start
        pieces = []
        for u in inside:
            if cursor < u:
                pieces.append((cursor, u))
            cursor = u + 1
        if cursor < end:
            pieces.append((cursor, end))
        for s, e in pieces:
            for block in summarize_range(s, e):
                hist[block.length] += 1
    return hist


class TestOccupied:
    def test_count_occupied_blocks(self):
        addrs = np.array([0, 1, 256, 513], dtype=np.uint32)
        assert count_occupied_blocks(addrs, 24) == 3
        assert count_occupied_blocks(addrs, 32) == 4
        assert count_occupied_blocks(addrs, 0) == 1

    def test_empty(self):
        assert count_occupied_blocks(np.array([], dtype=np.uint32), 24) == 0

    def test_histogram_monotone(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 2**32, 5000, dtype=np.uint64).astype(np.uint32)
        hist = occupied_block_histogram(addrs)
        # Occupied blocks can only grow with prefix length.
        assert (np.diff(hist) >= 0).all()
        assert hist[32] == np.unique(addrs).size
        assert hist[0] == 1

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            count_occupied_blocks(np.array([1], dtype=np.uint32), 33)


class TestFreeRanges:
    def test_no_used(self):
        uni = IntervalSet([(0, 100)])
        starts, ends = free_ranges(np.array([], dtype=np.uint32), uni)
        assert list(starts) == [0] and list(ends) == [100]

    def test_splits_around_used(self):
        uni = IntervalSet([(0, 10)])
        starts, ends = free_ranges(np.array([3, 7], dtype=np.uint32), uni)
        assert list(zip(starts, ends)) == [(0, 3), (4, 7), (8, 10)]

    def test_ignores_out_of_universe(self):
        uni = IntervalSet([(0, 10)])
        starts, ends = free_ranges(np.array([50], dtype=np.uint32), uni)
        assert list(zip(starts, ends)) == [(0, 10)]

    def test_used_at_boundaries(self):
        uni = IntervalSet([(0, 10)])
        starts, ends = free_ranges(np.array([0, 9], dtype=np.uint32), uni)
        assert list(zip(starts, ends)) == [(1, 9)]

    def test_fully_used(self):
        uni = IntervalSet([(0, 3)])
        starts, _ = free_ranges(np.array([0, 1, 2], dtype=np.uint32), uni)
        assert len(starts) == 0


class TestVacancyHistogram:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        universe = IntervalSet([(0, 4096), (8192, 8192 + 1024)])
        used = np.unique(
            rng.choice(4096 + 1024, size=60, replace=False)
        ).astype(np.uint32)
        used = np.where(used < 4096, used, used - 4096 + 8192).astype(np.uint32)
        used.sort()
        got = vacant_block_histogram(used, universe)
        expected = brute_force_vacancy(used, universe)
        assert np.array_equal(got, expected)

    def test_address_conservation(self):
        rng = np.random.default_rng(7)
        universe = IntervalSet([(0, 2**20)])
        used = np.unique(rng.integers(0, 2**20, 500)).astype(np.uint32)
        hist = vacant_block_histogram(used, universe)
        free_addresses = vacant_address_totals(hist).sum()
        assert free_addresses == universe.size() - used.size

    def test_empty_universe(self):
        hist = vacant_block_histogram(np.array([], dtype=np.uint32), IntervalSet())
        assert hist.sum() == 0


class TestAllocationMatrix:
    def test_shape_and_invertible(self):
        A = allocation_matrix(1, 32)
        assert A.shape == (32, 32)
        assert abs(np.linalg.det(A)) == 1.0

    def test_diagonal_and_triangle(self):
        A = allocation_matrix(0, 32)
        assert (np.diag(A) == -1).all()
        assert (np.triu(A, 1) == 0).all()
        assert np.array_equal(np.tril(A, -1), np.tril(np.ones_like(A), -1))

    def test_single_address_dynamics(self):
        """Adding one address to an empty /24 leaves one vacant block of
        each longer length — the core Section 7 identity."""
        uni = IntervalSet([(2**24, 2**24 + 256)])
        x0 = vacant_block_histogram(np.array([], dtype=np.uint32), uni)
        x1 = vacant_block_histogram(
            np.array([2**24 + 77], dtype=np.uint32), uni
        )
        n = np.zeros(NUM_LEVELS)
        n[24] = 1
        predicted = apply_allocations(x0, n)
        assert np.array_equal(x1, predicted.astype(np.int64))

    def test_sequential_additions_match_dynamics(self):
        """x' - x = A n holds along a whole random insertion sequence."""
        rng = np.random.default_rng(42)
        uni = IntervalSet([(0, 2**16)])
        A = allocation_matrix(0, 32)
        used: list[int] = []
        x = vacant_block_histogram(np.array([], dtype=np.uint32), uni)
        for _ in range(25):
            candidate = int(rng.integers(0, 2**16))
            if candidate in used:
                continue
            used.append(candidate)
            arr = np.array(sorted(used), dtype=np.uint32)
            x_new = vacant_block_histogram(arr, uni)
            n = np.linalg.solve(A, (x_new - x).astype(float))
            # The solved allocation vector is a one-hot unit vector.
            assert np.isclose(n.sum(), 1.0)
            assert np.isclose(np.abs(n).sum(), 1.0)
            x = x_new

    def test_apply_allocations_shape_check(self):
        with pytest.raises(ValueError):
            apply_allocations(np.zeros(NUM_LEVELS), np.zeros(5))


class TestRangeBlockHistogram:
    def test_single_full_space(self):
        hist = range_block_histogram(
            np.array([0], dtype=np.uint64), np.array([2**32], dtype=np.uint64)
        )
        assert hist[0] == 1 and hist.sum() == 1

    def test_batch_equals_individual(self):
        rng = np.random.default_rng(9)
        ranges = []
        for _ in range(20):
            a = int(rng.integers(0, 2**32 - 10))
            b = a + int(rng.integers(1, 10_000))
            ranges.append((a, min(b, 2**32)))
        starts = np.array([r[0] for r in ranges], dtype=np.uint64)
        ends = np.array([r[1] for r in ranges], dtype=np.uint64)
        batch = range_block_histogram(starts, ends)
        individual = np.zeros(NUM_LEVELS, dtype=np.int64)
        for a, b in ranges:
            for block in summarize_range(a, b):
                individual[block.length] += 1
        assert np.array_equal(batch, individual)
