"""Property-based tests for prefix/interval interplay."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipspace.addresses import ADDRESS_SPACE_SIZE
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.prefixes import Prefix, summarize_range

lengths = st.integers(0, 32)
addresses = st.integers(0, ADDRESS_SPACE_SIZE - 1)


@given(addresses, lengths)
def test_containing_contains(addr, length):
    prefix = Prefix.containing(addr, length)
    assert addr in prefix
    assert prefix.length == length


@given(addresses, lengths)
def test_containing_is_aligned_and_unique(addr, length):
    prefix = Prefix.containing(addr, length)
    # Every other address in the block maps back to the same prefix.
    assert Prefix.containing(prefix.first, length) == prefix
    assert Prefix.containing(prefix.last, length) == prefix


@given(addresses, st.integers(1, 32))
def test_supernet_of_containing(addr, length):
    prefix = Prefix.containing(addr, length)
    assert prefix.supernet() == Prefix.containing(addr, length - 1)
    assert prefix.supernet().contains_prefix(prefix)


@given(addresses, st.integers(0, 31))
def test_split_partitions(addr, length):
    prefix = Prefix.containing(addr, length)
    low, high = prefix.split()
    assert low.end == high.base
    assert low.base == prefix.base and high.end == prefix.end
    assert low.size + high.size == prefix.size


@given(addresses, lengths)
def test_summarize_of_whole_prefix_is_itself(addr, length):
    prefix = Prefix.containing(addr, length)
    assert summarize_range(prefix.base, prefix.end) == [prefix]


@given(addresses, st.integers(8, 32))
def test_interval_block_count_of_prefix(addr, length):
    """A /L block intersects exactly 2^(l-L) /l blocks for l >= L and
    exactly one for l < L."""
    prefix = Prefix.containing(addr, length)
    space = IntervalSet.from_prefixes([prefix])
    for l in (length - 4, length, min(32, length + 4)):
        if l < 0:
            continue
        expected = 2 ** (l - length) if l >= length else 1
        assert space.count_blocks(l) == expected


@settings(max_examples=30)
@given(st.lists(st.tuples(addresses, st.integers(16, 32)), max_size=8))
def test_prefix_union_size_bounds(items):
    prefixes = [Prefix.containing(a, l) for a, l in items]
    space = IntervalSet.from_prefixes(prefixes)
    total = sum(p.size for p in prefixes)
    biggest = max((p.size for p in prefixes), default=0)
    assert space.size() <= total
    assert space.size() >= biggest
