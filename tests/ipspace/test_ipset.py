"""IPSet behaviour."""

import numpy as np
import pytest

from repro.ipspace.addresses import parse_addr
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.ipset import IPSet


class TestConstruction:
    def test_from_strings(self):
        s = IPSet(["1.2.3.4", "1.2.3.4", "0.0.0.1"])
        assert len(s) == 2
        assert list(s) == [1, parse_addr("1.2.3.4")]

    def test_from_ints_sorted_deduped(self):
        s = IPSet([5, 3, 5, 1])
        assert list(s.addresses) == [1, 3, 5]

    def test_empty(self):
        assert len(IPSet.empty()) == 0 and not IPSet.empty()

    def test_from_sorted_unique_fast_path(self):
        arr = np.array([1, 2, 3], dtype=np.uint32)
        s = IPSet.from_sorted_unique(arr)
        s.validate()
        assert len(s) == 3

    def test_validate_catches_violation(self):
        s = IPSet.from_sorted_unique(np.array([3, 1], dtype=np.uint32))
        with pytest.raises(AssertionError):
            s.validate()

    def test_equality_and_hash(self):
        assert IPSet([1, 2]) == IPSet([2, 1])
        assert hash(IPSet([1, 2])) == hash(IPSet([2, 1]))


class TestMembership:
    def test_contains_vectorised(self):
        s = IPSet([10, 20, 30])
        assert list(s.contains(np.array([10, 15, 30, 31]))) == [
            True,
            False,
            True,
            False,
        ]

    def test_contains_scalar(self):
        s = IPSet([10])
        assert 10 in s and 11 not in s

    def test_empty_contains_nothing(self):
        assert not IPSet.empty().contains(np.array([1])).any()


class TestAlgebra:
    def test_union_matches_python_sets(self):
        a, b = IPSet([1, 2, 3]), IPSet([3, 4])
        assert set(a | b) == {1, 2, 3, 4}

    def test_multiway_union(self):
        a = IPSet([1]).union(IPSet([2]), IPSet([3]))
        assert set(a) == {1, 2, 3}

    def test_intersection(self):
        assert set(IPSet([1, 2, 3]) & IPSet([2, 3, 4])) == {2, 3}

    def test_difference(self):
        assert set(IPSet([1, 2, 3]) - IPSet([2])) == {1, 3}

    def test_overlap_count(self):
        a, b = IPSet(range(100)), IPSet(range(50, 150))
        assert a.overlap_count(b) == 50
        assert b.overlap_count(a) == 50

    def test_overlap_count_with_empty(self):
        assert IPSet([1, 2]).overlap_count(IPSet.empty()) == 0


class TestRestriction:
    def test_restrict(self):
        s = IPSet([5, 15, 25])
        assert set(s.restrict(IntervalSet([(10, 20)]))) == {15}

    def test_exclude(self):
        s = IPSet([5, 15, 25])
        assert set(s.exclude(IntervalSet([(10, 20)]))) == {5, 25}

    def test_restrict_empty_set(self):
        assert len(IPSet.empty().restrict(IntervalSet([(0, 10)]))) == 0

    def test_subnets24(self):
        s = IPSet(["10.0.0.1", "10.0.0.99", "10.0.1.1"])
        assert set(s.subnets24()) == {
            parse_addr("10.0.0.0"),
            parse_addr("10.0.1.0"),
        }

    def test_filter_mask(self):
        s = IPSet([1, 2, 3])
        kept = s.filter_mask(np.array([True, False, True]))
        assert set(kept) == {1, 3}

    def test_filter_mask_shape_check(self):
        with pytest.raises(ValueError):
            IPSet([1, 2]).filter_mask(np.array([True]))

    def test_sample(self, rng):
        s = IPSet(range(1000))
        sub = s.sample(100, rng)
        assert len(sub) == 100
        assert set(sub) <= set(range(1000))

    def test_sample_larger_than_set_returns_all(self, rng):
        s = IPSet([1, 2, 3])
        assert s.sample(10, rng) == s
