"""End-to-end paper-shape integration tests.

These assert the headline qualitative results of the paper hold on the
simulator — the bar the full benchmark suite measures in detail.
"""

from repro.analysis.windows import TimeWindow


class TestHeadlineNumbers:
    def test_paper_utilisation_shape(self, tiny_pipeline, last_window_result,
                                     tiny_internet):
        """Paper: ~45 % of routed addresses and ~60 % of routed /24s
        estimated used at end-June 2014."""
        r = last_window_result
        addr_util = r.estimated_addresses / r.routed_addresses
        sub_util = r.estimated_subnets / r.routed_subnets
        assert 0.25 < addr_util < 0.60
        assert 0.45 < sub_util < 0.75

    def test_ping_undercounts_badly(self, last_window_result):
        """Paper: pinging alone misses more than half the used space."""
        r = last_window_result
        assert r.ping_addresses < 0.55 * r.truth_addresses

    def test_correction_factor_exceeds_heidemann(self, last_window_result):
        """Paper: est/ping = 2.6-2.7 > the 1.86 factor of [3]."""
        r = last_window_result
        assert r.estimated_addresses / r.ping_addresses > 1.86

    def test_estimate_closer_than_observed_both_levels(
        self, last_window_result
    ):
        r = last_window_result
        assert abs(r.estimated_addresses - r.truth_addresses) < abs(
            r.observed_addresses - r.truth_addresses
        )
        assert abs(r.estimated_subnets - r.truth_subnets) <= abs(
            r.observed_subnets - r.truth_subnets
        )

    def test_growth_direction(self, tiny_pipeline):
        first = tiny_pipeline.run_window(TimeWindow(2011.0, 2012.0))
        last = tiny_pipeline.run_window(TimeWindow(2013.5, 2014.5))
        assert last.estimated_addresses > 1.15 * first.estimated_addresses
        assert last.estimated_subnets > first.estimated_subnets


class TestEstimateRanges:
    def test_window_range_is_narrow(self, tiny_pipeline, last_window,
                                    last_window_result):
        """The paper: the Fig 4/5 estimate ranges are within a few
        percent of the point estimates (±1 % for /24s, ±3 % for
        addresses at full scale; wider at simulation scale)."""
        interval = tiny_pipeline.address_estimator(
            last_window
        ).profile_interval(alpha=1e-7)
        point = last_window_result.estimated_addresses
        assert interval.population_low <= point <= interval.population_high
        width = interval.population_high - interval.population_low
        assert width < 0.15 * point


class TestGroundTruthNetworks:
    def test_cr_beats_observation_on_networks(self, tiny_pipeline,
                                              tiny_internet, last_window):
        """Table 4's pattern: per-network CR estimates land closer to
        the truth than raw observation for most networks."""
        from repro.core.estimator import CaptureRecapture, EstimatorOptions
        from repro.ipspace.intervals import IntervalSet
        from repro.ipspace.ipset import IPSet

        datasets = tiny_pipeline.datasets(last_window)
        wins = 0
        networks = tiny_internet.ground_truth_networks()
        for network in networks:
            prefix = network.allocation.prefix
            block = IntervalSet([(prefix.base, prefix.end)])
            local = {
                name: d.restrict(block)
                for name, d in datasets.items()
            }
            local = {n: d for n, d in local.items() if len(d) > 0}
            if len(local) < 3:
                continue
            observed = len(IPSet.empty().union(*local.values()))
            est = CaptureRecapture(
                local,
                EstimatorOptions(limit=float(prefix.size), divisor=1),
            ).estimate()
            truth = tiny_internet.population.peak_simultaneous_usage(
                network.allocation, last_window.midpoint
            )
            if abs(est.population - truth) < abs(observed - truth):
                wins += 1
        assert wins >= len(networks) - 2
