"""Source-level data faults: parsing, determinism, semantics."""

import pickle

import numpy as np
import pytest

from repro.engine.faults import (
    FaultSpec,
    FaultySource,
    SourceFaultSpec,
    apply_source_faults,
    parse_fault,
)
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.ipset import IPSet
from repro.ipspace.prefixes import Prefix
from repro.sources.base import MeasurementSource, quarter_of


class _StubSource(MeasurementSource):
    """Deterministic per-quarter content: 50 addresses per quarter."""

    def __init__(self, name="STUB", available_from=2011.0):
        super().__init__(name, available_from=available_from)

    def collect(self, start, end):
        lo = max(start, self.available_from)
        hi = min(end, self.available_to)
        if lo >= hi:
            return IPSet.empty()
        chunks = [
            np.arange(q * 100, q * 100 + 50, dtype=np.uint32)
            for q in range(quarter_of(lo), quarter_of(hi - 1e-9) + 1)
        ]
        return IPSet(np.concatenate(chunks))


class TestSpecParsing:
    def test_full_form(self):
        spec = SourceFaultSpec.parse("source:SWIN:spoof:200000:2013.5")
        assert spec == SourceFaultSpec("SWIN", "spoof", 200000.0, 2013.5)

    def test_default_amount(self):
        spec = SourceFaultSpec.parse("source:SPAM:drop")
        assert spec.amount == 0.0 and spec.start == float("-inf")

    def test_empty_amount_field_keeps_default(self):
        spec = SourceFaultSpec.parse("source:MLAB:drop::2014.0")
        assert spec.amount == 0.0 and spec.start == 2014.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SourceFaultSpec.parse("source:SWIN:melt")

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError, match="source fault spec"):
            SourceFaultSpec.parse("SWIN:spoof")

    def test_truncate_amount_is_fraction(self):
        with pytest.raises(ValueError, match="truncate"):
            SourceFaultSpec("SWIN", "truncate", 2.0)

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SourceFaultSpec("SWIN", "skew", -1.0)

    def test_parse_fault_dispatches(self):
        assert isinstance(
            parse_fault("source:SWIN:drop"), SourceFaultSpec
        )
        assert isinstance(parse_fault("tabulate:error"), FaultSpec)


class TestFaultSemantics:
    def test_drop_empties_after_onset_only(self):
        faulty = FaultySource(
            _StubSource(), [SourceFaultSpec("STUB", "drop", start=2013.0)]
        )
        assert len(faulty.collect(2012.0, 2013.0)) == len(
            _StubSource().collect(2012.0, 2013.0)
        )
        assert len(faulty.collect(2013.0, 2014.0)) == 0

    def test_truncate_keeps_roughly_the_fraction(self):
        faulty = FaultySource(
            _StubSource(), [SourceFaultSpec("STUB", "truncate", 0.5)]
        )
        base = _StubSource().collect(2012.0, 2013.0)
        kept = faulty.collect(2012.0, 2013.0)
        assert 0.3 * len(base) < len(kept) < 0.7 * len(base)
        assert base.contains(kept.addresses).all()

    def test_duplicate_unions_stale_quarters(self):
        faulty = FaultySource(
            _StubSource(), [SourceFaultSpec("STUB", "duplicate", 2.0)]
        )
        window = faulty.collect(2013.0, 2013.25)
        base = _StubSource().collect(2012.5, 2013.25)
        assert len(window) == len(base)

    def test_skew_serves_the_past(self):
        faulty = FaultySource(
            _StubSource(), [SourceFaultSpec("STUB", "skew", 1.0)]
        )
        skewed = faulty.collect(2013.0, 2014.0)
        past = _StubSource().collect(2012.0, 2013.0)
        assert np.array_equal(skewed.addresses, past.addresses)

    def test_spoof_draws_inside_support(self):
        support = IntervalSet.from_prefixes([Prefix.parse("200.0.0.0/8")])
        faulty = FaultySource(
            _StubSource(),
            [SourceFaultSpec("STUB", "spoof", 500.0)],
            spoof_support=support,
        )
        data = faulty.collect(2013.0, 2013.25)
        injected = data.addresses[data.addresses >= 0xC8000000]
        assert len(injected) > 400
        assert (injected < 0xC9000000).all()

    def test_onset_respects_quarters(self):
        faulty = FaultySource(
            _StubSource(),
            [SourceFaultSpec("STUB", "drop", start=2013.25)],
        )
        # Window straddling the onset keeps the pre-onset quarter.
        window = faulty.collect(2013.0, 2013.5)
        assert len(window) == 50


class TestDeterminism:
    def test_same_seed_same_data(self):
        spec = [SourceFaultSpec("STUB", "truncate", 0.5)]
        a = FaultySource(_StubSource(), spec, seed=3)
        b = FaultySource(_StubSource(), spec, seed=3)
        assert np.array_equal(
            a.collect(2012.0, 2014.0).addresses,
            b.collect(2012.0, 2014.0).addresses,
        )

    def test_different_seed_different_data(self):
        spec = [SourceFaultSpec("STUB", "truncate", 0.5)]
        a = FaultySource(_StubSource(), spec, seed=3)
        b = FaultySource(_StubSource(), spec, seed=4)
        assert not np.array_equal(
            a.collect(2012.0, 2014.0).addresses,
            b.collect(2012.0, 2014.0).addresses,
        )

    def test_pickle_roundtrip_preserves_draws(self):
        support = IntervalSet.from_prefixes([Prefix.parse("200.0.0.0/8")])
        faulty = FaultySource(
            _StubSource(),
            [SourceFaultSpec("STUB", "spoof", 500.0)],
            seed=11,
            spoof_support=support,
        )
        clone = pickle.loads(pickle.dumps(faulty))
        assert np.array_equal(
            faulty.collect(2013.0, 2014.0).addresses,
            clone.collect(2013.0, 2014.0).addresses,
        )


class TestApplySourceFaults:
    def test_wraps_only_targets(self):
        sources = {"A": _StubSource("A"), "B": _StubSource("B")}
        wrapped = apply_source_faults(sources, ["source:A:drop"])
        assert isinstance(wrapped["A"], FaultySource)
        assert wrapped["B"] is sources["B"]

    def test_wildcard_wraps_all(self):
        sources = {"A": _StubSource("A"), "B": _StubSource("B")}
        wrapped = apply_source_faults(sources, ["source:*:drop"])
        assert all(isinstance(s, FaultySource) for s in wrapped.values())
        assert all(len(s.collect(2012.0, 2013.0)) == 0
                   for s in wrapped.values())

    def test_unknown_source_raises(self):
        with pytest.raises(ValueError, match="NOPE"):
            apply_source_faults({"A": _StubSource("A")}, ["source:NOPE:drop"])

    def test_availability_is_delegated(self):
        src = _StubSource(available_from=2013.0)
        wrapped = apply_source_faults({"STUB": src}, ["source:STUB:drop"])
        assert not wrapped["STUB"].available_in(2011.0, 2012.0)
        assert wrapped["STUB"].available_in(2013.0, 2014.0)
