"""Quarantine policy: verdicts, presets, the min-sources floor."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrity import (
    POLICY_PRESETS,
    VERDICT_OK,
    VERDICT_QUARANTINED,
    VERDICT_SUSPECT,
    QuarantinePolicy,
    evaluate_health,
)
from repro.ipspace.ipset import IPSet
from repro.ipspace.prefixes import Prefix

NAN = float("nan")


class TestJudge:
    def test_all_clean(self):
        policy = QuarantinePolicy()
        assert policy.judge(0.0, 1.0, 0.1) == (VERDICT_OK, ())

    def test_nan_is_no_evidence(self):
        policy = QuarantinePolicy()
        assert policy.judge(NAN, NAN, NAN) == (VERDICT_OK, ())

    def test_suspect_threshold(self):
        policy = QuarantinePolicy()
        verdict, reasons = policy.judge(0.05, 1.0, 0.1)
        assert verdict == VERDICT_SUSPECT
        assert "bogon_fraction" in reasons[0]

    def test_quarantine_wins_over_suspect(self):
        policy = QuarantinePolicy()
        verdict, reasons = policy.judge(0.05, 50.0, 0.1)
        assert verdict == VERDICT_QUARANTINED
        assert len(reasons) == 2

    def test_each_check_can_quarantine(self):
        policy = QuarantinePolicy()
        for scores in ((0.5, NAN, NAN), (NAN, 20.0, NAN), (NAN, NAN, 2.0)):
            assert policy.judge(*scores)[0] == VERDICT_QUARANTINED

    def test_disabled_judges_nothing(self):
        policy = QuarantinePolicy.named("off")
        assert policy.judge(1.0, 100.0, 10.0) == (VERDICT_OK, ())

    def test_severity_ranks_worst_first(self):
        policy = QuarantinePolicy()
        mild = policy.severity(NAN, 13.0, NAN)
        wild = policy.severity(NAN, 50.0, NAN)
        assert wild > mild > 1.0


class TestPresets:
    def test_all_presets_resolve(self):
        for name in POLICY_PRESETS:
            assert isinstance(QuarantinePolicy.named(name), QuarantinePolicy)

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown quarantine policy"):
            QuarantinePolicy.named("paranoid")

    def test_strict_is_tighter_than_lenient(self):
        strict = QuarantinePolicy.named("strict")
        lenient = QuarantinePolicy.named("lenient")
        assert strict.zscore_quarantine < lenient.zscore_quarantine
        assert strict.agreement_quarantine < lenient.agreement_quarantine
        assert strict.bogon_quarantine < lenient.bogon_quarantine

    def test_invalid_thresholds_raise(self):
        with pytest.raises(ValueError, match="thresholds"):
            QuarantinePolicy(zscore_suspect=10.0, zscore_quarantine=5.0)
        with pytest.raises(ValueError, match="min_sources"):
            QuarantinePolicy(min_sources=1)

    def test_policy_is_hashable(self):
        assert hash(QuarantinePolicy()) == hash(QuarantinePolicy())
        assert QuarantinePolicy() != QuarantinePolicy.named("strict")


def _datasets(n, size=200):
    return {
        f"S{i}": IPSet(np.arange(i * size, (i + 1) * size, dtype=np.uint32))
        for i in range(n)
    }


class TestEvaluateHealth:
    def test_min_sources_floor_demotes(self):
        # Every source fails the bogon check outright, but the policy
        # must keep at least min_sources in the fit: the mildest
        # offenders are demoted to suspect.
        datasets = _datasets(5)
        blocks = [Prefix(0, 8)]  # 0.0.0.0/8 covers every dataset
        report = evaluate_health(
            datasets,
            policy=QuarantinePolicy(min_sources=3),
            empty_blocks=blocks,
        )
        assert len(report.quarantined) == 2
        demoted = [
            h for h in report.sources
            if h.verdict == VERDICT_SUSPECT
            and any("min_sources" in r for r in h.reasons)
        ]
        assert len(demoted) == 3

    def test_clean_report_accessors(self):
        report = evaluate_health(
            _datasets(4), policy=QuarantinePolicy()
        )
        assert set(report.ok) == {"S0", "S1", "S2", "S3"}
        assert report.suspect == () and report.quarantined == ()
        assert not report.is_degraded
        assert report.verdict_of("S1") == VERDICT_OK
        with pytest.raises(KeyError):
            report.verdict_of("NOPE")

    def test_dropped_marks_degraded(self):
        report = evaluate_health(
            _datasets(4),
            policy=QuarantinePolicy(),
            dropped=(("S9", "empty_after_preprocess"),),
        )
        assert report.is_degraded

    def test_quarter_counts_feed_zscore(self):
        counts = {
            "S0": ((1000, 1050, 1100, 1160, 1220, 1280), (90_000,)),
        }
        report = evaluate_health(
            _datasets(4), policy=QuarantinePolicy(), quarter_counts=counts
        )
        assert report.verdict_of("S0") == VERDICT_QUARANTINED
        assert math.isnan(report.sources[1].capture_zscore)


class TestCleanSourcesScoreOkProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_clean_sources_are_never_flagged(self, seed):
        """Healthy captures of a growing population always judge ok.

        The false-positive property the whole subsystem rests on: a
        population growing at a steady rate, sampled independently by
        4-6 sources with stable capture probabilities and steadily
        growing raw counts, must never be marked suspect or
        quarantined under the default policy.
        """
        rng = np.random.default_rng(seed)
        n_sources = int(rng.integers(4, 7))
        probs = rng.uniform(0.2, 0.6, n_sources)
        growth = rng.uniform(1.02, 1.15)
        cur_size = int(rng.integers(2000, 4000))
        prev_size = int(cur_size / growth)
        population = np.sort(
            rng.choice(2**30, size=cur_size, replace=False)
        ).astype(np.uint32)
        prev, cur, counts = {}, {}, {}
        for i, p in enumerate(probs):
            name = f"S{i}"
            prev_mask = rng.random(prev_size) < p
            cur_mask = rng.random(cur_size) < p
            prev[name] = IPSet.from_sorted_unique(
                population[:prev_size][prev_mask]
            )
            cur[name] = IPSet.from_sorted_unique(population[cur_mask])
            # Raw counts compound the same growth with a little noise.
            q = growth**0.25
            base = 500 * p
            counts[name] = (
                tuple(
                    int(base * q**k * rng.uniform(0.97, 1.03))
                    for k in range(6)
                ),
                tuple(
                    int(base * q**(6 + k) * rng.uniform(0.97, 1.03))
                    for k in range(4)
                ),
            )
        report = evaluate_health(
            cur,
            policy=QuarantinePolicy(),
            previous=prev,
            quarter_counts=counts,
        )
        assert report.suspect == ()
        assert report.quarantined == ()
