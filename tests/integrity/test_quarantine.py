"""End-to-end: detect, quarantine, refit — gracefully degraded windows.

The acceptance scenario for the integrity subsystem: a spoof flood is
seeded into one NetFlow source mid-sweep.  With the default policy the
pipeline must notice (capture-count z-score plus consensus departure),
quarantine the source, refit on the remaining eight and land within a
few percent of the clean-run estimate; with the policy off, the
corrupted filter output flows into the fit and the estimate moves by
measurably more.
"""

import numpy as np
import pytest

from repro.analysis.crossval import cross_validate_window
from repro.analysis.pipeline import EstimationPipeline, PipelineOptions
from repro.analysis.windows import TimeWindow
from repro.engine.faults import apply_source_faults
from repro.integrity import QuarantinePolicy

#: The seeded flood: 200k spoofed addresses per quarter into SWIN
#: (NetFlow) starting exactly at the final window's first quarter.
FLOOD = ["source:SWIN:spoof:200000:2013.5"]


@pytest.fixture(scope="module")
def flooded_sources(tiny_internet, tiny_sources):
    return apply_source_faults(
        tiny_sources,
        FLOOD,
        seed=9,
        spoof_support=tiny_internet.registry.allocated_space(),
    )


def _pipeline(internet, sources, policy):
    return EstimationPipeline(
        internet,
        sources,
        PipelineOptions(min_stratum_observed=25, quarantine=policy),
    )


class TestCleanRunsStayClean:
    def test_no_source_flagged_across_the_sweep(self, tiny_pipeline):
        from repro.analysis.windows import standard_windows

        for window in standard_windows()[-4:]:
            report = tiny_pipeline.window_health(window)
            assert report.suspect == (), window
            assert report.quarantined == (), window

    def test_clean_window_result_not_degraded(self, last_window_result):
        assert last_window_result.excluded_sources == ()
        assert not last_window_result.is_degraded
        assert last_window_result.health is not None
        assert last_window_result.suspect_bracket is None


class TestQuarantineAndRefit:
    def test_flooded_source_is_quarantined_and_refit_tracks_clean(
        self, tiny_internet, flooded_sources, tiny_pipeline, last_window
    ):
        clean = tiny_pipeline.run_window(last_window).estimated_addresses

        guarded = _pipeline(
            tiny_internet, flooded_sources, QuarantinePolicy()
        ).run_window(last_window)
        assert guarded.excluded_sources == ("SWIN",)
        assert guarded.is_degraded
        assert guarded.health.verdict_of("SWIN") == "quarantined"
        record = next(
            h for h in guarded.health.sources if h.source == "SWIN"
        )
        assert record.capture_zscore > 12
        guarded_dev = abs(guarded.estimated_addresses - clean) / clean

        unguarded = _pipeline(
            tiny_internet, flooded_sources, QuarantinePolicy.named("off")
        ).run_window(last_window)
        assert unguarded.excluded_sources == ()
        assert unguarded.health is None
        unguarded_dev = abs(unguarded.estimated_addresses - clean) / clean

        # The acceptance criterion: refit stays within 5% of clean,
        # the unguarded estimate deviates by more.
        assert guarded_dev < 0.05
        assert unguarded_dev > 0.05
        assert unguarded_dev > 2 * guarded_dev

    def test_crossval_folds_realign_on_survivors(
        self, tiny_internet, flooded_sources, last_window
    ):
        pipeline = _pipeline(
            tiny_internet, flooded_sources, QuarantinePolicy()
        )
        results = cross_validate_window(pipeline, last_window)
        assert all(r.source != "SWIN" for r in results)
        assert len(results) == 8

    def test_quarantine_emits_observability(
        self, tiny_internet, flooded_sources, last_window
    ):
        import json

        from repro.obs.observer import Observer

        observer = Observer()
        pipeline = EstimationPipeline(
            tiny_internet,
            flooded_sources,
            PipelineOptions(min_stratum_observed=25),
            observer=observer,
        )
        pipeline.run_window(last_window)
        metrics = json.loads(observer.metrics.to_json_text())
        quarantined = [
            c for c in metrics["counters"]
            if c["name"] == "source_quarantined_total"
        ]
        assert quarantined and quarantined[0]["labels"] == {"source": "SWIN"}
        verdicts = [
            c for c in metrics["counters"]
            if c["name"] == "source_health_verdicts_total"
            and c["labels"] == {"source": "SWIN", "verdict": "quarantined"}
        ]
        assert verdicts and verdicts[0]["value"] == 1.0
        events = [
            e for e in observer.events
            if e["name"] == "integrity.quarantine"
        ]
        assert len(events) == 1
        assert events[0]["source"] == "SWIN"


class TestSuspectBracket:
    def test_duplicate_fault_brackets_the_estimate(
        self, tiny_internet, tiny_sources, tiny_pipeline, last_window
    ):
        # A stale-duplicate fault inflates WIKI mildly: suspect-level
        # z-score, not quarantine.  The headline estimate keeps WIKI
        # but reports the with/without sensitivity bracket.
        sources = apply_source_faults(
            tiny_sources, ["source:WIKI:duplicate:2:2013.5"], seed=9
        )
        result = _pipeline(
            tiny_internet, sources, QuarantinePolicy()
        ).run_window(last_window)
        assert result.excluded_sources == ()
        assert "WIKI" in result.health.suspect
        low, high = result.suspect_bracket
        assert 0 < low <= high
        assert np.isfinite(high)
        clean = tiny_pipeline.run_window(last_window).estimated_addresses
        assert low < clean * 1.1 and high > clean * 0.9


class TestPerWindowEmptySource:
    def test_spoof_filter_drop_is_recorded(
        self, tiny_internet, tiny_sources, last_window
    ):
        # Flood CALT hard enough that the filter collapses it: if the
        # filtered dataset ever empties, the window must record the
        # drop rather than fit a degenerate all-zero column.  (At this
        # scale the filter usually keeps a sliver; either way the
        # window result stays finite and accounted.)
        sources = apply_source_faults(
            tiny_sources,
            ["source:CALT:spoof:400000:2013.5"],
            seed=9,
            spoof_support=tiny_internet.registry.allocated_space(),
        )
        result = _pipeline(
            tiny_internet, sources, QuarantinePolicy()
        ).run_window(last_window)
        assert np.isfinite(result.estimated_addresses)
        health = result.health
        dropped_names = {name for name, _ in health.dropped}
        assert "CALT" in dropped_names or any(
            h.source == "CALT" for h in health.sources
        )
