"""Unit tests for the per-source health checks."""

import math

import numpy as np
import pytest

from repro.integrity.checks import (
    agreement_scores,
    bogon_fraction,
    capture_count_zscore,
)
from repro.ipspace.ipset import IPSet
from repro.ipspace.prefixes import Prefix


class TestBogonFraction:
    def test_counts_addresses_inside_blocks(self):
        blocks = [Prefix.parse("10.0.0.0/24")]
        inside = np.arange(0x0A000000, 0x0A000010, dtype=np.uint32)
        outside = np.arange(0x14000000, 0x14000030, dtype=np.uint32)
        dataset = IPSet(np.concatenate([inside, outside]))
        assert bogon_fraction(dataset, blocks) == pytest.approx(16 / 64)

    def test_no_blocks_is_nan(self):
        assert math.isnan(bogon_fraction(IPSet([1, 2, 3]), []))

    def test_empty_dataset_is_nan(self):
        assert math.isnan(
            bogon_fraction(IPSet.empty(), [Prefix.parse("10.0.0.0/24")])
        )

    def test_all_inside(self):
        blocks = [Prefix.parse("10.0.0.0/24")]
        dataset = IPSet(np.arange(0x0A000000, 0x0A000020, dtype=np.uint32))
        assert bogon_fraction(dataset, blocks) == 1.0


class TestCaptureCountZscore:
    def test_steady_growth_scores_low(self):
        # 5% growth per quarter: the log-diff sequence is constant, so
        # continuing it should surprise nobody.
        counts = [int(1000 * 1.05**k) for k in range(10)]
        z = capture_count_zscore(counts[:6], counts[6:])
        assert z < 1.0

    def test_flood_scores_high(self):
        trailing = [int(1000 * 1.05**k) for k in range(6)]
        current = [200_000, 210_000, 220_000, 230_000]
        assert capture_count_zscore(trailing, current) > 12

    def test_dropout_scores_high(self):
        trailing = [int(1000 * 1.05**k) for k in range(6)]
        assert capture_count_zscore(trailing, [1300, 0, 0, 0]) > 12

    def test_short_history_is_nan(self):
        assert math.isnan(capture_count_zscore([100, 110, 120], [130]))

    def test_no_current_is_nan(self):
        assert math.isnan(capture_count_zscore([100] * 6, []))

    def test_noisy_baseline_absorbs_wiggle(self):
        # A source whose counts already wiggle needs a bigger jump.
        trailing = [1000, 1400, 900, 1500, 950, 1450]
        z_same = capture_count_zscore(trailing, [1000, 1450])
        assert z_same < 3


def _two_window_samples(rng, prev_size, cur_size, probs):
    """Independent captures of a growing population, both windows."""
    population = np.sort(
        rng.choice(2**30, size=cur_size, replace=False)
    ).astype(np.uint32)
    prev_pop = population[:prev_size]
    prev, cur = {}, {}
    for i, p in enumerate(probs):
        name = f"S{i}"
        prev[name] = IPSet.from_sorted_unique(
            prev_pop[rng.random(prev_size) < p]
        )
        cur[name] = IPSet.from_sorted_unique(
            population[rng.random(cur_size) < p]
        )
    return prev, cur


class TestAgreementScores:
    def test_clean_growth_scores_near_zero(self):
        rng = np.random.default_rng(7)
        prev, cur = _two_window_samples(
            rng, 3000, 3300, [0.3, 0.4, 0.5, 0.35, 0.45]
        )
        _, _, scores = agreement_scores(cur, prev)
        assert all(np.isfinite(list(scores.values())))
        assert max(scores.values()) < 0.3

    def test_poisoned_source_stands_out(self):
        rng = np.random.default_rng(7)
        prev, cur = _two_window_samples(
            rng, 3000, 3300, [0.3, 0.4, 0.5, 0.35, 0.45]
        )
        # Flood S0's current window with addresses nobody else sees:
        # every pair it participates in blows up, the others don't move.
        junk = (2**30 + np.arange(40_000, dtype=np.uint32)).astype(np.uint32)
        cur["S0"] = cur["S0"].union(IPSet(junk))
        _, _, scores = agreement_scores(cur, prev)
        assert scores["S0"] > 1.0
        assert all(
            scores[name] < 0.5 for name in scores if name != "S0"
        )

    def test_no_previous_is_nan(self):
        rng = np.random.default_rng(7)
        _, cur = _two_window_samples(rng, 3000, 3300, [0.3, 0.4, 0.5, 0.35])
        names, matrix, scores = agreement_scores(cur)
        assert all(math.isnan(v) for v in scores.values())
        # The matrix itself is still produced (it is the diagnostic).
        off_diagonal = matrix[~np.isnan(matrix)]
        assert off_diagonal.size == len(names) * (len(names) - 1)

    def test_too_few_sources_is_nan(self):
        rng = np.random.default_rng(7)
        prev, cur = _two_window_samples(rng, 3000, 3300, [0.4, 0.5, 0.6])
        _, _, scores = agreement_scores(cur, prev)
        assert all(math.isnan(v) for v in scores.values())

    def test_source_missing_from_previous_is_nan(self):
        rng = np.random.default_rng(7)
        prev, cur = _two_window_samples(
            rng, 3000, 3300, [0.3, 0.4, 0.5, 0.35, 0.45]
        )
        del prev["S2"]
        _, _, scores = agreement_scores(cur, prev)
        assert math.isnan(scores["S2"])
        assert np.isfinite(scores["S0"])

    def test_matrix_is_symmetric(self):
        rng = np.random.default_rng(7)
        _, cur = _two_window_samples(rng, 3000, 3300, [0.3, 0.4, 0.5, 0.35])
        _, matrix, _ = agreement_scores(cur)
        filled = np.nan_to_num(matrix)
        assert np.allclose(filled, filled.T)
