"""The unified Session facade and the legacy-constructor shims."""

import warnings

import numpy as np
import pytest

from repro import Session
from repro.analysis.pipeline import EstimationPipeline
from repro.core.estimator import CaptureRecapture
from repro.engine.stages import PipelineOptions
from repro.stream.estimator import StreamEstimator
from repro.stream.journal import journal_from_sources


@pytest.fixture()
def toy_sets(rng):
    from tests.conftest import make_independent_sources

    _, sources = make_independent_sources(rng, 2000, [0.4, 0.5, 0.3])
    return sources


class TestConstruction:
    def test_direct_construction_is_rejected(self):
        with pytest.raises(TypeError, match="from_sets"):
            Session()

    def test_from_sets_requires_two_sources(self, toy_sets):
        only = {"S0": next(iter(toy_sets.values()))}
        with pytest.raises(ValueError, match="at least two"):
            Session.from_sets(only)

    def test_repr_names_the_mode(self, toy_sets):
        assert "sets" in repr(Session.from_sets(toy_sets))


class TestModeGating:
    def test_sets_session_has_no_sweep(self, toy_sets):
        session = Session.from_sets(toy_sets)
        with pytest.raises(ValueError, match="from_simulation"):
            session.sweep()

    def test_sets_session_has_no_stream(self, toy_sets):
        session = Session.from_sets(toy_sets)
        with pytest.raises(ValueError, match="from_journal"):
            session.stream()

    def test_sets_estimate_rejects_window(self, toy_sets, last_window):
        session = Session.from_sets(toy_sets)
        with pytest.raises(ValueError, match="no time axis"):
            session.estimate(window=last_window)

    def test_simulation_session_has_no_stream(self, tiny_internet):
        session = Session.from_simulation(tiny_internet)
        with pytest.raises(ValueError, match="from_journal"):
            session.stream()

    def test_journal_session_has_no_campaign_spec(self, tiny_internet, tmp_path):
        session = Session.from_journal(tmp_path / "journal", internet=tiny_internet)
        with pytest.raises(ValueError, match="from_simulation"):
            session.campaign_spec()


class TestFacadeEquivalence:
    def test_from_sets_matches_capture_recapture(self, toy_sets):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = CaptureRecapture(toy_sets).estimate()
        unified = Session.from_sets(toy_sets).estimate()
        assert unified.population == pytest.approx(legacy.population)
        assert unified.observed == legacy.observed
        assert unified.terms == legacy.terms

    def test_from_simulation_matches_pipeline(
        self, tiny_internet, tiny_sources, last_window, last_window_result
    ):
        session = Session.from_simulation(
            tiny_internet,
            sources=tiny_sources,
            options=PipelineOptions(min_stratum_observed=25),
        )
        result = session.estimate(last_window)
        np.testing.assert_allclose(
            result.estimated_addresses,
            last_window_result.estimated_addresses,
            rtol=1e-8,
        )
        assert result.excluded_sources == last_window_result.excluded_sources

    def test_from_journal_streams_the_latest_coverable_window(
        self, tiny_internet, tiny_sources, tmp_path, first_window, tiny_pipeline
    ):
        journal_from_sources(
            tiny_sources, tmp_path / "journal", through=2012.0
        )
        session = Session.from_journal(
            tmp_path / "journal",
            internet=tiny_internet,
            options=PipelineOptions(min_stratum_observed=25),
        )
        stream = session.stream()
        assert isinstance(stream, StreamEstimator)
        result = session.estimate()  # latest coverable == the first window
        assert result.window == first_window
        batch = tiny_pipeline.run_window(first_window)
        np.testing.assert_allclose(
            result.estimated_addresses, batch.estimated_addresses, rtol=1e-8
        )

    def test_empty_journal_estimate_is_a_clear_error(
        self, tiny_internet, tmp_path
    ):
        session = Session.from_journal(
            tmp_path / "journal", internet=tiny_internet
        )
        with pytest.raises(ValueError, match="no fully-covered"):
            session.estimate()

    def test_campaign_spec_captures_the_session_shape(self, tiny_internet):
        options = PipelineOptions(min_stratum_observed=25)
        session = Session.from_simulation(
            tiny_internet, scale_log2=-13, seed=123, options=options
        )
        spec = session.campaign_spec(drop_sources=("WIKI",))
        assert spec.scale_log2 == -13
        assert spec.seed == 123
        assert spec.drop_sources == ("WIKI",)
        assert len(spec.windows) == 11
        assert spec.options == options


class TestDeprecationShims:
    def test_capture_recapture_warns_externally(self, toy_sets):
        with pytest.warns(DeprecationWarning, match="Session.from_sets"):
            CaptureRecapture(toy_sets)

    def test_estimation_pipeline_warns_externally(
        self, tiny_internet, tiny_sources
    ):
        with pytest.warns(DeprecationWarning, match="Session.from_simulation"):
            EstimationPipeline(tiny_internet, tiny_sources)

    def test_session_internal_use_is_silent(self, toy_sets):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Session.from_sets(toy_sets).estimate()
