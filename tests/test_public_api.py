"""The consolidated public surface and its deprecation shims.

`repro.__all__` is a contract: star-import exposes exactly the
documented names.  Renamed keywords keep working through
`DeprecationWarning` aliases that resolve to identical objects.
"""

import dataclasses
import warnings

import pytest

import repro
from repro.core.estimator import EstimatorOptions
from repro.engine.executor import ExecutionPolicy


class TestStarImport:
    def test_star_import_matches_all(self):
        ns = {}
        exec("from repro import *", ns)
        public = {k for k in ns if not k.startswith("_")}
        assert public == set(repro.__all__) - {"__version__"}

    def test_one_stop_objects_reexported(self):
        for name in (
            "CaptureRecapture", "EstimatorOptions", "ExecutionPolicy",
            "Executor", "FaultInjector", "FaultSpec", "RunReport",
            "WindowResult", "Observer", "MetricsRegistry", "RunLedger",
            "Tracer", "get_global_metrics", "render_run_report",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name

    def test_subpackages_define_all(self):
        import repro.analysis
        import repro.core
        import repro.engine
        import repro.ipspace
        import repro.obs
        import repro.service
        import repro.simnet
        import repro.sources

        for pkg in (
            repro.analysis, repro.core, repro.engine, repro.ipspace,
            repro.obs, repro.service, repro.simnet, repro.sources,
        ):
            assert pkg.__all__, pkg.__name__
            for name in pkg.__all__:
                assert hasattr(pkg, name), f"{pkg.__name__}.{name}"


class TestExecutionPolicyAliases:
    def test_canonical_and_alias_resolve_identically(self):
        with pytest.warns(DeprecationWarning, match="max_retries"):
            aliased = ExecutionPolicy(max_retries=3)
        assert aliased == ExecutionPolicy(retries=3)
        assert hash(aliased) == hash(ExecutionPolicy(retries=3))

    def test_timeout_aliases(self):
        canonical = ExecutionPolicy(task_timeout=5.0)
        for spelling in ("timeout_s", "timeout"):
            with pytest.warns(DeprecationWarning, match="task_timeout"):
                assert ExecutionPolicy(**{spelling: 5.0}) == canonical

    def test_canonical_spelling_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ExecutionPolicy(retries=2, task_timeout=1.0)

    def test_both_spellings_conflict(self):
        with pytest.raises(TypeError, match="retries"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            ExecutionPolicy(retries=1, max_retries=2)

    def test_unknown_kwarg_still_a_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            ExecutionPolicy(nonsense=1)

    def test_dataclass_machinery_survives_the_shim(self):
        policy = ExecutionPolicy(retries=2)
        assert dataclasses.replace(policy, retries=3).retries == 3
        assert dataclasses.asdict(policy)["retries"] == 2


class TestEstimatorOptionsAliases:
    def test_truncation_limit_alias(self):
        with pytest.warns(DeprecationWarning, match="limit"):
            aliased = EstimatorOptions(truncation_limit=100.0)
        assert aliased == EstimatorOptions(limit=100.0)

    def test_min_observed_alias(self):
        with pytest.warns(DeprecationWarning, match="min_stratum_observed"):
            aliased = EstimatorOptions(min_observed=5)
        assert aliased == EstimatorOptions(min_stratum_observed=5)

    def test_canonical_spelling_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            EstimatorOptions(limit=10.0, min_stratum_observed=2)

    def test_positional_construction_still_works(self):
        opts = EstimatorOptions("aic", 10)
        assert opts.criterion == "aic"
        assert opts.divisor == 10


class TestFitkernelGlobalsDeprecated:
    def test_totals_read_warns_but_works(self):
        from repro.core import fitkernel

        fitkernel.reset_counters()
        fitkernel.record(fits=1)
        with pytest.warns(DeprecationWarning, match="get_global_metrics"):
            totals = fitkernel._TOTALS
        assert totals["fits"] == 1
        fitkernel.reset_counters()

    def test_lock_read_warns(self):
        from repro.core import fitkernel

        with pytest.warns(DeprecationWarning):
            assert fitkernel._LOCK is not None

    def test_unknown_attribute_raises(self):
        from repro.core import fitkernel

        with pytest.raises(AttributeError):
            fitkernel._NO_SUCH_NAME
