"""The example scripts stay runnable (they are part of the API surface)."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "log-linear CR estimate" in out
        assert "true population" in out

    def test_dhcp_churn_study(self):
        out = run_example("dhcp_churn_study.py")
        assert "after saturation" in out
        assert "/24 datasets are robust" in out

    def test_federated_estimate(self):
        out = run_example("federated_estimate.py")
        assert "federated == plaintext" in out

    def test_census_campaign_small(self):
        out = run_example("census_campaign.py", "--scale-log2", "-14")
        assert "estimated growth" in out
        assert "Used IPv4 addresses per window" in out

    def test_model_inspection(self):
        out = run_example("model_inspection.py")
        assert "stepwise selection path" in out
        assert "leave-one-out leverage" in out
        assert "bootstrap SE" in out
