"""Dataset preprocessing."""

from repro.filtering.preprocess import preprocess_dataset
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.ipset import IPSet
from repro.ipspace.addresses import parse_addr


class TestPreprocess:
    def test_removes_special_and_unrouted(self):
        routed = IntervalSet([(parse_addr("9.0.0.0"), parse_addr("9.1.0.0"))])
        raw = IPSet(["10.0.0.1",      # private
                     "224.0.0.5",     # multicast
                     "9.0.0.7",       # routed -> keep
                     "9.200.0.1"])    # public but unrouted
        report = preprocess_dataset(raw, routed)
        assert set(report.dataset) == {parse_addr("9.0.0.7")}
        assert report.special_removed == 2
        assert report.unrouted_removed == 1
        assert report.raw_count == 4
        assert report.kept == 1

    def test_empty_dataset(self):
        report = preprocess_dataset(IPSet.empty(), IntervalSet([(0, 100)]))
        assert report.kept == 0 and report.raw_count == 0

    def test_conservation(self):
        routed = IntervalSet([(2**24, 2**25)])
        raw = IPSet(range(2**24 - 10, 2**24 + 10))
        report = preprocess_dataset(raw, routed)
        assert (
            report.kept + report.special_removed + report.unrouted_removed
            == report.raw_count
        )

    def test_pipeline_datasets_are_routed_only(self, tiny_pipeline,
                                               tiny_internet, last_window):
        routed = tiny_internet.routing.window(
            last_window.start, last_window.end
        )
        for name, dataset in tiny_pipeline.datasets(last_window).items():
            assert routed.contains(dataset.addresses).all(), name
