"""The two-stage spoof-removal heuristic (Section 4.5)."""

import numpy as np
import pytest

from repro.filtering.spoof_filter import (
    SpoofFilter,
    binomial_threshold,
    detect_empty_blocks,
)
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.ipset import IPSet
from repro.ipspace.prefixes import Prefix
from repro.simnet.density import LAST_BYTE_PMF


class TestBinomialThreshold:
    def test_zero_density(self):
        assert binomial_threshold(0.0) == 0

    def test_paper_magnitude(self):
        """S ~ 12.5 k per /8 -> p ~ 7.5e-4 -> m around 5-8."""
        m = binomial_threshold(12_500 / 2**24)
        assert 4 <= m <= 9

    def test_monotone_in_density(self):
        densities = [1e-5, 1e-4, 1e-3, 1e-2]
        thresholds = [binomial_threshold(d) for d in densities]
        assert thresholds == sorted(thresholds)

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            binomial_threshold(1.5)


class TestDetectEmptyBlocks:
    def test_detects_planted_darknets(self, tiny_pipeline, tiny_internet,
                                      last_window):
        datasets = tiny_pipeline.datasets(last_window, spoof_filtering=False)
        refs = (
            datasets["WIKI"] | datasets["WEB"] | datasets["MLAB"]
            | datasets["GAME"]
        )
        candidates = [
            a.prefix for a in tiny_internet.registry
            if a.routed_from < last_window.end
        ]
        empty = detect_empty_blocks(
            datasets["SWIN"] | datasets["CALT"], refs, candidates
        )
        darknet_prefixes = {
            a.prefix for a in tiny_internet.darknet_allocations
        }
        assert darknet_prefixes <= set(empty)
        # No heavily used block is misclassified as empty.
        pop24 = tiny_internet.population.used_ipset(
            last_window.start, last_window.end
        )
        for prefix in empty:
            inside = (
                (pop24.addresses >= prefix.base)
                & (pop24.addresses < prefix.end)
            ).sum()
            assert inside / prefix.size < 0.01

    def test_small_candidates_skipped(self):
        suspect = IPSet(range(1000, 1050))
        refs = IPSet.empty()
        candidates = [Prefix(0, 24)]  # size 256 < min_size
        assert detect_empty_blocks(suspect, refs, candidates) == []


def synthetic_filter_setup(rng, n_legit=4000, spoof_density=8e-4):
    """A hand-built universe with known legit/spoof separation."""
    # Routed space: 4 /16 blocks, one of which is an empty darknet.
    blocks = [Prefix.parse("10.0.0.0/16"), Prefix.parse("20.0.0.0/16"),
              Prefix.parse("30.0.0.0/16"), Prefix.parse("40.0.0.0/16")]
    routed = IntervalSet.from_prefixes(blocks)
    darknet = blocks[3]
    # Legitimate addresses cluster in used /24s with biased last bytes.
    legit = []
    used24 = rng.choice(3 * 256, size=150, replace=False)
    for block24 in used24:
        block_idx, sub = divmod(int(block24), 256)
        base = blocks[block_idx].base + sub * 256
        count = int(rng.integers(8, 120))
        bytes_ = rng.choice(256, size=count, replace=False,
                            p=LAST_BYTE_PMF)
        legit.extend(base + b for b in bytes_)
    legit = np.array(sorted(set(legit)), dtype=np.uint32)[:n_legit]
    # Spoofs: uniform over the whole routed space.
    n_spoof = int(spoof_density * routed.size())
    offsets = rng.integers(0, routed.size(), n_spoof)
    starts = np.array([b.base for b in blocks], dtype=np.uint64)
    spoof = (starts[offsets // 2**16] + (offsets % 2**16)).astype(np.uint32)
    suspect = IPSet(np.concatenate([legit, spoof]))
    references = IPSet(legit[rng.random(len(legit)) < 0.4])
    return routed, darknet, IPSet(legit), spoof, suspect, references


class TestSpoofFilterEndToEnd:
    def test_removes_most_spoof_keeps_most_legit(self, rng):
        routed, darknet, legit, spoof, suspect, refs = synthetic_filter_setup(rng)
        filt = SpoofFilter(refs, routed, [darknet], seed=1)
        report = filt.apply(suspect)
        kept = report.filtered
        spoof_set = IPSet(spoof) - legit
        residual_spoof = kept.overlap_count(spoof_set)
        kept_legit = kept.overlap_count(legit)
        assert residual_spoof < 0.5 * len(spoof_set)
        assert kept_legit > 0.9 * len(legit)

    def test_density_estimate_close(self, rng):
        routed, darknet, legit, spoof, suspect, refs = synthetic_filter_setup(
            rng, spoof_density=8e-4
        )
        filt = SpoofFilter(refs, routed, [darknet], seed=1)
        assert filt.estimate_density(suspect) == pytest.approx(8e-4, rel=0.5)

    def test_darknet_emptied(self, rng):
        routed, darknet, legit, spoof, suspect, refs = synthetic_filter_setup(rng)
        report = SpoofFilter(refs, routed, [darknet], seed=1).apply(suspect)
        addrs = report.filtered.addresses
        inside = (addrs >= darknet.base) & (addrs < darknet.end)
        assert inside.sum() < 5

    def test_clean_dataset_mostly_untouched(self, rng):
        routed, darknet, legit, _, _, refs = synthetic_filter_setup(
            rng, spoof_density=0.0
        )
        report = SpoofFilter(refs, routed, [darknet], seed=1).apply(legit)
        assert report.spoof_density == 0.0
        assert report.threshold_m == 0
        assert report.kept == len(legit)

    def test_requires_empty_blocks(self, rng):
        routed, _, legit, _, _, refs = synthetic_filter_setup(rng)
        with pytest.raises(ValueError):
            SpoofFilter(refs, routed, [], seed=1)

    def test_report_accounting(self, rng):
        routed, darknet, legit, spoof, suspect, refs = synthetic_filter_setup(rng)
        report = SpoofFilter(refs, routed, [darknet], seed=1).apply(suspect)
        assert (
            report.kept + report.removed_stage1 + report.removed_stage2
            == len(suspect)
        )
        assert report.s_per_slash8 == pytest.approx(
            report.spoof_density * 2**24
        )


class TestPipelineIntegration:
    def test_filtering_reduces_netflow_24s(self, tiny_pipeline, last_window):
        raw = tiny_pipeline.datasets(last_window, spoof_filtering=False)
        filtered = tiny_pipeline.datasets(last_window, spoof_filtering=True)
        for name in ("SWIN", "CALT"):
            assert len(filtered[name].subnets24()) < len(raw[name].subnets24())

    def test_non_netflow_untouched(self, tiny_pipeline, last_window):
        raw = tiny_pipeline.datasets(last_window, spoof_filtering=False)
        filtered = tiny_pipeline.datasets(last_window, spoof_filtering=True)
        for name in ("WIKI", "WEB", "IPING"):
            assert raw[name] == filtered[name]
