"""Capture-history tabulation and contingency tables."""

import numpy as np
import pytest

from repro.core.histories import (
    ContingencyTable,
    history_masks,
    tabulate_histories,
    tabulate_within_universe,
)
from repro.ipspace.ipset import IPSet


def small_table():
    """Three sources with known overlaps."""
    s1 = IPSet([1, 2, 3, 4])
    s2 = IPSet([3, 4, 5])
    s3 = IPSet([4, 5, 6])
    return tabulate_histories({"a": s1, "b": s2, "c": s3})


class TestTabulate:
    def test_counts_by_history(self):
        table = small_table()
        # individual 1,2 -> only source a (mask 0b001=1)
        assert table.counts[0b001] == 2
        # 3 -> a+b (0b011)
        assert table.counts[0b011] == 1
        # 4 -> all (0b111)
        assert table.counts[0b111] == 1
        # 5 -> b+c (0b110)
        assert table.counts[0b110] == 1
        # 6 -> c only (0b100)
        assert table.counts[0b100] == 1
        assert table.counts[0] == 0

    def test_num_observed_is_union(self):
        assert small_table().num_observed == 6

    def test_source_names_kept(self):
        assert small_table().source_names == ("a", "b", "c")

    def test_sequence_input(self):
        table = tabulate_histories([IPSet([1]), IPSet([1, 2])])
        assert table.num_observed == 2 and table.source_names == ()

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            tabulate_histories({})

    def test_source_total(self):
        table = small_table()
        assert table.source_total(0) == 4
        assert table.source_total(1) == 3
        assert table.source_total(2) == 3

    def test_overlap(self):
        table = small_table()
        assert table.overlap(0, 1) == 2  # {3, 4}
        assert table.overlap(0, 2) == 1  # {4}
        assert table.overlap(1, 2) == 2  # {4, 5}

    def test_index_bounds_checked(self):
        with pytest.raises(IndexError):
            small_table().source_total(3)


class TestContingencyValidation:
    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ContingencyTable(2, np.array([0, 1, 2]))

    def test_rejects_nonzero_unobserved(self):
        with pytest.raises(ValueError):
            ContingencyTable(1, np.array([5, 1]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ContingencyTable(1, np.array([0, -1]))

    def test_rejects_name_mismatch(self):
        with pytest.raises(ValueError):
            ContingencyTable(1, np.array([0, 1]), source_names=("a", "b"))


class TestFrequencies:
    def test_capture_frequencies(self):
        freqs = small_table().capture_frequencies
        # 3 singletons (1,2,6), 2 doubletons (3,5), 1 tripleton (4).
        assert list(freqs) == [0, 3, 2, 1]

    def test_frequencies_sum_to_observed(self):
        table = small_table()
        assert table.capture_frequencies.sum() == table.num_observed

    def test_positive_minimum(self):
        assert small_table().positive_minimum() == 1
        empty = ContingencyTable(2, np.array([0, 0, 0, 0]))
        assert empty.positive_minimum() == 0


class TestCollapse:
    def test_collapse_to_pair(self):
        reduced = small_table().collapse([0, 1])
        assert reduced.num_sources == 2
        # Individual 6 was only in source c -> now unobserved, dropped.
        assert reduced.num_observed == 5
        assert reduced.source_names == ("a", "b")

    def test_collapse_reorders(self):
        reduced = small_table().collapse([2, 0])
        assert reduced.source_total(0) == 3  # old c
        assert reduced.source_total(1) == 4  # old a

    def test_collapse_bad_index(self):
        with pytest.raises(IndexError):
            small_table().collapse([0, 5])


class TestScaled:
    def test_integer_division(self):
        table = ContingencyTable(2, np.array([0, 10, 25, 7]))
        scaled = table.scaled(10)
        assert list(scaled.counts) == [0, 1, 2, 0]

    def test_divisor_one_is_identity(self):
        table = small_table()
        assert np.array_equal(table.scaled(1).counts, table.counts)

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            small_table().scaled(0)


class TestHistoryMasks:
    def test_masks(self):
        arrays = [
            np.array([1, 2], dtype=np.uint32),
            np.array([2, 3], dtype=np.uint32),
        ]
        union, masks = history_masks(arrays)
        assert list(union) == [1, 2, 3]
        assert list(masks) == [0b01, 0b11, 0b10]

    def test_empty_source_ok(self):
        union, masks = history_masks(
            [np.array([], dtype=np.uint32), np.array([7], dtype=np.uint32)]
        )
        assert list(union) == [7] and list(masks) == [0b10]


class TestWithinUniverse:
    def test_restriction_and_truth(self):
        universe = IPSet([1, 2, 3, 4, 5])
        others = {
            "x": IPSet([1, 2, 99]),  # 99 outside universe
            "y": IPSet([2, 3]),
        }
        table, unseen = tabulate_within_universe(universe, others)
        assert table.num_observed == 3  # {1,2,3}
        assert unseen == 2  # {4,5}

    def test_sequence_variant(self):
        universe = IPSet([1, 2])
        table, unseen = tabulate_within_universe(
            universe, [IPSet([1]), IPSet([3])]
        )
        assert table.num_observed == 1 and unseen == 1

    def test_empty_universe(self):
        table, unseen = tabulate_within_universe(
            IPSet.empty(), {"x": IPSet([1, 2]), "y": IPSet([2, 3])}
        )
        assert table.num_observed == 0
        assert unseen == 0

    def test_source_fully_outside_universe(self):
        universe = IPSet([10, 11, 12])
        table, unseen = tabulate_within_universe(
            universe, {"x": IPSet([1, 2, 3]), "y": IPSet([10, 11])}
        )
        # x restricts to nothing: it observes no one, but keeps its
        # history bit so the table dimension matches the source count.
        assert table.num_sources == 2
        assert table.num_observed == 2  # {10, 11} via y only
        assert unseen == 1  # {12}

    def test_dict_and_sequence_agree(self):
        universe = IPSet([1, 2, 3, 4, 5, 6])
        sets = [IPSet([1, 2, 99]), IPSet([2, 3]), IPSet([5, 6, 7])]
        as_dict = {f"s{i}": s for i, s in enumerate(sets)}
        table_seq, unseen_seq = tabulate_within_universe(universe, sets)
        table_dict, unseen_dict = tabulate_within_universe(universe, as_dict)
        assert np.array_equal(table_seq.counts, table_dict.counts)
        assert unseen_seq == unseen_dict == 1  # {4}
