"""Profile-likelihood intervals."""

import pytest

from repro.core.design import main_effect_terms
from repro.core.histories import tabulate_histories
from repro.core.loglinear import LoglinearModel
from repro.core.profile_ci import profile_likelihood_interval
from tests.conftest import make_independent_sources


@pytest.fixture(scope="module")
def independent_setup():
    import numpy as np

    rng = np.random.default_rng(99)
    N, sources = make_independent_sources(rng, 20_000, [0.3, 0.35, 0.25])
    table = tabulate_histories(sources)
    return N, table


class TestProfileInterval:
    def test_mode_near_point_estimate(self, independent_setup):
        _, table = independent_setup
        terms = main_effect_terms(3)
        point = LoglinearModel(3, terms).fit(table).unseen_estimate()
        interval = profile_likelihood_interval(table, terms, alpha=0.05)
        assert interval.unseen_mode == pytest.approx(point, rel=0.02)

    def test_interval_contains_truth(self, independent_setup):
        N, table = independent_setup
        interval = profile_likelihood_interval(
            table, main_effect_terms(3), alpha=0.05
        )
        assert interval.contains(N)

    def test_interval_ordering(self, independent_setup):
        _, table = independent_setup
        iv = profile_likelihood_interval(table, main_effect_terms(3), alpha=0.05)
        assert iv.population_low <= iv.population_high
        assert iv.unseen_low <= iv.unseen_mode <= iv.unseen_high
        assert iv.population_low >= table.num_observed

    def test_smaller_alpha_widens(self, independent_setup):
        _, table = independent_setup
        terms = main_effect_terms(3)
        narrow = profile_likelihood_interval(table, terms, alpha=0.1)
        wide = profile_likelihood_interval(table, terms, alpha=1e-7)
        assert wide.population_low <= narrow.population_low
        assert wide.population_high >= narrow.population_high
        assert (wide.population_high - wide.population_low) > (
            narrow.population_high - narrow.population_low
        )

    def test_paper_alpha_is_default(self, independent_setup):
        _, table = independent_setup
        iv = profile_likelihood_interval(table, main_effect_terms(3))
        assert iv.alpha == 1e-7

    def test_bad_alpha_rejected(self, independent_setup):
        _, table = independent_setup
        with pytest.raises(ValueError):
            profile_likelihood_interval(table, main_effect_terms(3), alpha=0.0)
