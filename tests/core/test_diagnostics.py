"""Model-fit diagnostics."""

import numpy as np
import pytest

from repro.core.design import hierarchical_closure, main_effect_terms
from repro.core.diagnostics import diagnose_fit
from repro.core.histories import tabulate_histories
from repro.core.loglinear import LoglinearModel
from repro.ipspace.ipset import IPSet
from tests.conftest import make_independent_sources

F = frozenset


@pytest.fixture(scope="module")
def dependent_table():
    rng = np.random.default_rng(4)
    N = 30_000
    pop = np.sort(rng.choice(2**30, N, replace=False)).astype(np.uint32)
    cluster = rng.random(N) < 0.5
    prob0 = np.where(cluster, 0.5, 0.1)
    prob1 = np.where(cluster, 0.45, 0.12)
    sources = {
        "a": IPSet.from_sorted_unique(pop[rng.random(N) < prob0]),
        "b": IPSet.from_sorted_unique(pop[rng.random(N) < prob1]),
        "c": IPSet.from_sorted_unique(pop[rng.random(N) < 0.3]),
    }
    return tabulate_histories(sources)


class TestDiagnostics:
    def test_good_model_fits_well(self, rng):
        _, sources = make_independent_sources(rng, 30_000, [0.3, 0.35, 0.3])
        table = tabulate_histories(sources)
        fit = LoglinearModel(3, main_effect_terms(3)).fit(table)
        diag = diagnose_fit(fit)
        # Independence is the true model: chi2 near its dof.
        assert diag.dof == 7 - 4
        assert diag.pearson_chi2 < 5 * diag.dof + 10

    def test_misspecified_model_flagged(self, dependent_table):
        """Fitting independence to dependent data produces a huge
        Pearson statistic; adding the needed term repairs it."""
        bad = LoglinearModel(3, main_effect_terms(3)).fit(dependent_table)
        good = LoglinearModel(
            3, hierarchical_closure([F([0, 1]), F([2])])
        ).fit(dependent_table)
        bad_diag = diagnose_fit(bad)
        good_diag = diagnose_fit(good)
        assert bad_diag.pearson_chi2 > 10 * max(good_diag.pearson_chi2, 1.0)
        assert bad_diag.pearson_pvalue < 1e-6

    def test_worst_cells_point_at_missing_interaction(self, dependent_table):
        fit = LoglinearModel(3, main_effect_terms(3)).fit(dependent_table)
        worst = diagnose_fit(fit).worst_cells(2)
        # The a-b overlap cells (histories containing bits 0 and 1)
        # should dominate the misfit.
        assert any((r.history & 0b11) == 0b11 for r in worst)

    def test_residuals_cover_all_cells(self, dependent_table):
        fit = LoglinearModel(3, main_effect_terms(3)).fit(dependent_table)
        diag = diagnose_fit(fit)
        assert len(diag.residuals) == 7
        assert {r.history for r in diag.residuals} == set(range(1, 8))

    def test_history_string(self, dependent_table):
        fit = LoglinearModel(3, main_effect_terms(3)).fit(dependent_table)
        diag = diagnose_fit(fit)
        cell = next(r for r in diag.residuals if r.history == 0b101)
        assert cell.history_string(3) == "101"

    def test_saturated_like_model_zero_dof(self, rng):
        _, sources = make_independent_sources(rng, 5_000, [0.4, 0.4])
        table = tabulate_histories(sources)
        # Two sources: main effects + intercept = 3 params, 3 cells.
        fit = LoglinearModel(2, main_effect_terms(2)).fit(table)
        diag = diagnose_fit(fit)
        assert diag.dof == 0
        assert np.isnan(diag.pearson_pvalue)
        assert diag.pearson_chi2 == pytest.approx(0.0, abs=1e-4)
