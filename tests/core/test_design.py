"""Log-linear design matrices and hierarchy."""

import numpy as np
import pytest

from repro.core.design import (
    describe_terms,
    design_matrix,
    hierarchical_closure,
    interaction_terms,
    is_hierarchical,
    main_effect_terms,
    pairwise_terms,
    term_order,
    validate_terms,
)

F = frozenset


class TestTermSets:
    def test_main_effects(self):
        assert main_effect_terms(3) == {F([0]), F([1]), F([2])}

    def test_pairwise(self):
        assert set(pairwise_terms(3)) == {F([0, 1]), F([0, 2]), F([1, 2])}

    def test_interaction_terms_order(self):
        assert len(interaction_terms(5, 3)) == 10

    def test_interaction_rejects_bad_order(self):
        with pytest.raises(ValueError):
            interaction_terms(3, 0)


class TestHierarchy:
    def test_closure_adds_subsets(self):
        closed = hierarchical_closure([F([0, 1, 2])])
        assert closed == {
            F([0]), F([1]), F([2]),
            F([0, 1]), F([0, 2]), F([1, 2]),
            F([0, 1, 2]),
        }

    def test_is_hierarchical(self):
        assert is_hierarchical(main_effect_terms(4))
        assert not is_hierarchical([F([0, 1])])  # missing main effects

    def test_closure_rejects_empty_term(self):
        with pytest.raises(ValueError):
            hierarchical_closure([F()])

    def test_validate_rejects_unknown_source(self):
        with pytest.raises(ValueError):
            validate_terms(2, [F([0]), F([5])])

    def test_validate_rejects_saturated_term(self):
        # u_{12...t} is fixed at zero by convention.
        with pytest.raises(ValueError):
            validate_terms(2, hierarchical_closure([F([0, 1])]))

    def test_validate_rejects_non_hierarchical(self):
        with pytest.raises(ValueError):
            validate_terms(3, [F([0]), F([1]), F([0, 2])])


class TestDesignMatrix:
    def test_independence_model_shape(self):
        X, ordered = design_matrix(3, main_effect_terms(3))
        assert X.shape == (7, 4)
        assert ordered == term_order(main_effect_terms(3))

    def test_intercept_column_all_ones(self):
        X, _ = design_matrix(3, main_effect_terms(3))
        assert (X[:, 0] == 1).all()

    def test_membership_semantics(self):
        """Column for term {i} is 1 exactly when bit i of history set."""
        X, ordered = design_matrix(3, main_effect_terms(3))
        histories = np.arange(1, 8)
        for col, term in enumerate(ordered, start=1):
            (bit,) = term
            expected = (histories >> bit) & 1
            assert np.array_equal(X[:, col], expected.astype(float))

    def test_interaction_column(self):
        terms = hierarchical_closure([F([0, 1])])
        X, ordered = design_matrix(3, terms)
        col = 1 + ordered.index(F([0, 1]))
        histories = np.arange(1, 8)
        expected = ((histories & 0b11) == 0b11).astype(float)
        assert np.array_equal(X[:, col], expected)

    def test_include_unobserved_prepends_intercept_row(self):
        X, _ = design_matrix(2, main_effect_terms(2), include_unobserved=True)
        assert X.shape == (4, 3)
        assert list(X[0]) == [1.0, 0.0, 0.0]

    def test_full_rank_for_hierarchical_models(self):
        terms = hierarchical_closure([F([0, 1]), F([1, 2]), F([2, 3])])
        X, _ = design_matrix(4, terms)
        assert np.linalg.matrix_rank(X) == X.shape[1]


class TestDescribe:
    def test_describe_with_names(self):
        text = describe_terms(
            hierarchical_closure([F([0, 1])]), ("ping", "web")
        )
        assert "[ping]" in text and "[ping*web]" in text

    def test_describe_empty(self):
        assert describe_terms([]) == "[intercept only]"
