"""Bootstrap uncertainty for CR estimates."""

import numpy as np
import pytest

from repro.core.bootstrap import (
    BootstrapResult,
    bootstrap_population,
    resample_table,
)
from repro.core.design import main_effect_terms
from repro.core.histories import ContingencyTable, tabulate_histories
from tests.conftest import make_independent_sources


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(77)
    N, sources = make_independent_sources(rng, 20_000, [0.3, 0.35, 0.25])
    return N, tabulate_histories(sources)


class TestResample:
    def test_total_preserved(self, setup):
        _, table = setup
        rng = np.random.default_rng(1)
        replicate = resample_table(table, rng)
        assert replicate.num_observed == table.num_observed
        assert replicate.counts[0] == 0
        assert replicate.source_names == table.source_names

    def test_replicates_vary(self, setup):
        _, table = setup
        rng = np.random.default_rng(1)
        a = resample_table(table, rng)
        b = resample_table(table, rng)
        assert not np.array_equal(a.counts, b.counts)

    def test_empty_rejected(self):
        table = ContingencyTable(2, np.array([0, 0, 0, 0]))
        with pytest.raises(ValueError):
            resample_table(table, np.random.default_rng(0))


class TestBootstrap:
    def test_interval_calibrated_against_truth(self, setup):
        """A single experiment's CI may just miss the truth (that is
        what confidence means), but the point estimate must sit within
        a few bootstrap SEs of it, and the interval must bracket the
        point estimate."""
        N, table = setup
        result = bootstrap_population(
            table, main_effect_terms(3), num_replicates=100, seed=3
        )
        lo, hi = result.interval
        assert lo < result.point < hi
        assert abs(result.point - N) < 4.5 * result.standard_error

    def test_standard_error_reasonable(self, setup):
        N, table = setup
        result = bootstrap_population(
            table, main_effect_terms(3), num_replicates=100, seed=3
        )
        # SE is a small fraction of the estimate for this sample size.
        assert 0 < result.standard_error < 0.05 * result.point

    def test_agrees_with_profile_likelihood(self, setup):
        """Bootstrap and profile intervals agree on scale (same order
        of width) for well-behaved data."""
        from repro.core.profile_ci import profile_likelihood_interval

        _, table = setup
        boot = bootstrap_population(
            table, main_effect_terms(3), num_replicates=150, seed=5,
            confidence=0.95,
        )
        profile = profile_likelihood_interval(
            table, main_effect_terms(3), alpha=0.05
        )
        boot_width = boot.interval[1] - boot.interval[0]
        profile_width = profile.population_high - profile.population_low
        assert 0.3 < boot_width / profile_width < 3.0

    def test_reselect_mode(self, setup):
        _, table = setup
        result = bootstrap_population(
            table, main_effect_terms(3), num_replicates=20, seed=3,
            reselect=True, divisor=1,
        )
        assert len(result.replicates) >= 15

    def test_validation(self, setup):
        _, table = setup
        with pytest.raises(ValueError):
            bootstrap_population(table, main_effect_terms(3),
                                 num_replicates=1)
        with pytest.raises(ValueError):
            bootstrap_population(table, main_effect_terms(3),
                                 confidence=1.5)

    def test_result_dataclass(self):
        result = BootstrapResult(
            point=100.0,
            replicates=np.array([90.0, 95.0, 105.0, 110.0]),
            confidence=0.5,
        )
        lo, hi = result.interval
        assert 90 <= lo <= hi <= 110
