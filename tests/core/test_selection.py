"""Model selection: ICs, divisor heuristics, stepwise search."""

import numpy as np
import pytest

from repro.core.design import main_effect_terms
from repro.core.histories import ContingencyTable, tabulate_histories
from repro.core.selection import (
    IC_MARGIN,
    adaptive_divisor,
    information_criterion,
    resolve_divisor,
    select_model,
)
from tests.conftest import make_heterogeneous_sources, make_independent_sources

F = frozenset


class TestInformationCriterion:
    def test_aic(self):
        assert information_criterion(-100.0, 5, 1000, "aic") == 210.0

    def test_bic(self):
        expected = np.log(1000) * 5 + 200.0
        assert information_criterion(-100.0, 5, 1000, "bic") == pytest.approx(
            expected
        )

    def test_bic_penalises_more_for_big_samples(self):
        aic = information_criterion(-100.0, 5, 10**6, "aic")
        bic = information_criterion(-100.0, 5, 10**6, "bic")
        assert bic > aic

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            information_criterion(0.0, 1, 10, "dic")


class TestDivisors:
    def make_table(self, min_count):
        counts = np.zeros(4, dtype=np.int64)
        counts[1], counts[2], counts[3] = min_count, min_count * 3, min_count * 7
        return ContingencyTable(2, counts)

    def test_adaptive_halves_below_minimum(self):
        # min positive count 300: 1000 -> 500 -> 250 < 300.
        assert adaptive_divisor(self.make_table(300)) == 250

    def test_adaptive_keeps_maximum_when_counts_huge(self):
        assert adaptive_divisor(self.make_table(5000)) == 1000

    def test_adaptive_floors_at_one(self):
        assert adaptive_divisor(self.make_table(1)) == 1

    def test_adaptive_with_custom_maximum(self):
        assert adaptive_divisor(self.make_table(300), maximum=100) == 100

    def test_resolve_fixed(self):
        assert resolve_divisor(self.make_table(5), 10) == 10

    def test_resolve_adaptive_string(self):
        assert resolve_divisor(self.make_table(300), "adaptive1000") == 250
        assert resolve_divisor(self.make_table(300), "adaptive") == 250

    def test_resolve_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_divisor(self.make_table(5), "magic")
        with pytest.raises(ValueError):
            resolve_divisor(self.make_table(5), 0)


class TestStepwiseSearch:
    def test_independent_data_selects_independence(self, rng):
        _, sources = make_independent_sources(
            rng, 50_000, [0.3, 0.35, 0.3, 0.25]
        )
        table = tabulate_histories(sources)
        selection = select_model(table, criterion="bic", divisor=1)
        assert selection.fit.terms == main_effect_terms(4)

    def test_dependent_data_selects_interactions(self, rng):
        _, sources = make_heterogeneous_sources(rng, 50_000, sigma=1.2)
        table = tabulate_histories(sources)
        selection = select_model(table, criterion="aic", divisor=1)
        assert any(len(t) == 2 for t in selection.fit.terms)

    def test_path_starts_at_independence(self, rng):
        _, sources = make_heterogeneous_sources(rng, 10_000)
        selection = select_model(tabulate_histories(sources), divisor=1)
        assert selection.path[0].terms == main_effect_terms(4)

    def test_path_ic_decreasing(self, rng):
        _, sources = make_heterogeneous_sources(rng, 10_000)
        selection = select_model(tabulate_histories(sources), divisor=1)
        ics = [step.ic for step in selection.path]
        assert all(b < a for a, b in zip(ics, ics[1:]))

    def test_parsimony_rule_within_margin(self, rng):
        """The chosen model's IC is within the margin of the best."""
        _, sources = make_heterogeneous_sources(rng, 20_000)
        selection = select_model(tabulate_histories(sources), divisor=1)
        best = min(step.ic for step in selection.path)
        assert selection.selected_ic <= best + IC_MARGIN

    def test_larger_divisor_selects_simpler_model(self, rng):
        """Dividing counts flattens likelihood differences, so the
        penalty dominates and fewer terms survive — the paper's
        overfitting mitigation."""
        _, sources = make_heterogeneous_sources(rng, 60_000, sigma=0.8)
        table = tabulate_histories(sources)
        rich = select_model(table, criterion="aic", divisor=1)
        lean = select_model(table, criterion="aic", divisor=200)
        assert len(lean.fit.terms) <= len(rich.fit.terms)

    def test_three_way_terms_when_allowed(self, rng):
        _, sources = make_heterogeneous_sources(
            rng, 80_000, num_sources=4, sigma=1.5
        )
        table = tabulate_histories(sources)
        selection = select_model(table, criterion="aic", divisor=1, max_order=3)
        # With max_order=3 the search may add triples; at minimum it
        # must still return a valid hierarchical model.
        from repro.core.design import is_hierarchical

        assert is_hierarchical(selection.fit.terms)

    def test_single_source_rejected(self):
        table = ContingencyTable(1, np.array([0, 10]))
        with pytest.raises(ValueError):
            select_model(table)

    def test_degenerate_tiny_table_falls_back(self):
        counts = np.zeros(4, dtype=np.int64)
        counts[1], counts[2], counts[3] = 1, 1, 1
        table = ContingencyTable(2, counts)
        selection = select_model(table, divisor=1000)
        # Divisor 1000 would zero everything; fallback must kick in.
        assert selection.divisor == 1
        assert np.isfinite(selection.fit.estimate().population)

    def test_truncated_final_fit(self, rng):
        _, sources = make_independent_sources(rng, 5_000, [0.3, 0.3, 0.3])
        table = tabulate_histories(sources)
        selection = select_model(table, distribution="truncated", limit=1e8)
        assert selection.fit.distribution == "truncated"
