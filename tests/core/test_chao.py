"""Chao lower-bound estimator."""

import numpy as np
import pytest

from repro.core.chao import chao_estimate
from repro.core.histories import ContingencyTable, tabulate_histories
from tests.conftest import make_heterogeneous_sources, make_independent_sources


def table_from_frequencies(f1, f2, f3=0):
    """Build a 3-source table with given capture frequencies."""
    counts = np.zeros(8, dtype=np.int64)
    counts[0b001] = f1  # f1 singletons all in source 0
    counts[0b011] = f2  # doubletons in 0+1
    counts[0b111] = f3
    return ContingencyTable(3, counts)


class TestChaoFormula:
    def test_classic_value(self):
        table = table_from_frequencies(f1=30, f2=10)
        est = chao_estimate(table, bias_corrected=False)
        assert est.population == pytest.approx(40 + 30 * 30 / (2 * 10))

    def test_corrected_value(self):
        table = table_from_frequencies(f1=30, f2=10)
        est = chao_estimate(table)
        assert est.population == pytest.approx(40 + 30 * 29 / (2 * 11))

    def test_classic_rejects_zero_doubletons(self):
        with pytest.raises(ZeroDivisionError):
            chao_estimate(table_from_frequencies(5, 0), bias_corrected=False)

    def test_corrected_finite_with_zero_doubletons(self):
        est = chao_estimate(table_from_frequencies(5, 0))
        assert np.isfinite(est.population)

    def test_unseen_nonnegative(self):
        est = chao_estimate(table_from_frequencies(0, 10))
        assert est.unseen == 0.0

    def test_standard_error_positive(self):
        est = chao_estimate(table_from_frequencies(30, 10))
        assert est.standard_error > 0


class TestChaoStatistics:
    def test_near_unbiased_under_poisson_sampling(self, rng):
        """Chao's moment estimator is near-unbiased when capture is
        Poisson-like (many occasions, small per-occasion probability);
        with few high-probability occasions it overshoots."""
        N, sources = make_independent_sources(rng, 20_000, [0.1] * 8)
        est = chao_estimate(tabulate_histories(sources))
        assert est.population == pytest.approx(20_000, rel=0.1)

    def test_lower_bound_under_heterogeneity(self, rng):
        """With heterogeneity Chao stays (well) below the truth but
        above the observed count."""
        N, sources = make_heterogeneous_sources(rng, 20_000, sigma=1.5)
        table = tabulate_histories(sources)
        est = chao_estimate(table)
        assert table.num_observed < est.population < 20_000 * 1.05
