"""Classical closed-population models (M0, Mt, Mb, Mh)."""

import numpy as np
import pytest

from repro.core.closed_models import (
    fit_all_closed_models,
    fit_m0,
    fit_mb,
    fit_mh_jackknife,
    fit_mt,
)
from repro.core.design import main_effect_terms
from repro.core.histories import ContingencyTable, tabulate_histories
from repro.core.loglinear import LoglinearModel
from tests.conftest import make_heterogeneous_sources, make_independent_sources


@pytest.fixture(scope="module")
def equal_capture_table():
    rng = np.random.default_rng(8)
    N, sources = make_independent_sources(rng, 20_000, [0.3] * 4)
    return N, tabulate_histories(sources)


@pytest.fixture(scope="module")
def unequal_capture_table():
    rng = np.random.default_rng(9)
    N, sources = make_independent_sources(rng, 20_000, [0.5, 0.3, 0.15, 0.1])
    return N, tabulate_histories(sources)


class TestM0:
    def test_recovers_equal_capture(self, equal_capture_table):
        N, table = equal_capture_table
        est = fit_m0(table)
        assert est.population == pytest.approx(N, rel=0.05)
        assert est.parameters["p"] == pytest.approx(0.3, abs=0.03)

    def test_population_at_least_observed(self, unequal_capture_table):
        _, table = unequal_capture_table
        assert fit_m0(table).population >= table.num_observed

    def test_empty_rejected(self):
        table = ContingencyTable(2, np.array([0, 0, 0, 0]))
        with pytest.raises(ValueError):
            fit_m0(table)


class TestMt:
    def test_recovers_unequal_capture(self, unequal_capture_table):
        N, table = unequal_capture_table
        est = fit_mt(table)
        assert est.population == pytest.approx(N, rel=0.05)
        probs = [est.parameters[f"p{j}"] for j in (1, 2, 3, 4)]
        assert probs[0] > probs[-1]

    def test_matches_independence_llm(self, unequal_capture_table):
        """Mt and the independence log-linear model are the same model."""
        _, table = unequal_capture_table
        mt = fit_mt(table)
        llm = (
            LoglinearModel(table.num_sources,
                           main_effect_terms(table.num_sources))
            .fit(table)
            .estimate()
        )
        assert mt.population == pytest.approx(llm.population, rel=0.01)

    def test_m0_beats_mt_only_when_equal(self, equal_capture_table,
                                         unequal_capture_table):
        """AIC prefers M0 on equal-capture data and Mt on unequal."""
        _, equal = equal_capture_table
        _, unequal = unequal_capture_table
        assert fit_m0(equal).aic < fit_mt(equal).aic + 4
        assert fit_mt(unequal).aic < fit_m0(unequal).aic


class TestMb:
    def test_runs_and_bounds(self, unequal_capture_table):
        _, table = unequal_capture_table
        est = fit_mb(table)
        assert est.population >= table.num_observed
        assert 0 <= est.parameters["c"] <= 1

    def test_no_behavioural_response_in_independent_data(
        self, equal_capture_table
    ):
        """With truly independent occasions, recapture probability ~
        first-capture probability."""
        N, table = equal_capture_table
        est = fit_mb(table)
        assert est.population == pytest.approx(N, rel=0.15)


class TestMhJackknife:
    def test_heterogeneity_lifts_estimate(self, rng):
        N, sources = make_heterogeneous_sources(
            rng, 20_000, num_sources=6, sigma=1.2
        )
        table = tabulate_histories(sources)
        mh = fit_mh_jackknife(table)
        mt = fit_mt(table)
        # Under heterogeneity Mt undershoots; the jackknife corrects
        # upward (the whole point of Mh).
        assert mh.population > mt.population
        assert mh.population <= N * 1.3

    def test_homogeneous_data_overestimates_mildly(self, equal_capture_table):
        """With homogeneous capture and few occasions the jackknife is
        known to sit above the truth, but not wildly."""
        N, table = equal_capture_table
        est = fit_mh_jackknife(table)
        assert table.num_observed < est.population < N * 1.3

    def test_needs_two_sources(self):
        table = ContingencyTable(1, np.array([0, 5]))
        with pytest.raises(ValueError):
            fit_mh_jackknife(table)


class TestFamilySweep:
    def test_all_models_fit(self, unequal_capture_table):
        _, table = unequal_capture_table
        results = fit_all_closed_models(table)
        assert [r.model[:2] for r in results] == ["M0", "Mt", "Mb", "Mh"]
        for r in results:
            assert r.population >= table.num_observed
            # Mb may be degenerate (capture order carries no signal
            # for simultaneous sources); everyone else is finite.
            if not r.parameters.get("degenerate"):
                assert np.isfinite(r.population)
