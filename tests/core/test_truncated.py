"""Right-truncated Poisson distribution and GLM."""

import numpy as np
import pytest
from scipy import stats

from repro.core.glm import fit_poisson
from repro.core.truncated import (
    fit_truncated_poisson,
    truncated_logpmf,
    truncated_loglik,
    truncated_mean,
)


class TestDistribution:
    def test_pmf_sums_to_one(self):
        lam, limit = 3.7, 10
        ks = np.arange(limit + 1)
        total = np.exp(truncated_logpmf(ks, np.full_like(ks, lam, float), limit))
        assert total.sum() == pytest.approx(1.0)

    def test_pmf_zero_above_limit(self):
        assert truncated_logpmf(np.array([6]), np.array([2.0]), 5)[0] == -np.inf

    def test_matches_poisson_for_large_limit(self):
        ks = np.arange(0, 20)
        lam = np.full(20, 4.0)
        trunc = truncated_logpmf(ks, lam, 1e9)
        plain = stats.poisson.logpmf(ks, 4.0)
        assert np.allclose(trunc, plain)

    def test_mean_below_limit(self):
        assert truncated_mean(100.0, 10) < 10

    def test_mean_matches_poisson_for_large_limit(self):
        assert truncated_mean(7.0, 1e6) == pytest.approx(7.0)

    def test_mean_zero_limit(self):
        assert truncated_mean(5.0, 0) == 0.0

    def test_mean_monotone_in_rate(self):
        means = [truncated_mean(lam, 20) for lam in (1.0, 5.0, 15.0, 50.0)]
        assert means == sorted(means)

    def test_mean_matches_direct_computation(self):
        lam, limit = 8.0, 12
        ks = np.arange(limit + 1)
        pmf = np.exp(truncated_logpmf(ks, np.full_like(ks, lam, float), limit))
        assert truncated_mean(lam, limit) == pytest.approx((ks * pmf).sum())

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            truncated_mean(2.0, -1)


class TestTruncatedGlm:
    def test_matches_poisson_glm_with_huge_limit(self, rng):
        X = np.column_stack([np.ones(50), rng.normal(size=50)])
        y = rng.poisson(np.exp(0.5 + 0.3 * X[:, 1])).astype(float)
        plain = fit_poisson(X, y)
        trunc = fit_truncated_poisson(X, y, limit=1e12)
        assert np.allclose(plain.coef, trunc.coef, atol=1e-4)

    def test_counts_above_limit_rejected(self):
        with pytest.raises(ValueError):
            fit_truncated_poisson(np.ones((2, 1)), np.array([5.0, 20.0]), 10)

    def test_truncation_raises_rate_estimate(self, rng):
        """Counts piled near the limit imply a rate above the sample
        mean once truncation is accounted for."""
        limit = 10
        true_rate = 12.0
        draws = rng.poisson(true_rate, size=4000)
        y = draws[draws <= limit][:800].astype(float)
        X = np.ones((len(y), 1))
        fit = fit_truncated_poisson(X, y, limit)
        rate = float(np.exp(fit.intercept))
        assert rate > y.mean() + 0.5
        assert rate == pytest.approx(true_rate, rel=0.15)

    def test_loglik_consistent(self):
        X = np.ones((3, 1))
        y = np.array([2.0, 3.0, 4.0])
        fit = fit_truncated_poisson(X, y, limit=100)
        assert fit.loglik == pytest.approx(
            truncated_loglik(y, fit.fitted_rate, 100)
        )
