"""Tests for the fit kernel: Cholesky solves, warm starts, counters.

The contract under test: the fast paths (Cholesky normal equations,
warm starts, memoisation, early convergence) change *when* work happens,
never *what* the estimates are — everything must agree with the cold,
naive reference within tight float tolerance.
"""

import numpy as np
import pytest

from repro.core import fitkernel
from repro.core.design import design_matrix, main_effect_terms
from repro.core.glm import fit_poisson, poisson_loglik
from repro.core.histories import ContingencyTable
from repro.core.loglinear import LoglinearModel
from repro.core.selection import information_criterion, select_model


def _table(num_sources: int = 4, seed: int = 7) -> ContingencyTable:
    rng = np.random.default_rng(seed)
    counts = np.zeros(2**num_sources, dtype=np.int64)
    counts[1:] = rng.poisson(
        200.0 * rng.dirichlet(np.ones(2**num_sources - 1))
    ) + 1
    return ContingencyTable(
        num_sources=num_sources,
        counts=counts,
        source_names=tuple(f"s{i}" for i in range(num_sources)),
    )


def _design_and_counts(table: ContingencyTable):
    X, _ = design_matrix(table.num_sources, main_effect_terms(table.num_sources))
    return X, table.counts[1:].astype(np.float64)


class TestCholeskySolve:
    def test_matches_lstsq_on_well_conditioned_design(self):
        rng = np.random.default_rng(3)
        X = np.column_stack([np.ones(60), rng.normal(size=(60, 4))])
        w = rng.uniform(0.5, 3.0, size=60)
        z = rng.normal(size=60)
        fast = fitkernel.weighted_least_squares(X, w, z)
        sw = np.sqrt(w)
        slow, *_ = np.linalg.lstsq(X * sw[:, None], z * sw, rcond=None)
        np.testing.assert_allclose(fast, slow, rtol=1e-8, atol=1e-10)

    def test_rank_deficient_design_falls_back(self):
        rng = np.random.default_rng(4)
        base = rng.normal(size=(40, 3))
        X = np.column_stack([base, base[:, 0]])  # exact duplicate column
        w = rng.uniform(0.5, 2.0, size=40)
        z = rng.normal(size=40)
        before = fitkernel.snapshot()
        solution = fitkernel.weighted_least_squares(X, w, z)
        delta = fitkernel.snapshot() - before
        assert delta.cholesky_fallbacks == 1
        assert np.all(np.isfinite(solution))
        sw = np.sqrt(w)
        reference, *_ = np.linalg.lstsq(X * sw[:, None], z * sw, rcond=None)
        np.testing.assert_allclose(solution, reference, rtol=1e-8, atol=1e-10)

    def test_healthy_solve_does_not_fall_back(self):
        rng = np.random.default_rng(5)
        X = np.column_stack([np.ones(30), rng.normal(size=(30, 2))])
        before = fitkernel.snapshot()
        fitkernel.weighted_least_squares(
            X, np.ones(30), rng.normal(size=30)
        )
        delta = fitkernel.snapshot() - before
        assert delta.cholesky_fallbacks == 0


class TestWarmStart:
    def test_warm_start_matches_cold_fit(self):
        X, y = _design_and_counts(_table())
        cold = fit_poisson(X, y)
        # Warm-start from a visibly perturbed optimum: same fixed point.
        beta0 = cold.coef + 0.05
        warm = fit_poisson(X, y, beta0=beta0)
        np.testing.assert_allclose(warm.coef, cold.coef, rtol=1e-8)
        assert warm.loglik == pytest.approx(cold.loglik, rel=1e-8)
        assert warm.deviance == pytest.approx(cold.deviance, rel=1e-8, abs=1e-8)

    def test_warm_start_from_own_optimum_is_cheap(self):
        X, y = _design_and_counts(_table())
        cold = fit_poisson(X, y)
        before = fitkernel.snapshot()
        warm = fit_poisson(X, y, beta0=cold.coef)
        delta = fitkernel.snapshot() - before
        assert delta.warm_start_hits == 1
        assert warm.iterations < cold.iterations
        np.testing.assert_allclose(warm.coef, cold.coef, rtol=1e-8)

    def test_bad_beta0_is_ignored(self):
        X, y = _design_and_counts(_table())
        wrong_shape = np.zeros(X.shape[1] + 2)
        non_finite = np.full(X.shape[1], np.nan)
        cold = fit_poisson(X, y)
        for beta0 in (wrong_shape, non_finite):
            fit = fit_poisson(X, y, beta0=beta0)
            np.testing.assert_allclose(fit.coef, cold.coef, rtol=1e-8)

    def test_early_stop_is_at_the_optimum(self):
        # The quadratic-prediction early stop must land on the same
        # fixed point an exhaustive iteration reaches.
        X, y = _design_and_counts(_table(seed=11))
        fast = fit_poisson(X, y)
        exhaustive = fit_poisson(X, y, tol=1e-13, max_iter=500)
        np.testing.assert_allclose(fast.coef, exhaustive.coef, rtol=1e-8)
        assert fast.loglik == pytest.approx(exhaustive.loglik, rel=1e-10)

    def test_loglik_property_matches_direct_computation(self):
        X, y = _design_and_counts(_table())
        fit = fit_poisson(X, y)
        assert fit.loglik == pytest.approx(poisson_loglik(y, fit.fitted))


class TestSelectionPath:
    def test_select_model_matches_cold_refits(self):
        table = _table(num_sources=5, seed=9)
        selection = select_model(table, max_order=2)
        # Chosen model refit stone-cold must agree with the warm result.
        cold_fit = LoglinearModel(table.num_sources, selection.terms).fit(table)
        np.testing.assert_allclose(
            selection.fit.coef, cold_fit.coef, rtol=1e-7
        )
        est_warm = selection.fit.estimate().population
        est_cold = cold_fit.estimate().population
        assert est_warm == pytest.approx(est_cold, rel=1e-8)
        # Every path entry's IC must match a cold fit on the scaled table.
        scaled = table.scaled(selection.divisor)
        for score in selection.path:
            reference = LoglinearModel(table.num_sources, score.terms).fit(scaled)
            expected = information_criterion(
                reference.loglik,
                reference.num_params,
                scaled.num_observed,
                selection.criterion,
            )
            assert score.ic == pytest.approx(expected, rel=1e-8)

    def test_selection_uses_warm_starts_and_memo(self):
        table = _table(num_sources=5, seed=10)
        before = fitkernel.snapshot()
        select_model(table, max_order=2)
        delta = fitkernel.snapshot() - before
        assert delta.fits > 2
        # Every candidate fit after independence is warm-started, and
        # the parsimony-rule refit hits the memo.
        assert delta.warm_start_hits >= delta.fits - 2
        assert delta.memo_hits >= 1
        assert delta.iterations_saved >= 1


class TestDesignCache:
    def test_design_matrix_memoised_and_read_only(self):
        terms = main_effect_terms(6)
        before = fitkernel.snapshot()
        first, ordered_first = design_matrix(6, terms)
        second, ordered_second = design_matrix(6, terms)
        delta = fitkernel.snapshot() - before
        assert second is first  # same cached object
        assert ordered_first == ordered_second
        assert not first.flags.writeable
        assert delta.design_cache_hits >= 1
        with pytest.raises(ValueError):
            first[0, 0] = 2.0

    def test_unnormalised_terms_share_the_cache(self):
        fs = frozenset({frozenset({0}), frozenset({1})})
        as_list = [{0}, {1}]
        a, _ = design_matrix(2, fs)
        b, _ = design_matrix(2, as_list)
        assert b is a

    def test_invalid_terms_still_rejected(self):
        with pytest.raises(ValueError):
            design_matrix(3, [frozenset({0, 1})])  # missing subset terms
        with pytest.raises(ValueError):
            design_matrix(2, [frozenset({5})])  # unknown source


class TestCounters:
    def test_fit_records_counters(self):
        X, y = _design_and_counts(_table())
        before = fitkernel.snapshot()
        fit = fit_poisson(X, y)
        delta = fitkernel.snapshot() - before
        assert delta.fits == 1
        assert delta.irls_iterations == fit.iterations
        assert delta.warm_start_hits == 0

    def test_counter_algebra(self):
        a = fitkernel.FitCounters(fits=2, irls_iterations=5)
        b = fitkernel.FitCounters(fits=1, irls_iterations=2, memo_hits=3)
        total = a + b
        assert total.fits == 3
        assert total.irls_iterations == 7
        assert total.memo_hits == 3
        assert (total - a) == b
        assert bool(fitkernel.FitCounters()) is False
        assert bool(b) is True
        assert b.as_dict()["memo_hits"] == 3


class TestBatchedSolver:
    """The batched kernel is a pure reorganisation of the arithmetic:
    every member must agree with its own sequential fit at rtol 1e-8,
    degenerate members included."""

    def _lattice_stack(self, num_sources=4, members=3, seed=21):
        """(G, n, p) stack of real capture-history designs with varied
        weights/targets per member."""
        X, _ = design_matrix(num_sources, main_effect_terms(num_sources))
        return np.repeat(X[None, :, :], members, axis=0)

    def test_lattice_detected_on_design_matrix_stacks(self):
        stack = self._lattice_stack()
        solver = fitkernel.BatchedIrlsSolver(stack)
        assert solver._lattice is not None

    def test_random_stacks_fall_back_to_dense(self):
        rng = np.random.default_rng(5)
        stack = rng.normal(size=(3, 15, 4))
        solver = fitkernel.BatchedIrlsSolver(stack)
        assert solver._lattice is None

    def test_lattice_and_dense_solves_agree(self):
        rng = np.random.default_rng(6)
        stack = self._lattice_stack()
        G, n, p = stack.shape
        solver = fitkernel.BatchedIrlsSolver(stack)
        assert solver._lattice is not None
        w = rng.uniform(0.5, 3.0, size=(G, n))
        z = rng.normal(size=(G, n))
        fast = solver.solve(w, z)
        for g in range(G):
            sw = np.sqrt(w[g])
            slow, *_ = np.linalg.lstsq(
                stack[g] * sw[:, None], z[g] * sw, rcond=None
            )
            np.testing.assert_allclose(fast[g], slow, rtol=1e-8, atol=1e-10)

    def test_linear_predictor_matches_matmul(self):
        rng = np.random.default_rng(7)
        stack = self._lattice_stack()
        G, n, p = stack.shape
        solver = fitkernel.BatchedIrlsSolver(stack)
        beta = rng.normal(size=(G, p))
        eta = solver.linear_predictor(beta)
        for g in range(G):
            np.testing.assert_allclose(
                eta[g], stack[g] @ beta[g], rtol=1e-12, atol=1e-12
            )
        members = np.array([2, 0])
        np.testing.assert_allclose(
            solver.linear_predictor(beta[members], members), eta[members]
        )

    def test_trusted_masks_match_detection(self):
        rng = np.random.default_rng(8)
        num_sources = 4
        X, ordered = design_matrix(num_sources, main_effect_terms(num_sources))
        stack = np.repeat(X[None, :, :], 2, axis=0)
        masks = np.array(
            [[0] + [sum(1 << s for s in term) for term in ordered]] * 2,
            dtype=np.int64,
        )
        trusted = fitkernel.BatchedIrlsSolver(stack, masks=masks)
        detected = fitkernel.BatchedIrlsSolver(stack)
        w = rng.uniform(0.5, 2.0, size=(2, stack.shape[1]))
        z = rng.normal(size=(2, stack.shape[1]))
        np.testing.assert_array_equal(
            trusted.solve(w, z), detected.solve(w, z)
        )

    def test_wrong_masks_rejected(self):
        stack = self._lattice_stack()
        G, n, p = stack.shape
        bad = np.zeros((G, p), dtype=np.int64)  # all-intercept: not col p-1
        with pytest.raises(ValueError):
            fitkernel.BatchedIrlsSolver(stack, masks=bad)
        with pytest.raises(ValueError):
            fitkernel.BatchedIrlsSolver(stack, masks=np.zeros((G, p + 1)))

    def test_degenerate_member_falls_back_per_member(self):
        rng = np.random.default_rng(9)
        base = np.column_stack([np.ones(20), rng.normal(size=(20, 3))])
        broken = base.copy()
        broken[:, 3] = broken[:, 2]  # exact duplicate column
        stack = np.stack([base, broken])
        solver = fitkernel.BatchedIrlsSolver(stack)
        w = rng.uniform(0.5, 2.0, size=(2, 20))
        z = rng.normal(size=(2, 20))
        before = fitkernel.snapshot()
        out = solver.solve(w, z)
        delta = fitkernel.snapshot() - before
        assert delta.cholesky_fallbacks == 1
        assert np.all(np.isfinite(out))
        sw = np.sqrt(w[0])
        healthy, *_ = np.linalg.lstsq(
            base * sw[:, None], z[0] * sw, rcond=None
        )
        np.testing.assert_allclose(out[0], healthy, rtol=1e-8, atol=1e-10)


class TestBatchedPoissonFits:
    def test_stack_matches_sequential_fits(self):
        from repro.core.glm import fit_poisson_batch

        tables = [_table(num_sources=4, seed=s) for s in (1, 2, 3)]
        X, _ = design_matrix(4, main_effect_terms(4))
        stack = np.repeat(X[None, :, :], len(tables), axis=0)
        counts = np.stack([t.counts[1:].astype(np.float64) for t in tables])
        batch = fit_poisson_batch(stack, counts)
        for fit, table in zip(batch, tables):
            solo = fit_poisson(X, table.counts[1:].astype(np.float64))
            np.testing.assert_allclose(fit.coef, solo.coef, rtol=1e-8)
            assert fit.loglik == pytest.approx(solo.loglik, rel=1e-8)
            assert fit.iterations == solo.iterations
            assert fit.converged and solo.converged

    def test_warm_started_members_match_sequential(self):
        from repro.core.glm import fit_poisson_batch

        table = _table(num_sources=4, seed=13)
        X, _ = design_matrix(4, main_effect_terms(4))
        y = table.counts[1:].astype(np.float64)
        optimum = fit_poisson(X, y).coef
        stack = np.repeat(X[None, :, :], 2, axis=0)
        counts = np.stack([y, y])
        batch = fit_poisson_batch(stack, counts, beta0=[optimum, None])
        solo_warm = fit_poisson(X, y, beta0=optimum)
        solo_cold = fit_poisson(X, y)
        np.testing.assert_allclose(batch[0].coef, solo_warm.coef, rtol=1e-8)
        assert batch[0].iterations == solo_warm.iterations
        np.testing.assert_allclose(batch[1].coef, solo_cold.coef, rtol=1e-8)
        assert batch[1].iterations == solo_cold.iterations


class TestBatchedSelectionParity:
    """``select_model`` must choose the same path either way; IC and
    coefficients agree at rtol 1e-8 (lattice arithmetic reorders the
    sums, so bitwise equality is not the contract)."""

    def _paths(self, table, **kwargs):
        fitkernel.set_batch_fits(False)
        try:
            seq = select_model(table, **kwargs)
        finally:
            fitkernel.set_batch_fits(True)
        bat = select_model(table, **kwargs)
        return seq, bat

    def test_select_model_paths_agree(self):
        table = _table(num_sources=5, seed=17)
        seq, bat = self._paths(table, max_order=2)
        assert seq.terms == bat.terms
        assert [s.terms for s in seq.path] == [s.terms for s in bat.path]
        for a, b in zip(seq.path, bat.path):
            assert a.ic == pytest.approx(b.ic, rel=1e-8)
        np.testing.assert_allclose(seq.fit.coef, bat.fit.coef, rtol=1e-8)
        pop_seq = seq.fit.estimate().population
        pop_bat = bat.fit.estimate().population
        assert pop_bat == pytest.approx(pop_seq, rel=1e-8)

    def test_profile_interval_agrees(self):
        from repro.core.profile_ci import profile_likelihood_interval

        table = _table(num_sources=4, seed=19)
        terms = main_effect_terms(4)
        fitkernel.set_batch_fits(False)
        try:
            seq = profile_likelihood_interval(table, terms, alpha=0.05)
        finally:
            fitkernel.set_batch_fits(True)
        bat = profile_likelihood_interval(table, terms, alpha=0.05)
        for field in ("population_low", "population_high"):
            assert getattr(bat, field) == pytest.approx(
                getattr(seq, field), rel=1e-8
            )


class TestWarmStartValidation:
    def test_row_vector_beta0_raises_with_hint(self):
        with pytest.raises(ValueError, match="ravel"):
            fitkernel.usable_warm_start(np.zeros((1, 4)), 4)

    def test_one_d_vectors_still_quietly_screened(self):
        assert fitkernel.usable_warm_start(np.zeros(4), 4)
        assert not fitkernel.usable_warm_start(np.zeros(3), 4)
        assert not fitkernel.usable_warm_start(np.array([np.nan] * 4), 4)
        assert not fitkernel.usable_warm_start(None, 4)


class TestOneShotSolverReuse:
    def test_memoised_design_reuses_solver(self):
        X, _ = design_matrix(4, main_effect_terms(4))  # read-only, cached
        rng = np.random.default_rng(23)
        w = rng.uniform(0.5, 2.0, size=X.shape[0])
        z = rng.normal(size=X.shape[0])
        fitkernel.weighted_least_squares(X, w, z)
        solver = fitkernel._ONE_SHOT_SOLVERS.get(id(X))
        assert solver is not None and solver._X is X
        fitkernel.weighted_least_squares(X, w, z)
        assert fitkernel._ONE_SHOT_SOLVERS.get(id(X)) is solver

    def test_writable_designs_are_not_cached(self):
        rng = np.random.default_rng(24)
        X = np.column_stack([np.ones(30), rng.normal(size=(30, 3))])
        w = rng.uniform(0.5, 2.0, size=30)
        z = rng.normal(size=30)
        before = dict(fitkernel._ONE_SHOT_SOLVERS)
        fitkernel.weighted_least_squares(X, w, z)
        assert fitkernel._ONE_SHOT_SOLVERS == before


class TestBatchedEquivalenceProperty:
    """Property: for *any* group of same-shape Poisson designs — sizes,
    warm starts, and rank-deficient members drawn at random — the
    batched kernel reproduces each member's sequential fit."""

    def test_random_design_groups_match_sequential(self):
        from hypothesis import given, settings, strategies as st

        from repro.core.glm import fit_poisson_batch

        @settings(max_examples=25, deadline=None)
        @given(
            seed=st.integers(0, 2**32 - 1),
            members=st.integers(1, 4),
            n=st.integers(8, 32),
            p=st.integers(2, 5),
            degenerate=st.booleans(),
            warm=st.booleans(),
        )
        def check(seed, members, n, p, degenerate, warm):
            rng = np.random.default_rng(seed)
            stack = np.empty((members, n, p))
            counts = np.empty((members, n))
            for g in range(members):
                X = np.column_stack(
                    [np.ones(n), rng.normal(scale=0.8, size=(n, p - 1))]
                )
                if degenerate and g == members - 1 and p >= 3:
                    X[:, p - 1] = X[:, p - 2]  # force the per-member path
                mu = np.exp(
                    np.clip(X @ rng.normal(scale=0.3, size=p), -4.0, 4.0)
                )
                stack[g] = X
                counts[g] = rng.poisson(mu * 5.0)
            beta0 = None
            if warm:
                beta0 = [
                    rng.normal(scale=0.1, size=p) if g % 2 == 0 else None
                    for g in range(members)
                ]
            batch = fit_poisson_batch(stack, counts, beta0=beta0)
            for g, fit in enumerate(batch):
                solo = fit_poisson(
                    stack[g],
                    counts[g],
                    beta0=None if beta0 is None else beta0[g],
                )
                assert fit.converged == solo.converged
                assert fit.iterations == solo.iterations
                np.testing.assert_allclose(
                    fit.coef, solo.coef, rtol=1e-8, atol=1e-10
                )
                assert fit.loglik == pytest.approx(solo.loglik, rel=1e-8)

        check()
