"""Tests for the fit kernel: Cholesky solves, warm starts, counters.

The contract under test: the fast paths (Cholesky normal equations,
warm starts, memoisation, early convergence) change *when* work happens,
never *what* the estimates are — everything must agree with the cold,
naive reference within tight float tolerance.
"""

import numpy as np
import pytest

from repro.core import fitkernel
from repro.core.design import design_matrix, main_effect_terms
from repro.core.glm import fit_poisson, poisson_loglik
from repro.core.histories import ContingencyTable
from repro.core.loglinear import LoglinearModel
from repro.core.selection import information_criterion, select_model


def _table(num_sources: int = 4, seed: int = 7) -> ContingencyTable:
    rng = np.random.default_rng(seed)
    counts = np.zeros(2**num_sources, dtype=np.int64)
    counts[1:] = rng.poisson(
        200.0 * rng.dirichlet(np.ones(2**num_sources - 1))
    ) + 1
    return ContingencyTable(
        num_sources=num_sources,
        counts=counts,
        source_names=tuple(f"s{i}" for i in range(num_sources)),
    )


def _design_and_counts(table: ContingencyTable):
    X, _ = design_matrix(table.num_sources, main_effect_terms(table.num_sources))
    return X, table.counts[1:].astype(np.float64)


class TestCholeskySolve:
    def test_matches_lstsq_on_well_conditioned_design(self):
        rng = np.random.default_rng(3)
        X = np.column_stack([np.ones(60), rng.normal(size=(60, 4))])
        w = rng.uniform(0.5, 3.0, size=60)
        z = rng.normal(size=60)
        fast = fitkernel.weighted_least_squares(X, w, z)
        sw = np.sqrt(w)
        slow, *_ = np.linalg.lstsq(X * sw[:, None], z * sw, rcond=None)
        np.testing.assert_allclose(fast, slow, rtol=1e-8, atol=1e-10)

    def test_rank_deficient_design_falls_back(self):
        rng = np.random.default_rng(4)
        base = rng.normal(size=(40, 3))
        X = np.column_stack([base, base[:, 0]])  # exact duplicate column
        w = rng.uniform(0.5, 2.0, size=40)
        z = rng.normal(size=40)
        before = fitkernel.snapshot()
        solution = fitkernel.weighted_least_squares(X, w, z)
        delta = fitkernel.snapshot() - before
        assert delta.cholesky_fallbacks == 1
        assert np.all(np.isfinite(solution))
        sw = np.sqrt(w)
        reference, *_ = np.linalg.lstsq(X * sw[:, None], z * sw, rcond=None)
        np.testing.assert_allclose(solution, reference, rtol=1e-8, atol=1e-10)

    def test_healthy_solve_does_not_fall_back(self):
        rng = np.random.default_rng(5)
        X = np.column_stack([np.ones(30), rng.normal(size=(30, 2))])
        before = fitkernel.snapshot()
        fitkernel.weighted_least_squares(
            X, np.ones(30), rng.normal(size=30)
        )
        delta = fitkernel.snapshot() - before
        assert delta.cholesky_fallbacks == 0


class TestWarmStart:
    def test_warm_start_matches_cold_fit(self):
        X, y = _design_and_counts(_table())
        cold = fit_poisson(X, y)
        # Warm-start from a visibly perturbed optimum: same fixed point.
        beta0 = cold.coef + 0.05
        warm = fit_poisson(X, y, beta0=beta0)
        np.testing.assert_allclose(warm.coef, cold.coef, rtol=1e-8)
        assert warm.loglik == pytest.approx(cold.loglik, rel=1e-8)
        assert warm.deviance == pytest.approx(cold.deviance, rel=1e-8, abs=1e-8)

    def test_warm_start_from_own_optimum_is_cheap(self):
        X, y = _design_and_counts(_table())
        cold = fit_poisson(X, y)
        before = fitkernel.snapshot()
        warm = fit_poisson(X, y, beta0=cold.coef)
        delta = fitkernel.snapshot() - before
        assert delta.warm_start_hits == 1
        assert warm.iterations < cold.iterations
        np.testing.assert_allclose(warm.coef, cold.coef, rtol=1e-8)

    def test_bad_beta0_is_ignored(self):
        X, y = _design_and_counts(_table())
        wrong_shape = np.zeros(X.shape[1] + 2)
        non_finite = np.full(X.shape[1], np.nan)
        cold = fit_poisson(X, y)
        for beta0 in (wrong_shape, non_finite):
            fit = fit_poisson(X, y, beta0=beta0)
            np.testing.assert_allclose(fit.coef, cold.coef, rtol=1e-8)

    def test_early_stop_is_at_the_optimum(self):
        # The quadratic-prediction early stop must land on the same
        # fixed point an exhaustive iteration reaches.
        X, y = _design_and_counts(_table(seed=11))
        fast = fit_poisson(X, y)
        exhaustive = fit_poisson(X, y, tol=1e-13, max_iter=500)
        np.testing.assert_allclose(fast.coef, exhaustive.coef, rtol=1e-8)
        assert fast.loglik == pytest.approx(exhaustive.loglik, rel=1e-10)

    def test_loglik_property_matches_direct_computation(self):
        X, y = _design_and_counts(_table())
        fit = fit_poisson(X, y)
        assert fit.loglik == pytest.approx(poisson_loglik(y, fit.fitted))


class TestSelectionPath:
    def test_select_model_matches_cold_refits(self):
        table = _table(num_sources=5, seed=9)
        selection = select_model(table, max_order=2)
        # Chosen model refit stone-cold must agree with the warm result.
        cold_fit = LoglinearModel(table.num_sources, selection.terms).fit(table)
        np.testing.assert_allclose(
            selection.fit.coef, cold_fit.coef, rtol=1e-7
        )
        est_warm = selection.fit.estimate().population
        est_cold = cold_fit.estimate().population
        assert est_warm == pytest.approx(est_cold, rel=1e-8)
        # Every path entry's IC must match a cold fit on the scaled table.
        scaled = table.scaled(selection.divisor)
        for score in selection.path:
            reference = LoglinearModel(table.num_sources, score.terms).fit(scaled)
            expected = information_criterion(
                reference.loglik,
                reference.num_params,
                scaled.num_observed,
                selection.criterion,
            )
            assert score.ic == pytest.approx(expected, rel=1e-8)

    def test_selection_uses_warm_starts_and_memo(self):
        table = _table(num_sources=5, seed=10)
        before = fitkernel.snapshot()
        select_model(table, max_order=2)
        delta = fitkernel.snapshot() - before
        assert delta.fits > 2
        # Every candidate fit after independence is warm-started, and
        # the parsimony-rule refit hits the memo.
        assert delta.warm_start_hits >= delta.fits - 2
        assert delta.memo_hits >= 1
        assert delta.iterations_saved >= 1


class TestDesignCache:
    def test_design_matrix_memoised_and_read_only(self):
        terms = main_effect_terms(6)
        before = fitkernel.snapshot()
        first, ordered_first = design_matrix(6, terms)
        second, ordered_second = design_matrix(6, terms)
        delta = fitkernel.snapshot() - before
        assert second is first  # same cached object
        assert ordered_first == ordered_second
        assert not first.flags.writeable
        assert delta.design_cache_hits >= 1
        with pytest.raises(ValueError):
            first[0, 0] = 2.0

    def test_unnormalised_terms_share_the_cache(self):
        fs = frozenset({frozenset({0}), frozenset({1})})
        as_list = [{0}, {1}]
        a, _ = design_matrix(2, fs)
        b, _ = design_matrix(2, as_list)
        assert b is a

    def test_invalid_terms_still_rejected(self):
        with pytest.raises(ValueError):
            design_matrix(3, [frozenset({0, 1})])  # missing subset terms
        with pytest.raises(ValueError):
            design_matrix(2, [frozenset({5})])  # unknown source


class TestCounters:
    def test_fit_records_counters(self):
        X, y = _design_and_counts(_table())
        before = fitkernel.snapshot()
        fit = fit_poisson(X, y)
        delta = fitkernel.snapshot() - before
        assert delta.fits == 1
        assert delta.irls_iterations == fit.iterations
        assert delta.warm_start_hits == 0

    def test_counter_algebra(self):
        a = fitkernel.FitCounters(fits=2, irls_iterations=5)
        b = fitkernel.FitCounters(fits=1, irls_iterations=2, memo_hits=3)
        total = a + b
        assert total.fits == 3
        assert total.irls_iterations == 7
        assert total.memo_hits == 3
        assert (total - a) == b
        assert bool(fitkernel.FitCounters()) is False
        assert bool(b) is True
        assert b.as_dict()["memo_hits"] == 3
