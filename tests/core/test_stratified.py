"""Stratified estimation."""

import numpy as np
import pytest

from repro.core.stratified import split_sources_by_label, stratified_estimate
from repro.ipspace.ipset import IPSet


def labeler_high_bit(addrs: np.ndarray) -> np.ndarray:
    """Two strata: addresses below/above 2^29."""
    return (np.asarray(addrs) >= 2**29).astype(np.int64)


def make_two_strata_sources(rng, n_low, n_high, probs):
    low = np.sort(rng.choice(2**29, n_low, replace=False)).astype(np.uint32)
    high = (
        np.sort(rng.choice(2**29, n_high, replace=False)).astype(np.uint32)
        + np.uint32(2**29)
    )
    pop = np.concatenate([low, high])
    sources = {}
    for i, p in enumerate(probs):
        mask = rng.random(len(pop)) < p
        sources[f"S{i}"] = IPSet.from_sorted_unique(np.sort(pop[mask]))
    return len(pop), sources


class TestSplit:
    def test_split_covers_all_sources(self, rng):
        _, sources = make_two_strata_sources(rng, 500, 500, [0.5, 0.5])
        split = split_sources_by_label(sources, labeler_high_bit)
        assert set(split) == {0, 1}
        for label in (0, 1):
            assert set(split[label]) == set(sources)

    def test_split_partitions_each_source(self, rng):
        _, sources = make_two_strata_sources(rng, 500, 500, [0.5, 0.5])
        split = split_sources_by_label(sources, labeler_high_bit)
        for name, original in sources.items():
            rebuilt = split[0][name] | split[1][name]
            assert rebuilt == original

    def test_split_label_correct(self, rng):
        _, sources = make_two_strata_sources(rng, 300, 300, [0.6])
        split = split_sources_by_label(sources, labeler_high_bit)
        assert all(a < 2**29 for a in split[0]["S0"])
        assert all(a >= 2**29 for a in split[1]["S0"])

    def test_misaligned_labeler_rejected(self, rng):
        _, sources = make_two_strata_sources(rng, 50, 50, [0.9])
        with pytest.raises(ValueError):
            split_sources_by_label(sources, lambda a: np.zeros(3))


class TestStratifiedEstimate:
    def test_sums_strata(self, rng):
        N, sources = make_two_strata_sources(
            rng, 20_000, 20_000, [0.3, 0.35, 0.3]
        )
        result = stratified_estimate(sources, labeler_high_bit, min_observed=10)
        assert result.population == pytest.approx(N, rel=0.07)
        assert set(result.strata) == {0, 1}
        assert result.observed <= result.population

    def test_heterogeneous_strata_beat_pooled(self, rng):
        """Strata with very different capture rates: stratified
        estimation with exact models should be near truth."""
        N, sources = make_two_strata_sources(
            rng, 30_000, 10_000, [0.5, 0.15, 0.3]
        )
        result = stratified_estimate(sources, labeler_high_bit, min_observed=10)
        assert result.population == pytest.approx(N, rel=0.12)

    def test_small_strata_excluded(self, rng):
        N, sources = make_two_strata_sources(rng, 5_000, 30, [0.5, 0.5])
        result = stratified_estimate(
            sources, labeler_high_bit, min_observed=100
        )
        assert result.num_excluded == 1
        excluded = result.strata[1]
        assert excluded.excluded and excluded.estimate is None
        # Excluded strata contribute their observed count.
        assert excluded.population == excluded.observed

    def test_truncation_limits_apply_per_stratum(self, rng):
        N, sources = make_two_strata_sources(rng, 5_000, 5_000, [0.4, 0.4])
        limits = {0: 6_000.0, 1: 6_000.0}
        result = stratified_estimate(
            sources,
            labeler_high_bit,
            min_observed=10,
            distribution="truncated",
            limit_per_stratum=lambda label: limits[label],
        )
        for stratum in result.strata.values():
            assert stratum.population <= 6_001

    def test_unseen_is_difference(self, rng):
        _, sources = make_two_strata_sources(rng, 8_000, 8_000, [0.3, 0.3])
        result = stratified_estimate(sources, labeler_high_bit, min_observed=10)
        assert result.unseen == pytest.approx(
            result.population - result.observed
        )
