"""Log-linear model fitting and population estimation."""

import numpy as np
import pytest

from repro.core.design import hierarchical_closure, main_effect_terms
from repro.core.histories import ContingencyTable, tabulate_histories
from repro.core.loglinear import LoglinearModel
from tests.conftest import make_independent_sources

F = frozenset


def two_source_table(n11, n10, n01):
    counts = np.zeros(4, dtype=np.int64)
    counts[0b11], counts[0b01], counts[0b10] = n11, n10, n01
    return ContingencyTable(2, counts)


class TestTwoSourceClosedForm:
    def test_matches_lincoln_petersen(self):
        """For two independent sources the LLM unseen estimate equals
        the L-P identity z10*z01/z11 (the classical equivalence)."""
        table = two_source_table(n11=20, n10=80, n01=60)
        fit = LoglinearModel(2, main_effect_terms(2)).fit(table)
        assert fit.unseen_estimate() == pytest.approx(80 * 60 / 20, rel=1e-4)

    def test_population_totals(self):
        table = two_source_table(20, 80, 60)
        est = LoglinearModel(2, main_effect_terms(2)).fit(table).estimate()
        assert est.observed == 160
        assert est.population == pytest.approx(160 + 240, rel=1e-4)


class TestRecovery:
    def test_independent_sources_recover_population(self, rng):
        N, sources = make_independent_sources(rng, 40_000, [0.3, 0.35, 0.25])
        table = tabulate_histories(sources)
        est = LoglinearModel(3, main_effect_terms(3)).fit(table).estimate()
        assert est.population == pytest.approx(N, rel=0.05)

    def test_pairwise_model_fixes_induced_dependence(self, rng):
        """Two clustered sources + one independent: the model with the
        right interaction term beats independence."""
        N = 30_000
        pop = np.sort(rng.choice(2**30, N, replace=False)).astype(np.uint32)
        cluster = rng.random(N) < 0.5
        from repro.ipspace.ipset import IPSet

        # Sources 0 and 1 both prefer the cluster; source 2 is uniform.
        prob0 = np.where(cluster, 0.5, 0.1)
        prob1 = np.where(cluster, 0.45, 0.12)
        sources = {
            "a": IPSet.from_sorted_unique(pop[rng.random(N) < prob0]),
            "b": IPSet.from_sorted_unique(pop[rng.random(N) < prob1]),
            "c": IPSet.from_sorted_unique(pop[rng.random(N) < 0.3]),
        }
        table = tabulate_histories(sources)
        indep = LoglinearModel(3, main_effect_terms(3)).fit(table).estimate()
        pair = (
            LoglinearModel(3, hierarchical_closure([F([0, 1]), F([2])]))
            .fit(table)
            .estimate()
        )
        assert abs(pair.population - N) < abs(indep.population - N)
        assert pair.population == pytest.approx(N, rel=0.1)


class TestFitProperties:
    def test_aic_bic_definitions(self, rng):
        _, sources = make_independent_sources(rng, 5_000, [0.3, 0.3])
        table = tabulate_histories(sources)
        fit = LoglinearModel(2, main_effect_terms(2)).fit(table)
        assert fit.aic == pytest.approx(2 * fit.num_params - 2 * fit.loglik)
        assert fit.bic == pytest.approx(
            np.log(table.num_observed) * fit.num_params - 2 * fit.loglik
        )

    def test_source_count_mismatch_rejected(self, rng):
        _, sources = make_independent_sources(rng, 1_000, [0.3, 0.3])
        table = tabulate_histories(sources)
        with pytest.raises(ValueError):
            LoglinearModel(3, main_effect_terms(3)).fit(table)

    def test_unknown_distribution_rejected(self, rng):
        _, sources = make_independent_sources(rng, 1_000, [0.3, 0.3])
        table = tabulate_histories(sources)
        with pytest.raises(ValueError):
            LoglinearModel(2, main_effect_terms(2)).fit(table, "gaussian")

    def test_truncated_requires_limit(self, rng):
        _, sources = make_independent_sources(rng, 1_000, [0.3, 0.3])
        table = tabulate_histories(sources)
        with pytest.raises(ValueError):
            LoglinearModel(2, main_effect_terms(2)).fit(table, "truncated")


class TestTruncatedEstimates:
    def test_truncation_caps_population(self, rng):
        """The truncated estimate never exceeds the space limit, even
        when the Poisson estimate explodes (tiny overlap)."""
        table = two_source_table(n11=2, n10=300, n01=250)
        model = LoglinearModel(2, main_effect_terms(2))
        poisson = model.fit(table).estimate()
        limit = 1000.0
        trunc = model.fit(table, "truncated", limit=limit).estimate()
        assert poisson.population > limit  # the pathology
        assert trunc.population <= limit + 1

    def test_truncation_negligible_for_large_limit(self, rng):
        N, sources = make_independent_sources(rng, 10_000, [0.3, 0.3, 0.3])
        table = tabulate_histories(sources)
        model = LoglinearModel(3, main_effect_terms(3))
        plain = model.fit(table).estimate()
        trunc = model.fit(table, "truncated", limit=1e9).estimate()
        assert trunc.population == pytest.approx(plain.population, rel=1e-3)

    def test_describe_mentions_distribution(self, rng):
        _, sources = make_independent_sources(rng, 1_000, [0.4, 0.4])
        table = tabulate_histories(sources)
        est = LoglinearModel(2, main_effect_terms(2)).fit(table).estimate()
        assert "poisson" in est.describe()
