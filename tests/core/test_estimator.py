"""The CaptureRecapture facade."""

import numpy as np
import pytest

from repro.core.estimator import CaptureRecapture, EstimatorOptions
from repro.ipspace.ipset import IPSet
from tests.conftest import make_independent_sources


@pytest.fixture(scope="module")
def facade():
    rng = np.random.default_rng(31337)
    N, sources = make_independent_sources(rng, 30_000, [0.3, 0.35, 0.25])
    return N, CaptureRecapture(sources)


class TestFacade:
    def test_observed_union(self, facade):
        _, cr = facade
        union = cr.observed_union()
        assert len(union) == cr.num_observed
        assert cr.num_observed == cr.table().num_observed

    def test_estimate_recovers_population(self, facade):
        N, cr = facade
        assert cr.estimate().population == pytest.approx(N, rel=0.05)

    def test_profile_interval_covers(self, facade):
        N, cr = facade
        iv = cr.profile_interval(alpha=0.01)
        assert iv.population_low <= N <= iv.population_high

    def test_selection_cached(self, facade):
        _, cr = facade
        assert cr.selection() is cr.selection()

    def test_two_sources_minimum(self):
        with pytest.raises(ValueError):
            CaptureRecapture({"only": IPSet([1, 2])})

    def test_with_options_returns_new(self, facade):
        _, cr = facade
        other = cr.with_options(criterion="aic")
        assert other is not cr
        assert other.options.criterion == "aic"
        assert cr.options.criterion == "bic"

    def test_auto_distribution(self):
        opts = EstimatorOptions()
        assert opts.resolved_distribution() == "poisson"
        assert EstimatorOptions(limit=100.0).resolved_distribution() == (
            "truncated"
        )
        assert EstimatorOptions(
            distribution="poisson", limit=100.0
        ).resolved_distribution() == "poisson"

    def test_subnets24_projection(self):
        rng = np.random.default_rng(5)
        N, sources = make_independent_sources(rng, 20_000, [0.4, 0.4])
        cr = CaptureRecapture(sources, EstimatorOptions(limit=1e9))
        sub = cr.subnets24()
        assert sub.options.limit == pytest.approx(1e9 / 256)
        for name in sources:
            assert len(sub.sources[name]) <= len(sources[name])

    def test_stratified_total_close_to_plain(self, facade):
        N, cr = facade
        labeler = lambda a: (np.asarray(a) % 2).astype(np.int64)
        strat = cr.estimate_stratified(labeler, min_observed=10)
        assert strat.population == pytest.approx(N, rel=0.07)
