"""Poisson GLM (IRLS) numerics."""

import numpy as np
import pytest
from scipy.special import gammaln

from repro.core.glm import (
    GlmError,
    fit_poisson,
    poisson_deviance,
    poisson_loglik,
)


class TestLikelihood:
    def test_loglik_matches_formula(self):
        y = np.array([0.0, 3.0, 7.0])
        mu = np.array([1.0, 2.0, 5.0])
        expected = np.sum(y * np.log(mu) - mu - gammaln(y + 1))
        assert poisson_loglik(y, mu) == pytest.approx(expected)

    def test_deviance_zero_at_saturation(self):
        y = np.array([1.0, 4.0, 9.0])
        assert poisson_deviance(y, y) == pytest.approx(0.0, abs=1e-10)

    def test_deviance_positive_otherwise(self):
        y = np.array([1.0, 4.0, 9.0])
        assert poisson_deviance(y, y + 1) > 0


class TestFitting:
    def test_intercept_only_fits_mean(self):
        y = np.array([3.0, 5.0, 7.0, 9.0])
        X = np.ones((4, 1))
        fit = fit_poisson(X, y)
        assert np.exp(fit.intercept) == pytest.approx(y.mean(), rel=1e-6)
        assert fit.converged

    def test_recovers_known_coefficients(self, rng):
        X = np.column_stack([np.ones(4000), rng.normal(size=4000)])
        beta_true = np.array([1.0, 0.5])
        y = rng.poisson(np.exp(X @ beta_true))
        fit = fit_poisson(X, y.astype(float))
        assert np.allclose(fit.coef, beta_true, atol=0.05)

    def test_zero_counts_handled(self):
        X = np.column_stack([np.ones(3), [0.0, 1.0, 2.0]])
        y = np.array([0.0, 0.0, 5.0])
        fit = fit_poisson(X, y)
        assert np.isfinite(fit.loglik)

    def test_all_zero_counts(self):
        fit = fit_poisson(np.ones((3, 1)), np.zeros(3))
        assert np.exp(fit.intercept) < 1e-3

    def test_collinear_design_does_not_crash(self):
        X = np.column_stack([np.ones(5), np.arange(5.0), np.arange(5.0)])
        y = np.array([1.0, 2.0, 3.0, 5.0, 8.0])
        fit = fit_poisson(X, y)
        assert np.isfinite(fit.loglik)

    def test_fitted_matches_observed_margins(self, rng):
        """For a log-linear model the fitted sums match sufficient stats."""
        X = np.column_stack(
            [np.ones(8), rng.integers(0, 2, 8), rng.integers(0, 2, 8)]
        ).astype(float)
        y = rng.poisson(5.0, 8).astype(float) + 1
        fit = fit_poisson(X, y)
        # ML for exponential family: X' y = X' mu.
        assert np.allclose(X.T @ y, X.T @ fit.fitted, rtol=1e-5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GlmError):
            fit_poisson(np.ones((3, 1)), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(GlmError):
            fit_poisson(np.ones((0, 1)), np.zeros(0))

    def test_deviance_decreases_with_more_params(self, rng):
        X_small = np.ones((20, 1))
        X_big = np.column_stack([np.ones(20), rng.normal(size=20)])
        y = rng.poisson(4.0, 20).astype(float)
        assert (
            fit_poisson(X_big, y).deviance <= fit_poisson(X_small, y).deviance + 1e-9
        )

    def test_large_counts_stable(self):
        X = np.ones((4, 1))
        y = np.array([1e8, 1.1e8, 0.9e8, 1.05e8])
        fit = fit_poisson(X, y)
        assert np.exp(fit.intercept) == pytest.approx(y.mean(), rel=1e-4)
