"""Lincoln-Petersen and Chapman two-sample estimators."""

import numpy as np
import pytest

from repro.core.lincoln_petersen import (
    CaptureRecaptureError,
    chapman_estimate,
    lincoln_petersen_estimate,
    lincoln_petersen_from_sets,
)
from repro.ipspace.ipset import IPSet


class TestLincolnPetersen:
    def test_textbook_value(self):
        # N = M*C/R = 100*80/20 = 400.
        est = lincoln_petersen_estimate(100, 80, 20)
        assert est.population == 400.0

    def test_unseen(self):
        est = lincoln_petersen_estimate(100, 80, 20)
        assert est.unseen == 400 - (100 + 80 - 20)

    def test_zero_recaptures_rejected(self):
        with pytest.raises(CaptureRecaptureError):
            lincoln_petersen_estimate(10, 10, 0)

    def test_full_overlap_gives_sample_size(self):
        est = lincoln_petersen_estimate(50, 50, 50)
        assert est.population == 50.0
        assert est.variance == 0.0

    def test_recaptures_bounded(self):
        with pytest.raises(CaptureRecaptureError):
            lincoln_petersen_estimate(10, 5, 6)

    def test_negative_rejected(self):
        with pytest.raises(CaptureRecaptureError):
            lincoln_petersen_estimate(-1, 5, 2)

    def test_ci_contains_point(self):
        est = lincoln_petersen_estimate(100, 80, 20)
        assert est.ci_low <= est.population <= est.ci_high

    def test_ci_never_below_union(self):
        est = lincoln_petersen_estimate(100, 100, 99)
        assert est.ci_low >= 100 + 100 - 99

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            lincoln_petersen_estimate(10, 10, 5, confidence=1.5)


class TestChapman:
    def test_less_than_lp_with_small_r(self):
        lp = lincoln_petersen_estimate(100, 80, 5)
        ch = chapman_estimate(100, 80, 5)
        assert ch.population < lp.population

    def test_finite_with_zero_recaptures(self):
        est = chapman_estimate(10, 10, 0)
        assert est.population == 11 * 11 / 1 - 1

    def test_known_value(self):
        # (M+1)(C+1)/(R+1) - 1 = 101*81/21 - 1
        est = chapman_estimate(100, 80, 20)
        assert est.population == pytest.approx(101 * 81 / 21 - 1)


class TestFromSets:
    def test_matches_counts(self):
        a = IPSet(range(0, 100))
        b = IPSet(range(80, 180))
        est = lincoln_petersen_from_sets(a, b)
        assert est.first_sample == 100
        assert est.second_sample == 100
        assert est.recaptured == 20
        assert est.population == 100 * 100 / 20

    def test_statistical_recovery(self, rng):
        """On independent uniform samples L-P recovers N within noise."""
        N = 20_000
        pop = np.sort(rng.choice(2**30, N, replace=False)).astype(np.uint32)
        a = IPSet.from_sorted_unique(pop[rng.random(N) < 0.4])
        b = IPSet.from_sorted_unique(pop[rng.random(N) < 0.3])
        est = lincoln_petersen_from_sets(a, b)
        assert est.population == pytest.approx(N, rel=0.05)
        assert est.ci_low <= N <= est.ci_high

    def test_positive_dependence_underestimates(self, rng):
        """Positively correlated sources -> L-P underestimates (3.2.2)."""
        N = 20_000
        pop = np.sort(rng.choice(2**30, N, replace=False)).astype(np.uint32)
        # Shared propensity: half the population is 'visible'.
        visible = rng.random(N) < 0.5
        a = IPSet.from_sorted_unique(pop[visible & (rng.random(N) < 0.6)])
        b = IPSet.from_sorted_unique(pop[visible & (rng.random(N) < 0.6)])
        est = lincoln_petersen_from_sets(a, b)
        assert est.population < 0.75 * N
