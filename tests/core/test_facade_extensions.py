"""Diagnostics and bootstrap on the CaptureRecapture facade."""

import numpy as np
import pytest

from repro.core.estimator import CaptureRecapture
from tests.conftest import make_independent_sources


@pytest.fixture(scope="module")
def facade():
    rng = np.random.default_rng(606)
    N, sources = make_independent_sources(rng, 15_000, [0.3, 0.35, 0.3])
    return N, CaptureRecapture(sources)


class TestFacadeDiagnostics:
    def test_diagnostics_available(self, facade):
        _, cr = facade
        diag = cr.diagnostics()
        assert diag.dof >= 0
        assert len(diag.residuals) == 2**3 - 1

    def test_well_specified_fit(self, facade):
        _, cr = facade
        diag = cr.diagnostics()
        # Independence holds by construction: modest chi-square.
        assert diag.pearson_chi2 < 10 * max(diag.dof, 1)


class TestFacadeBootstrap:
    def test_bootstrap_interval(self, facade):
        N, cr = facade
        boot = cr.bootstrap(num_replicates=60, seed=1)
        lo, hi = boot.interval
        assert lo < boot.point < hi
        assert abs(boot.point - N) < 5 * boot.standard_error

    def test_bootstrap_respects_options(self, facade):
        _, cr = facade
        limited = cr.with_options(limit=1e7)
        boot = limited.bootstrap(num_replicates=20, seed=1)
        assert np.isfinite(boot.point)
