"""Property-based tests for the capture-recapture core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chao import chao_estimate
from repro.core.design import main_effect_terms
from repro.core.histories import ContingencyTable, tabulate_histories
from repro.core.lincoln_petersen import chapman_estimate
from repro.core.loglinear import LoglinearModel
from repro.core.selection import adaptive_divisor
from repro.ipspace.ipset import IPSet


@st.composite
def contingency_tables(draw, max_sources=4, max_count=500):
    t = draw(st.integers(2, max_sources))
    counts = [0] + [
        draw(st.integers(0, max_count)) for _ in range(2**t - 1)
    ]
    # Every source must observe someone, and at least two cells must be
    # positive, or the model is degenerate by construction.
    for bit in range(t):
        counts[1 << bit] += 1
    return ContingencyTable(t, np.array(counts, dtype=np.int64))


@settings(max_examples=40, deadline=None)
@given(contingency_tables())
def test_llm_estimate_is_finite_and_additive(table):
    est = LoglinearModel(
        table.num_sources, main_effect_terms(table.num_sources)
    ).fit(table).estimate()
    assert np.isfinite(est.population)
    assert est.unseen >= 0
    assert est.population == est.observed + est.unseen


@settings(max_examples=40, deadline=None)
@given(contingency_tables())
def test_chao_never_below_observed(table):
    est = chao_estimate(table)
    assert est.population >= table.num_observed


@settings(max_examples=40, deadline=None)
@given(contingency_tables())
def test_adaptive_divisor_below_min_positive(table):
    d = adaptive_divisor(table)
    floor = table.positive_minimum()
    assert 1 <= d <= 1000
    if floor > 1:
        assert d < floor or d == 1


@settings(max_examples=40, deadline=None)
@given(contingency_tables())
def test_capture_frequencies_conserve_mass(table):
    freqs = table.capture_frequencies
    assert freqs.sum() == table.num_observed
    assert freqs[0] == 0


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 300), st.integers(1, 300), st.integers(0, 100)
)
def test_chapman_bounds(extra_a, extra_b, overlap):
    first = extra_a + overlap
    second = extra_b + overlap
    est = chapman_estimate(first, second, overlap)
    union = first + second - overlap
    assert est.population >= union - 1e-9
    assert np.isfinite(est.variance)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.integers(0, 2**20), min_size=30, max_size=150, unique=True
    ),
    st.integers(0, 2**32 - 1),
)
def test_tabulation_invariant_under_source_content(universe, seed):
    """Tabulating any split of a population conserves the union."""
    rng = np.random.default_rng(seed)
    pop = np.array(sorted(universe), dtype=np.uint32)
    sources = {}
    covered = np.zeros(len(pop), dtype=bool)
    for i in range(3):
        mask = rng.random(len(pop)) < 0.5
        covered |= mask
        sources[f"s{i}"] = IPSet.from_sorted_unique(pop[mask])
    table = tabulate_histories(sources)
    assert table.num_observed == int(covered.sum())
    for i in range(3):
        assert table.source_total(i) == len(sources[f"s{i}"])
