"""Privacy-preserving capture-recapture (the paper's future work [33])."""

import numpy as np
import pytest

from repro.core.design import main_effect_terms
from repro.core.histories import tabulate_histories
from repro.core.loglinear import LoglinearModel
from repro.core.private import (
    blind_addresses,
    blind_source,
    generate_session_key,
    private_contingency_table,
    tabulate_blinded,
)
from repro.ipspace.ipset import IPSet
from tests.conftest import make_independent_sources

KEY = b"test-session-key-0123456789abcdef"


class TestBlinding:
    def test_deterministic_under_key(self):
        addrs = np.array([1, 2, 3], dtype=np.uint32)
        a = blind_addresses(addrs, KEY)
        b = blind_addresses(addrs, KEY)
        assert np.array_equal(a, b)

    def test_key_changes_digests(self):
        addrs = np.array([1, 2, 3], dtype=np.uint32)
        a = blind_addresses(addrs, KEY)
        b = blind_addresses(addrs, b"another-key")
        assert not np.array_equal(a, b)

    def test_deduplicates(self):
        a = blind_addresses(np.array([5, 5, 5], dtype=np.uint32), KEY)
        assert len(a) == 1

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            blind_addresses(np.array([1], dtype=np.uint32), b"")

    def test_digest_order_unrelated_to_address_order(self):
        """Sorted digests must not leak address ordering."""
        addrs = np.arange(1000, dtype=np.uint32)
        digests = blind_addresses(addrs, KEY)
        # Re-blind a shifted range: shared addresses produce shared
        # digests regardless of position.
        shifted = blind_addresses(addrs[500:], KEY)
        assert np.isin(shifted, digests).all()

    def test_session_keys_unique(self):
        assert generate_session_key() != generate_session_key()


class TestBlindTabulation:
    def test_matches_plaintext_table(self, rng):
        _, sources = make_independent_sources(rng, 5_000, [0.3, 0.4, 0.2])
        plain = tabulate_histories(sources)
        blinded = private_contingency_table(sources, key=KEY)
        # Same capture frequencies and per-source totals: the tables
        # are equal up to relabeling of individuals.
        assert blinded.num_observed == plain.num_observed
        assert np.array_equal(
            blinded.capture_frequencies, plain.capture_frequencies
        )
        for i in range(3):
            assert blinded.source_total(i) == plain.source_total(i)
            for j in range(i + 1, 3):
                assert blinded.overlap(i, j) == plain.overlap(i, j)

    def test_same_estimate_as_plaintext(self, rng):
        N, sources = make_independent_sources(rng, 20_000, [0.3, 0.35, 0.3])
        plain_est = (
            LoglinearModel(3, main_effect_terms(3))
            .fit(tabulate_histories(sources))
            .estimate()
        )
        blind_est = (
            LoglinearModel(3, main_effect_terms(3))
            .fit(private_contingency_table(sources, key=KEY))
            .estimate()
        )
        assert blind_est.population == pytest.approx(
            plain_est.population, rel=1e-9
        )

    def test_source_names_preserved(self):
        datasets = {"a": IPSet([1, 2]), "b": IPSet([2, 3])}
        table = private_contingency_table(datasets, key=KEY)
        assert table.source_names == ("a", "b")

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            tabulate_blinded([])

    def test_blind_source_wrapper(self):
        source = blind_source("x", IPSet([9, 10]), KEY)
        assert source.name == "x" and len(source) == 2

    def test_random_key_still_consistent(self, rng):
        """Without passing a key, a fresh one is drawn per call — the
        table is still internally consistent."""
        _, sources = make_independent_sources(rng, 2_000, [0.5, 0.5])
        table = private_contingency_table(sources)
        plain = tabulate_histories(sources)
        assert table.num_observed == plain.num_observed
