"""Chao-Lee sample-coverage (ACE) estimator."""

import numpy as np
import pytest

from repro.core.coverage import ace_estimate
from repro.core.histories import ContingencyTable, tabulate_histories
from tests.conftest import make_heterogeneous_sources, make_independent_sources


class TestAce:
    def test_homogeneous_recovery(self, rng):
        N, sources = make_independent_sources(rng, 20_000, [0.15] * 8)
        est = ace_estimate(tabulate_histories(sources))
        assert est.population == pytest.approx(N, rel=0.1)
        assert 0 < est.sample_coverage < 1

    def test_heterogeneous_above_observed(self, rng):
        N, sources = make_heterogeneous_sources(
            rng, 20_000, num_sources=6, sigma=1.2
        )
        table = tabulate_histories(sources)
        est = ace_estimate(table)
        assert est.population > table.num_observed
        assert est.cv_squared > 0

    def test_heterogeneity_raises_ace_above_coverage_only(self, rng):
        """The CV correction adds mass under heterogeneity."""
        N, sources = make_heterogeneous_sources(
            rng, 20_000, num_sources=6, sigma=1.2
        )
        table = tabulate_histories(sources)
        est = ace_estimate(table)
        freqs = table.capture_frequencies
        f1 = freqs[1]
        captures = float(sum(k * freqs[k] for k in range(1, len(freqs))))
        coverage_only = table.num_observed / (1 - f1 / captures + 1e-12)
        # ACE >= the naive coverage inflate... modulo the rare/abundant
        # split; at minimum it is not below the observed count.
        assert est.population >= table.num_observed
        assert est.population >= 0.9 * coverage_only

    def test_empty_frequencies_handled(self):
        table = ContingencyTable(3, np.array([0, 0, 0, 0, 0, 0, 0, 5]))
        # Everyone captured three times: no singletons, full coverage.
        est = ace_estimate(table)
        assert est.population == pytest.approx(5.0)

    def test_all_singletons_falls_back(self):
        counts = np.zeros(4, dtype=np.int64)
        counts[1] = 10
        counts[2] = 10
        table = ContingencyTable(2, counts)
        est = ace_estimate(table)
        assert est.sample_coverage == 0.0
        assert np.isfinite(est.population)
        assert est.population > table.num_observed

    def test_unseen_property(self, rng):
        _, sources = make_independent_sources(rng, 5_000, [0.2, 0.2, 0.2])
        est = ace_estimate(tabulate_histories(sources))
        assert est.unseen == pytest.approx(
            est.population - est.observed
        )
