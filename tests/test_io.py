"""Persistence round-trips."""

import numpy as np
import pytest

from repro.analysis.growth import series_from_results
from repro.analysis.windows import TimeWindow
from repro.core.histories import tabulate_histories
from repro.io import (
    load_datasets,
    load_table,
    load_window_results,
    save_datasets,
    save_table,
    save_window_results,
)
from repro.ipspace.ipset import IPSet


class TestDatasetRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        datasets = {
            "ping": IPSet(rng.integers(0, 2**32, 1000, dtype=np.uint64)
                          .astype(np.uint32)),
            "web": IPSet(["1.2.3.4", "5.6.7.8"]),
            "empty": IPSet.empty(),
        }
        path = tmp_path / "data.npz"
        save_datasets(path, datasets)
        loaded = load_datasets(path)
        assert set(loaded) == set(datasets)
        for name in datasets:
            assert loaded[name] == datasets[name]

    def test_loaded_sets_valid(self, tmp_path):
        path = tmp_path / "d.npz"
        save_datasets(path, {"x": IPSet([3, 1, 2])})
        loaded = load_datasets(path)["x"]
        loaded.validate()


class TestTableRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        sources = {
            "a": IPSet(rng.integers(0, 10_000, 500).astype(np.uint32)),
            "b": IPSet(rng.integers(0, 10_000, 500).astype(np.uint32)),
            "c": IPSet(rng.integers(0, 10_000, 500).astype(np.uint32)),
        }
        table = tabulate_histories(sources)
        path = tmp_path / "table.json"
        save_table(path, table)
        loaded = load_table(path)
        assert loaded.num_sources == table.num_sources
        assert loaded.source_names == table.source_names
        assert np.array_equal(loaded.counts, table.counts)

    def test_sparse_encoding(self, tmp_path):
        from repro.core.histories import ContingencyTable

        counts = np.zeros(2**9, dtype=np.int64)
        counts[1] = 5
        counts[511] = 2
        table = ContingencyTable(9, counts)
        path = tmp_path / "big.json"
        save_table(path, table)
        # Only two cells serialised, not 512.
        assert path.read_text().count(":") < 20
        assert np.array_equal(load_table(path).counts, counts)


class TestWindowResultRoundtrip:
    def test_roundtrip_supports_growth_analysis(self, tmp_path,
                                                tiny_pipeline):
        windows = [TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5)]
        results = tiny_pipeline.run_all(windows)
        path = tmp_path / "results.json"
        save_window_results(path, results)
        loaded = load_window_results(path)
        assert len(loaded) == 2
        assert loaded[0].window == results[0].window
        assert loaded[1].estimated_addresses == pytest.approx(
            results[1].estimated_addresses
        )
        # The reloaded objects feed the growth analyses directly.
        series = series_from_results(loaded, "addresses")
        original = series_from_results(results, "addresses")
        assert np.allclose(series.estimated, original.estimated)
        assert np.array_equal(series.routed, original.routed)
