"""Failure injection and robustness properties across the stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pipeline import EstimationPipeline, PipelineOptions
from repro.analysis.windows import TimeWindow
from repro.core.estimator import CaptureRecapture, EstimatorOptions
from repro.core.histories import tabulate_histories
from repro.core.selection import select_model
from repro.filtering.spoof_filter import SpoofFilter
from repro.ipspace.intervals import IntervalSet
from repro.ipspace.ipset import IPSet
from repro.ipspace.prefixes import Prefix
from repro.sources.base import MeasurementSource


class _BrokenSource(MeasurementSource):
    """A source that reports unroutable garbage — always, or only
    inside ``broken_from``..``broken_to`` (the per-window failure
    mode: a feed that goes dark for one window and recovers)."""

    def __init__(self, broken_from=float("-inf"), broken_to=float("inf")):
        super().__init__("BROKEN", available_from=2011.0)
        self.broken_from = broken_from
        self.broken_to = broken_to
        self._healthy = IPSet.empty()

    def healthy_like(self, other):
        """Serve ``other``'s data outside the broken interval."""
        self._healthy = other
        return self

    def collect(self, start, end):
        if start < self.broken_to and end > self.broken_from:
            # Private space: preprocessing must remove everything.
            return IPSet(np.arange(0x0A000000, 0x0A000400, dtype=np.uint32))
        return self._healthy


class TestPipelineFailureInjection:
    def test_all_garbage_source_dropped(self, tiny_internet, tiny_sources):
        sources = dict(tiny_sources)
        sources["BROKEN"] = _BrokenSource()
        pipeline = EstimationPipeline(
            tiny_internet, sources, PipelineOptions(min_stratum_observed=25)
        )
        window = TimeWindow(2013.5, 2014.5)
        datasets = pipeline.datasets(window)
        assert "BROKEN" not in datasets
        result = pipeline.run_window(window)
        assert np.isfinite(result.estimated_addresses)

    def test_window_broken_source_dropped_per_window(
        self, tiny_internet, tiny_sources
    ):
        """A source emptied for ONE window is dropped for that window
        only — and the drop is recorded with its reason — while other
        windows keep using it."""
        broken_window = TimeWindow(2013.5, 2014.5)
        healthy_window = TimeWindow(2012.5, 2013.5)
        source = _BrokenSource(
            broken_from=2013.5, broken_to=2014.5
        ).healthy_like(tiny_sources["GAME"].collect(2011.0, 2014.5))
        sources = dict(tiny_sources)
        sources["BROKEN"] = source
        pipeline = EstimationPipeline(
            tiny_internet, sources, PipelineOptions(min_stratum_observed=25)
        )
        assert "BROKEN" not in pipeline.datasets(broken_window)
        assert "BROKEN" in pipeline.datasets(healthy_window)
        result = pipeline.run_window(broken_window)
        assert np.isfinite(result.estimated_addresses)
        assert result.is_degraded
        assert ("BROKEN", "empty_after_preprocess") in result.health.dropped

    def test_pipeline_with_two_sources_only(self, tiny_internet,
                                            tiny_sources):
        pipeline = EstimationPipeline(
            tiny_internet,
            {k: tiny_sources[k] for k in ("IPING", "WEB")},
            PipelineOptions(),
        )
        result = pipeline.run_window(TimeWindow(2013.5, 2014.5))
        assert result.estimated_addresses >= result.observed_addresses

    def test_pipeline_deterministic(self, tiny_internet, tiny_sources):
        window = TimeWindow(2012.5, 2013.5)
        a = EstimationPipeline(tiny_internet, tiny_sources).run_window(window)
        b = EstimationPipeline(tiny_internet, tiny_sources).run_window(window)
        assert a.estimated_addresses == b.estimated_addresses
        assert a.observed_addresses == b.observed_addresses


class TestEstimatorDegeneracies:
    def test_disjoint_sources_finite(self):
        """Zero overlap anywhere: estimates stay finite (truncation
        bounds the blow-up)."""
        a = IPSet(range(0, 1000))
        b = IPSet(range(1000, 2000))
        c = IPSet(range(2000, 3000))
        cr = CaptureRecapture(
            {"a": a, "b": b, "c": c}, EstimatorOptions(limit=1e6)
        )
        est = cr.estimate()
        assert np.isfinite(est.population)
        assert est.population <= 1e6 + 1

    def test_identical_sources(self):
        """Perfect overlap: nothing is unseen by the model's logic."""
        s = IPSet(range(5000))
        cr = CaptureRecapture({"a": s, "b": s, "c": s})
        est = cr.estimate()
        assert est.population == pytest.approx(5000, rel=0.01)

    def test_single_individual(self):
        table = tabulate_histories({"a": IPSet([7]), "b": IPSet([7])})
        selection = select_model(table)
        assert np.isfinite(selection.fit.estimate().population)

    def test_nested_sources(self):
        """One source strictly inside another."""
        big = IPSet(range(10_000))
        small = IPSet(range(5_000))
        third = IPSet(range(2_500, 7_500))
        est = CaptureRecapture({"b": big, "s": small, "t": third}).estimate()
        assert est.population >= 10_000 * 0.99


class TestSpoofFilterProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 400))
    def test_filter_output_subset_of_input(self, seed, n_spoof):
        rng = np.random.default_rng(seed)
        routed = IntervalSet.from_prefixes(
            [Prefix.parse("10.0.0.0/16"), Prefix.parse("20.0.0.0/16")]
        )
        darknet = Prefix.parse("20.0.0.0/16")
        legit = IPSet(
            (0x0A000000 + rng.choice(2**16, 300, replace=False)).astype(
                np.uint32
            )
        )
        spoof = IPSet(
            np.where(
                rng.random(n_spoof) < 0.5,
                0x0A000000 + rng.integers(0, 2**16, n_spoof),
                0x14000000 + rng.integers(0, 2**16, n_spoof),
            ).astype(np.uint32)
        )
        suspect = legit | spoof
        refs = legit.sample(100, rng)
        report = SpoofFilter(refs, routed, [darknet], seed=1).apply(suspect)
        # Output is always a subset of the input.
        assert suspect.contains(report.filtered.addresses).all()
        # Accounting always balances.
        assert (
            report.kept + report.removed_stage1 + report.removed_stage2
            == len(suspect)
        )
