"""BGP event stream and collector."""

import numpy as np
import pytest

from repro.ipspace.prefixes import Prefix
from repro.registry.allocations import generate_registry
from repro.registry.bgp import (
    EventKind,
    RouteCollector,
    generate_route_events,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(21)
    registry = generate_registry(rng, scale=2.0**-14)
    bogons = [Prefix.parse("203.0.113.0/24")]
    events = generate_route_events(
        registry, rng, bogon_prefixes=bogons
    )
    return registry, bogons, RouteCollector(events)


class TestEventGeneration:
    def test_events_sorted(self, setup):
        _, _, collector = setup
        times = [e.time for e in collector.events_until(1e9)]
        assert times == sorted(times)

    def test_every_routed_allocation_announces(self, setup):
        registry, _, collector = setup
        announced = {
            e.origin
            for e in collector.events_until(1e9)
            if e.kind is EventKind.ANNOUNCE and e.origin >= 0
        }
        routed = {
            a.index
            for a in registry
            if np.isfinite(a.routed_from) and a.routed_from < 2014.5
        }
        assert routed <= announced

    def test_flaps_balanced(self, setup):
        """Withdrawals never exceed prior announcements per prefix."""
        _, _, collector = setup
        balance: dict = {}
        for event in collector.events_until(1e9):
            delta = 1 if event.kind is EventKind.ANNOUNCE else -1
            balance[event.prefix] = balance.get(event.prefix, 0) + delta
            assert balance[event.prefix] >= -1  # transient withdraw ok

    def test_bogons_included(self, setup):
        _, bogons, collector = setup
        bogon_events = [
            e for e in collector.events_until(1e9) if e.origin == -1
        ]
        assert len(bogon_events) == 2 * len(bogons)


class TestCollector:
    def test_table_grows_over_time(self, setup):
        _, _, collector = setup
        early = len(collector.table_at(2005.0))
        late = len(collector.table_at(2014.0))
        assert late > early

    def test_snapshot_excludes_withdrawn(self, setup):
        """A prefix flapping down at time t is absent from a snapshot
        during the outage."""
        _, _, collector = setup
        withdraw = next(
            e
            for e in collector.events_until(1e9)
            if e.kind is EventKind.WITHDRAW and e.origin >= 0
        )
        table = collector.table_at(withdraw.time + 1e-7)
        with pytest.raises(KeyError):
            table.exact(withdraw.prefix)

    def test_aggregation_superset_of_snapshots(self, setup):
        _, _, collector = setup
        window = (2013.5, 2014.5)
        aggregated = collector.aggregated_window(*window)
        snapshot = collector.snapshot_prefixes(2014.0)
        for prefix in snapshot:
            assert aggregated.contains_interval(prefix.base, prefix.end)

    def test_bogons_excluded_from_aggregation(self, setup):
        _, bogons, collector = setup
        aggregated = collector.aggregated_window(2011.0, 2014.5)
        for bogon in bogons:
            assert not aggregated.contains_interval(bogon.base, bogon.end)

    def test_bogons_included_when_asked(self, setup):
        _, bogons, collector = setup
        aggregated = collector.aggregated_window(
            2011.0, 2014.5, exclude_bogons=False
        )
        covered = any(
            aggregated.contains_interval(b.base, b.end) for b in bogons
        )
        assert covered

    def test_churn_counts(self, setup):
        _, _, collector = setup
        announces, withdraws = collector.churn_counts(2011.0, 2014.5)
        assert announces > 0 and withdraws > 0

    def test_agrees_with_routed_space_model(self, setup):
        """The event-level aggregation and the coarse RoutedSpace model
        cover approximately the same space for the same window."""
        registry, _, collector = setup
        from repro.registry.routing import RoutedSpace

        routing = RoutedSpace(registry, np.random.default_rng(5))
        window = (2013.5, 2014.5)
        coarse = routing.window(*window)
        fine = collector.aggregated_window(*window)
        overlap = (coarse & fine).size()
        assert overlap > 0.9 * min(coarse.size(), fine.size())
