"""Routed-space model."""

import numpy as np
import pytest

from repro.registry.allocations import generate_registry
from repro.registry.routing import RoutedSpace


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(11)
    registry = generate_registry(rng, scale=2.0**-12)
    return registry, RoutedSpace(registry, rng)


class TestRoutedSpace:
    def test_routed_subset_of_allocated(self, setup):
        registry, routing = setup
        routed = routing.window(2013.5, 2014.5)
        allocated = registry.allocated_space()
        assert (routed - allocated).size() == 0

    def test_routed_share_plausible(self, setup):
        registry, routing = setup
        share = routing.size(2013.5, 2014.5) / registry.allocated_space().size()
        assert 0.6 < share < 0.95  # paper: ~80 % of allocated is routed

    def test_routed_grows_over_time(self, setup):
        _, routing = setup
        early = routing.size(2011.0, 2012.0)
        late = routing.size(2013.5, 2014.5)
        assert late > early

    def test_window_caching(self, setup):
        _, routing = setup
        assert routing.window(2012.0, 2013.0) is routing.window(2012.0, 2013.0)

    def test_darknets_are_routed(self, setup):
        registry, routing = setup
        routed = routing.window(2013.5, 2014.5)
        for alloc in registry.allocations:
            if alloc.darknet:
                assert routed.contains_interval(
                    alloc.prefix.base, alloc.prefix.end
                )

    def test_mask_matches_window(self, setup):
        registry, routing = setup
        mask = routing.routed_allocation_mask(2013.0, 2014.0)
        window = routing.window(2013.0, 2014.0)
        for alloc, flag in zip(registry.allocations, mask):
            inside = window.contains_interval(alloc.prefix.base, alloc.prefix.end)
            assert inside == bool(flag)

    def test_bogons_outside_allocated(self, setup):
        registry, routing = setup
        allocated = registry.allocated_space()
        for bogon in routing.bogon_prefixes:
            assert not allocated.contains_interval(bogon.base, bogon.end)

    def test_routing_table_longest_match(self, setup):
        registry, routing = setup
        table = routing.routing_table(2013.5, 2014.5)
        mask = routing.routed_allocation_mask(2013.5, 2014.5)
        routed_allocs = [
            a for a, f in zip(registry.allocations, mask) if f
        ]
        assert len(table) == len(routed_allocs)
        sample = routed_allocs[0]
        match = table.longest_match(sample.prefix.base)
        assert match is not None and match[1] == sample.index

    def test_subnet24_count_consistent(self, setup):
        _, routing = setup
        window = routing.window(2013.5, 2014.5)
        assert routing.subnet24_count(2013.5, 2014.5) == window.subnet24_count()
