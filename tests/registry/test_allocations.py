"""Registry generation and lookup."""

import numpy as np
import pytest

from repro.ipspace.special import special_use_intervals
from repro.registry.allocations import (
    REAL_ALLOCATED_24S,
    AllocationRegistry,
    generate_registry,
)
from repro.registry.rir import RIR, Industry


@pytest.fixture(scope="module")
def registry():
    return generate_registry(np.random.default_rng(7), scale=2.0**-12)


class TestGeneration:
    def test_capacity_close_to_target(self, registry):
        total_24s = sum(
            max(1, a.prefix.size // 256) for a in registry.allocations
        )
        target = int(REAL_ALLOCATED_24S * 2.0**-12)
        assert target <= total_24s <= target * 1.2

    def test_no_overlaps(self, registry):
        allocs = registry.allocations
        for a, b in zip(allocs, allocs[1:]):
            assert a.prefix.end <= b.prefix.base

    def test_avoids_special_space(self, registry):
        special = special_use_intervals()
        for alloc in registry.allocations:
            assert not special.contains(np.array([alloc.prefix.base]))[0]
            assert not special.contains(np.array([alloc.prefix.last]))[0]

    def test_all_rirs_present(self, registry):
        rirs = {a.rir for a in registry.allocations}
        assert rirs == set(RIR)

    def test_rir_shares_roughly_match(self, registry):
        sizes = {rir: 0 for rir in RIR}
        for alloc in registry.allocations:
            sizes[alloc.rir] += alloc.prefix.size
        total = sum(sizes.values())
        assert sizes[RIR.ARIN] / total == pytest.approx(0.38, abs=0.12)
        assert sizes[RIR.AFRINIC] / total < sizes[RIR.RIPE] / total

    def test_years_in_range(self, registry):
        years = [a.year for a in registry.allocations]
        assert min(years) >= 1983 and max(years) <= 2014

    def test_real_lengths_in_range(self, registry):
        lengths = {a.real_length for a in registry.allocations}
        assert lengths <= set(range(8, 25))
        assert 8 in lengths  # some legacy /8-equivalents exist

    def test_apnic_post_runout_allocations_small(self, registry):
        post = [
            a
            for a in registry.allocations
            if a.rir == RIR.APNIC and a.year >= 2012
        ]
        if post:  # /22-style final policy dominates
            assert np.median([a.real_length for a in post]) >= 21

    def test_darknets_planted(self, registry):
        darknets = [a for a in registry.allocations if a.darknet]
        assert len(darknets) == 2
        for d in darknets:
            assert d.industry == Industry.MILITARY
            assert d.is_routed_ever

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            generate_registry(np.random.default_rng(0), scale=0.0)

    def test_deterministic_given_seed(self):
        a = generate_registry(np.random.default_rng(42), scale=2.0**-13)
        b = generate_registry(np.random.default_rng(42), scale=2.0**-13)
        assert len(a) == len(b)
        assert all(
            x.prefix == y.prefix and x.rir == y.rir
            for x, y in zip(a.allocations, b.allocations)
        )


class TestLookup:
    def test_lookup_hits_and_misses(self, registry):
        first = registry.allocations[0]
        inside = np.array([first.prefix.base, first.prefix.last], dtype=np.uint32)
        assert list(registry.lookup(inside)) == [0, 0]
        # One past the end either misses or hits the *next* allocation.
        after = registry.lookup(np.array([first.prefix.end], dtype=np.uint32))[0]
        assert after != 0

    def test_lookup_unallocated(self, registry):
        # Multicast space is never allocated.
        assert registry.lookup(np.array([0xE0000001], dtype=np.uint32))[0] == -1

    def test_rejects_overlapping_registry(self):
        from repro.ipspace.prefixes import Prefix
        from repro.registry.allocations import Allocation

        a = Allocation(0, Prefix.parse("1.0.0.0/8"), RIR.ARIN, "US", 2000, 8,
                       Industry.ISP, 2000.0)
        b = Allocation(1, Prefix.parse("1.128.0.0/9"), RIR.ARIN, "US", 2000, 9,
                       Industry.ISP, 2000.0)
        with pytest.raises(ValueError):
            AllocationRegistry([a, b])


class TestLabelers:
    def test_rir_labeler(self, registry):
        alloc = registry.allocations[3]
        label = registry.labeler("rir")(
            np.array([alloc.prefix.base], dtype=np.uint32)
        )
        assert label[0] == int(alloc.rir)

    def test_country_labeler(self, registry):
        alloc = registry.allocations[3]
        label = registry.labeler("country")(
            np.array([alloc.prefix.base], dtype=np.uint32)
        )
        assert label[0] == alloc.country

    def test_unallocated_labels(self, registry):
        addr = np.array([0xE0000001], dtype=np.uint32)
        assert registry.labeler("rir")(addr)[0] == -1
        assert registry.labeler("country")(addr)[0] == "??"

    def test_prefix_and_age_labelers(self, registry):
        alloc = registry.allocations[5]
        addr = np.array([alloc.prefix.base], dtype=np.uint32)
        assert registry.labeler("prefix")(addr)[0] == alloc.real_length
        assert registry.labeler("age")(addr)[0] == alloc.year

    def test_unknown_kind_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.labeler("species")


class TestPools:
    def test_rir_pools_cover_allocations(self, registry):
        for rir in RIR:
            space = registry.rir_space(rir)
            own = registry.allocated_space_of(rir)
            assert (own - space).size() == 0

    def test_unallocated_pool_disjoint_from_allocations(self, registry):
        free = registry.unallocated_in_pool(RIR.ARIN)
        allocated = registry.allocated_space()
        assert (free & allocated).size() == 0
