"""Whois rendering, parsing and industry classification."""

import numpy as np
import pytest

from repro.registry.rir import Industry
from repro.registry.whois import (
    classify_industry,
    classify_registry,
    parse_whois,
    render_whois,
)


class TestRenderParse:
    def test_roundtrip(self, tiny_internet, rng):
        alloc = tiny_internet.registry.allocations[5]
        record = parse_whois(render_whois(alloc, rng, missing_prob=0.0))
        assert record.first == alloc.prefix.base
        assert record.last == alloc.prefix.last
        assert record.country == alloc.country
        assert record.size == alloc.prefix.size

    def test_missing_org(self, tiny_internet):
        rng = np.random.default_rng(0)
        alloc = tiny_internet.registry.allocations[0]
        record = parse_whois(render_whois(alloc, rng, missing_prob=1.0))
        assert record.organisation == "Private Customer"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_whois("this is not whois")
        with pytest.raises(ValueError):
            parse_whois("inetnum: banana - apple")
        with pytest.raises(ValueError):
            parse_whois("inetnum: 10.0.0.255 - 10.0.0.0")


class TestClassifier:
    @pytest.mark.parametrize("org,expected", [
        ("Acme Telecom", Industry.ISP),
        ("Springfield Broadband", Industry.ISP),
        ("State University of X", Industry.EDUCATION),
        ("Ministry of Interior", Industry.GOVERNMENT),
        ("Royal Defence Forces", Industry.MILITARY),
        ("Mega Holdings Ltd", Industry.CORPORATE),
        ("Private Customer", Industry.UNCLASSIFIED),
        ("", Industry.UNCLASSIFIED),
    ])
    def test_keywords(self, org, expected):
        assert classify_industry(org) == expected

    def test_military_beats_government(self):
        # "Department of Defence" must classify as military, not
        # government, despite containing both stems.
        assert classify_industry("Department of Defence") == (
            Industry.MILITARY
        )


class TestRegistryClassification:
    def test_coverage_matches_paper(self, tiny_internet):
        """The paper classified 88 % of the allocated space."""
        rng = np.random.default_rng(9)
        report = classify_registry(tiny_internet.registry, rng)
        assert report.coverage == pytest.approx(0.88, abs=0.06)

    def test_classification_mostly_correct(self, tiny_internet):
        rng = np.random.default_rng(9)
        report = classify_registry(tiny_internet.registry, rng)
        assert report.accuracy > 0.9

    def test_full_records_full_coverage(self, tiny_internet):
        rng = np.random.default_rng(9)
        report = classify_registry(
            tiny_internet.registry, rng, missing_prob=0.0
        )
        # Only genuinely UNCLASSIFIED allocations stay unclassified.
        assert report.coverage > 0.8
