"""RIR profiles and industry tables."""

import pytest

from repro.registry.rir import (
    INDUSTRY_ROUTED_PROB,
    INDUSTRY_UTILISATION,
    INDUSTRY_WEIGHTS,
    RIR,
    RIR_NAMES,
    Industry,
    rir_profiles,
)


class TestRirProfiles:
    def test_all_five_present(self):
        profiles = rir_profiles()
        assert set(profiles) == set(RIR)
        assert RIR_NAMES == ("AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE")

    def test_space_shares_sum_to_one(self):
        total = sum(p.space_share for p in rir_profiles().values())
        assert total == pytest.approx(1.0)

    def test_big_three_ordering(self):
        profiles = rir_profiles()
        assert profiles[RIR.ARIN].space_share > profiles[RIR.LACNIC].space_share
        assert profiles[RIR.RIPE].space_share > profiles[RIR.AFRINIC].space_share

    def test_exhausted_rirs_run_out_first(self):
        profiles = rir_profiles()
        # APNIC (2011) and RIPE (2012) exhausted before the others [1].
        assert profiles[RIR.APNIC].runout_year < 2012
        assert profiles[RIR.RIPE].runout_year < 2013
        assert profiles[RIR.AFRINIC].runout_year > 2015

    def test_growth_ordering_matches_paper(self):
        """AfriNIC fastest relative growth, RIPE slowest of the big
        three (Section 6.4)."""
        profiles = rir_profiles()
        growth = {r: p.growth_rate for r, p in profiles.items()}
        assert growth[RIR.AFRINIC] == max(growth.values())
        assert growth[RIR.RIPE] < growth[RIR.APNIC]
        assert growth[RIR.RIPE] < growth[RIR.ARIN]

    def test_arin_has_most_legacy(self):
        profiles = rir_profiles()
        assert profiles[RIR.ARIN].legacy_share == max(
            p.legacy_share for p in profiles.values()
        )

    def test_unallocated_fractions(self):
        profiles = rir_profiles()
        assert profiles[RIR.AFRINIC].unallocated_fraction > 0.2
        for rir in (RIR.APNIC, RIR.RIPE):
            assert profiles[rir].unallocated_fraction < 0.05


class TestIndustryTables:
    def test_weights_sum_to_one(self):
        assert sum(INDUSTRY_WEIGHTS.values()) == pytest.approx(1.0)

    def test_all_industries_covered(self):
        for table in (INDUSTRY_WEIGHTS, INDUSTRY_UTILISATION, INDUSTRY_ROUTED_PROB):
            assert set(table) == set(Industry)

    def test_isp_dominates(self):
        assert INDUSTRY_WEIGHTS[Industry.ISP] == max(INDUSTRY_WEIGHTS.values())
        assert INDUSTRY_UTILISATION[Industry.ISP] == max(
            INDUSTRY_UTILISATION.values()
        )

    def test_military_is_darkest(self):
        assert INDUSTRY_UTILISATION[Industry.MILITARY] == min(
            INDUSTRY_UTILISATION.values()
        )
        assert INDUSTRY_ROUTED_PROB[Industry.MILITARY] == min(
            INDUSTRY_ROUTED_PROB.values()
        )

    def test_probabilities_valid(self):
        for table in (INDUSTRY_UTILISATION, INDUSTRY_ROUTED_PROB):
            for value in table.values():
                assert 0 <= value <= 1
