"""Country composition tables."""

import numpy as np
import pytest

from repro.registry.countries import (
    COUNTRIES_BY_RIR,
    all_country_codes,
    country_growth_multiplier,
    country_weights,
)
from repro.registry.rir import RIR


class TestCountryTables:
    def test_every_rir_has_countries(self):
        assert set(COUNTRIES_BY_RIR) == set(RIR)
        for rows in COUNTRIES_BY_RIR.values():
            assert len(rows) >= 5

    def test_weights_normalised(self):
        for rir in RIR:
            _, weights = country_weights(rir)
            assert weights.sum() == pytest.approx(1.0)
            assert (weights > 0).all()

    def test_us_dominates_arin(self):
        codes, weights = country_weights(RIR.ARIN)
        assert codes[int(np.argmax(weights))] == "US"

    def test_cn_dominates_apnic(self):
        codes, weights = country_weights(RIR.APNIC)
        assert codes[int(np.argmax(weights))] == "CN"

    def test_paper_fast_growers(self):
        """Romania and the Asian/South-American growers of Fig 9."""
        assert country_growth_multiplier(RIR.RIPE, "RO") > 1.5
        assert country_growth_multiplier(RIR.LACNIC, "BR") > 1.4
        assert country_growth_multiplier(RIR.APNIC, "VN") > 1.5
        assert country_growth_multiplier(RIR.APNIC, "CN") > 1.0

    def test_mature_markets_grow_slowly(self):
        assert country_growth_multiplier(RIR.RIPE, "DE") < 1.0
        assert country_growth_multiplier(RIR.APNIC, "JP") < 1.0

    def test_unknown_country_raises(self):
        with pytest.raises(KeyError):
            country_growth_multiplier(RIR.ARIN, "ZZ")

    def test_all_country_codes_unique_sorted(self):
        codes = all_country_codes()
        assert codes == sorted(set(codes))
        assert "US" in codes and "CN" in codes
