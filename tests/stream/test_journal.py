"""The observation-delta journal: append, replay, crash safety."""

import json

import numpy as np
import pytest

from repro.stream.journal import (
    DeltaJournal,
    JournalCorruptionError,
    ObservationDelta,
    SourceRecord,
    journal_from_sources,
)


def _journal(tmp_path, **kwargs):
    return DeltaJournal(tmp_path / "journal", **kwargs)


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        journal = _journal(tmp_path)
        journal.declare_source("A", 2011.0)
        journal.append("A", 8, add=[3, 1, 2], remove=[])
        journal.append("A", 8, add=[], remove=[2])
        records = list(journal.replay())
        assert isinstance(records[0], SourceRecord)
        assert records[0].name == "A"
        assert isinstance(records[1], ObservationDelta)
        np.testing.assert_array_equal(records[1].add, [1, 2, 3])
        np.testing.assert_array_equal(records[2].remove, [2])

    def test_sequence_numbers_are_gap_free(self, tmp_path):
        journal = _journal(tmp_path)
        journal.declare_source("A", 2011.0)
        for _ in range(5):
            journal.append("A", 8, add=[1], remove=[])
        assert [r.seq for r in journal.replay()] == list(range(6))
        assert journal.last_seq == 5

    def test_replay_from_offset(self, tmp_path):
        journal = _journal(tmp_path)
        journal.declare_source("A", 2011.0)
        journal.append("A", 8, add=[1], remove=[])
        journal.append("A", 9, add=[2], remove=[])
        tail = list(journal.replay(start_seq=2))
        assert len(tail) == 1 and tail[0].quarter == 9

    def test_reopen_continues_sequence(self, tmp_path):
        journal = _journal(tmp_path)
        journal.declare_source("A", 2011.0)
        journal.append("A", 8, add=[1], remove=[])
        reopened = _journal(tmp_path)
        reopened.append("A", 9, add=[2], remove=[])
        assert [r.seq for r in reopened.replay()] == [0, 1, 2]

    def test_segment_rotation(self, tmp_path):
        journal = _journal(tmp_path, segment_records=3)
        journal.declare_source("A", 2011.0)
        for i in range(8):
            journal.append("A", 8, add=[i], remove=[])
        segments = sorted(p.name for p in (tmp_path / "journal").iterdir())
        assert len(segments) == 3
        assert len(list(_journal(tmp_path).replay())) == 9


class TestCrashSafety:
    def _segments(self, tmp_path):
        return sorted((tmp_path / "journal").glob("segment-*.jsonl"))

    def test_torn_final_line_is_ignored(self, tmp_path):
        journal = _journal(tmp_path)
        journal.declare_source("A", 2011.0)
        journal.append("A", 8, add=[1], remove=[])
        last = self._segments(tmp_path)[-1]
        with last.open("a") as fh:
            fh.write('{"kind":"delta","seq":2,"sou')  # crash mid-write
        reopened = _journal(tmp_path)
        assert [r.seq for r in reopened.replay()] == [0, 1]
        # The next append overwrites the torn tail with a valid record.
        reopened.append("A", 9, add=[2], remove=[])
        assert [r.seq for r in _journal(tmp_path).replay()] == [0, 1, 2]

    def test_interior_corruption_raises(self, tmp_path):
        journal = _journal(tmp_path)
        journal.declare_source("A", 2011.0)
        journal.append("A", 8, add=[1], remove=[])
        journal.append("A", 9, add=[2], remove=[])
        last = self._segments(tmp_path)[-1]
        lines = last.read_text().splitlines(keepends=True)
        lines[1] = lines[1][:20] + "X" + lines[1][21:]  # flip one byte
        last.write_text("".join(lines))
        with pytest.raises(JournalCorruptionError):
            list(_journal(tmp_path).replay())

    def test_checksum_mismatch_detected(self, tmp_path):
        journal = _journal(tmp_path)
        journal.declare_source("A", 2011.0)
        journal.append("A", 8, add=[1], remove=[])
        journal.append("A", 9, add=[2], remove=[])
        last = self._segments(tmp_path)[-1]
        lines = last.read_text().splitlines()
        doc = json.loads(lines[1])
        doc["quarter"] = 99  # tamper but keep valid JSON and stale crc
        lines[1] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        last.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError):
            list(_journal(tmp_path).replay())

    def test_sequence_gap_raises(self, tmp_path):
        journal = _journal(tmp_path)
        journal.declare_source("A", 2011.0)
        journal.append("A", 8, add=[1], remove=[])
        journal.append("A", 9, add=[2], remove=[])
        last = self._segments(tmp_path)[-1]
        lines = last.read_text().splitlines(keepends=True)
        del lines[1]  # drop an interior record
        last.write_text("".join(lines))
        with pytest.raises(JournalCorruptionError, match="gap"):
            list(_journal(tmp_path).replay())


class TestFromSources:
    def test_refuses_nonempty_journal(self, tmp_path, tiny_sources):
        journal = _journal(tmp_path)
        journal.declare_source("A", 2011.0)
        with pytest.raises(ValueError, match="not empty"):
            journal_from_sources(tiny_sources, tmp_path / "journal")

    def test_journaled_collections_match_live(self, tmp_path, tiny_sources):
        from repro.analysis.windows import TimeWindow
        from repro.stream.estimator import JournalSource

        journal = journal_from_sources(tiny_sources, tmp_path / "journal")
        # Rebuild per-source views straight off the journal and compare
        # a window's collection with the live source.
        sources = {}
        quarters = {}
        for record in journal.replay():
            if isinstance(record, SourceRecord):
                sources[record.name] = record
                quarters[record.name] = {}
            elif isinstance(record, ObservationDelta):
                quarters[record.source][record.quarter] = record.add
        window = TimeWindow(2013.5, 2014.5)
        for name, live in tiny_sources.items():
            meta = sources[name]
            view = JournalSource(
                name, meta.available_from, meta.available_to, quarters[name]
            )
            np.testing.assert_array_equal(
                view.collect(window.start, window.end).addresses,
                live.collect(window.start, window.end).addresses,
                err_msg=name,
            )
