"""Incremental tabulation vs from-scratch truth, under random deltas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histories import tabulate_histories
from repro.ipspace.ipset import IPSet
from repro.stream.tabulator import IncrementalTabulator, TabulatorDriftError

SOURCES = ("A", "B", "C")

#: Small address universe so histories collide and overlap heavily.
addresses = st.lists(
    st.integers(min_value=0, max_value=40), min_size=0, max_size=8
)

#: One operation: (source index, wants-removal flag, address pool).
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(SOURCES) - 1),
        st.booleans(),
        addresses,
    ),
    min_size=0,
    max_size=40,
)


def _apply(tab, model, ops):
    """Drive the tabulator and a reference membership model in lockstep.

    Removal candidates are clipped to addresses the source actually
    vouches for (the estimator only ever withdraws prior observations);
    the spoof-filter path is exactly such a removal of a subset of a
    source's current members.
    """
    for source_idx, is_remove, pool in ops:
        name = SOURCES[source_idx]
        if is_remove:
            present = [a for a in set(pool) if model[name].get(a, 0) > 0]
            if not present:
                continue
            tab.remove(name, present)
            for a in present:
                model[name][a] -= 1
                if model[name][a] == 0:
                    del model[name][a]
        else:
            batch = sorted(set(pool))
            if not batch:
                continue
            tab.add(name, batch)
            for a in batch:
                model[name][a] = model[name].get(a, 0) + 1


def _scratch_table(model, drop_empty=False):
    sets = {
        name: IPSet(np.array(sorted(members), dtype=np.uint32))
        for name, members in model.items()
    }
    if drop_empty:
        sets = {name: s for name, s in sets.items() if len(s)}
    return tabulate_histories(sets)


class TestIncrementalMatchesScratch:
    @given(ops=operations)
    @settings(max_examples=200, deadline=None)
    def test_random_interleaving(self, ops):
        tab = IncrementalTabulator(SOURCES)
        model = {name: {} for name in SOURCES}
        _apply(tab, model, ops)
        tab.verify()  # cell-for-cell against tabulate_histories
        scratch = _scratch_table(model)
        np.testing.assert_array_equal(tab.table().counts, scratch.counts)

    @given(ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_random_interleaving_stratified(self, ops):
        tab = IncrementalTabulator(SOURCES, labeler=lambda a: a % 3)
        model = {name: {} for name in SOURCES}
        _apply(tab, model, ops)
        tab.verify()  # includes the per-stratum split comparison

    @given(ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_drop_empty_matches_filtered_scratch(self, ops):
        # The per-window empty-source-drop path: a source with no
        # members must marginalise away exactly as if it were never
        # tabulated at all.
        tab = IncrementalTabulator(SOURCES)
        model = {name: {} for name in SOURCES}
        _apply(tab, model, ops)
        if not any(model[name] for name in SOURCES):
            return  # nothing observed at all: no table to compare
        scratch = _scratch_table(model, drop_empty=True)
        live = tab.table(drop_empty=True)
        np.testing.assert_array_equal(live.counts, scratch.counts)
        assert live.source_names == scratch.source_names


class TestRefcounting:
    def test_multi_quarter_vouching(self):
        # The same source observing an address in two quarters must
        # survive one quarter's expiry.
        tab = IncrementalTabulator(("A", "B"))
        tab.add("A", [7])
        tab.add("A", [7])
        tab.add("B", [7])
        tab.remove("A", [7])
        assert tab.table().counts[0b11] == 1  # still seen by both
        tab.remove("A", [7])
        assert tab.table().counts[0b10] == 1  # B's bit only
        tab.verify()

    def test_remove_of_absent_address_raises(self):
        tab = IncrementalTabulator(("A", "B"))
        tab.add("A", [1])
        with pytest.raises(ValueError, match="not observed"):
            tab.remove("B", [1])
        with pytest.raises(ValueError, match="not observed"):
            tab.remove("A", [2])

    def test_drift_detection_catches_tampering(self):
        tab = IncrementalTabulator(("A", "B"))
        tab.add("A", [1, 2])
        tab.add("B", [2])
        tab._counts[None][1] += 1  # corrupt a cell behind its back
        with pytest.raises(TabulatorDriftError):
            tab.verify()

    def test_counters_are_monotonic(self):
        tab = IncrementalTabulator(("A", "B"))
        tab.add("A", [1, 2, 3])
        tab.remove("A", [2])
        counters = tab.counters()
        assert counters["deltas_applied"] == 2
        assert counters["addresses_touched"] == 4
        assert counters["cells_touched"] > 0
