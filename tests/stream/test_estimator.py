"""StreamEstimator: batch parity, snapshots, late events, warm refits."""

import numpy as np
import pytest

from repro.analysis.windows import standard_windows
from repro.engine.stages import PipelineOptions
from repro.engine.store import open_store
from repro.sources.base import quarter_bounds, quarter_of
from repro.stream.estimator import StreamEstimator
from repro.stream.journal import journal_from_sources

#: Must match the ``tiny_pipeline`` fixture so closes compare equal.
OPTIONS = dict(min_stratum_observed=25)


@pytest.fixture(scope="module")
def stream_journal(tmp_path_factory, tiny_sources):
    path = tmp_path_factory.mktemp("stream") / "journal"
    return journal_from_sources(tiny_sources, path)


@pytest.fixture(scope="module")
def warm_stream(tiny_internet, stream_journal):
    stream = StreamEstimator(
        tiny_internet, stream_journal, options=PipelineOptions(**OPTIONS)
    )
    stream.ingest()
    return stream


class TestBatchParity:
    def test_full_journal_is_ingested(self, warm_stream, stream_journal):
        assert warm_stream.next_seq == len(stream_journal)
        assert len(warm_stream.sources()) == 9
        assert warm_stream.closeable_windows() == standard_windows()

    def test_live_tabulator_matches_scratch(self, warm_stream):
        tab = warm_stream.tabulator()
        assert tab is not None
        tab.verify()
        window = warm_stream.live_window()
        assert window == standard_windows()[-1]

    def test_close_matches_batch_window(
        self, warm_stream, last_window, last_window_result
    ):
        result = warm_stream.close(last_window)
        batch = last_window_result
        assert result.observed_addresses == batch.observed_addresses
        assert result.routed_addresses == batch.routed_addresses
        np.testing.assert_allclose(
            result.estimated_addresses, batch.estimated_addresses, rtol=1e-8
        )
        np.testing.assert_allclose(
            result.estimated_subnets, batch.estimated_subnets, rtol=1e-8
        )
        assert result.excluded_sources == batch.excluded_sources

    def test_close_at_same_version_is_cached(self, warm_stream, last_window):
        first = warm_stream.close(last_window)
        assert warm_stream.close(last_window) is first
        assert warm_stream.revision_of(last_window) == 0

    def test_adjacent_window_close_also_matches_batch(
        self, warm_stream, tiny_pipeline
    ):
        # The second close runs against a warm chain populated by the
        # first — parity must survive any seeding that happens.
        window = standard_windows()[-2]
        result = warm_stream.close(window)
        batch = tiny_pipeline.run_window(window)
        assert result.excluded_sources == batch.excluded_sources
        np.testing.assert_allclose(
            result.estimated_addresses, batch.estimated_addresses, rtol=1e-8
        )


class TestWarmChain:
    """The exact-structure seeding contract of _StreamWarmStore."""

    TERMS = frozenset({frozenset({0}), frozenset({1})})

    def _spec(self, **overrides):
        spec = dict(
            num_sources=2,
            terms=self.TERMS,
            counts=np.array([0, 5, 7, 3]),
            distribution="truncated",
            limit=1000.0,
            divisor=1,
        )
        spec.update(overrides)
        return spec

    def test_identical_model_seeds(self):
        from repro.stream.estimator import _StreamWarmStore

        chain = _StreamWarmStore()
        coef = np.array([1.0, 2.0, 3.0])
        chain.store(coef, **self._spec())
        # Same structure, different counts (the next window's table).
        seed = chain.lookup(**self._spec(counts=np.array([0, 6, 6, 4])))
        np.testing.assert_array_equal(seed, coef)
        assert chain.previous_hits == 1

    def test_different_terms_do_not_seed(self):
        from repro.stream.estimator import _StreamWarmStore

        chain = _StreamWarmStore()
        chain.store(np.array([1.0, 2.0, 3.0]), **self._spec())
        other = frozenset({frozenset({0}), frozenset({0, 1})})
        assert chain.lookup(**self._spec(terms=other)) is None
        assert chain.previous_hits == 0

    def test_cross_level_limits_do_not_seed(self):
        from repro.stream.estimator import _StreamWarmStore

        chain = _StreamWarmStore()
        address = np.array([10.0, 2.0, 3.0])
        subnet = np.array([4.0, 2.0, 3.0])
        chain.store(address, **self._spec(limit=388096.0))
        chain.store(subnet, **self._spec(limit=1516.0))
        # Both regimes coexist under one model key and each lookup
        # resolves to its own level's coefficients.
        np.testing.assert_array_equal(
            chain.lookup(**self._spec(limit=390000.0)), address
        )
        np.testing.assert_array_equal(
            chain.lookup(**self._spec(limit=1500.0)), subnet
        )
        assert chain.lookup(**self._spec(limit=20000.0)) is None

    def test_exact_digest_base_wins(self):
        from repro.stream.estimator import _StreamWarmStore

        exact = np.array([9.0, 9.0, 9.0])

        class Base:
            def lookup(self, **spec):
                return exact

            def store(self, coef, **spec):
                pass

        chain = _StreamWarmStore(Base())
        chain.store(np.array([1.0, 2.0, 3.0]), **self._spec())
        np.testing.assert_array_equal(chain.lookup(**self._spec()), exact)
        assert chain.exact_hits == 1
        assert chain.previous_hits == 0


class TestLateEvents:
    def test_late_delta_marks_stale_and_revises(
        self, tiny_internet, tiny_sources, tmp_path, last_window
    ):
        journal = journal_from_sources(tiny_sources, tmp_path / "journal")
        stream = StreamEstimator(
            tiny_internet, journal, options=PipelineOptions(**OPTIONS)
        )
        stream.ingest()
        first = stream.close(last_window)
        assert stream.stale_windows() == []
        # A late batch lands in an already-closed quarter: addresses
        # another source vouched for, new to WIKI.
        quarter = quarter_of(2014.25)
        q_start, q_end = quarter_bounds(quarter)
        extra = np.setdiff1d(
            tiny_sources["SWIN"].collect(q_start, q_end).addresses,
            tiny_sources["WIKI"].collect(q_start, q_end).addresses,
        )[:500]
        assert extra.size  # the late batch must actually change WIKI
        journal.append("WIKI", quarter, add=extra)
        stream.ingest()
        assert last_window in stream.stale_windows()
        revised = stream.close(last_window)
        assert stream.revision_of(last_window) == 1
        assert revised is not first
        assert stream.stale_windows() == []
        # Parity holds under revision too: a batch run over the same
        # mutated history (integrity scoring included — the grafted
        # batch may well get WIKI quarantined) must agree exactly.
        from repro.engine.executor import Executor

        batch = Executor(
            tiny_internet, stream.sources(), PipelineOptions(**OPTIONS)
        ).window_result(last_window)
        assert revised.excluded_sources == batch.excluded_sources
        assert revised.observed_addresses == batch.observed_addresses
        np.testing.assert_allclose(
            revised.estimated_addresses, batch.estimated_addresses, rtol=1e-8
        )

    def test_noop_delta_does_not_invalidate(
        self, tiny_internet, tiny_sources, tmp_path, first_window
    ):
        journal = journal_from_sources(
            tiny_sources, tmp_path / "journal", through=2012.0
        )
        stream = StreamEstimator(
            tiny_internet, journal, options=PipelineOptions(**OPTIONS)
        )
        stream.ingest()
        assert stream.closeable_windows() == [first_window]
        result = stream.close(first_window)
        version = stream.version
        quarter = quarter_of(2011.5)
        journal.append(
            "WIKI", quarter, add=tiny_sources["WIKI"].quarter_set(quarter)
        )
        stream.ingest()
        assert stream.version == version  # nothing actually changed
        assert stream.stale_windows() == []
        assert stream.close(first_window) is result


class TestSnapshotResume:
    def test_resume_without_store_is_fresh(self, tiny_internet, stream_journal):
        stream = StreamEstimator.resume(tiny_internet, stream_journal)
        assert stream.next_seq == 0

    def test_snapshot_requires_store(self, warm_stream):
        with pytest.raises(ValueError, match="artifact store"):
            warm_stream.snapshot()

    def test_resume_restores_state_and_tail_ingest_matches(
        self, tiny_internet, tiny_sources, tmp_path, first_window
    ):
        journal = journal_from_sources(tiny_sources, tmp_path / "journal")
        store = open_store(tmp_path / "store")
        options = PipelineOptions(**OPTIONS)
        stream = StreamEstimator(
            tiny_internet, journal, options=options, store=store
        )
        stream.ingest(limit=60)
        closed = stream.close(first_window)
        stream.snapshot()

        resumed = StreamEstimator.resume(
            tiny_internet, journal, options=options, store=store
        )
        assert resumed.next_seq == stream.next_seq
        assert resumed.version == stream.version
        restored = resumed._closed[(first_window.start, first_window.end)]
        assert restored.result.estimated_addresses == closed.estimated_addresses
        # Absorbing the tail from the snapshot must land in the same
        # state as a stream that never stopped.
        stream.ingest()
        resumed.ingest()
        assert resumed.next_seq == stream.next_seq == len(journal)
        assert resumed.version == stream.version
        for name, source in resumed.sources().items():
            np.testing.assert_array_equal(
                source.collect(2013.5, 2014.5).addresses,
                stream.sources()[name].collect(2013.5, 2014.5).addresses,
            )

    def test_snapshot_generations_supersede(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        journal = journal_from_sources(
            tiny_sources, tmp_path / "journal", through=2012.0
        )
        store = open_store(tmp_path / "store")
        stream = StreamEstimator(tiny_internet, journal, store=store)
        stream.ingest(limit=20)
        stream.snapshot()
        stream.ingest()
        stream.snapshot()
        resumed = StreamEstimator.resume(tiny_internet, journal, store=store)
        assert resumed.next_seq == len(journal)  # the *latest* snapshot

    def test_unchanged_state_reuses_snapshot_generation(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        journal = journal_from_sources(
            tiny_sources, tmp_path / "journal", through=2012.0
        )
        store = open_store(tmp_path / "store")
        stream = StreamEstimator(tiny_internet, journal, store=store)
        stream.ingest()
        key = stream.snapshot()
        assert stream.snapshot() == key  # no-op write, same generation


class TestIntegrityParity:
    def test_quarantine_matches_batch_under_poisoned_source(
        self, tiny_internet, tmp_path, last_window
    ):
        from repro.engine.executor import Executor
        from repro.engine.faults import apply_source_faults, parse_fault
        from repro.sources.catalog import build_standard_sources

        spec = parse_fault("source:SWIN:spoof:60000:2013.5")
        sources = apply_source_faults(
            build_standard_sources(tiny_internet),
            [spec],
            seed=123,
            spoof_support=tiny_internet.registry.allocated_space(),
        )
        options = PipelineOptions(**OPTIONS)
        batch = Executor(tiny_internet, sources, options).window_result(
            last_window
        )
        journal = journal_from_sources(sources, tmp_path / "journal")
        stream = StreamEstimator(tiny_internet, journal, options=options)
        stream.ingest()
        result = stream.close(last_window)
        assert result.excluded_sources == batch.excluded_sources
        assert result.observed_addresses == batch.observed_addresses
        np.testing.assert_allclose(
            result.estimated_addresses, batch.estimated_addresses, rtol=1e-8
        )
