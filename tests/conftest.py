"""Shared fixtures: a small deterministic simulated Internet.

The simulator is expensive enough that tests share session-scoped
instances: ``tiny_internet`` (scale 2^-13, ~100k ground-truth
addresses) for anything exercising the full pipeline, and premade
capture-recapture toy populations for the statistics core.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.pipeline import EstimationPipeline, PipelineOptions
from repro.analysis.windows import TimeWindow
from repro.ipspace.ipset import IPSet
from repro.simnet.internet import SimulationConfig, SyntheticInternet
from repro.sources.catalog import build_standard_sources

#: Scale used by all shared simulator fixtures.
TEST_SCALE = 2.0**-13


@pytest.fixture(scope="session")
def tiny_internet() -> SyntheticInternet:
    """A small but fully featured simulated Internet."""
    return SyntheticInternet(SimulationConfig(scale=TEST_SCALE, seed=123))


@pytest.fixture(scope="session")
def tiny_sources(tiny_internet):
    """The nine standard sources over the tiny Internet."""
    return build_standard_sources(tiny_internet)


@pytest.fixture(scope="session")
def tiny_pipeline(tiny_internet, tiny_sources) -> EstimationPipeline:
    """A pipeline over the tiny Internet (results are cached inside)."""
    return EstimationPipeline(
        tiny_internet, tiny_sources, PipelineOptions(min_stratum_observed=25)
    )


@pytest.fixture(scope="session")
def last_window() -> TimeWindow:
    """The paper's final window (Jul 2013 - Jun 2014)."""
    return TimeWindow(2013.5, 2014.5)


@pytest.fixture(scope="session")
def first_window() -> TimeWindow:
    """The paper's first window (Jan - Dec 2011)."""
    return TimeWindow(2011.0, 2012.0)


@pytest.fixture(scope="session")
def last_window_result(tiny_pipeline, last_window):
    """Full pipeline result for the final window (computed once)."""
    return tiny_pipeline.run_window(last_window)


def make_independent_sources(
    rng: np.random.Generator,
    population_size: int,
    capture_probs: list[float],
    space: int = 2**30,
) -> tuple[int, dict[str, IPSet]]:
    """A uniform population sampled independently by several sources.

    The textbook CR setting: every estimator should recover
    ``population_size`` here.  Returns (population_size, sources).
    """
    population = np.sort(
        rng.choice(space, size=population_size, replace=False)
    ).astype(np.uint32)
    sources = {}
    for i, p in enumerate(capture_probs):
        mask = rng.random(population_size) < p
        sources[f"S{i}"] = IPSet.from_sorted_unique(population[mask])
    return population_size, sources


def make_heterogeneous_sources(
    rng: np.random.Generator,
    population_size: int,
    num_sources: int = 4,
    sigma: float = 1.0,
    base_rate: float = 0.3,
) -> tuple[int, dict[str, IPSet]]:
    """A population with lognormal per-individual capture propensity.

    All sources share the latent activity, producing the apparent
    positive dependence the paper's interaction terms must absorb.
    Returns (population_size, sources).
    """
    population = np.sort(
        rng.choice(2**30, size=population_size, replace=False)
    ).astype(np.uint32)
    activity = rng.lognormal(-0.5 * sigma**2, sigma, population_size)
    sources = {}
    for i in range(num_sources):
        rate = base_rate * rng.uniform(0.6, 1.4)
        prob = -np.expm1(-rate * activity)
        mask = rng.random(population_size) < prob
        sources[f"S{i}"] = IPSet.from_sorted_unique(population[mask])
    return population_size, sources


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh fixed-seed generator per test."""
    return np.random.default_rng(2014)
