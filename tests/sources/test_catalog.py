"""The standard nine-source suite (Table 2 shape)."""

from repro.sources.catalog import SOURCE_NAMES, build_standard_sources


class TestCatalog:
    def test_all_nine_sources(self, tiny_sources):
        assert tuple(tiny_sources) == SOURCE_NAMES

    def test_availability_windows(self, tiny_sources):
        assert tiny_sources["SPAM"].available_from > 2012.3
        assert tiny_sources["CALT"].available_from > 2013.3
        assert tiny_sources["TPING"].available_from > 2012.0
        for name in ("WIKI", "MLAB", "GAME", "SWIN"):
            assert tiny_sources[name].available_from == 2011.0

    def test_relative_sizes_match_table2(self, tiny_pipeline, last_window):
        """IPING largest, CALT > SWIN > WEB > the small log sources."""
        datasets = tiny_pipeline.datasets(last_window)
        sizes = {name: len(d) for name, d in datasets.items()}
        # IPING and CALT are the two giants (411 M and 357 M in the
        # paper's Table 2); sampling noise can swap them at tiny scale.
        top_two = sorted(sizes, key=sizes.get)[-2:]
        assert set(top_two) == {"IPING", "CALT"}
        assert sizes["CALT"] > sizes["SWIN"]
        assert sizes["WEB"] > sizes["MLAB"]
        assert sizes["WEB"] > sizes["WIKI"]
        assert sizes["WIKI"] == min(sizes.values())

    def test_tping_adds_icmp_silent_hosts(self, tiny_pipeline, last_window):
        """TCP probing sees addresses ICMP misses (the paper: +7 %)."""
        datasets = tiny_pipeline.datasets(last_window)
        tcp_only = datasets["TPING"] - datasets["IPING"]
        assert len(tcp_only) > 0.02 * len(datasets["IPING"])

    def test_blocked_network_absent_from_pings(self, tiny_internet,
                                               tiny_pipeline, last_window):
        network = tiny_internet.ground_truth_networks()[-1]
        assert network.blocks_pings
        prefix = network.allocation.prefix
        datasets = tiny_pipeline.datasets(last_window)
        for name in ("IPING", "TPING"):
            addrs = datasets[name].addresses
            inside = (addrs >= prefix.base) & (addrs < prefix.end)
            assert not inside.any()

    def test_deterministic_given_seed(self, tiny_internet):
        a = build_standard_sources(tiny_internet, seed=5)
        b = build_standard_sources(tiny_internet, seed=5)
        assert a["WEB"].collect(2013.0, 2014.0) == b["WEB"].collect(
            2013.0, 2014.0
        )
