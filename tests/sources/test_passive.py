"""Passive log sources."""

import numpy as np
import pytest

from repro.simnet.hosts import HostType
from repro.sources.passive import CLIENT_AFFINITY, LogSource


class TestAffinity:
    def test_client_biased(self):
        assert CLIENT_AFFINITY[HostType.CLIENT] == CLIENT_AFFINITY.max()
        assert CLIENT_AFFINITY[HostType.SPECIALISED] == 0.0

    def test_affinity_shape_validated(self, tiny_internet):
        with pytest.raises(ValueError):
            LogSource(
                "X", tiny_internet.population, 1, rate=0.1,
                available_from=2011.0, affinity=np.array([1.0, 2.0]),
            )


class TestSampling:
    def make(self, internet, **kwargs):
        defaults = dict(rate=0.05, available_from=2011.0)
        defaults.update(kwargs)
        return LogSource("X", internet.population, 7, **defaults)

    def test_higher_rate_sees_more(self, tiny_internet):
        small = self.make(tiny_internet, rate=0.01).collect(2013.0, 2014.0)
        big = self.make(tiny_internet, rate=0.2).collect(2013.0, 2014.0)
        assert len(big) > 2 * len(small)

    def test_specialised_never_sampled(self, tiny_internet):
        pop = tiny_internet.population
        seen = self.make(tiny_internet, rate=0.5).collect(2011.0, 2014.5)
        mask = seen.contains(pop.addresses)
        assert not mask[pop.host_type == HostType.SPECIALISED].any()

    def test_activity_drives_capture(self, tiny_internet):
        """High-activity hosts are far more likely to be logged."""
        pop = tiny_internet.population
        seen = self.make(tiny_internet, rate=0.05).collect(2013.0, 2014.0)
        mask = seen.contains(pop.addresses)
        clients = pop.used_in_window(2013.0, 2014.0) & (
            pop.host_type == HostType.CLIENT
        )
        act = pop.activity
        busy = clients & (act > np.quantile(act[clients], 0.9))
        quiet = clients & (act < np.quantile(act[clients], 0.2))
        assert mask[busy].mean() > 3 * max(mask[quiet].mean(), 1e-4)

    def test_rate_growth(self, tiny_internet):
        src = self.make(
            tiny_internet, rate=0.05, yearly_rate_growth=1.0
        )
        early = src.collect(2011.0, 2012.0)
        late = src.collect(2013.5, 2014.5)
        assert len(late) > 1.5 * len(early)

    def test_inactive_hosts_never_observed(self, tiny_internet):
        """Addresses not yet activated cannot appear in logs."""
        pop = tiny_internet.population
        seen = self.make(tiny_internet, rate=0.5).collect(2011.0, 2012.0)
        mask = seen.contains(pop.addresses)
        future = pop.active_from >= 2012.0
        assert not mask[future].any()

    def test_shared_activity_creates_source_dependence(self, tiny_internet):
        """Two log sources overlap far more than independence predicts
        — the apparent dependence of Section 3.2.2."""
        pop = tiny_internet.population
        a = LogSource("A", pop, 1, rate=0.05, available_from=2011.0)
        b = LogSource("B", pop, 2, rate=0.05, available_from=2011.0)
        da = a.collect(2013.5, 2014.5)
        db = b.collect(2013.5, 2014.5)
        union_universe = pop.used_count(2013.5, 2014.5)
        expected_indep = len(da) * len(db) / union_universe
        assert da.overlap_count(db) > 2 * expected_indep
