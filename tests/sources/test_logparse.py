"""Log-file parsers."""

import pytest

from repro.ipspace.addresses import parse_addr
from repro.sources.logparse import (
    load_dataset,
    parse_address_list,
    parse_common_log,
    parse_flow_csv,
)

CLF_LINES = [
    '192.0.2.1 - - [10/Oct/2013:13:55:36 -0700] "GET / HTTP/1.1" 200 2326\n',
    '198.51.100.7 - frank [10/Oct/2013:13:56:01 -0700] "POST /x" 404 12\n',
    'bad line without address\n',
    '192.0.2.1 - - [10/Oct/2013:14:00:00 -0700] "GET /a" 200 512\n',
    '999.1.1.1 - - [...] "GET /" 200 1\n',  # out-of-range octet
]

FLOW_CSV = [
    "ts,srcaddr,dstaddr,bytes\n",
    "1,192.0.2.9,10.0.0.1,100\n",
    "2,203.0.113.5,10.0.0.1,240\n",
    "3,malformed,10.0.0.1,10\n",
    "4,203.0.113.5,10.0.0.2,90\n",
    "5,truncated\n",
]

LIST_LINES = [
    "# ping census results\n",
    "\n",
    "192.0.2.77\n",
    "192.0.2.77\n",
    "not-an-address\n",
    "203.0.113.200\n",
]


class TestCommonLog:
    def test_extracts_client_addresses(self):
        result = parse_common_log(CLF_LINES)
        assert set(result.dataset) == {
            parse_addr("192.0.2.1"), parse_addr("198.51.100.7")
        }

    def test_skip_accounting(self):
        result = parse_common_log(CLF_LINES)
        assert result.lines_read == 5
        assert result.lines_skipped == 2  # bad line + out-of-range
        assert result.skip_fraction == pytest.approx(0.4)

    def test_empty_input(self):
        result = parse_common_log([])
        assert len(result.dataset) == 0 and result.skip_fraction == 0.0


class TestFlowCsv:
    def test_extracts_source_column(self):
        result = parse_flow_csv(FLOW_CSV)
        assert set(result.dataset) == {
            parse_addr("192.0.2.9"), parse_addr("203.0.113.5")
        }
        assert result.lines_skipped == 2

    def test_custom_column(self):
        result = parse_flow_csv(FLOW_CSV, column="dstaddr")
        assert parse_addr("10.0.0.1") in result.dataset

    def test_missing_column_raises(self):
        with pytest.raises(ValueError):
            parse_flow_csv(FLOW_CSV, column="nope")

    def test_empty_file(self):
        result = parse_flow_csv([])
        assert len(result.dataset) == 0


class TestAddressList:
    def test_comments_and_blanks_silent(self):
        result = parse_address_list(LIST_LINES)
        assert set(result.dataset) == {
            parse_addr("192.0.2.77"), parse_addr("203.0.113.200")
        }
        # Comments/blank lines are structure, not skipped garbage.
        assert result.lines_skipped == 1  # only "not-an-address"


class TestLoadDataset:
    def test_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "census.txt"
        path.write_text("".join(LIST_LINES))
        result = load_dataset(path, fmt="list")
        assert len(result.dataset) == 2

    def test_clf_via_file(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text("".join(CLF_LINES))
        result = load_dataset(path, fmt="clf")
        assert len(result.dataset) == 2

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "x"
        path.write_text("")
        with pytest.raises(ValueError):
            load_dataset(path, fmt="pcap")

    def test_end_to_end_estimation_from_logs(self, tmp_path, rng):
        """Parsed logs feed CaptureRecapture directly."""
        import numpy as np

        from repro.core.estimator import CaptureRecapture
        from repro.ipspace.addresses import format_addr

        pop = rng.choice(2**30, 5000, replace=False).astype(np.uint32)
        files = {}
        for name, p in [("web", 0.5), ("flow", 0.4), ("census", 0.6)]:
            seen = pop[rng.random(5000) < p]
            path = tmp_path / f"{name}.txt"
            path.write_text(
                "\n".join(format_addr(a) for a in seen) + "\n"
            )
            files[name] = load_dataset(path, fmt="list").dataset
        estimate = CaptureRecapture(files).estimate()
        assert estimate.population == pytest.approx(5000, rel=0.1)
