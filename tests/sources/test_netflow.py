"""NetFlow sources and spoof injection."""

import numpy as np

from repro.sources.base import quarter_of
from repro.sources.netflow import NetFlowSource


def make_netflow(internet, **kwargs):
    defaults = dict(
        rate=0.2,
        available_from=2011.0,
        spoof_per_quarter=500_000,
        spoof_support=internet.registry.allocated_space(),
    )
    defaults.update(kwargs)
    return NetFlowSource("NF", internet.population, 3, **defaults)


class TestLegitimatePart:
    def test_legitimate_subset_of_collection(self, tiny_internet):
        src = make_netflow(tiny_internet)
        q = quarter_of(2013.0)
        legit = np.unique(src.legitimate_quarter(q))
        full = src.quarter_set(q)
        assert np.isin(legit, full).all()

    def test_legit_part_is_truth_subset(self, tiny_internet):
        src = make_netflow(tiny_internet)
        q = quarter_of(2013.0)
        legit = np.unique(src.legitimate_quarter(q))
        truth = tiny_internet.population.used_ipset(2011.0, 2013.25)
        assert truth.contains(legit).all()

    def test_broad_type_coverage(self, tiny_internet):
        """NetFlow sees servers and routers, unlike pure log sources."""
        from repro.simnet.hosts import HostType

        pop = tiny_internet.population
        src = make_netflow(tiny_internet, rate=0.5, spoof_per_quarter=0)
        seen = src.collect(2013.5, 2014.5)
        mask = seen.contains(pop.addresses)
        for host_type in (HostType.SERVER, HostType.ROUTER):
            active = pop.used_in_window(2013.5, 2014.5) & (
                pop.host_type == host_type
            )
            assert mask[active].mean() > 0.1


class TestSpoofInjection:
    def test_spoofs_add_foreign_addresses(self, tiny_internet):
        clean = make_netflow(tiny_internet, spoof_per_quarter=0)
        dirty = make_netflow(tiny_internet, spoof_per_quarter=2_000_000)
        q = quarter_of(2013.0)
        assert dirty.quarter_set(q).size > clean.quarter_set(q).size

    def test_spike_quarter(self, tiny_internet):
        # rate=0 isolates the spoofed component so the spike is visible
        # regardless of how big the legitimate population is.
        src = make_netflow(
            tiny_internet,
            rate=0.0,
            spoof_per_quarter=10_000_000,
            spoof_spike_quarter=quarter_of(2014.25),
            spoof_spike_factor=10.0,
        )
        normal = src.quarter_set(quarter_of(2013.75))
        spiked = src.quarter_set(quarter_of(2014.25))
        assert spiked.size > 5 * normal.size

    def test_spoofs_inside_support(self, tiny_internet):
        support = tiny_internet.registry.allocated_space()
        src = make_netflow(tiny_internet, rate=0.0, spoof_per_quarter=3_000_000)
        seen = src.collect(2013.0, 2013.25)
        assert support.contains(seen.addresses).all()

    def test_spoof_density_uniform_over_support(self, tiny_internet):
        """Spoofed addresses spread evenly per unit of space — the
        assumption the paper's filter rests on."""
        src = make_netflow(tiny_internet, rate=0.0, spoof_per_quarter=8_000_000)
        seen = src.collect(2013.0, 2014.0).addresses
        support = tiny_internet.registry.allocated_space()
        # Compare densities in the two halves of the support.
        pieces = list(support.intervals())
        half = len(pieces) // 2
        size1 = sum(e - s for s, e in pieces[:half])
        size2 = sum(e - s for s, e in pieces[half:])
        boundary = pieces[half][0]
        count1 = int((seen < boundary).sum())
        count2 = len(seen) - count1
        d1, d2 = count1 / size1, count2 / size2
        assert 0.8 < d1 / d2 < 1.25
