"""Source framework: quarters, availability, determinism."""

import pytest

from repro.sources.base import quarter_bounds, quarter_of


class TestQuarters:
    def test_quarter_of_origin(self):
        assert quarter_of(2011.0) == 0
        assert quarter_of(2011.25) == 1
        assert quarter_of(2014.25) == 13

    def test_quarter_of_interior(self):
        assert quarter_of(2011.1) == 0
        assert quarter_of(2011.9) == 3

    def test_bounds_roundtrip(self):
        for q in range(14):
            start, end = quarter_bounds(q)
            assert quarter_of(start) == q
            assert quarter_of(end - 1e-6) == q
            assert end - start == pytest.approx(0.25)


class TestAvailability:
    def test_available_in(self, tiny_sources):
        spam = tiny_sources["SPAM"]  # starts May 2012
        assert not spam.available_in(2011.0, 2012.0)
        assert spam.available_in(2012.0, 2013.0)
        assert spam.available_in(2013.5, 2014.5)

    def test_calt_only_late(self, tiny_sources):
        calt = tiny_sources["CALT"]
        assert not calt.available_in(2011.0, 2012.0)
        assert calt.available_in(2013.5, 2014.5)

    def test_collect_empty_outside_availability(self, tiny_sources):
        spam = tiny_sources["SPAM"]
        assert len(spam.collect(2011.0, 2012.0)) == 0


class TestDeterminism:
    def test_collect_is_deterministic(self, tiny_sources):
        web = tiny_sources["WEB"]
        a = web.collect(2012.0, 2013.0)
        b = web.collect(2012.0, 2013.0)
        assert a == b

    def test_overlapping_windows_consistent(self, tiny_sources):
        """An address observed in a quarter appears in every window
        covering that quarter — the log-accumulation semantics."""
        web = tiny_sources["WEB"]
        w1 = web.collect(2012.0, 2013.0)
        w2 = web.collect(2012.5, 2013.5)
        shared = web.collect(2012.5, 2013.0)
        assert shared.addresses.size
        assert (w1.contains(shared.addresses)).all()
        assert (w2.contains(shared.addresses)).all()

    def test_longer_window_superset(self, tiny_sources):
        wiki = tiny_sources["WIKI"]
        short = wiki.collect(2012.0, 2012.5)
        long = wiki.collect(2012.0, 2013.0)
        assert long.contains(short.addresses).all()
