"""Spoof traffic generation."""

import numpy as np
import pytest

from repro.ipspace.intervals import IntervalSet
from repro.sources.spoofing import (
    ddos_campaign_sizes,
    draw_spoofed_addresses,
    draw_spoofed_in_space,
)


class TestDrawSpoofed:
    def test_count_and_dtype(self, rng):
        addrs = draw_spoofed_addresses(rng, 1000)
        assert addrs.dtype == np.uint32 and len(addrs) == 1000

    def test_zero(self, rng):
        assert len(draw_spoofed_addresses(rng, 0)) == 0

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            draw_spoofed_addresses(rng, -1)

    def test_roughly_uniform(self, rng):
        addrs = draw_spoofed_addresses(rng, 100_000)
        top_bit = (addrs >= 2**31).mean()
        assert 0.48 < top_bit < 0.52


class TestDrawInSpace:
    def test_all_inside_support(self, rng):
        support = IntervalSet([(1000, 2000), (10_000, 20_000)])
        addrs = draw_spoofed_in_space(rng, 50_000_000, support)
        assert support.contains(addrs).all()

    def test_count_binomial_of_density(self, rng):
        support = IntervalSet([(0, 2**22)])  # 1/1024 of the space
        full = 10_240_000
        addrs = draw_spoofed_in_space(rng, full, support)
        expected = full / 1024
        assert expected * 0.9 < len(addrs) < expected * 1.1

    def test_density_split_across_intervals(self, rng):
        support = IntervalSet([(0, 2**20), (2**30, 2**30 + 2**20)])
        addrs = draw_spoofed_in_space(rng, 2_000_000_000, support)
        low = int((addrs < 2**20).sum())
        high = len(addrs) - low
        assert 0.85 < low / high < 1.18

    def test_empty_support(self, rng):
        assert len(draw_spoofed_in_space(rng, 100, IntervalSet())) == 0


class TestCampaigns:
    def test_spike_applied(self, rng):
        sizes = ddos_campaign_sizes(rng, 1000, 10, spike_quarter=5,
                                    spike_factor=20.0)
        assert sizes[5] > 5 * np.median(np.delete(sizes, 5))

    def test_no_spike(self, rng):
        sizes = ddos_campaign_sizes(rng, 1000, 8)
        assert len(sizes) == 8
        assert (sizes > 0).all()
