"""Census probing sources (IPING, TPING)."""

import pytest

from repro.simnet.hosts import HostType
from repro.sources.active import (
    ICMP_RESPONSE,
    TCP_RESPONSE,
    icmp_census,
    tcp_census,
)


class TestResponseModel:
    def test_servers_most_icmp_responsive(self):
        assert ICMP_RESPONSE[HostType.SERVER] == ICMP_RESPONSE.max()

    def test_clients_mostly_firewalled(self):
        assert ICMP_RESPONSE[HostType.CLIENT] < 0.5
        assert TCP_RESPONSE[HostType.CLIENT] < 0.1

    def test_specialised_prefer_tcp(self):
        """The paper's 15-20 M TCP-only responders: specialised
        devices answer on service ports, not ICMP."""
        assert TCP_RESPONSE[HostType.SPECIALISED] > ICMP_RESPONSE[
            HostType.SPECIALISED
        ]


class TestCensusCollection:
    def test_census_times_every_six_months(self, tiny_internet):
        iping = icmp_census(tiny_internet.population, seed=1)
        times = iping.census_times(2012.0, 2013.0)
        assert len(times) == 2
        assert times[1] - times[0] == pytest.approx(0.5)

    def test_tping_starts_march_2012(self, tiny_internet):
        tping = tcp_census(tiny_internet.population, seed=1)
        assert tping.census_times(2011.0, 2012.0) == []
        assert tping.census_times(2012.0, 2013.0) != []

    def test_window_without_census_empty(self, tiny_internet):
        iping = icmp_census(tiny_internet.population, seed=1)
        # A window strictly between two census epochs.
        assert len(iping.collect(2012.7, 2013.1)) == 0

    def test_responders_subset_of_population(self, tiny_internet):
        iping = icmp_census(tiny_internet.population, seed=1)
        seen = iping.collect(2013.5, 2014.5)
        assert tiny_internet.population.used_ipset(2013.5, 2014.5).contains(
            seen.addresses
        ).all()

    def test_persistent_openness_overlap(self, tiny_internet):
        """Two consecutive censuses mostly see the same hosts."""
        iping = icmp_census(tiny_internet.population, seed=1)
        c1 = iping.collect(2013.0, 2013.5)
        c2 = iping.collect(2013.5, 2014.0)
        overlap = c1.overlap_count(c2) / min(len(c1), len(c2))
        assert overlap > 0.75

    def test_server_bias(self, tiny_internet):
        """Servers respond at a much higher rate than clients."""
        pop = tiny_internet.population
        iping = icmp_census(pop, seed=1)
        seen = iping.collect(2013.5, 2014.5)
        active = pop.used_in_window(2013.5, 2014.5)
        seen_mask = seen.contains(pop.addresses)
        servers = active & (pop.host_type == HostType.SERVER)
        clients = active & (pop.host_type == HostType.CLIENT)
        server_rate = seen_mask[servers].mean()
        client_rate = seen_mask[clients].mean()
        assert server_rate > 1.5 * client_rate

    def test_blocked_prefix_never_responds(self, tiny_internet):
        networks = tiny_internet.ground_truth_networks()
        blocked = networks[-1].allocation.prefix
        iping = icmp_census(
            tiny_internet.population, seed=1, blocked_prefixes=(blocked,)
        )
        seen = iping.collect(2011.0, 2014.5)
        addrs = seen.addresses
        inside = (addrs >= blocked.base) & (addrs < blocked.end)
        assert not inside.any()

    def test_determinism(self, tiny_internet):
        a = icmp_census(tiny_internet.population, seed=9)
        b = icmp_census(tiny_internet.population, seed=9)
        assert a.collect(2012.0, 2013.0) == b.collect(2012.0, 2013.0)

    def test_seed_changes_output(self, tiny_internet):
        a = icmp_census(tiny_internet.population, seed=9)
        b = icmp_census(tiny_internet.population, seed=10)
        assert a.collect(2012.0, 2013.0) != b.collect(2012.0, 2013.0)
