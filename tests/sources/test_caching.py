"""Caching and internal consistency of the source framework."""

import numpy as np

from repro.sources.base import quarter_of
from repro.sources.passive import LogSource


class TestQuarterCaching:
    def test_quarter_set_cached(self, tiny_internet):
        src = LogSource("X", tiny_internet.population, 1, rate=0.05,
                        available_from=2011.0)
        q = quarter_of(2012.5)
        a = src.quarter_set(q)
        b = src.quarter_set(q)
        assert a is b  # same object: cache hit

    def test_collect_union_of_quarters(self, tiny_internet):
        src = LogSource("X", tiny_internet.population, 1, rate=0.05,
                        available_from=2011.0)
        window = src.collect(2012.0, 2012.5)
        manual = np.unique(np.concatenate([
            src.quarter_set(quarter_of(2012.0)),
            src.quarter_set(quarter_of(2012.25)),
        ]))
        assert np.array_equal(window.addresses, manual)

    def test_availability_clips_quarters(self, tiny_internet):
        src = LogSource("X", tiny_internet.population, 1, rate=0.05,
                        available_from=2012.25)
        early_half = src.collect(2012.0, 2012.5)
        only_late = src.quarter_set(quarter_of(2012.25))
        assert np.array_equal(early_half.addresses, np.unique(only_late))


class TestPipelineCaching:
    def test_dataset_cache_distinguishes_filtering(self, tiny_pipeline,
                                                   last_window):
        filtered = tiny_pipeline.datasets(last_window, spoof_filtering=True)
        raw = tiny_pipeline.datasets(last_window, spoof_filtering=False)
        assert filtered is tiny_pipeline.datasets(
            last_window, spoof_filtering=True
        )
        assert raw is not filtered
        assert len(raw["SWIN"]) >= len(filtered["SWIN"])

    def test_estimators_share_cached_datasets(self, tiny_pipeline,
                                              last_window):
        addr_est = tiny_pipeline.address_estimator(last_window)
        sub_est = tiny_pipeline.subnet_estimator(last_window)
        # The /24 estimator's sources project the same cached datasets.
        for name, dataset in addr_est.sources.items():
            assert sub_est.sources[name] == dataset.subnets24()
