"""Host types and mixes."""

import numpy as np
import pytest

from repro.registry.rir import Industry
from repro.simnet.hosts import (
    HOST_TYPE_NAMES,
    HostType,
    draw_host_types,
    type_mix,
)


class TestTypeMix:
    def test_rows_normalised(self):
        for industry in Industry:
            assert type_mix(industry).sum() == pytest.approx(1.0)

    def test_isp_client_heavy(self):
        mix = type_mix(Industry.ISP)
        assert mix[HostType.CLIENT] > 0.8

    def test_corporate_more_servers_than_isp(self):
        assert (
            type_mix(Industry.CORPORATE)[HostType.SERVER]
            > type_mix(Industry.ISP)[HostType.SERVER]
        )

    def test_specialised_is_thin_tail(self):
        for industry in Industry:
            assert type_mix(industry)[HostType.SPECIALISED] <= 0.15

    def test_names(self):
        assert HOST_TYPE_NAMES == ("ROUTER", "SERVER", "CLIENT", "SPECIALISED")


class TestDraw:
    def test_draw_distribution(self, rng):
        types = draw_host_types(rng, Industry.ISP, 50_000)
        assert types.dtype == np.int8
        share_client = (types == HostType.CLIENT).mean()
        assert share_client == pytest.approx(
            type_mix(Industry.ISP)[HostType.CLIENT], abs=0.01
        )

    def test_draw_zero(self, rng):
        assert len(draw_host_types(rng, Industry.ISP, 0)) == 0
