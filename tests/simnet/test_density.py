"""Occupancy and last-octet distributions."""

import numpy as np
import pytest

from repro.simnet.density import (
    LAST_BYTE_PMF,
    draw_last_bytes,
    draw_subnet_population,
    draw_subnet_sizes,
    last_byte_probabilities,
)


class TestLastBytePmf:
    def test_normalised(self):
        assert LAST_BYTE_PMF.sum() == pytest.approx(1.0)
        assert (LAST_BYTE_PMF > 0).all()

    def test_gateway_conventions(self):
        # .1 is the single most popular host byte; .0/.255 are rare.
        assert LAST_BYTE_PMF[1] == LAST_BYTE_PMF.max()
        assert LAST_BYTE_PMF[0] < 1 / 256
        assert LAST_BYTE_PMF[255] < 1 / 256

    def test_low_bytes_favoured(self):
        assert LAST_BYTE_PMF[:64].sum() > 0.45

    def test_strongly_nonuniform(self):
        """The Bayes spoof filter needs a clearly non-uniform pmf."""
        uniform = np.full(256, 1 / 256)
        tv_distance = 0.5 * np.abs(LAST_BYTE_PMF - uniform).sum()
        assert tv_distance > 0.2

    def test_function_matches_constant(self):
        assert np.allclose(last_byte_probabilities(), LAST_BYTE_PMF)


class TestSubnetSizes:
    def test_bounds(self, rng):
        sizes = draw_subnet_sizes(rng, 5000)
        assert sizes.min() >= 1 and sizes.max() <= 254

    def test_mean_matches_paper_ratio(self, rng):
        """~190 addresses per used /24 (1.2 B / 6.3 M)."""
        sizes = draw_subnet_sizes(rng, 20_000)
        assert 130 < sizes.mean() < 220

    def test_bimodal(self, rng):
        sizes = draw_subnet_sizes(rng, 20_000)
        assert (sizes < 32).mean() > 0.15  # sparse mode exists
        assert (sizes > 128).mean() > 0.3  # dense mode exists

    def test_empty(self, rng):
        assert len(draw_subnet_sizes(rng, 0)) == 0


class TestDrawLastBytes:
    def test_distinct_and_sorted(self, rng):
        bytes_ = draw_last_bytes(rng, 100)
        assert len(np.unique(bytes_)) == 100
        assert (np.diff(bytes_.astype(int)) > 0).all()

    def test_caps_at_254(self, rng):
        assert len(draw_last_bytes(rng, 500)) == 254

    def test_bias_visible_in_aggregate(self, rng):
        counts = np.zeros(256)
        for _ in range(300):
            counts[draw_last_bytes(rng, 20)] += 1
        assert counts[1] > counts[200]


class TestSubnetPopulation:
    def test_addresses_in_their_subnets(self, rng):
        bases = np.array([0, 512, 1024], dtype=np.uint32)
        sizes = np.array([3, 5, 2])
        addrs, owner = draw_subnet_population(rng, bases, sizes)
        assert len(addrs) == 10
        for a, o in zip(addrs, owner):
            assert bases[o] <= a < bases[o] + 256

    def test_empty_subnets_skipped(self, rng):
        bases = np.array([0, 256], dtype=np.uint32)
        addrs, owner = draw_subnet_population(rng, bases, np.array([0, 4]))
        assert len(addrs) == 4 and set(owner) == {1}

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            draw_subnet_population(
                rng, np.array([0], dtype=np.uint32), np.array([1, 2])
            )

    def test_no_duplicates_within_subnet(self, rng):
        bases = np.zeros(1, dtype=np.uint32)
        addrs, _ = draw_subnet_population(rng, bases, np.array([200]))
        assert len(np.unique(addrs)) == 200
