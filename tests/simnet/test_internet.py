"""SyntheticInternet facade."""

from repro.simnet.internet import SimulationConfig, SyntheticInternet


class TestFacade:
    def test_deterministic(self):
        config = SimulationConfig(scale=2.0**-14, seed=5)
        a = SyntheticInternet(config)
        b = SyntheticInternet(config)
        assert len(a.population) == len(b.population)
        assert (a.population.addresses == b.population.addresses).all()

    def test_different_seeds_differ(self):
        a = SyntheticInternet(SimulationConfig(scale=2.0**-14, seed=1))
        b = SyntheticInternet(SimulationConfig(scale=2.0**-14, seed=2))
        assert len(a.population) != len(b.population) or (
            a.population.addresses != b.population.addresses
        ).any()

    def test_utilisation_matches_paper(self, tiny_internet):
        """~45 % of routed addresses and ~60 % of routed /24s used."""
        used = tiny_internet.truth_used_addresses(2013.5, 2014.5)
        routed = tiny_internet.routed_size(2013.5, 2014.5)
        assert 0.25 < used / routed < 0.6
        used24 = tiny_internet.truth_used_subnets(2013.5, 2014.5)
        routed24 = tiny_internet.routed_subnets(2013.5, 2014.5)
        assert 0.45 < used24 / routed24 < 0.75

    def test_ground_truth_networks(self, tiny_internet):
        networks = tiny_internet.ground_truth_networks()
        assert [n.label for n in networks] == ["A", "B", "C", "D", "E", "F"]
        assert networks[-1].blocks_pings
        assert not any(n.blocks_pings for n in networks[:-1])
        # Utilisation spreads across the panel.
        truths = [
            tiny_internet.network_truth_percentage(n, 2013.0)
            for n in networks
        ]
        assert max(truths) > 1.5 * min(truths)

    def test_networks_cached(self, tiny_internet):
        assert (
            tiny_internet.ground_truth_networks()
            == tiny_internet.ground_truth_networks()
        )

    def test_describe_mentions_scale(self, tiny_internet):
        assert "scale" in tiny_internet.describe()

    def test_darknets_accessible(self, tiny_internet):
        assert len(tiny_internet.darknet_allocations) == 2
