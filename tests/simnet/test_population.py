"""Ground-truth population generation."""

import numpy as np

from repro.ipspace.addresses import subnet24_of
from repro.registry.rir import Industry


class TestPopulationStructure:
    def test_sorted_unique_addresses(self, tiny_internet):
        pop = tiny_internet.population
        addrs = pop.addresses
        assert (addrs[1:] > addrs[:-1]).all()

    def test_arrays_aligned(self, tiny_internet):
        pop = tiny_internet.population
        n = len(pop)
        for attr in ("alloc_index", "host_type", "dynamic", "activity",
                     "active_from"):
            assert len(getattr(pop, attr)) == n

    def test_all_addresses_inside_their_allocation(self, tiny_internet):
        pop = tiny_internet.population
        registry = tiny_internet.registry
        idx = registry.lookup(pop.addresses)
        assert (idx == pop.alloc_index).all()

    def test_only_routed_allocations_populated(self, tiny_internet):
        pop = tiny_internet.population
        routed_from = tiny_internet.registry.routed_from[pop.alloc_index]
        assert np.isfinite(routed_from).all()

    def test_darknets_nearly_empty(self, tiny_internet):
        pop = tiny_internet.population
        for alloc in tiny_internet.darknet_allocations:
            count = int(np.count_nonzero(pop.alloc_index == alloc.index))
            assert count < alloc.prefix.size * 0.01

    def test_activity_positive_mean_near_one(self, tiny_internet):
        act = tiny_internet.population.activity
        assert (act > 0).all()
        assert 0.3 < float(act.mean()) < 3.0

    def test_clients_dominate(self, tiny_internet):
        from repro.simnet.hosts import HostType

        types = tiny_internet.population.host_type
        assert (types == HostType.CLIENT).mean() > 0.5

    def test_dynamic_only_clients_in_isp(self, tiny_internet):
        from repro.simnet.hosts import HostType

        pop = tiny_internet.population
        dyn = pop.dynamic
        industries = tiny_internet.registry.industry_codes[pop.alloc_index]
        assert (industries[dyn] == Industry.ISP).all()
        assert (pop.host_type[dyn] == HostType.CLIENT).all()


class TestTemporalBehaviour:
    def test_population_grows(self, tiny_internet):
        pop = tiny_internet.population
        counts = [pop.used_count(2011.0, 2011.0 + 1e-6)]
        for end in (2012.0, 2013.0, 2014.5):
            counts.append(pop.used_count(end - 1.0, end))
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_growth_magnitude_matches_paper_shape(self, tiny_internet):
        """Used addresses grow by roughly two-thirds over the study
        period (720 M -> 1.2 B)."""
        pop = tiny_internet.population
        first = pop.used_count(2011.0, 2012.0)
        last = pop.used_count(2013.5, 2014.5)
        assert 1.3 < last / first < 2.0

    def test_window_usage_monotone_in_end(self, tiny_internet):
        pop = tiny_internet.population
        assert pop.used_count(2012.0, 2013.0) <= pop.used_count(2012.0, 2014.0)

    def test_subnet_count_consistent(self, tiny_internet):
        pop = tiny_internet.population
        ipset = pop.used_ipset(2013.5, 2014.5)
        expected = len(np.unique(subnet24_of(ipset.addresses)))
        assert pop.used_subnet24_count(2013.5, 2014.5) == expected

    def test_active_mask_point_in_time(self, tiny_internet):
        pop = tiny_internet.population
        assert pop.active_mask(2014.5).sum() >= pop.active_mask(2011.0).sum()


class TestPeakUsage:
    def test_peak_below_window_usage(self, tiny_internet):
        """Peak simultaneous usage discounts dynamic churn, so it sits
        at or below the active address count."""
        pop = tiny_internet.population
        for network in tiny_internet.ground_truth_networks():
            alloc = network.allocation
            active = int(
                np.count_nonzero(
                    (pop.alloc_index == alloc.index) & pop.active_mask(2013.0)
                )
            )
            peak = pop.peak_simultaneous_usage(alloc, 2013.0)
            assert 0 < peak <= active

    def test_dynamic_labeler(self, tiny_internet):
        pop = tiny_internet.population
        labeler = pop.dynamic_labeler()
        sample = pop.addresses[:1000]
        labels = labeler(sample)
        assert np.array_equal(labels.astype(bool), pop.dynamic[:1000])
