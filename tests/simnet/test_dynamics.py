"""Session-churn simulation (Section 4.6)."""

import numpy as np
import pytest

from repro.simnet.dynamics import simulate_session_churn


class TestChurn:
    def test_counts_monotone(self, rng):
        obs = simulate_session_churn(rng, num_clients=5_000, num_days=16)
        assert (np.diff(obs.distinct_addresses) >= 0).all()
        assert (np.diff(obs.distinct_subnets) >= 0).all()

    def test_addresses_churn_faster_than_subnets(self, rng):
        """The paper's key Section 4.6 observation: after all clients
        have been seen once, distinct IPs keep growing much faster than
        distinct /24s (2.7x vs 1.2x over 16 days)."""
        obs = simulate_session_churn(rng, num_clients=30_000, num_days=16)
        addr_factor, subnet_factor = obs.growth_after_saturation()
        assert addr_factor > 1.8
        assert subnet_factor < 1.35
        assert addr_factor > subnet_factor * 1.5

    def test_all_clients_seen_within_first_days(self, rng):
        obs = simulate_session_churn(
            rng, num_clients=2_000, num_days=16, sessions_per_day=0.9
        )
        # With p=0.9/day, everyone logs in within a few days (paper: 4).
        assert obs.all_seen_day <= 6

    def test_subnets_bounded_by_addresses(self, rng):
        obs = simulate_session_churn(rng, num_clients=3_000, num_days=10)
        assert (obs.distinct_subnets <= obs.distinct_addresses).all()

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_session_churn(rng, num_clients=0)
        with pytest.raises(ValueError):
            simulate_session_churn(rng, num_days=0)

    def test_no_cross_subnet_hops_limits_subnet_growth(self, rng):
        obs = simulate_session_churn(
            rng, num_clients=10_000, num_days=16, cross_subnet_prob=0.0
        )
        _, subnet_factor = obs.growth_after_saturation()
        assert subnet_factor == pytest.approx(1.0, abs=0.01)
