"""Stress-regime scenarios."""

import pytest

from repro.analysis.pipeline import EstimationPipeline
from repro.analysis.windows import TimeWindow
from repro.simnet.scenarios import standard_scenarios

WINDOW = TimeWindow(2013.5, 2014.5)
SCALE = 2.0**-14  # very small: scenario tests build several Internets


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(scale=SCALE)


@pytest.fixture(scope="module")
def baseline_result(scenarios):
    internet, sources = scenarios["baseline"].build()
    return EstimationPipeline(internet, sources).run_window(WINDOW)


class TestScenarios:
    def test_all_scenarios_build(self, scenarios):
        assert set(scenarios) == {
            "baseline", "heavy_spoof", "fortress", "sparse_logs",
            "high_churn",
        }
        for scenario in scenarios.values():
            internet, sources = scenario.build()
            assert len(sources) == 9
            assert len(internet.population) > 0

    def test_heavy_spoof_still_filtered(self, scenarios, baseline_result):
        """8x spoofing: the filter still keeps the /24 estimate near
        the baseline's (the paper's Figure 2 claim, stress-tested)."""
        internet, sources = scenarios["heavy_spoof"].build()
        result = EstimationPipeline(internet, sources).run_window(WINDOW)
        assert result.observed_subnets == pytest.approx(
            baseline_result.observed_subnets, rel=0.2
        )

    def test_fortress_raises_correction_factor(self, scenarios,
                                               baseline_result):
        """Fewer ping responses -> bigger est/ping quotient, but the
        estimate itself stays anchored by the passive sources."""
        internet, sources = scenarios["fortress"].build()
        result = EstimationPipeline(internet, sources).run_window(WINDOW)
        base_quotient = (
            baseline_result.estimated_addresses / baseline_result.ping_addresses
        )
        quotient = result.estimated_addresses / result.ping_addresses
        assert quotient > base_quotient
        assert result.estimated_addresses == pytest.approx(
            result.truth_addresses, rel=0.35
        )

    def test_sparse_logs_still_estimates(self, scenarios):
        internet, sources = scenarios["sparse_logs"].build()
        result = EstimationPipeline(internet, sources).run_window(WINDOW)
        assert result.observed_addresses < result.estimated_addresses
        assert result.estimated_addresses <= result.routed_addresses

    def test_high_churn_more_ghosts(self, scenarios, baseline_result):
        """Stronger heterogeneity widens the observed-truth gap."""
        internet, sources = scenarios["high_churn"].build()
        result = EstimationPipeline(internet, sources).run_window(WINDOW)
        base_gap = 1 - (
            baseline_result.observed_addresses / baseline_result.truth_addresses
        )
        gap = 1 - result.observed_addresses / result.truth_addresses
        assert gap > base_gap
