"""Tracer and Span: nesting, error capture, merging, export."""

import json
import pickle

import pytest

from repro.obs.tracing import NOOP_SPAN, Span, Tracer


class TestSpanNesting:
    def test_child_records_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, outer_done = tracer.spans
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer_done.parent_id is None

    def test_inner_completes_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("run") as run:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = tracer.spans[0], tracer.spans[1]
        assert a.parent_id == b.parent_id == run.span_id

    def test_span_ids_unique_and_pid_prefixed(self):
        import os

        tracer = Tracer()
        for _ in range(3):
            with tracer.span("x"):
                pass
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == 3
        assert all(i.startswith(f"{os.getpid()}-") for i in ids)


class TestSpanTiming:
    def test_durations_are_monotonic_nonnegative(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        span = tracer.spans[0]
        assert span.duration >= 0.0
        assert span.cpu_seconds >= 0.0
        assert span.start_time > 0.0

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("x", stage="fit") as span:
            span.set(attempts=2)
        assert tracer.spans[0].attributes == {"stage": "fit", "attempts": 2}


class TestErrorCapture:
    def test_exception_marks_error_and_still_records(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        span = tracer.spans[0]
        assert span.status == "error"
        assert span.attributes["error"] == "ValueError"

    def test_stack_unwinds_after_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError
        assert tracer.current_span_id() is None


class TestMergingAndExport:
    def test_mark_and_collect_since(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("after"):
            pass
        fresh = tracer.collect_since(mark)
        assert [s.name for s in fresh] == ["after"]

    def test_absorb_appends_foreign_spans(self):
        worker = Tracer()
        with worker.span("task"):
            pass
        parent = Tracer()
        parent.absorb(pickle.loads(pickle.dumps(worker.spans)))
        assert [s.name for s in parent.spans] == ["task"]

    def test_jsonl_round_trips(self):
        tracer = Tracer()
        with tracer.span("x", stage="fit"):
            pass
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 1
        restored = Span.from_dict(json.loads(lines[0]))
        assert restored == tracer.spans[0]

    def test_slowest_orders_by_duration(self):
        tracer = Tracer()
        tracer.absorb([
            Span("fast", "1-1", duration=0.1),
            Span("slow", "1-2", duration=9.0),
            Span("mid", "1-3", duration=1.0),
        ])
        assert [s.name for s in tracer.slowest(2)] == ["slow", "mid"]


class TestNoopSpan:
    def test_set_is_chainable_sink(self):
        assert NOOP_SPAN.set(anything=1) is NOOP_SPAN
