"""RunLedger: provenance, engine-accounting absorption, rendering."""

import json

from repro.analysis.windows import TimeWindow
from repro.engine import Executor
from repro.obs.ledger import RunLedger, absorb_engine_accounting
from repro.obs.observer import Observer
from repro.obs.reporting import render_run_report

WINDOW = TimeWindow(2013.5, 2014.5)


def run_once(tiny_internet, tiny_sources, run_dir, cache=None):
    """One observed window through the engine, finalized to a ledger."""
    obs = Observer()
    kwargs = {} if cache is None else {"cache": cache}
    engine = Executor(tiny_internet, tiny_sources, observer=obs, **kwargs)
    with obs.span("run"):
        engine.window_result(WINDOW)
    ledger = RunLedger(run_dir, command=["repro", "test"], seed=7)
    ledger.finalize(obs, report=engine.report, cache=engine.cache)
    return engine


class TestLedgerFiles:
    def test_writes_complete_run_directory(self, tiny_internet, tiny_sources, tmp_path):
        run_dir = tmp_path / "run"
        run_once(tiny_internet, tiny_sources, run_dir)
        names = {p.name for p in run_dir.iterdir()}
        assert names == {
            "run.json", "trace.jsonl", "metrics.json",
            "metrics.prom", "events.jsonl", "report.json",
        }

    def test_run_json_provenance(self, tiny_internet, tiny_sources, tmp_path):
        run_dir = tmp_path / "run"
        run_once(tiny_internet, tiny_sources, run_dir)
        run = json.loads((run_dir / "run.json").read_text())
        assert run["command"] == ["repro", "test"]
        assert run["seed"] == 7
        assert run["wall_seconds"] >= 0.0
        assert run["python"]

    def test_trace_covers_every_stage(self, tiny_internet, tiny_sources, tmp_path):
        run_dir = tmp_path / "run"
        run_once(tiny_internet, tiny_sources, run_dir)
        spans = [
            json.loads(line)
            for line in (run_dir / "trace.jsonl").read_text().splitlines()
        ]
        names = {s["name"] for s in spans}
        for stage in ("collect", "preprocess", "tabulate", "fit", "estimate"):
            assert f"stage:{stage}" in names

    def test_metrics_match_report(self, tiny_internet, tiny_sources, tmp_path):
        run_dir = tmp_path / "run"
        engine = run_once(tiny_internet, tiny_sources, run_dir)
        metrics = json.loads((run_dir / "metrics.json").read_text())
        counters = {
            c["name"]: c["value"]
            for c in metrics["counters"]
            if not c["labels"]
        }
        assert counters["cache_hits_total"] == engine.report.cache_hits
        assert counters["cache_misses_total"] == engine.report.cache_misses
        assert counters["tasks_retried_total"] == engine.report.retry_count
        fit = engine.report.fit_totals()
        assert counters["fit_fits_total"] == fit.fits


class TestAbsorbEngineAccounting:
    class FakeCache:
        observer = None

        def stats(self):
            return {
                "entries": 3, "bytes": 100, "hits": 4, "misses": 6,
                "evictions": 1, "spills": 0, "restores": 0,
                "corrupt_evictions": 0,
            }

    def test_cache_only(self):
        obs = Observer()
        absorb_engine_accounting(obs, cache=self.FakeCache())
        assert obs.metrics.value("cache_hits_total") == 4.0
        assert obs.metrics.value("cache_evictions_total") == 1.0
        assert obs.metrics.gauge("cache_entries") == 3.0
        assert obs.metrics.gauge("cache_bytes") == 100.0

    def test_report_hit_counts_win_over_parent_cache(
        self, tiny_internet, tiny_sources
    ):
        # Under a process pool the parent cache never sees the workers'
        # lookups; the report's shipped-back records are the run truth.
        obs = Observer()
        engine = Executor(tiny_internet, tiny_sources)
        engine.window_result(WINDOW)
        absorb_engine_accounting(
            obs, report=engine.report, cache=self.FakeCache()
        )
        assert obs.metrics.value("cache_hits_total") == engine.report.cache_hits
        assert (
            obs.metrics.value("cache_misses_total") == engine.report.cache_misses
        )

    def test_stage_breakdown_is_labelled(self, tiny_internet, tiny_sources):
        obs = Observer()
        engine = Executor(tiny_internet, tiny_sources)
        engine.window_result(WINDOW)
        absorb_engine_accounting(obs, report=engine.report)
        by_stage = engine.report.by_stage()
        for stage, stats in by_stage.items():
            assert obs.metrics.value("stage_calls_total", stage=stage) == stats.calls


class TestStoreAccounting:
    """Tier-labelled hit metrics and store provenance in the ledger."""

    def warm_run(self, tiny_internet, tiny_sources, tmp_path):
        from repro.engine.store import open_store

        store_dir = tmp_path / "store"
        Executor(
            tiny_internet, tiny_sources, cache=open_store(store_dir)
        ).window_result(WINDOW)
        return run_once(
            tiny_internet,
            tiny_sources,
            tmp_path / "run",
            cache=open_store(store_dir),
        )

    def test_tier_hits_are_labelled_counters(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        engine = self.warm_run(tiny_internet, tiny_sources, tmp_path)
        assert engine.report.hit_tiers() == {"persistent": 1}
        metrics = json.loads(
            (tmp_path / "run" / "metrics.json").read_text()
        )
        tiers = {
            c["labels"]["tier"]: c["value"]
            for c in metrics["counters"]
            if c["name"] == "cache_tier_hits_total"
        }
        assert tiers == {"persistent": 1.0}

    def test_run_json_records_store_provenance(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        self.warm_run(tiny_internet, tiny_sources, tmp_path)
        run = json.loads((tmp_path / "run" / "run.json").read_text())
        assert run["store"]["backend"] == "tiered"
        assert run["store"]["persistent"]["path"] == str(tmp_path / "store")

    def test_memory_only_run_records_memory_backend(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        run_once(tiny_internet, tiny_sources, tmp_path / "run")
        run = json.loads((tmp_path / "run" / "run.json").read_text())
        assert run["store"]["backend"] == "memory"

    def test_persistent_counters_absorbed(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        self.warm_run(tiny_internet, tiny_sources, tmp_path)
        metrics = json.loads(
            (tmp_path / "run" / "metrics.json").read_text()
        )
        counters = {
            c["name"]: c["value"]
            for c in metrics["counters"]
            if not c["labels"]
        }
        assert counters["cache_persistent_hits_total"] >= 1.0
        assert "cache_fitmemo_puts_total" in counters


class TestRendering:
    def test_report_renders_all_sections(self, tiny_internet, tiny_sources, tmp_path):
        run_dir = tmp_path / "run"
        run_once(tiny_internet, tiny_sources, run_dir)
        text = render_run_report(run_dir, top=5)
        assert "per-stage timings" in text
        assert "cache:" in text
        assert "fit kernel:" in text
        assert "slowest spans" in text
        assert "seed    : 7" in text

    def test_worker_payload_line_renders(self, tmp_path):
        obs = Observer()
        obs.inc("pool_payload_bytes_total", 152.0)
        obs.inc("pool_shm_bytes_total", 3_200_000.0)
        RunLedger(tmp_path / "run").finalize(obs)
        text = render_run_report(tmp_path / "run")
        assert "worker payloads: 152 B pickled per pool" in text
        assert "3200000 B via shared memory" in text

    def test_renders_missing_directory_gracefully(self, tmp_path):
        text = render_run_report(tmp_path / "nothing")
        assert text.startswith("run ledger:")

    def test_warning_events_surface(self, tmp_path):
        obs = Observer()
        obs.event("cache.corrupt_spill", level="warning", key="k1")
        RunLedger(tmp_path / "run").finalize(obs)
        text = render_run_report(tmp_path / "run")
        assert "[warning] cache.corrupt_spill" in text
        assert "key=k1" in text

    def test_store_provenance_and_tier_hits_render(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        from repro.engine.store import open_store

        store_dir = tmp_path / "store"
        Executor(
            tiny_internet, tiny_sources, cache=open_store(store_dir)
        ).window_result(WINDOW)
        run_once(
            tiny_internet,
            tiny_sources,
            tmp_path / "run",
            cache=open_store(store_dir),
        )
        text = render_run_report(tmp_path / "run")
        assert "store   : tiered" in text
        assert str(store_dir) in text
        assert "1 from persistent" in text
        assert "persistent store:" in text

    def test_diff_between_cold_and_warm_runs(
        self, tiny_internet, tiny_sources, tmp_path
    ):
        from repro.engine.store import open_store
        from repro.obs.reporting import render_run_diff

        store_dir = tmp_path / "store"
        run_once(
            tiny_internet,
            tiny_sources,
            tmp_path / "cold",
            cache=open_store(store_dir),
        )
        run_once(
            tiny_internet,
            tiny_sources,
            tmp_path / "warm",
            cache=open_store(store_dir),
        )
        text = render_run_diff(tmp_path / "warm", tmp_path / "cold")
        assert "run diff" in text
        assert "cache hit rate" in text
        assert "wall:" in text

    def test_diff_on_missing_directory_fails_cleanly(self, tmp_path):
        from repro.obs.reporting import render_run_diff

        text = render_run_diff(tmp_path / "a", tmp_path / "b")
        assert text.startswith("run ledger:")
