"""Observer: the run-scoped context, disabled no-ops and delta shipping."""

import logging
import pickle

from repro.obs.observer import Observer, ObserverDelta
from repro.obs.tracing import NOOP_SPAN


class TestEnabledObserver:
    def test_span_records(self):
        obs = Observer()
        with obs.span("stage:fit", stage="fit") as span:
            span.set(attempts=1)
        assert len(obs.tracer.spans) == 1
        assert obs.tracer.spans[0].attributes["attempts"] == 1

    def test_metrics_record(self):
        obs = Observer()
        obs.inc("hits_total", 2.0)
        obs.observe("seconds", 1.5)
        obs.set_gauge("bytes", 10.0)
        assert obs.metrics.value("hits_total") == 2.0
        assert obs.metrics.gauge("bytes") == 10.0

    def test_event_captured_and_counted(self):
        obs = Observer()
        obs.event("cache.corrupt_spill", level="warning", key="k1")
        assert obs.events[0]["name"] == "cache.corrupt_spill"
        assert obs.events[0]["key"] == "k1"
        assert obs.metrics.value("events_warning_total") == 1.0


class TestDisabledObserver:
    def test_span_is_noop(self):
        obs = Observer.disabled()
        with obs.span("x") as span:
            assert span is NOOP_SPAN
            span.set(ignored=True)
        assert obs.tracer.spans == []

    def test_metrics_are_noop(self):
        obs = Observer.disabled()
        obs.inc("hits_total")
        obs.observe("seconds", 1.0)
        obs.set_gauge("bytes", 1.0)
        assert not obs.metrics

    def test_event_still_logs_but_not_captured(self, caplog):
        obs = Observer.disabled()
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            obs.event("cache.corrupt_spill", level="warning", key="k1")
        assert "cache.corrupt_spill" in caplog.text
        assert "key=k1" in caplog.text
        assert obs.events == []
        assert not obs.metrics

    def test_delta_shipping_is_noop(self):
        obs = Observer.disabled()
        mark = obs.delta_mark()
        assert obs.collect_delta(mark) is None
        obs.absorb(ObserverDelta(counters={"a": 1.0}))
        assert not obs.metrics


class TestDeltaShipping:
    def test_collect_delta_is_incremental(self):
        obs = Observer()
        with obs.span("before"):
            pass
        obs.inc("n_total", 1.0)
        mark = obs.delta_mark()
        with obs.span("after"):
            pass
        obs.inc("n_total", 2.0)
        obs.event("warn", level="warning")
        delta = obs.collect_delta(mark)
        assert [s.name for s in delta.spans] == ["after"]
        assert delta.counters["n_total"] == 2.0
        assert [e["name"] for e in delta.events] == ["warn"]

    def test_empty_delta_collapses_to_none(self):
        obs = Observer()
        mark = obs.delta_mark()
        assert obs.collect_delta(mark) is None

    def test_absorb_merges_into_parent(self):
        worker = Observer()
        mark = worker.delta_mark()
        with worker.span("task:demo", index=3):
            worker.inc("n_total", 2.0)
        worker.event("note")
        delta = pickle.loads(pickle.dumps(worker.collect_delta(mark)))
        parent = Observer()
        parent.inc("n_total", 1.0)
        parent.absorb(delta)
        assert parent.metrics.value("n_total") == 3.0
        assert [s.name for s in parent.tracer.spans] == ["task:demo"]
        assert [e["name"] for e in parent.events] == ["note"]

    def test_absorb_none_is_noop(self):
        parent = Observer()
        parent.absorb(None)
        assert not parent.metrics

    def test_double_absorb_would_double_count(self):
        # Documents WHY the executor absorbs only accepted outcomes:
        # absorbing one delta twice double-counts, so requeued attempts
        # must never ship their telemetry twice.
        worker = Observer()
        mark = worker.delta_mark()
        worker.inc("n_total", 1.0)
        delta = worker.collect_delta(mark)
        parent = Observer()
        parent.absorb(delta)
        parent.absorb(delta)
        assert parent.metrics.value("n_total") == 2.0
