"""Exactly-once telemetry from pool workers under faults.

Worker processes ship span/metric deltas home with task results; the
parent absorbs a delta only when it accepts the outcome.  These tests
kill and requeue workers with the deterministic :class:`FaultInjector`
and assert that no task span is double-counted or lost.
"""

import pytest

from repro.analysis.windows import TimeWindow
from repro.engine import (
    ExecutionPolicy,
    Executor,
    FaultInjector,
    FaultSpec,
    fan_out,
)
from repro.obs.observer import Observer
from repro.simnet.internet import SimulationConfig, SyntheticInternet

FAST = ExecutionPolicy(retries=2, backoff_base=0.001, backoff_max=0.002)


def _observed_double(payload, item):
    """Increment the worker observer's counter, then do the work."""
    from repro.engine import executor

    obs = executor._TASK_OBSERVER
    if obs is not None:
        obs.inc("work_done_total")
    return payload * item


def task_spans(obs, stage="demo"):
    return [s for s in obs.tracer.spans if s.name == f"task:{stage}"]


class TestFanOutDeltas:
    def test_clean_pool_run_ships_every_span_once(self):
        obs = Observer()
        out = fan_out(
            2, _observed_double, [1, 2, 3, 4],
            workers=2, stage="demo", policy=FAST, observer=obs,
        )
        assert out == [2, 4, 6, 8]
        spans = task_spans(obs)
        assert len(spans) == 4
        assert sorted(s.attributes["index"] for s in spans) == [0, 1, 2, 3]
        assert obs.metrics.value("work_done_total") == 4.0

    def test_worker_kill_requeue_counts_exactly_once(self):
        obs = Observer()
        faults = FaultInjector([FaultSpec("demo", "kill", index=1, count=1)])
        out = fan_out(
            3, _observed_double, [1, 2, 3, 4],
            workers=2, stage="demo", policy=FAST, faults=faults, observer=obs,
        )
        assert out == [3, 6, 9, 12]
        spans = task_spans(obs)
        # The killed attempt died with its worker before shipping a
        # delta; only the requeued success contributes — one span and
        # one counter tick per task, no more, no less.
        assert len(spans) == 4
        assert sorted(s.attributes["index"] for s in spans) == [0, 1, 2, 3]
        assert obs.metrics.value("work_done_total") == 4.0

    def test_repeat_killer_serial_fallback_still_exactly_once(self):
        obs = Observer()
        faults = FaultInjector([FaultSpec("demo", "kill", index=0, count=2)])
        out = fan_out(
            3, _observed_double, [1, 2],
            workers=2, stage="demo", policy=FAST, faults=faults, observer=obs,
        )
        assert out == [3, 6]
        spans = task_spans(obs)
        assert len(spans) == 2
        assert sorted(s.attributes["index"] for s in spans) == [0, 1]

    def test_degraded_task_ships_no_span(self):
        obs = Observer()
        faults = FaultInjector([FaultSpec("demo", "error", index=1, count=9)])
        out = fan_out(
            2, _observed_double, [1, 2, 3],
            workers=2, stage="demo", policy=FAST, faults=faults, observer=obs,
        )
        assert out == [2, None, 6]
        spans = task_spans(obs)
        assert sorted(s.attributes["index"] for s in spans) == [0, 2]

    def test_pool_and_serial_ship_same_span_set(self):
        def indices(workers):
            obs = Observer()
            faults = FaultInjector([FaultSpec("demo", "kill", index=2, count=1)])
            fan_out(
                5, _observed_double, [1, 2, 3, 4],
                workers=workers, stage="demo", policy=FAST,
                faults=faults, observer=obs,
            )
            return sorted(s.attributes["index"] for s in task_spans(obs))

        assert indices(1) == indices(2) == [0, 1, 2, 3]


class TestWindowSweepDeltas:
    @pytest.fixture(scope="class")
    def internet(self):
        return SyntheticInternet(SimulationConfig(scale=2.0**-14, seed=99))

    def test_killed_window_worker_ships_stage_spans_once(self, internet):
        windows = [TimeWindow(2011.0, 2012.0), TimeWindow(2013.5, 2014.5)]
        obs = Observer()
        faults = FaultInjector(
            [FaultSpec("window_result", "kill", index=1, count=1)]
        )
        engine = Executor(
            internet, policy=FAST, faults=faults, observer=obs
        )
        results = engine.run_windows(windows, workers=2)
        assert len(results) == 2
        window_spans = [
            s for s in obs.tracer.spans if s.name == "stage:window_result"
        ]
        # One top-level stage span per window: the killed attempt's
        # trace died with its worker, the requeued attempt shipped.
        assert len(window_spans) == 2
        keys = {s.attributes["key"] for s in window_spans}
        assert len(keys) == 2
        assert engine.report.retry_count >= 1
