"""MetricsRegistry: counters, gauges, histograms, deltas and export."""

import json
import pickle
import threading

from repro.obs.metrics import MetricsRegistry, get_global_metrics


class TestCounters:
    def test_inc_accumulates(self):
        m = MetricsRegistry()
        m.inc("hits_total")
        m.inc("hits_total", 2.0)
        assert m.value("hits_total") == 3.0

    def test_unset_counter_reads_zero(self):
        assert MetricsRegistry().value("never_total") == 0.0

    def test_labels_are_part_of_identity(self):
        m = MetricsRegistry()
        m.inc("stage_seconds_total", 1.0, stage="fit")
        m.inc("stage_seconds_total", 2.0, stage="tabulate")
        assert m.value("stage_seconds_total", stage="fit") == 1.0
        assert m.value("stage_seconds_total", stage="tabulate") == 2.0
        assert m.value("stage_seconds_total") == 0.0

    def test_label_order_does_not_matter(self):
        m = MetricsRegistry()
        m.inc("x_total", 1.0, a="1", b="2")
        m.inc("x_total", 1.0, b="2", a="1")
        assert m.value("x_total", a="1", b="2") == 2.0

    def test_inc_many_single_shot(self):
        m = MetricsRegistry()
        m.inc_many({"fit_fits": 3.0, "fit_irls_iterations": 12.0})
        m.inc_many({"fit_fits": 1.0})
        assert m.counters_with_prefix("fit_") == {
            "fit_fits": 4.0,
            "fit_irls_iterations": 12.0,
        }

    def test_thread_safety_no_lost_updates(self):
        m = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                m.inc("n_total")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.value("n_total") == 4000.0


class TestGaugesAndHistograms:
    def test_gauge_is_point_in_time(self):
        m = MetricsRegistry()
        m.set_gauge("cache_bytes", 10.0)
        m.set_gauge("cache_bytes", 7.0)
        assert m.gauge("cache_bytes") == 7.0
        assert m.gauge("unset") is None

    def test_histogram_summarises(self):
        m = MetricsRegistry()
        for v in (1.0, 5.0, 3.0):
            m.observe("task_seconds", v)
        blob = m.to_json()["histograms"][0]
        assert blob["count"] == 3
        assert blob["sum"] == 9.0
        assert blob["min"] == 1.0
        assert blob["max"] == 5.0


class TestDeltaShipping:
    def test_subtract_yields_only_changes(self):
        m = MetricsRegistry()
        m.inc("a_total")
        before = m.collect()
        m.inc("a_total", 2.0)
        m.inc("b_total", 5.0, stage="fit")
        delta = MetricsRegistry.subtract(m.collect(), before)
        assert delta == {"a_total": 2.0, 'b_total{stage="fit"}': 5.0}

    def test_merge_counters_round_trips_labels(self):
        worker = MetricsRegistry()
        worker.inc("b_total", 5.0, stage="fit")
        parent = MetricsRegistry()
        parent.inc("b_total", 1.0, stage="fit")
        parent.merge_counters(worker.collect())
        assert parent.value("b_total", stage="fit") == 6.0

    def test_collect_snapshot_pickles(self):
        m = MetricsRegistry()
        m.inc("a_total", 1.0, stage="fit", worker="3")
        snapshot = pickle.loads(pickle.dumps(m.collect()))
        other = MetricsRegistry()
        other.merge_counters(snapshot)
        assert other.value("a_total", stage="fit", worker="3") == 1.0

    def test_parallel_merge_matches_serial_totals(self):
        parent = MetricsRegistry()
        for _ in range(3):
            w = MetricsRegistry()
            mark = w.collect()
            w.inc("n_total", 2.0)
            parent.merge_counters(MetricsRegistry.subtract(w.collect(), mark))
        assert parent.value("n_total") == 6.0


class TestMaintenanceAndExport:
    def test_reset_by_prefix(self):
        m = MetricsRegistry()
        m.inc("fit_fits")
        m.inc("cache_hits_total")
        m.reset("fit_")
        assert m.value("fit_fits") == 0.0
        assert m.value("cache_hits_total") == 1.0

    def test_bool_and_iter(self):
        m = MetricsRegistry()
        assert not m
        m.inc("a_total")
        assert m
        assert dict(m) == {"a_total": 1.0}

    def test_json_text_parses(self):
        m = MetricsRegistry()
        m.inc("a_total", 2.0, stage="fit")
        m.set_gauge("g", 1.5)
        payload = json.loads(m.to_json_text())
        assert payload["counters"] == [
            {"name": "a_total", "labels": {"stage": "fit"}, "value": 2.0}
        ]
        assert payload["gauges"][0]["value"] == 1.5

    def test_prometheus_exposition(self):
        m = MetricsRegistry()
        m.inc("a_total", 2.0, stage="fit")
        m.set_gauge("cache_bytes", 1.5)
        m.observe("task_seconds", 3.0)
        text = m.to_prometheus()
        assert '# TYPE a_total counter' in text
        assert 'a_total{stage="fit"} 2' in text
        assert "cache_bytes 1.5" in text
        assert "task_seconds_count 1" in text
        assert "task_seconds_sum 3" in text
        assert text.endswith("\n")

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestGlobalRegistry:
    def test_accessor_returns_singleton(self):
        assert get_global_metrics() is get_global_metrics()

    def test_fit_kernel_records_into_global(self):
        from repro.core import fitkernel

        fitkernel.reset_counters()
        fitkernel.record(fits=2, irls_iterations=7)
        assert get_global_metrics().value("fit_fits") == 2.0
        snap = fitkernel.snapshot()
        assert snap.fits == 2
        assert snap.irls_iterations == 7
        fitkernel.reset_counters()
        assert fitkernel.snapshot().fits == 0
