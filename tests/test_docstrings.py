"""Documentation contract: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.ipspace",
    "repro.registry",
    "repro.simnet",
    "repro.sources",
    "repro.filtering",
    "repro.analysis",
    "repro.data",
    "repro.engine",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name == "__main__":
                continue
            yield importlib.import_module(f"{package_name}.{info.name}")


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their origin
        yield name, obj


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__
            for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        undocumented = []
        for module in iter_modules():
            for cls_name, cls in public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_") or not inspect.isfunction(member):
                        continue
                    if not (member.__doc__ or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{cls_name}.{name}"
                        )
        assert undocumented == []
