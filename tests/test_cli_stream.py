"""The stream CLI: normalized flags, deprecated spellings, end-to-end parity."""

import json

import pytest

from repro.cli import build_parser, main

ARGS = ["--scale-log2", "-14", "--seed", "3"]

#: Every pipeline command must accept the shared knob set after the
#: subcommand (the stream satellites' flag normalization).
PIPELINE_COMMANDS = [
    ["estimate"],
    ["windows"],
    ["health"],
    ["crossval"],
    ["supply"],
    ["sensitivity"],
    ["campaign", "submit"],
    ["stream", "ingest", "--journal", "j"],
    ["stream", "advance", "--journal", "j"],
    ["stream", "snapshot", "--journal", "j"],
]


class TestFlagNormalization:
    @pytest.mark.parametrize("command", PIPELINE_COMMANDS, ids=" ".join)
    def test_knobs_parse_after_the_subcommand(self, command):
        args = build_parser().parse_args(
            command
            + [
                "--store", "store-dir",
                "--quarantine-policy", "strict",
                "--trace", "trace-dir",
                "--metrics-out", "metrics.prom",
                "--inject-faults", "fit:error",
            ]
        )
        assert args.store == "store-dir"
        assert args.quarantine_policy == "strict"
        assert args.trace == "trace-dir"
        assert args.metrics_out == "metrics.prom"
        assert len(args.inject_faults) == 1

    def test_main_parser_value_survives_the_subcommand(self):
        # Knobs given before the subcommand must not be clobbered by
        # the subcommand's (SUPPRESS-defaulted) copies.
        args = build_parser().parse_args(
            ["--store", "early", "--quarantine-policy", "strict", "estimate"]
        )
        assert args.store == "early"
        assert args.quarantine_policy == "strict"

    def test_subcommand_value_wins_over_main(self):
        args = build_parser().parse_args(
            ["--store", "early", "estimate", "--store", "late"]
        )
        assert args.store == "late"

    @pytest.mark.parametrize(
        ("deprecated", "canonical", "value"),
        [
            ("--artifact-store", "store", "s"),
            ("--quarantine", "quarantine_policy", "strict"),
            ("--trace-dir", "trace", "t"),
            ("--metrics", "metrics_out", "m.prom"),
        ],
    )
    def test_deprecated_spellings_warn_and_map(
        self, deprecated, canonical, value
    ):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            args = build_parser().parse_args(["estimate", deprecated, value])
        assert getattr(args, canonical) == value

    def test_deprecated_inject_fault_appends(self):
        with pytest.warns(DeprecationWarning, match="--inject-faults"):
            args = build_parser().parse_args(
                [
                    "estimate",
                    "--inject-fault", "fit:error",
                    "--inject-fault", "preprocess:corrupt",
                ]
            )
        assert len(args.inject_faults) == 2

    def test_deprecated_spellings_are_hidden_from_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--help"])
        help_text = capsys.readouterr().out
        assert "--artifact-store" not in help_text
        assert "--quarantine " not in help_text
        assert "--store" in help_text


class TestStreamParser:
    def test_stream_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream"])

    def test_journal_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "ingest"])

    def test_ingest_flags(self):
        args = build_parser().parse_args(
            ["stream", "ingest", "--journal", "j", "--simulate",
             "--through", "2012.0", "--limit", "40"]
        )
        assert args.simulate and args.through == 2012.0 and args.limit == 40

    def test_advance_windows_repeat(self):
        args = build_parser().parse_args(
            ["stream", "advance", "--journal", "j",
             "--window", "2011.0:2012.0", "--window", "2011.25:2012.25"]
        )
        assert len(args.window) == 2


class TestStreamEndToEnd:
    @pytest.fixture(scope="class")
    def journal_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cli-stream")

    def _body(self, text):
        # format_table puts the title on line 1; everything below is
        # the byte-comparable body.
        lines = text.splitlines()
        return [
            line for line in lines[1:]
            if not line.startswith("snapshot written")
        ]

    def test_stream_replay_matches_batch_sweep(self, journal_dir, capsys):
        assert main(ARGS + ["windows"]) == 0
        batch = capsys.readouterr().out

        journal = str(journal_dir / "journal")
        assert main(
            ARGS + ["stream", "ingest", "--journal", journal, "--simulate"]
        ) == 0
        ingest_out = capsys.readouterr().out
        assert "wrote" in ingest_out
        assert "closeable windows: 11" in ingest_out

        assert main(ARGS + ["stream", "advance", "--journal", journal]) == 0
        stream = capsys.readouterr().out
        assert self._body(stream) == self._body(batch)

    def test_ingest_refuses_a_populated_journal(self, journal_dir, capsys):
        journal = str(journal_dir / "journal")
        assert main(
            ARGS + ["stream", "ingest", "--journal", journal, "--simulate"]
        ) == 2
        assert "not empty" in capsys.readouterr().err

    def test_snapshot_requires_store(self, journal_dir, capsys):
        journal = str(journal_dir / "journal")
        assert main(ARGS + ["stream", "snapshot", "--journal", journal]) == 2
        assert "--store" in capsys.readouterr().err

    def test_kill_and_resume_matches_uninterrupted(
        self, journal_dir, tmp_path, capsys
    ):
        journal = str(journal_dir / "journal")
        store = str(tmp_path / "store")
        # Partial ingest + snapshot, as if the process died mid-stream.
        assert main(
            ARGS + ["stream", "ingest", "--journal", journal,
                    "--store", store, "--limit", "40"]
        ) == 0
        capsys.readouterr()
        # A fresh invocation resumes from the snapshot + journal tail.
        assert main(
            ARGS + ["stream", "advance", "--journal", journal,
                    "--store", store]
        ) == 0
        resumed = capsys.readouterr().out
        assert main(ARGS + ["stream", "advance", "--journal", journal]) == 0
        uninterrupted = capsys.readouterr().out
        assert self._body(resumed) == self._body(uninterrupted)

    def test_snapshot_status_report(self, journal_dir, tmp_path, capsys):
        journal = str(journal_dir / "journal")
        store = str(tmp_path / "store")
        assert main(
            ARGS + ["stream", "snapshot", "--journal", journal,
                    "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert "closed windows:" in out
        assert "snapshot written" in out


class TestLedgerSchemaErrors:
    def test_query_fails_clearly_on_newer_ledger(self, tmp_path, capsys):
        service = tmp_path / "service"
        campaign = service / "c1"
        campaign.mkdir(parents=True)
        (campaign / "ledger.json").write_text(
            json.dumps({"schema": 999, "entries": []})
        )
        code = main(["query", "c1", "--service", str(service)])
        assert code == 2
        err = capsys.readouterr().err
        assert "newer build" in err
        assert "999" in err
