"""Historical magnitudes anchoring Figure 10's long-term view.

Pre-2011 pingable-address counts come from the prior work the paper
plots (Pryadkin et al.'s 2003/2004 probing, USC/LANDER censuses
through 2011); allocated- and routed-space series come from RIR
delegation statistics and Route Views as summarised in the paper's
Figure 10.  Values are in millions of addresses at the stated times.
"""

from __future__ import annotations

import numpy as np

#: Pingable (ICMP-responding) addresses, millions — prior-work censuses.
_HISTORICAL_PING: tuple[tuple[float, float], ...] = (
    (2003.5, 62),
    (2004.5, 75),
    (2005.5, 90),
    (2006.5, 102),
    (2007.5, 112),
    (2008.5, 140),
    (2009.5, 180),
    (2010.5, 230),
    (2011.0, 290),
)

#: Allocated addresses, millions (RIR delegation files): the 2004-2011
#: boom and the post-exhaustion flattening.
_ALLOCATED: tuple[tuple[float, float], ...] = (
    (2003.0, 1790),
    (2004.0, 1850),
    (2005.0, 1960),
    (2006.0, 2080),
    (2007.0, 2230),
    (2008.0, 2400),
    (2009.0, 2570),
    (2010.0, 2780),
    (2011.0, 3050),
    (2012.0, 3320),
    (2013.0, 3400),
    (2014.0, 3450),
    (2014.5, 3470),
)

#: Routed addresses, millions (Route Views), available from 2008.
_ROUTED: tuple[tuple[float, float], ...] = (
    (2008.0, 1890),
    (2009.0, 2030),
    (2010.0, 2190),
    (2011.0, 2380),
    (2012.0, 2550),
    (2013.0, 2620),
    (2014.0, 2690),
    (2014.5, 2725),
)


def _series(pairs: tuple[tuple[float, float], ...]) -> tuple[np.ndarray, np.ndarray]:
    times = np.array([t for t, _ in pairs], dtype=np.float64)
    values = np.array([v for _, v in pairs], dtype=np.float64)
    return times, values


def historical_ping_series() -> tuple[np.ndarray, np.ndarray]:
    """(years, pingable addresses in millions), 2003-2011."""
    return _series(_HISTORICAL_PING)


def allocated_addresses_series() -> tuple[np.ndarray, np.ndarray]:
    """(years, allocated addresses in millions), 2003-2014."""
    return _series(_ALLOCATED)


def routed_addresses_series() -> tuple[np.ndarray, np.ndarray]:
    """(years, routed addresses in millions), 2008-2014."""
    return _series(_ROUTED)
