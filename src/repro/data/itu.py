"""ITU Internet-user statistics (the paper's Figure 11 input).

Yearly world Internet-user counts, December of each year, in millions,
from the ITU "Key ICT data" series the paper cites [27]: 16 million in
December 1995 growing to roughly 2.75 billion (about 39 % of the world
population) in December 2013, with visually exponential growth early
on turning roughly linear from 2006-2007.
"""

from __future__ import annotations

import numpy as np

#: (year, users in millions) pairs.
INTERNET_USERS_MILLIONS: tuple[tuple[int, float], ...] = (
    (1995, 16),
    (1996, 36),
    (1997, 70),
    (1998, 147),
    (1999, 248),
    (2000, 361),
    (2001, 495),
    (2002, 631),
    (2003, 719),
    (2004, 817),
    (2005, 1023),
    (2006, 1147),
    (2007, 1367),
    (2008, 1561),
    (2009, 1752),
    (2010, 2023),
    (2011, 2231),
    (2012, 2497),
    (2013, 2749),
)


def internet_users_series() -> tuple[np.ndarray, np.ndarray]:
    """(years, users-in-millions) arrays for Figure 11."""
    years = np.array([y for y, _ in INTERNET_USERS_MILLIONS], dtype=np.float64)
    users = np.array([u for _, u in INTERNET_USERS_MILLIONS], dtype=np.float64)
    return years, users
