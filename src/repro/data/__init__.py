"""Published data series embedded as constants.

These are not measurements the reproduction must recreate but numbers
the paper cites from public statistics: the ITU Internet-user series
(Figure 11) and the historical census/allocation/routing magnitudes
that anchor Figure 10's long-term panorama.
"""

from repro.data.historical import (
    allocated_addresses_series,
    historical_ping_series,
    routed_addresses_series,
)
from repro.data.itu import internet_users_series

__all__ = [
    "allocated_addresses_series",
    "historical_ping_series",
    "internet_users_series",
    "routed_addresses_series",
]
