"""Render a persisted run ledger as a human-readable report.

``python -m repro report <run-dir>`` lands here.  The renderer reads
only the ledger files (`run.json`, `metrics.json`, `trace.jsonl`,
`events.jsonl`) — it never needs the original process — and prints
provenance, per-stage timings, the top-N slowest spans, cache
efficiency, fit-kernel counters and the retry/degradation account.
"""

from __future__ import annotations

import json
from pathlib import Path


def _load_json(path: Path) -> dict:
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def _load_jsonl(path: Path) -> list[dict]:
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


def _counters(metrics: dict) -> dict[str, float]:
    """Unlabelled counters from a metrics.json payload, by name."""
    return {
        c["name"]: c["value"]
        for c in metrics.get("counters", [])
        if not c.get("labels")
    }


def _labelled(metrics: dict, name: str, label: str) -> dict[str, float]:
    """``{label-value: value}`` for one labelled counter family."""
    return {
        c["labels"][label]: c["value"]
        for c in metrics.get("counters", [])
        if c["name"] == name and label in c.get("labels", {})
    }


def _multi_labelled(
    metrics: dict, name: str, *labels: str
) -> dict[tuple[str, ...], float]:
    """``{(label-values...): value}`` for a multi-label counter family."""
    return {
        tuple(c["labels"][label] for label in labels): c["value"]
        for c in metrics.get("counters", [])
        if c["name"] == name
        and all(label in c.get("labels", {}) for label in labels)
    }


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    """Minimal right-padded text table (first column left-aligned)."""
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(cells: list[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [cells[i].rjust(widths[i]) for i in range(1, len(cells))]
        return "  ".join(parts)

    return [fmt(headers), "-" * len(fmt(headers))] + [fmt(r) for r in rows]


def _describe_store(store: dict) -> str:
    """One-line rendering of a run's store provenance block."""
    backend = store.get("backend", "?")
    if backend == "tiered":
        persistent = store.get("persistent", {})
        return f"tiered (persistent: {persistent.get('path', '?')})"
    if backend == "local":
        return f"local ({store.get('path', '?')})"
    return str(backend)


def render_run_report(run_dir: str | Path, top: int = 10) -> str:
    """The full textual report for one run directory."""
    run_dir = Path(run_dir)
    run = _load_json(run_dir / "run.json")
    metrics = _load_json(run_dir / "metrics.json")
    spans = _load_jsonl(run_dir / "trace.jsonl")
    events = _load_jsonl(run_dir / "events.jsonl")
    counters = _counters(metrics)

    lines: list[str] = [f"run ledger: {run_dir}"]

    # provenance
    if run:
        command = " ".join(run.get("command", []))
        lines.append(f"  command : {command}")
        if run.get("seed") is not None:
            lines.append(f"  seed    : {run['seed']}")
        if run.get("git_revision"):
            lines.append(f"  git     : {run['git_revision'][:12]}")
        if run.get("wall_seconds") is not None:
            lines.append(f"  wall    : {run['wall_seconds']:.2f}s  "
                         f"(python {run.get('python', '?')})")
        store = run.get("store")
        if isinstance(store, dict):
            lines.append(f"  store   : {_describe_store(store)}")

    # per-stage timings
    stage_seconds = _labelled(metrics, "stage_seconds_total", "stage")
    stage_calls = _labelled(metrics, "stage_calls_total", "stage")
    stage_hits = _labelled(metrics, "stage_cache_hits_total", "stage")
    if stage_seconds:
        lines += ["", "per-stage timings"]
        rows = [
            [
                stage,
                f"{int(stage_calls.get(stage, 0))}",
                f"{int(stage_hits.get(stage, 0))}",
                f"{seconds:.3f}",
            ]
            for stage, seconds in sorted(
                stage_seconds.items(), key=lambda kv: kv[1], reverse=True
            )
        ]
        lines += _table(["stage", "calls", "hits", "seconds"], rows)

    # cache efficiency
    hits = counters.get("cache_hits_total", 0.0)
    misses = counters.get("cache_misses_total", 0.0)
    if hits or misses:
        rate = hits / (hits + misses) if hits + misses else 0.0
        lines += [
            "",
            f"cache: {int(hits)} hits / {int(misses)} misses "
            f"({rate:.1%} hit rate), "
            f"{int(counters.get('cache_evictions_total', 0))} evictions, "
            f"{int(counters.get('cache_spills_total', 0))} spills, "
            f"{int(counters.get('cache_restores_total', 0))} restores, "
            f"{int(counters.get('cache_corrupt_evictions_total', 0))} corrupt",
        ]

    # persistent store tiers
    tier_hits = _labelled(metrics, "cache_tier_hits_total", "tier")
    if tier_hits:
        lines.append(
            "  tiers: " + ", ".join(
                f"{int(count)} from {tier}"
                for tier, count in sorted(tier_hits.items())
            )
        )
    store_hits = counters.get("cache_persistent_hits_total", 0.0)
    store_misses = counters.get("cache_persistent_misses_total", 0.0)
    if store_hits or store_misses or counters.get("cache_persistent_puts_total"):
        lines.append(
            f"  persistent store: {int(store_hits)} hits / "
            f"{int(store_misses)} misses, "
            f"{int(counters.get('cache_persistent_puts_total', 0))} puts "
            f"({int(counters.get('cache_persistent_bytes_written_total', 0))} B "
            f"written, "
            f"{int(counters.get('cache_persistent_bytes_read_total', 0))} B "
            f"read), "
            f"{int(counters.get('cache_persistent_corrupt_entries_total', 0))} "
            f"corrupt"
        )
    memo_hits = counters.get("cache_fitmemo_hits_total", 0.0)
    memo_puts = counters.get("cache_fitmemo_puts_total", 0.0)
    if memo_hits or memo_puts:
        lines.append(
            f"  fit memo store: {int(memo_hits)} hits, {int(memo_puts)} puts"
        )

    # worker payload transport
    payload_bytes = counters.get("pool_payload_bytes_total", 0.0)
    shm_bytes = counters.get("pool_shm_bytes_total", 0.0)
    if payload_bytes or shm_bytes:
        lines.append(
            f"  worker payloads: {int(payload_bytes)} B pickled per pool, "
            f"{int(shm_bytes)} B via shared memory"
        )

    # fit-kernel counters
    fit = {
        name[len("fit_"):-len("_total")]: value
        for name, value in counters.items()
        if name.startswith("fit_") and name.endswith("_total")
    }
    if fit:
        lines += [
            "",
            "fit kernel: " + ", ".join(
                f"{int(v)} {k}" for k, v in sorted(fit.items()) if v
            ),
        ]

    # source integrity
    verdicts = _multi_labelled(
        metrics, "source_health_verdicts_total", "source", "verdict"
    )
    health_dropped = _multi_labelled(
        metrics, "source_dropped_total", "source", "reason"
    )
    if verdicts or health_dropped:
        lines += ["", "source integrity (source-windows per verdict)"]
        names = sorted(
            {s for s, _ in verdicts} | {s for s, _ in health_dropped}
        )
        rows = [
            [
                name,
                f"{int(verdicts.get((name, 'ok'), 0))}",
                f"{int(verdicts.get((name, 'suspect'), 0))}",
                f"{int(verdicts.get((name, 'quarantined'), 0))}",
                f"{int(sum(v for (s, _), v in health_dropped.items() if s == name))}",
            ]
            for name in names
        ]
        lines += _table(["source", "ok", "suspect", "quarantined", "dropped"], rows)

    # retry / degradation table
    retried = counters.get("tasks_retried_total", 0.0)
    degraded = counters.get("tasks_degraded_total", 0.0)
    if retried or degraded:
        lines += [
            "",
            f"fault tolerance: {int(retried)} retried attempt(s), "
            f"{int(degraded)} degraded task(s)",
        ]
    warn_events = [e for e in events if e.get("level") in ("warning", "error")]
    for event in warn_events:
        detail = " ".join(
            f"{k}={v}" for k, v in event.items()
            if k not in ("time", "name", "level")
        )
        lines.append(f"  [{event.get('level')}] {event.get('name')} {detail}".rstrip())

    # slowest spans
    if spans:
        lines += ["", f"slowest spans (top {top} of {len(spans)})"]
        slowest = sorted(spans, key=lambda s: s.get("duration", 0.0), reverse=True)
        rows = []
        for span in slowest[:top]:
            attrs = span.get("attributes", {})
            detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            rows.append(
                [
                    span.get("name", "?"),
                    f"{span.get('duration', 0.0):.3f}",
                    f"{span.get('cpu_seconds', 0.0):.3f}",
                    span.get("status", "?"),
                    detail[:48],
                ]
            )
        lines += _table(["span", "wall[s]", "cpu[s]", "status", "attributes"], rows)

    return "\n".join(lines)


def _hit_rate_of(counters: dict[str, float]) -> float | None:
    hits = counters.get("cache_hits_total", 0.0)
    misses = counters.get("cache_misses_total", 0.0)
    total = hits + misses
    return hits / total if total else None


def render_run_diff(run_dir: str | Path, other_dir: str | Path) -> str:
    """What changed between two persisted run ledgers.

    ``python -m repro report RUN --diff OTHER`` lands here: the
    cross-run view over stored ledgers that answers "what changed since
    the last sweep" — provenance drift (command, seed, options, git,
    store), per-stage wall time and call-count deltas, cache/store
    efficiency movement, and fit-kernel totals.  ``other_dir`` is the
    baseline; signs read as *this run minus baseline*.
    """
    a_dir, b_dir = Path(run_dir), Path(other_dir)
    for missing in (d for d in (a_dir, b_dir) if not (d / "run.json").exists()):
        return f"run ledger: no run directory at {missing}"
    run_a, run_b = _load_json(a_dir / "run.json"), _load_json(b_dir / "run.json")
    met_a = _load_json(a_dir / "metrics.json")
    met_b = _load_json(b_dir / "metrics.json")
    ctr_a, ctr_b = _counters(met_a), _counters(met_b)

    lines = [f"run diff: {a_dir}  vs baseline  {b_dir}"]

    # provenance drift
    drift: list[str] = []
    for field, label in (
        ("command", "command"),
        ("seed", "seed"),
        ("options", "options"),
        ("git_revision", "git"),
        ("store", "store"),
        ("python", "python"),
    ):
        va, vb = run_a.get(field), run_b.get(field)
        if va != vb:
            if field == "command":
                va, vb = " ".join(va or []), " ".join(vb or [])
            if field == "store":
                va = _describe_store(va) if isinstance(va, dict) else va
                vb = _describe_store(vb) if isinstance(vb, dict) else vb
            drift.append(f"  {label}: {vb!r} -> {va!r}")
    if drift:
        lines += ["", "provenance changes"] + drift
    else:
        lines.append("  identical provenance (command, seed, options, git, store)")

    wall_a, wall_b = run_a.get("wall_seconds"), run_b.get("wall_seconds")
    if wall_a is not None and wall_b is not None:
        lines.append(
            f"  wall: {wall_b:.2f}s -> {wall_a:.2f}s  ({wall_a - wall_b:+.2f}s)"
        )

    # per-stage deltas
    sec_a = _labelled(met_a, "stage_seconds_total", "stage")
    sec_b = _labelled(met_b, "stage_seconds_total", "stage")
    calls_a = _labelled(met_a, "stage_calls_total", "stage")
    calls_b = _labelled(met_b, "stage_calls_total", "stage")
    hits_a = _labelled(met_a, "stage_cache_hits_total", "stage")
    hits_b = _labelled(met_b, "stage_cache_hits_total", "stage")
    stages = sorted(
        set(sec_a) | set(sec_b),
        key=lambda s: sec_a.get(s, 0.0) + sec_b.get(s, 0.0),
        reverse=True,
    )
    if stages:
        rows = [
            [
                stage,
                f"{int(calls_b.get(stage, 0))}->{int(calls_a.get(stage, 0))}",
                f"{int(hits_b.get(stage, 0))}->{int(hits_a.get(stage, 0))}",
                f"{sec_b.get(stage, 0.0):.3f}",
                f"{sec_a.get(stage, 0.0):.3f}",
                f"{sec_a.get(stage, 0.0) - sec_b.get(stage, 0.0):+.3f}",
            ]
            for stage in stages
        ]
        lines += ["", "per-stage deltas (baseline -> this run)"]
        lines += _table(
            ["stage", "calls", "hits", "base[s]", "this[s]", "delta[s]"], rows
        )

    # cache / store efficiency
    rate_a, rate_b = _hit_rate_of(ctr_a), _hit_rate_of(ctr_b)
    if rate_a is not None or rate_b is not None:
        fmt = lambda r: f"{r:.1%}" if r is not None else "n/a"  # noqa: E731
        lines += [
            "",
            f"cache hit rate: {fmt(rate_b)} -> {fmt(rate_a)}",
        ]
    for name, label in (
        ("cache_persistent_hits_total", "store hits"),
        ("cache_persistent_puts_total", "store puts"),
        ("cache_fitmemo_hits_total", "fit-memo hits"),
        ("tasks_retried_total", "retried attempts"),
        ("tasks_degraded_total", "degraded tasks"),
    ):
        va, vb = ctr_a.get(name, 0.0), ctr_b.get(name, 0.0)
        if va or vb:
            lines.append(f"  {label}: {int(vb)} -> {int(va)}")
    for name, label in (
        ("source_quarantined_total", "quarantined source-windows"),
        ("source_dropped_total", "dropped source-windows"),
    ):
        va = sum(_labelled(met_a, name, "source").values())
        vb = sum(_labelled(met_b, name, "source").values())
        if va or vb:
            lines.append(f"  {label}: {int(vb)} -> {int(va)}")

    # fit-kernel totals
    fit_names = sorted(
        name
        for name in set(ctr_a) | set(ctr_b)
        if name.startswith("fit_") and name.endswith("_total")
    )
    fit_rows = [
        [
            name[len("fit_"):-len("_total")],
            f"{int(ctr_b.get(name, 0.0))}",
            f"{int(ctr_a.get(name, 0.0))}",
            f"{int(ctr_a.get(name, 0.0) - ctr_b.get(name, 0.0)):+d}",
        ]
        for name in fit_names
        if ctr_a.get(name, 0.0) or ctr_b.get(name, 0.0)
    ]
    if fit_rows:
        lines += ["", "fit kernel (baseline -> this run)"]
        lines += _table(["counter", "base", "this", "delta"], fit_rows)

    return "\n".join(lines)
