"""Render a persisted run ledger as a human-readable report.

``python -m repro report <run-dir>`` lands here.  The renderer reads
only the ledger files (`run.json`, `metrics.json`, `trace.jsonl`,
`events.jsonl`) — it never needs the original process — and prints
provenance, per-stage timings, the top-N slowest spans, cache
efficiency, fit-kernel counters and the retry/degradation account.
"""

from __future__ import annotations

import json
from pathlib import Path


def _load_json(path: Path) -> dict:
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def _load_jsonl(path: Path) -> list[dict]:
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


def _counters(metrics: dict) -> dict[str, float]:
    """Unlabelled counters from a metrics.json payload, by name."""
    return {
        c["name"]: c["value"]
        for c in metrics.get("counters", [])
        if not c.get("labels")
    }


def _labelled(metrics: dict, name: str, label: str) -> dict[str, float]:
    """``{label-value: value}`` for one labelled counter family."""
    return {
        c["labels"][label]: c["value"]
        for c in metrics.get("counters", [])
        if c["name"] == name and label in c.get("labels", {})
    }


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    """Minimal right-padded text table (first column left-aligned)."""
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(cells: list[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [cells[i].rjust(widths[i]) for i in range(1, len(cells))]
        return "  ".join(parts)

    return [fmt(headers), "-" * len(fmt(headers))] + [fmt(r) for r in rows]


def render_run_report(run_dir: str | Path, top: int = 10) -> str:
    """The full textual report for one run directory."""
    run_dir = Path(run_dir)
    run = _load_json(run_dir / "run.json")
    metrics = _load_json(run_dir / "metrics.json")
    spans = _load_jsonl(run_dir / "trace.jsonl")
    events = _load_jsonl(run_dir / "events.jsonl")
    counters = _counters(metrics)

    lines: list[str] = [f"run ledger: {run_dir}"]

    # provenance
    if run:
        command = " ".join(run.get("command", []))
        lines.append(f"  command : {command}")
        if run.get("seed") is not None:
            lines.append(f"  seed    : {run['seed']}")
        if run.get("git_revision"):
            lines.append(f"  git     : {run['git_revision'][:12]}")
        if run.get("wall_seconds") is not None:
            lines.append(f"  wall    : {run['wall_seconds']:.2f}s  "
                         f"(python {run.get('python', '?')})")

    # per-stage timings
    stage_seconds = _labelled(metrics, "stage_seconds_total", "stage")
    stage_calls = _labelled(metrics, "stage_calls_total", "stage")
    stage_hits = _labelled(metrics, "stage_cache_hits_total", "stage")
    if stage_seconds:
        lines += ["", "per-stage timings"]
        rows = [
            [
                stage,
                f"{int(stage_calls.get(stage, 0))}",
                f"{int(stage_hits.get(stage, 0))}",
                f"{seconds:.3f}",
            ]
            for stage, seconds in sorted(
                stage_seconds.items(), key=lambda kv: kv[1], reverse=True
            )
        ]
        lines += _table(["stage", "calls", "hits", "seconds"], rows)

    # cache efficiency
    hits = counters.get("cache_hits_total", 0.0)
    misses = counters.get("cache_misses_total", 0.0)
    if hits or misses:
        rate = hits / (hits + misses) if hits + misses else 0.0
        lines += [
            "",
            f"cache: {int(hits)} hits / {int(misses)} misses "
            f"({rate:.1%} hit rate), "
            f"{int(counters.get('cache_evictions_total', 0))} evictions, "
            f"{int(counters.get('cache_spills_total', 0))} spills, "
            f"{int(counters.get('cache_restores_total', 0))} restores, "
            f"{int(counters.get('cache_corrupt_evictions_total', 0))} corrupt",
        ]

    # fit-kernel counters
    fit = {
        name[len("fit_"):-len("_total")]: value
        for name, value in counters.items()
        if name.startswith("fit_") and name.endswith("_total")
    }
    if fit:
        lines += [
            "",
            "fit kernel: " + ", ".join(
                f"{int(v)} {k}" for k, v in sorted(fit.items()) if v
            ),
        ]

    # retry / degradation table
    retried = counters.get("tasks_retried_total", 0.0)
    degraded = counters.get("tasks_degraded_total", 0.0)
    if retried or degraded:
        lines += [
            "",
            f"fault tolerance: {int(retried)} retried attempt(s), "
            f"{int(degraded)} degraded task(s)",
        ]
    warn_events = [e for e in events if e.get("level") in ("warning", "error")]
    for event in warn_events:
        detail = " ".join(
            f"{k}={v}" for k, v in event.items()
            if k not in ("time", "name", "level")
        )
        lines.append(f"  [{event.get('level')}] {event.get('name')} {detail}".rstrip())

    # slowest spans
    if spans:
        lines += ["", f"slowest spans (top {top} of {len(spans)})"]
        slowest = sorted(spans, key=lambda s: s.get("duration", 0.0), reverse=True)
        rows = []
        for span in slowest[:top]:
            attrs = span.get("attributes", {})
            detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            rows.append(
                [
                    span.get("name", "?"),
                    f"{span.get('duration', 0.0):.3f}",
                    f"{span.get('cpu_seconds', 0.0):.3f}",
                    span.get("status", "?"),
                    detail[:48],
                ]
            )
        lines += _table(["span", "wall[s]", "cpu[s]", "status", "attributes"], rows)

    return "\n".join(lines)
