"""Structured observability: tracing, metrics, and the run ledger.

The subsystem has four pieces:

* :class:`Tracer` / :class:`Span` — nested spans (run → stage → task →
  fit) with wall/CPU time, streamable as JSON-lines.
* :class:`MetricsRegistry` — counters, gauges and histogram summaries
  with Prometheus-text and JSON exporters; :func:`get_global_metrics`
  is the accessor for the process-global registry (home of the
  fit-kernel totals).
* :class:`Observer` — the per-run context threaded through the
  executor, the artifact cache and the analysis drivers; disabled by
  default, with :class:`ObserverDelta` shipping worker telemetry home.
* :class:`RunLedger` / :func:`render_run_report` — persistence of a
  run's spans + metrics + provenance to a directory, and the
  ``repro report`` renderer over it.
"""

from repro.obs.ledger import RunLedger
from repro.obs.metrics import MetricsRegistry, get_global_metrics
from repro.obs.observer import Observer, ObserverDelta
from repro.obs.reporting import render_run_diff, render_run_report
from repro.obs.tracing import Span, Tracer

__all__ = [
    "MetricsRegistry",
    "Observer",
    "ObserverDelta",
    "RunLedger",
    "Span",
    "Tracer",
    "get_global_metrics",
    "render_run_diff",
    "render_run_report",
]
