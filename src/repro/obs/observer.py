"""The per-run observability context threaded through the engine.

One :class:`Observer` travels with one run: the executor, the artifact
cache, the analysis drivers and the CLI all write into the same
instance, giving every span, counter and event a single home that the
:class:`~repro.obs.ledger.RunLedger` persists at the end.

Observability is **off by default**.  A disabled observer (the
executor's default, via :meth:`Observer.disabled`) turns every call
into a cheap no-op — `span()` returns a shared no-op context manager,
`event()` and `inc()` return immediately — so the instrumented hot
paths cost one attribute check when nobody is watching.

Pool workers cannot share the parent's observer.  Instead each worker
process builds its own enabled observer, and finished work ships an
:class:`ObserverDelta` — completed spans, counter deltas, events —
home with the task result, exactly as per-stage ``FitCounters`` deltas
travel today.  The parent absorbs deltas only for task outcomes it
accepts, so a killed-and-requeued task contributes its telemetry
exactly once.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NOOP_SPAN, Span, Tracer

logger = logging.getLogger("repro.obs")


@dataclass
class ObserverDelta:
    """Picklable telemetry increment shipped from a worker to the parent.

    ``counters`` uses rendered metric keys (see
    :meth:`MetricsRegistry.collect`), ``spans`` are completed
    :class:`Span` objects, ``events`` are the structured event dicts.
    Histograms and gauges do not ship — they are process-local.
    """

    spans: list[Span] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.spans or self.counters or self.events)


#: Opaque marker returned by :meth:`Observer.delta_mark`.
DeltaMark = tuple[int, dict[str, float], int]


@contextmanager
def _noop_cm() -> Iterator[Any]:
    yield NOOP_SPAN


class Observer:
    """Run-scoped telemetry context: tracer + metrics + event log."""

    def __init__(
        self,
        enabled: bool = True,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events: list[dict[str, Any]] = []

    @classmethod
    def disabled(cls) -> "Observer":
        """An observer whose every operation is a no-op."""
        return cls(enabled=False)

    # -- spans -------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Context manager for a traced span (no-op when disabled)."""
        if not self.enabled:
            return _noop_cm()
        return self.tracer.span(name, **attributes)

    # -- metrics -----------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        if self.enabled:
            self.metrics.inc(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if self.enabled:
            self.metrics.observe(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if self.enabled:
            self.metrics.set_gauge(name, value, **labels)

    # -- events ------------------------------------------------------------

    def event(self, name: str, level: str = "info", **attributes: Any) -> None:
        """Record a structured event and mirror it to ``logging``.

        The logging mirror fires even when the observer is disabled —
        a corrupt cache entry deserves a warning whether or not anyone
        asked for a trace.  Only the structured capture is gated.
        """
        log_level = getattr(logging, level.upper(), logging.INFO)
        if attributes:
            detail = " ".join(f"{k}={v}" for k, v in attributes.items())
            logger.log(log_level, "%s %s", name, detail)
        else:
            logger.log(log_level, "%s", name)
        if not self.enabled:
            return
        self.events.append(
            {"time": time.time(), "name": name, "level": level, **attributes}
        )
        self.metrics.inc(f"events_{level}_total")

    # -- worker delta shipping --------------------------------------------

    def delta_mark(self) -> DeltaMark:
        """Opaque position marker; pair with :meth:`collect_delta`."""
        if not self.enabled:
            return (0, {}, 0)
        return (self.tracer.mark(), self.metrics.collect(), len(self.events))

    def collect_delta(self, mark: DeltaMark) -> ObserverDelta | None:
        """Telemetry produced since ``mark``, as a picklable delta."""
        if not self.enabled:
            return None
        span_mark, counters_before, events_mark = mark
        delta = ObserverDelta(
            spans=self.tracer.collect_since(span_mark),
            counters=MetricsRegistry.subtract(self.metrics.collect(), counters_before),
            events=list(self.events[events_mark:]),
        )
        return delta if delta else None

    def absorb(self, delta: ObserverDelta | None) -> None:
        """Fold a worker's delta into this observer."""
        if delta is None or not self.enabled:
            return
        self.tracer.absorb(delta.spans)
        if delta.counters:
            self.metrics.merge_counters(delta.counters)
        self.events.extend(delta.events)
