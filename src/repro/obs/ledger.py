"""Per-run ledger: spans + metrics + provenance persisted to a directory.

A :class:`RunLedger` makes a sweep post-hoc explainable.  It captures
provenance up front (command line, seed, options, policy, git commit,
python version) and, at :meth:`finalize`, absorbs the run's telemetry
and writes one run directory:

```
<run-dir>/
  run.json       provenance: argv, seed, options, policy, git, timing
  trace.jsonl    one completed span per line (run → stage → task → fit)
  metrics.json   counters / gauges / histograms, structured
  metrics.prom   the same registry in Prometheus text exposition
  events.jsonl   structured warning/info events (e.g. corrupt spills)
  report.json    the RunReport (per-stage records), when one was passed
```

Finalize is where the engine's pre-existing accounting is absorbed
into the metrics registry: `ArtifactCache.stats()` becomes `cache_*`
counters, and the `RunReport` contributes retry/degradation blame,
per-stage wall time, and the fit-kernel totals.  Pulling fit totals
from the report's exclusive per-stage deltas — not from the
process-global registry — keeps the ledger run-scoped and guarantees
`repro report` agrees with `RunReport` to the digit.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

from repro.obs.observer import Observer


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of options/policy objects to JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def git_revision() -> str | None:
    """The repository HEAD this process runs from, if resolvable.

    Public because every provenance-bearing artifact (run ledgers,
    campaign query ledgers) stamps it; ``None`` outside a checkout.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def absorb_engine_accounting(
    observer: Observer, *, report: Any = None, cache: Any = None
) -> None:
    """Fold the engine's existing accounting into the observer's metrics.

    ``ArtifactCache.stats()`` becomes ``cache_*`` counters (entries and
    bytes as gauges), and the ``RunReport`` contributes
    retry/degradation blame, per-stage wall time / call counts, and the
    run's fit-kernel totals.  Fit totals come from the report's
    exclusive per-stage deltas — not the process-global registry — so
    the result is run-scoped and matches ``RunReport`` exactly.
    """
    metrics = observer.metrics
    if cache is not None:
        for name, value in cache.stats().items():
            if name in ("entries", "bytes"):  # point-in-time, not totals
                metrics.set_gauge(f"cache_{name}", float(value))
            elif report is not None and name in ("hits", "misses"):
                # The parent cache never sees worker-process lookups;
                # the report's shipped-back stage records do, so they
                # are the run-scoped hit/miss truth under a pool.
                continue
            else:
                metrics.inc(f"cache_{name}_total", float(value))
    if report is not None:
        metrics.inc("cache_hits_total", float(report.cache_hits))
        metrics.inc("cache_misses_total", float(report.cache_misses))
        hit_tiers = getattr(report, "hit_tiers", None)
        if hit_tiers is not None:
            for tier, count in hit_tiers().items():
                metrics.inc("cache_tier_hits_total", float(count), tier=tier)
        metrics.inc("tasks_retried_total", float(report.retry_count))
        metrics.inc("tasks_degraded_total", float(report.degraded_count))
        metrics.inc("stage_records_total", float(len(report.records)))
        for stage, stats in report.by_stage().items():
            metrics.inc("stage_seconds_total", stats.seconds, stage=stage)
            metrics.inc("stage_calls_total", float(stats.calls), stage=stage)
            metrics.inc("stage_cache_hits_total", float(stats.hits), stage=stage)
        fit = report.fit_totals()
        if fit:
            metrics.inc_many(
                {f"fit_{name}_total": float(v) for name, v in fit.as_dict().items()}
            )


class RunLedger:
    """Provenance + telemetry sink for one run directory."""

    def __init__(
        self,
        directory: str | Path,
        *,
        command: list[str] | None = None,
        seed: int | None = None,
        options: Any = None,
        policy: Any = None,
    ) -> None:
        self.directory = Path(directory)
        self.started_at = time.time()
        self.provenance: dict[str, Any] = {
            "command": list(command) if command is not None else list(sys.argv),
            "seed": seed,
            "options": _jsonable(options) if options is not None else None,
            "policy": _jsonable(policy) if policy is not None else None,
            "git_revision": git_revision(),
            "python": sys.version.split()[0],
            "started_at": self.started_at,
        }

    def finalize(
        self,
        observer: Observer,
        *,
        report: Any = None,
        cache: Any = None,
    ) -> Path:
        """Absorb engine accounting into the observer and write the ledger.

        ``report`` is a :class:`repro.engine.report.RunReport` (duck
        typed — this module must not import the engine); ``cache`` is
        an :class:`repro.engine.artifacts.ArtifactCache`.
        """
        absorb_engine_accounting(observer, report=report, cache=cache)
        metrics = observer.metrics
        self.directory.mkdir(parents=True, exist_ok=True)
        finished_at = time.time()
        run_info = dict(
            self.provenance,
            finished_at=finished_at,
            wall_seconds=finished_at - self.started_at,
        )
        # Store provenance: which backend served this run (and, for a
        # persistent store, the shared directory cross-run diffs key on).
        describe = getattr(cache, "describe", None)
        if callable(describe):
            run_info["store"] = describe()
        self._write_json("run.json", run_info)
        (self.directory / "trace.jsonl").write_text(observer.tracer.to_jsonl())
        (self.directory / "metrics.json").write_text(metrics.to_json_text() + "\n")
        (self.directory / "metrics.prom").write_text(metrics.to_prometheus())
        events = "".join(
            json.dumps(event, sort_keys=True, default=repr) + "\n"
            for event in observer.events
        )
        (self.directory / "events.jsonl").write_text(events)
        if report is not None:
            self._write_json("report.json", report.to_dict())
        return self.directory

    def _write_json(self, name: str, payload: Any) -> None:
        path = self.directory / name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=repr) + "\n")
