"""Counters, gauges and histograms with Prometheus and JSON export.

The :class:`MetricsRegistry` is the numeric half of the observability
layer: a thread-safe bag of named metrics that the engine, the artifact
cache and the fit kernel write into, and that the
:class:`~repro.obs.ledger.RunLedger` exports at the end of a run.
Three metric kinds:

* **counters** — monotonically increasing totals (``cache_hits_total``,
  ``fit_irls_iterations_total``).  Workers ship counter *deltas* back
  to the parent (see :meth:`MetricsRegistry.collect` /
  :meth:`MetricsRegistry.merge_counters`), so a parallel run exports
  the same totals as a serial one.
* **gauges** — point-in-time values (``cache_bytes``).
* **histograms** — summary statistics of observed samples
  (count / sum / min / max), exported Prometheus-summary style.

Metrics may carry labels (``stage_seconds_total{stage="fit"}``); the
label set is part of the metric identity.

The module also owns the **process-global registry**: the single
mutable home of process-wide totals such as the fit-kernel counters.
Access it only through :func:`get_global_metrics` — module-level
globals spread through code are exactly what this accessor replaces.
This module must stay free of ``repro`` imports: the statistics core
(:mod:`repro.core.fitkernel`) records into the global registry, so
anything imported here is imported by everything.
"""

from __future__ import annotations

import json
import threading
from typing import Iterator, Mapping

#: Metric identity: name plus the sorted, stringified label items.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, object] | None) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _render_key(key: MetricKey) -> str:
    """Prometheus-style rendering of one metric identity."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe named counters, gauges and histogram summaries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        #: histogram storage: [count, sum, min, max]
        self._histograms: dict[MetricKey, list[float]] = {}

    # -- recording --------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` to a counter (created at zero on first use)."""
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def inc_many(self, deltas: Mapping[str, float]) -> None:
        """Add several unlabelled counter deltas under one lock.

        The fit kernel's fast path: one acquisition per recorded fit,
        whatever the number of counters touched.
        """
        with self._lock:
            counters = self._counters
            for name, value in deltas.items():
                key = (name, ())
                counters[key] = counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge to a point-in-time value."""
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Add one sample to a histogram summary."""
        key = _key(name, labels)
        with self._lock:
            stats = self._histograms.get(key)
            if stats is None:
                self._histograms[key] = [1.0, value, value, value]
            else:
                stats[0] += 1.0
                stats[1] += value
                stats[2] = min(stats[2], value)
                stats[3] = max(stats[3], value)

    # -- reading ----------------------------------------------------------

    def value(self, name: str, **labels: object) -> float:
        """Current counter value (0.0 if never incremented)."""
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def gauge(self, name: str, **labels: object) -> float | None:
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """Unlabelled counters whose name starts with ``prefix``."""
        with self._lock:
            return {
                name: value
                for (name, labels), value in self._counters.items()
                if not labels and name.startswith(prefix)
            }

    # -- worker deltas -----------------------------------------------------

    def collect(self) -> dict[str, float]:
        """Picklable snapshot of the counters (for delta shipping).

        Keys are rendered ``name{label="v"}`` strings, so a snapshot
        survives pickling to a pool worker and back.  Gauges and
        histograms are process-local and are *not* shipped: a worker's
        gauge has no meaningful merge into the parent.
        """
        with self._lock:
            return {_render_key(k): v for k, v in self._counters.items()}

    @staticmethod
    def subtract(after: Mapping[str, float], before: Mapping[str, float]) -> dict[str, float]:
        """Counter delta between two :meth:`collect` snapshots."""
        return {
            name: value - before.get(name, 0.0)
            for name, value in after.items()
            if value != before.get(name, 0.0)
        }

    def merge_counters(self, deltas: Mapping[str, float]) -> None:
        """Fold a worker's counter deltas (rendered-key form) into this
        registry."""
        with self._lock:
            for rendered, value in deltas.items():
                key = _parse_rendered(rendered)
                self._counters[key] = self._counters.get(key, 0.0) + value

    # -- maintenance -------------------------------------------------------

    def reset(self, prefix: str = "") -> None:
        """Zero counters (and drop gauges/histograms) under ``prefix``."""
        with self._lock:
            for store in (self._counters, self._gauges, self._histograms):
                for key in [k for k in store if k[0].startswith(prefix)]:
                    del store[key]

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._counters or self._gauges or self._histograms)

    # -- export ------------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-ready structured export (the ``metrics.json`` payload)."""
        with self._lock:
            return {
                "counters": [
                    {"name": name, "labels": dict(labels), "value": value}
                    for (name, labels), value in sorted(self._counters.items())
                ],
                "gauges": [
                    {"name": name, "labels": dict(labels), "value": value}
                    for (name, labels), value in sorted(self._gauges.items())
                ],
                "histograms": [
                    {
                        "name": name,
                        "labels": dict(labels),
                        "count": int(stats[0]),
                        "sum": stats[1],
                        "min": stats[2],
                        "max": stats[3],
                    }
                    for (name, labels), stats in sorted(self._histograms.items())
                ],
            }

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every metric."""
        lines: list[str] = []
        with self._lock:
            for key, value in sorted(self._counters.items()):
                lines.append(f"# TYPE {key[0]} counter")
                lines.append(f"{_render_key(key)} {_format_number(value)}")
            for key, value in sorted(self._gauges.items()):
                lines.append(f"# TYPE {key[0]} gauge")
                lines.append(f"{_render_key(key)} {_format_number(value)}")
            for (name, labels), stats in sorted(self._histograms.items()):
                lines.append(f"# TYPE {name} summary")
                count_key = (f"{name}_count", labels)
                sum_key = (f"{name}_sum", labels)
                lines.append(f"{_render_key(count_key)} {_format_number(stats[0])}")
                lines.append(f"{_render_key(sum_key)} {_format_number(stats[1])}")
        return "\n".join(lines) + "\n" if lines else ""

    def __iter__(self) -> Iterator[tuple[str, float]]:
        """Iterate rendered-name / value pairs of the counters."""
        return iter(self.collect().items())


def _format_number(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(value)


def _parse_rendered(rendered: str) -> MetricKey:
    """Inverse of :func:`_render_key` for merge_counters."""
    if "{" not in rendered:
        return (rendered, ())
    name, _, rest = rendered.partition("{")
    items = []
    for part in rest.rstrip("}").split(","):
        k, _, v = part.partition("=")
        items.append((k, v.strip('"')))
    return (name, tuple(sorted(items)))


#: The process-global registry (fit-kernel totals and anything else
#: that is genuinely process-wide).  Reach it through the accessor.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_global_metrics() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`.

    This accessor is the supported way to reach process-wide mutable
    metric state (the fit-kernel counters live here under the ``fit_``
    prefix).  Run-scoped metrics belong on a per-run
    :class:`~repro.obs.observer.Observer` instead.
    """
    return _GLOBAL_REGISTRY
