"""Nested spans with wall/CPU time, recorded in-process.

A :class:`Span` is one timed unit of work — a run, a stage
resolution, a pool task, a fit — with a monotonic-clock duration
(``time.perf_counter``), a CPU-seconds figure (``time.process_time``),
an epoch start timestamp for cross-process alignment, and free-form
attributes.  Spans nest: the :class:`Tracer` keeps a per-thread stack,
so a ``stage:fit`` span opened inside a ``window`` span records that
parent relation without any caller bookkeeping.

Completed spans accumulate in ``tracer.spans`` and are streamed as
JSON-lines by the run ledger.  Worker processes run their own tracer
and ship finished spans back with task results (see
:class:`~repro.obs.observer.ObserverDelta`); span ids embed the pid so
merged traces never collide.

No ``repro`` imports here — this module sits below everything.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One completed (or in-flight) timed unit of work."""

    name: str
    span_id: str
    parent_id: str | None = None
    start_time: float = 0.0  # epoch seconds (cross-process alignable)
    duration: float = 0.0  # monotonic (perf_counter) seconds
    cpu_seconds: float = 0.0  # process_time seconds
    status: str = "ok"  # "ok" | "error"
    attributes: dict[str, Any] = field(default_factory=dict)

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span; chainable inside ``with``."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_time=data.get("start_time", 0.0),
            duration=data.get("duration", 0.0),
            cpu_seconds=data.get("cpu_seconds", 0.0),
            status=data.get("status", "ok"),
            attributes=dict(data.get("attributes", {})),
        )


class _NoopSpan:
    """Attribute sink returned by a disabled tracer's ``span()``."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records nested spans on a per-thread stack.

    Thread-safe: each thread nests under its own current span, and the
    completed-span list is appended under a lock.  Span ids are
    ``<pid>-<counter>`` so spans merged from pool workers stay unique.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._local = threading.local()
        self.spans: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> str:
        return f"{os.getpid()}-{next(self._counter)}"

    def current_span_id(self) -> str | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span; it completes (and is recorded) on exit.

        An exception propagating out marks the span ``status="error"``
        with the exception type attached — the span is still recorded.
        """
        stack = self._stack()
        span = Span(
            name=name,
            span_id=self._next_id(),
            parent_id=stack[-1].span_id if stack else None,
            start_time=time.time(),
            attributes=dict(attributes),
        )
        stack.append(span)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attributes.setdefault("error", type(exc).__name__)
            raise
        finally:
            span.duration = time.perf_counter() - wall0
            span.cpu_seconds = time.process_time() - cpu0
            stack.pop()
            with self._lock:
                self.spans.append(span)

    # -- merging / delta shipping -----------------------------------------

    def absorb(self, spans: list[Span]) -> None:
        """Append spans completed elsewhere (a worker, another tracer)."""
        if spans:
            with self._lock:
                self.spans.extend(spans)

    def mark(self) -> int:
        """Position marker for :meth:`collect_since`."""
        with self._lock:
            return len(self.spans)

    def collect_since(self, mark: int) -> list[Span]:
        """Spans completed after ``mark`` (for worker delta shipping)."""
        with self._lock:
            return list(self.spans[mark:])

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """JSON-lines rendering of every completed span, oldest first."""
        import json

        with self._lock:
            spans = list(self.spans)
        return "".join(json.dumps(s.to_dict(), sort_keys=True) + "\n" for s in spans)

    def slowest(self, top: int = 10) -> list[Span]:
        with self._lock:
            return sorted(self.spans, key=lambda s: s.duration, reverse=True)[:top]
