"""Classical closed-population capture-recapture models (M0, Mt, Mb, Mh).

The log-linear framework of the paper generalises the classical closed-
population model family of Otis et al. / Chao [9, 21] (Rcapture's
``closedp``).  This module implements that family directly, both as
pedagogical baselines and for the ablation bench that contrasts them
with the paper's source-dependence-aware models:

* **M0** — every individual, every occasion, same capture probability
  ``p``: two parameters (N, p), fitted by ML on the capture-frequency
  counts.
* **Mt** — per-occasion (per-source) probabilities ``p_j``: equivalent
  to the independence log-linear model; fitted by the closed-form
  iterative scheme on the source margins.
* **Mb** — behavioural response: first capture changes the probability
  (trap-happy/shy).  Capture *order* is meaningless for our sources, so
  occasions are taken in catalog order; included for completeness.
* **Mh jackknife** — Burnham & Overton's heterogeneity estimator from
  capture frequencies (1st-5th order jackknife with the standard
  selection rule).

All consume the :class:`~repro.core.histories.ContingencyTable`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize
from scipy.special import gammaln

from repro.core.histories import ContingencyTable


@dataclass(frozen=True)
class ClosedModelEstimate:
    """Result of one classical closed-population model."""

    model: str
    population: float
    parameters: dict
    loglik: float

    @property
    def aic(self) -> float:
        return 2 * (len(self.parameters) + 1) - 2 * self.loglik


def _check(table: ContingencyTable) -> None:
    if table.num_observed == 0:
        raise ValueError("empty contingency table")


def fit_m0(table: ContingencyTable) -> ClosedModelEstimate:
    """M0: constant capture probability across individuals and sources.

    The likelihood depends on the data only through ``M`` (observed)
    and the total number of captures ``n.``; N is profiled numerically.
    """
    _check(table)
    t = table.num_sources
    M = table.num_observed
    freqs = table.capture_frequencies
    total_captures = int(sum(k * freqs[k] for k in range(1, t + 1)))

    def profile_negloglik(log_extra: float) -> float:
        N = M + np.exp(log_extra)
        p = total_captures / (N * t)
        if not 0 < p < 1:
            return np.inf
        # Binomial likelihood with N profiled continuously.
        ll = (
            gammaln(N + 1)
            - gammaln(N - M + 1)
            + total_captures * np.log(p)
            + (N * t - total_captures) * np.log1p(-p)
        )
        return -ll

    result = optimize.minimize_scalar(
        profile_negloglik, bounds=(-10.0, 25.0), method="bounded"
    )
    extra = float(np.exp(result.x))
    N = M + extra
    p = total_captures / (N * t)
    return ClosedModelEstimate(
        model="M0",
        population=N,
        parameters={"p": p},
        loglik=-float(result.fun),
    )


def fit_mt(table: ContingencyTable, max_iter: int = 500) -> ClosedModelEstimate:
    """Mt: per-source capture probabilities, individuals homogeneous.

    The ML equations give the classical fixed point
    ``N = M / (1 - prod_j (1 - n_j / N))``, iterated to convergence.
    This coincides with the independence log-linear model's estimate.
    """
    _check(table)
    t = table.num_sources
    M = table.num_observed
    margins = np.array([table.source_total(j) for j in range(t)], float)
    N = float(M) + 1.0
    for _ in range(max_iter):
        miss_prob = np.prod(1.0 - margins / N)
        N_new = M / (1.0 - miss_prob) if miss_prob < 1 else N
        if abs(N_new - N) < 1e-9 * N:
            N = N_new
            break
        N = N_new
    p = margins / N
    ll = _mt_loglik(N, M, margins, t)
    return ClosedModelEstimate(
        model="Mt",
        population=float(N),
        parameters={f"p{j + 1}": float(pj) for j, pj in enumerate(p)},
        loglik=ll,
    )


def _mt_loglik(N: float, M: int, margins: np.ndarray, t: int) -> float:
    p = np.clip(margins / N, 1e-12, 1 - 1e-12)
    ll = gammaln(N + 1) - gammaln(N - M + 1)
    ll += float(np.sum(margins * np.log(p) + (N - margins) * np.log1p(-p)))
    return float(ll)


def fit_mb(table: ContingencyTable) -> ClosedModelEstimate:
    """Mb: behavioural response to first capture.

    Uses the classical sufficient statistics: first captures per
    occasion (``u_j``) determine N and the pre-capture probability p;
    recaptures determine the post-capture probability c.  Occasion
    order follows source order, which is arbitrary for our data — the
    model is included as the family's completeness baseline.
    """
    _check(table)
    t = table.num_sources
    counts = table.counts
    # u_j: individuals whose first (lowest-index) capturing source is j.
    u = np.zeros(t, dtype=np.int64)
    recaptures = 0
    for s in range(1, 2**t):
        if counts[s] == 0:
            continue
        bits = [j for j in range(t) if (s >> j) & 1]
        u[bits[0]] += counts[s]
        recaptures += (len(bits) - 1) * int(counts[s])
    M_cum = np.concatenate([[0], np.cumsum(u)[:-1]])  # marked before j

    def profile_negloglik(log_extra: float) -> float:
        N = table.num_observed + np.exp(log_extra)
        unmarked_exposure = float(np.sum(N - M_cum))
        first_total = int(u.sum())
        p = first_total / unmarked_exposure
        if not 0 < p < 1:
            return np.inf
        ll = first_total * np.log(p) + (
            unmarked_exposure - first_total
        ) * np.log1p(-p)
        ll += gammaln(N + 1) - gammaln(N - table.num_observed + 1)
        return -ll

    result = optimize.minimize_scalar(
        profile_negloglik, bounds=(-10.0, 25.0), method="bounded"
    )
    marked_exposure = float(
        np.sum([int(u[: j].sum()) for j in range(1, t)])
    )
    c = recaptures / marked_exposure if marked_exposure > 0 else 0.0
    if result.x > 24.0:
        # The profile likelihood is monotone in N: first-capture rates
        # carry no signal about the population (capture "order" is
        # meaningless for these sources) and Mb is unidentifiable.
        return ClosedModelEstimate(
            model="Mb",
            population=float("inf"),
            parameters={"c": float(c), "degenerate": True},
            loglik=-float(result.fun),
        )
    N = table.num_observed + float(np.exp(result.x))
    return ClosedModelEstimate(
        model="Mb",
        population=N,
        parameters={"p": float(u.sum()) / max(N * t, 1.0), "c": float(c)},
        loglik=-float(result.fun),
    )


def fit_mh_jackknife(
    table: ContingencyTable, max_order: int = 5
) -> ClosedModelEstimate:
    """Mh: Burnham-Overton jackknife for heterogeneous populations.

    Builds the 1st..``max_order`` jackknife estimators from the capture
    frequencies and applies the standard sequential test to choose the
    order (falling back to the highest when all differ significantly).
    """
    _check(table)
    t = table.num_sources
    if t < 2:
        raise ValueError("jackknife needs at least two sources")
    M = table.num_observed
    f = table.capture_frequencies.astype(float)
    max_order = min(max_order, t - 1, 5)
    coefs = _jackknife_coefficients(t, max_order)
    estimates = [M + float(np.dot(c, f[1: len(c) + 1])) for c in coefs]
    # Sequential selection: stop at the first order whose increment is
    # small relative to its standard error (classic chi-square test,
    # approximated here by a 1.96-sigma rule on the difference).
    chosen = 0
    for k in range(len(estimates) - 1):
        diff = estimates[k + 1] - estimates[k]
        var = max(_jackknife_diff_var(coefs, f, k), 1e-12)
        if abs(diff) / np.sqrt(var) < 1.96:
            chosen = k
            break
        chosen = k + 1
    N = estimates[chosen]
    return ClosedModelEstimate(
        model=f"Mh-jk{chosen + 1}",
        population=float(N),
        parameters={"order": chosen + 1},
        loglik=float("nan"),
    )


def _jackknife_coefficients(t: int, max_order: int) -> list[np.ndarray]:
    """Burnham-Overton jackknife coefficients for f_1..f_k."""
    coefs: list[np.ndarray] = []
    # Order 1..5 closed forms (Burnham & Overton 1978/1979).
    c1 = np.array([(t - 1) / t])
    coefs.append(c1)
    if max_order >= 2:
        coefs.append(np.array([
            (2 * t - 3) / t,
            -((t - 2) ** 2) / (t * (t - 1)),
        ]))
    if max_order >= 3:
        coefs.append(np.array([
            (3 * t - 6) / t,
            -(3 * t**2 - 15 * t + 19) / (t * (t - 1)),
            ((t - 3) ** 3) / (t * (t - 1) * (t - 2)),
        ]))
    if max_order >= 4:
        coefs.append(np.array([
            (4 * t - 10) / t,
            -(6 * t**2 - 36 * t + 55) / (t * (t - 1)),
            (4 * t**3 - 42 * t**2 + 148 * t - 175) / (t * (t - 1) * (t - 2)),
            -((t - 4) ** 4) / (t * (t - 1) * (t - 2) * (t - 3)),
        ]))
    if max_order >= 5:
        coefs.append(np.array([
            (5 * t - 15) / t,
            -(10 * t**2 - 70 * t + 125) / (t * (t - 1)),
            (10 * t**3 - 120 * t**2 + 485 * t - 660) / (
                t * (t - 1) * (t - 2)
            ),
            -((t - 4) ** 5 - (t - 5) ** 5) / (t * (t - 1) * (t - 2) * (t - 3)),
            ((t - 5) ** 5) / (t * (t - 1) * (t - 2) * (t - 3) * (t - 4)),
        ]))
    return coefs[:max_order]


def _jackknife_diff_var(coefs, f, k) -> float:
    """Variance of N_{k+1} - N_k via the frequency covariances."""
    a = np.zeros(max(len(coefs[k]), len(coefs[k + 1])))
    a[: len(coefs[k + 1])] += coefs[k + 1]
    a[: len(coefs[k])] -= coefs[k]
    freqs = f[1: len(a) + 1]
    return float(np.sum(a**2 * freqs))


def fit_all_closed_models(table: ContingencyTable) -> list[ClosedModelEstimate]:
    """Fit the whole family (Rcapture's closedp-style sweep)."""
    return [
        fit_m0(table),
        fit_mt(table),
        fit_mb(table),
        fit_mh_jackknife(table),
    ]
