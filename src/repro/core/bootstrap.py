"""Bootstrap uncertainty for capture-recapture estimates.

The paper's profile-likelihood ranges are, by its own admission, a
heuristic (the sources are not random samples).  A complementary lens
is the nonparametric bootstrap over *individuals*: resample the
observed capture histories with replacement (a multinomial draw over
the contingency cells), refit the model, and read the spread of the
resulting populations.  This captures the sampling variability of the
cell counts themselves and gives standard errors the paper does not
report.

The bootstrap here conditions on the observed total ``M`` (the
standard conditional bootstrap for closed CR); model *structure* is
held fixed by default — pass ``reselect=True`` to rerun model selection
inside every replicate and fold structure uncertainty in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histories import ContingencyTable
from repro.core.loglinear import LoglinearModel
from repro.core.selection import select_model


@dataclass(frozen=True)
class BootstrapResult:
    """Bootstrap distribution summary for the population estimate."""

    point: float
    replicates: np.ndarray
    confidence: float

    @property
    def standard_error(self) -> float:
        return float(np.std(self.replicates, ddof=1))

    @property
    def interval(self) -> tuple[float, float]:
        """Percentile interval at the configured confidence."""
        alpha = 1.0 - self.confidence
        lo, hi = np.quantile(
            self.replicates, [alpha / 2.0, 1.0 - alpha / 2.0]
        )
        return float(lo), float(hi)

    def contains(self, value: float) -> bool:
        """Whether the percentile interval covers ``value``."""
        lo, hi = self.interval
        return lo <= value <= hi


def resample_table(
    table: ContingencyTable, rng: np.random.Generator
) -> ContingencyTable:
    """One bootstrap replicate: multinomial redraw of the cell counts."""
    counts = table.counts[1:]
    total = int(counts.sum())
    if total == 0:
        raise ValueError("cannot bootstrap an empty table")
    probs = counts / total
    redrawn = rng.multinomial(total, probs)
    new_counts = np.zeros_like(table.counts)
    new_counts[1:] = redrawn
    return ContingencyTable(table.num_sources, new_counts, table.source_names)


def bootstrap_population(
    table: ContingencyTable,
    terms: frozenset,
    num_replicates: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
    distribution: str = "poisson",
    limit: float | None = None,
    reselect: bool = False,
    criterion: str = "bic",
    divisor: int | str = "adaptive1000",
) -> BootstrapResult:
    """Bootstrap the population estimate under a fixed (or reselected)
    log-linear model.

    ``terms`` is the model fitted to the original table (ignored when
    ``reselect`` is set).  Replicates that fail to produce a finite
    estimate are redrawn once and then skipped, so heavy degeneracy
    surfaces as a shorter replicate vector rather than a crash.
    """
    if num_replicates < 2:
        raise ValueError("need at least two bootstrap replicates")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    model = LoglinearModel(table.num_sources, terms)
    point = model.fit(table, distribution=distribution, limit=limit)
    estimates: list[float] = []
    for _ in range(num_replicates):
        replicate = resample_table(table, rng)
        try:
            if reselect:
                fitted = select_model(
                    replicate,
                    criterion=criterion,
                    divisor=divisor,
                    distribution=distribution,
                    limit=limit,
                ).fit
            else:
                fitted = model.fit(
                    replicate, distribution=distribution, limit=limit
                )
            value = fitted.estimate().population
        except (ValueError, np.linalg.LinAlgError):
            continue
        if np.isfinite(value):
            estimates.append(value)
    if len(estimates) < 2:
        raise RuntimeError("bootstrap produced fewer than two valid replicates")
    return BootstrapResult(
        point=point.estimate().population,
        replicates=np.asarray(estimates),
        confidence=confidence,
    )
