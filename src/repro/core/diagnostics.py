"""Goodness-of-fit diagnostics for fitted log-linear models.

Model selection (Section 3.3.2) aims for "the least complex model with
adequate fit"; this module makes "adequate" inspectable: per-cell
Pearson and deviance residuals, the aggregate chi-square statistics
with their degrees of freedom, and a ranked list of the worst-fitting
capture histories (which, in practice, points at the source pair whose
dependence the model is missing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.loglinear import FittedLoglinear


@dataclass(frozen=True)
class CellResidual:
    """One capture history's observed/fitted discrepancy."""

    history: int
    observed: float
    fitted: float
    pearson: float

    def history_string(self, num_sources: int) -> str:
        """The history as the paper's bit string (source 1 first)."""
        return "".join(
            "1" if (self.history >> bit) & 1 else "0"
            for bit in range(num_sources)
        )


@dataclass(frozen=True)
class FitDiagnostics:
    """Aggregate goodness-of-fit summary for one fitted model."""

    pearson_chi2: float
    deviance: float
    dof: int
    residuals: tuple[CellResidual, ...]

    @property
    def pearson_pvalue(self) -> float:
        """Chi-square tail probability of the Pearson statistic.

        With the paper's caveat: the Poisson sampling assumption
        overstates the information in the data, so treat small
        p-values as a ranking device, not a test.
        """
        if self.dof <= 0:
            return float("nan")
        return float(stats.chi2.sf(self.pearson_chi2, self.dof))

    def worst_cells(self, count: int = 5) -> list[CellResidual]:
        """Cells with the largest absolute Pearson residuals."""
        ranked = sorted(self.residuals, key=lambda r: -abs(r.pearson))
        return ranked[:count]


def diagnose_fit(fit: FittedLoglinear) -> FitDiagnostics:
    """Residual diagnostics for a fitted log-linear model."""
    observed = fit.table.counts[1:].astype(np.float64)
    fitted = np.maximum(np.asarray(fit.fitted, dtype=np.float64), 1e-10)
    pearson = (observed - fitted) / np.sqrt(fitted)
    with np.errstate(divide="ignore", invalid="ignore"):
        dev_terms = np.where(
            observed > 0,
            observed * np.log(observed / fitted),
            0.0,
        )
    deviance = float(2.0 * np.sum(dev_terms - (observed - fitted)))
    residuals = tuple(
        CellResidual(
            history=history,
            observed=float(obs),
            fitted=float(expected),
            pearson=float(res),
        )
        for history, (obs, expected, res) in enumerate(
            zip(observed, fitted, pearson), start=1
        )
    )
    dof = len(observed) - fit.num_params
    return FitDiagnostics(
        pearson_chi2=float(np.sum(pearson**2)),
        deviance=deviance,
        dof=dof,
        residuals=residuals,
    )
