"""Log-linear model structure: terms, hierarchy, design matrices.

A log-linear model for ``t`` sources is determined by its set of
*terms*: non-empty subsets ``h`` of the sources whose parameter ``u_h``
is free (equation 1 of the paper).  The intercept ``u`` is always
included.  Models are *hierarchical*: whenever an interaction term is
present, all its non-empty subsets are too — the standard constraint
for interpretable log-linear models and the one Rcapture enforces.

Terms are represented as ``frozenset`` of source indices; a model's
terms as a frozenset of those.  The design matrix has one row per
capture history and one column per (intercept + term), with entry 1
when ``h ⊆ h(s)``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

import numpy as np

from repro.core import fitkernel

Term = frozenset
LoglinearTerms = frozenset  # a model: frozenset of Term


def main_effect_terms(num_sources: int) -> frozenset:
    """The independence model: one main-effect term per source."""
    return frozenset(frozenset([i]) for i in range(num_sources))


def pairwise_terms(num_sources: int) -> list[frozenset]:
    """All two-source interaction terms."""
    return [frozenset(pair) for pair in combinations(range(num_sources), 2)]


def interaction_terms(num_sources: int, order: int) -> list[frozenset]:
    """All interaction terms of exactly ``order`` sources."""
    if order < 1 or order > num_sources:
        raise ValueError(f"interaction order out of range: {order}")
    return [frozenset(combo) for combo in combinations(range(num_sources), order)]


def hierarchical_closure(terms: Iterable[frozenset]) -> frozenset:
    """Close a term set under non-empty subsets (hierarchy constraint)."""
    closed: set[frozenset] = set()
    for term in terms:
        term = frozenset(term)
        if not term:
            raise ValueError("empty term (the intercept is implicit)")
        for size in range(1, len(term) + 1):
            for sub in combinations(sorted(term), size):
                closed.add(frozenset(sub))
    return frozenset(closed)


def is_hierarchical(terms: Iterable[frozenset]) -> bool:
    """True if the term set equals its hierarchical closure."""
    terms = frozenset(frozenset(t) for t in terms)
    return terms == hierarchical_closure(terms)


def validate_terms(num_sources: int, terms: Iterable[frozenset]) -> frozenset:
    """Check term indices and hierarchy; returns the normalised frozenset."""
    normalised = frozenset(frozenset(t) for t in terms)
    for term in normalised:
        if not term:
            raise ValueError("empty term (the intercept is implicit)")
        if any(not 0 <= i < num_sources for i in term):
            raise ValueError(f"term {sorted(term)} references unknown source")
        if len(term) == num_sources:
            # Customary identifiability constraint: u_{12...t} = 0.
            raise ValueError(
                "the t-way interaction is fixed to zero and cannot be a term"
            )
    if not is_hierarchical(normalised):
        raise ValueError("terms are not hierarchical (missing subset terms)")
    return normalised


#: Memoised term orderings.  Sorting with the (size, sorted members) key
#: rebuilds per-term lists every call; stepwise selection re-orders the
#: same few dozen term sets hundreds of times per scan.
_TERM_ORDER_CACHE: dict[frozenset, tuple[frozenset, ...]] = {}
_TERM_ORDER_CACHE_MAX = 1024


def term_order(terms: Iterable[frozenset]) -> list[frozenset]:
    """Deterministic ordering of terms: by size, then lexicographically."""
    if isinstance(terms, frozenset):
        cached = _TERM_ORDER_CACHE.get(terms)
        if cached is None:
            cached = tuple(
                sorted(terms, key=lambda term: (len(term), sorted(term)))
            )
            if len(_TERM_ORDER_CACHE) >= _TERM_ORDER_CACHE_MAX:
                _TERM_ORDER_CACHE.clear()
            _TERM_ORDER_CACHE[terms] = cached
        return list(cached)
    return sorted(terms, key=lambda term: (len(term), sorted(term)))


#: Memoised design matrices keyed on (t, normalised terms, unobserved
#: row).  The build is pure, and selection/profile scans request the
#: same few matrices hundreds of times per campaign.  Bounded: see
#: _DESIGN_CACHE_MAX.
_DESIGN_CACHE: dict[tuple, tuple[np.ndarray, tuple[frozenset, ...]]] = {}
_DESIGN_CACHE_MAX = 512


def design_matrix(
    num_sources: int, terms: Iterable[frozenset], include_unobserved: bool = False
) -> tuple[np.ndarray, list[frozenset]]:
    """Design matrix of the log-linear model.

    One row per capture history ``1 .. 2^t - 1`` (in bitmask order);
    column 0 is the intercept, the remaining columns follow
    :func:`term_order`.  With ``include_unobserved`` a first row for
    history 0 (intercept only) is prepended — used when profiling the
    likelihood over the unseen count.

    Returns ``(matrix, ordered_terms)``.  The matrix is memoised and
    returned read-only (``writeable=False``); copy before mutating.

    Already-normalised term sets (a frozenset of frozensets — what every
    internal caller passes) hit the cache before validation runs: a
    cached entry proves the same term set validated on its first build.
    """
    if isinstance(terms, frozenset):
        key = (num_sources, terms, include_unobserved)
        cached = _DESIGN_CACHE.get(key)
        if cached is not None:
            fitkernel.record(design_cache_hits=1)
            return cached[0], list(cached[1])
    normalised = validate_terms(num_sources, terms)
    key = (num_sources, normalised, include_unobserved)
    cached = _DESIGN_CACHE.get(key)
    if cached is not None:
        fitkernel.record(design_cache_hits=1)
        return cached[0], list(cached[1])
    ordered = term_order(normalised)
    histories = np.arange(2**num_sources, dtype=np.uint32)
    if not include_unobserved:
        histories = histories[1:]
    columns = [np.ones(len(histories))]
    for term in ordered:
        mask = np.ones(len(histories), dtype=bool)
        for source in term:
            mask &= (histories >> np.uint32(source)) & np.uint32(1) == 1
        columns.append(mask.astype(float))
    matrix = np.column_stack(columns)
    matrix.setflags(write=False)
    if len(_DESIGN_CACHE) >= _DESIGN_CACHE_MAX:
        _DESIGN_CACHE.clear()
    _DESIGN_CACHE[key] = (matrix, tuple(ordered))
    fitkernel.record(design_cache_misses=1)
    return matrix, ordered


def map_coefficients(
    source_terms: Iterable[frozenset],
    source_coef: np.ndarray,
    target_terms: Iterable[frozenset],
) -> np.ndarray:
    """Map a fit's coefficients onto another model's column order.

    The warm-start bridge between nested models: the intercept and every
    shared term keep their fitted value, terms new to the target start
    at 0 (their column adds nothing until the first IRLS step moves it).
    """
    source_ordered = term_order(source_terms)
    source_coef = np.asarray(source_coef, dtype=np.float64)
    if source_coef.shape != (1 + len(source_ordered),):
        raise ValueError(
            f"coefficient vector of length {source_coef.size} does not match "
            f"{len(source_ordered)} terms plus intercept"
        )
    by_term = dict(zip(source_ordered, source_coef[1:]))
    target_ordered = term_order(target_terms)
    beta0 = np.zeros(1 + len(target_ordered))
    beta0[0] = source_coef[0]
    for column, term in enumerate(target_ordered, start=1):
        beta0[column] = by_term.get(term, 0.0)
    return beta0


def describe_terms(
    terms: Iterable[frozenset], source_names: tuple[str, ...] = ()
) -> str:
    """Human-readable rendering like ``"[1] [2] [1*2]"``."""

    def label(i: int) -> str:
        return source_names[i] if source_names else str(i + 1)

    parts = [
        "[" + "*".join(label(i) for i in sorted(term)) + "]"
        for term in term_order(terms)
    ]
    return " ".join(parts) if parts else "[intercept only]"
