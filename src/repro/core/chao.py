"""Chao's heterogeneity-robust lower-bound estimator.

The paper cites Chao's closed capture-recapture framework [9, 19] when
motivating log-linear models.  Chao's moment estimator

    N-hat = M + f1^2 / (2 f2)

(with a bias-corrected variant) uses only the number of individuals
captured exactly once (``f1``) and exactly twice (``f2``) across all
sources, and is a *lower bound* for the population under arbitrary
heterogeneity.  We ship it as a second baseline: on the simulator it
demonstrates why a bound is not enough (it stays well below truth when
many individuals are structurally hard to capture) while the LLM point
estimate tracks the truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histories import ContingencyTable


@dataclass(frozen=True)
class ChaoEstimate:
    """Chao lower-bound result with its large-sample variance."""

    population: float
    variance: float
    singletons: int
    doubletons: int
    observed: int
    bias_corrected: bool

    @property
    def unseen(self) -> float:
        return max(0.0, self.population - self.observed)

    @property
    def standard_error(self) -> float:
        return float(np.sqrt(max(self.variance, 0.0)))


def chao_estimate(
    table: ContingencyTable, bias_corrected: bool = True
) -> ChaoEstimate:
    """Chao's lower bound from a contingency table.

    ``bias_corrected`` selects the Chao (1989) small-sample form
    ``M + f1 (f1 - 1) / (2 (f2 + 1))``, which stays finite when no
    individual was captured exactly twice.
    """
    freqs = table.capture_frequencies
    observed = table.num_observed
    f1 = int(freqs[1]) if len(freqs) > 1 else 0
    f2 = int(freqs[2]) if len(freqs) > 2 else 0
    if bias_corrected:
        unseen = f1 * (f1 - 1) / (2 * (f2 + 1))
        variance = _corrected_variance(f1, f2)
    else:
        if f2 == 0:
            raise ZeroDivisionError(
                "no doubletons: use bias_corrected=True for a finite estimate"
            )
        unseen = f1 * f1 / (2 * f2)
        variance = _classic_variance(f1, f2)
    return ChaoEstimate(
        population=observed + unseen,
        variance=variance,
        singletons=f1,
        doubletons=f2,
        observed=observed,
        bias_corrected=bias_corrected,
    )


def _classic_variance(f1: int, f2: int) -> float:
    ratio = f1 / f2
    return f2 * (0.25 * ratio**4 + ratio**3 + 0.5 * ratio**2)


def _corrected_variance(f1: int, f2: int) -> float:
    # Chao (1989) variance for the bias-corrected form.
    a = f1 * (f1 - 1) / (2 * (f2 + 1))
    b = f1 * (2 * f1 - 1) ** 2 / (4 * (f2 + 1) ** 2)
    c = f1**2 * f2 * (f1 - 1) ** 2 / (4 * (f2 + 1) ** 4)
    return a + b + c
