"""Right-truncated Poisson distribution and GLM fitting.

The paper bounds each cell count by the size of the publicly routed
space and therefore models ``Z_s`` as Poisson *right-truncated* on
``[0, l]`` (Section 3.3.1): the pmf is the Poisson pmf renormalised by
``F(l; lambda)``.  Truncation matters for small strata whose counts sit
near the limit; for large ``l`` it reduces to the plain Poisson, which
the tests assert.

The GLM variant keeps the log link ``lambda_s = exp(x_s' u)`` and
maximises the truncated likelihood directly with L-BFGS, seeded by the
untruncated IRLS fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, stats
from scipy.special import gammaln

from repro.core import fitkernel
from repro.core.glm import fit_poisson


def truncated_logpmf(k: np.ndarray, rate: np.ndarray, limit: float) -> np.ndarray:
    """log pmf of the Poisson right-truncated at ``limit`` (inclusive)."""
    k = np.asarray(k, dtype=np.float64)
    rate = np.maximum(np.asarray(rate, dtype=np.float64), 1e-300)
    base = k * np.log(rate) - rate - gammaln(k + 1.0)
    log_norm = stats.poisson.logcdf(np.floor(limit), rate)
    out = base - log_norm
    return np.where(k > limit, -np.inf, out)


def truncated_loglik(
    counts: np.ndarray, rate: np.ndarray, limit: float
) -> float:
    """Log-likelihood of cell counts under the truncated Poisson."""
    return float(np.sum(truncated_logpmf(counts, rate, limit)))


def truncated_mean(rate: float | np.ndarray, limit: float) -> float | np.ndarray:
    """Mean of the right-truncated Poisson.

    ``E[Z | Z <= l] = lambda * F(l - 1; lambda) / F(l; lambda)``.
    """
    rate = np.asarray(rate, dtype=np.float64)
    limit = np.floor(limit)
    if np.any(limit < 0):
        raise ValueError("truncation limit must be non-negative")
    with np.errstate(over="ignore", invalid="ignore"):
        log_upper = stats.poisson.logcdf(limit - 1, rate)
        log_lower = stats.poisson.logcdf(limit, rate)
        ratio = np.exp(log_upper - log_lower)
    # When the rate dwarfs the limit both log-CDFs underflow; the
    # distribution then concentrates at the limit itself.
    degenerate = ~np.isfinite(log_lower) | ~np.isfinite(ratio)
    result = np.where(degenerate, limit, rate * np.where(degenerate, 0.0, ratio))
    result = np.minimum(result, limit)
    result = np.where(limit == 0, 0.0, result)
    return float(result) if result.ndim == 0 else result


@dataclass(frozen=True)
class TruncatedGlmFit:
    """A fitted right-truncated-Poisson GLM."""

    coef: np.ndarray
    fitted_rate: np.ndarray
    loglik: float
    limit: float
    converged: bool
    iterations: int = 0

    @property
    def num_params(self) -> int:
        return int(self.coef.size)

    @property
    def intercept(self) -> float:
        return float(self.coef[0])


def fit_truncated_poisson(
    design: np.ndarray,
    counts: np.ndarray,
    limit: float,
    max_iter: int = 500,
    beta0: np.ndarray | None = None,
) -> TruncatedGlmFit:
    """Maximum-likelihood truncated-Poisson GLM with log link.

    ``limit`` is the common inclusive upper bound ``l`` on every cell
    count (the routed-space size in the paper's usage).  The fit is
    seeded from ``beta0`` when given (skipping the seed IRLS fit
    entirely), otherwise from the plain Poisson IRLS solution; for
    ``limit`` far above all counts the two coincide to numerical
    precision.
    """
    X = np.asarray(design, dtype=np.float64)
    y = np.asarray(counts, dtype=np.float64)
    if np.any(y > limit):
        raise ValueError("a cell count exceeds the truncation limit")
    if fitkernel.usable_warm_start(beta0, X.shape[1]):
        start = np.asarray(beta0, dtype=np.float64)
        fitkernel.record(warm_start_hits=1)
    else:
        start = fit_poisson(X, y).coef

    def negative_loglik(beta: np.ndarray) -> tuple[float, np.ndarray]:
        eta = np.clip(X @ beta, -700.0, 700.0)
        lam = np.exp(eta)
        log_norm = stats.poisson.logcdf(np.floor(limit), lam)
        ll = float(np.sum(y * eta - lam - gammaln(y + 1.0) - log_norm))
        # d/d lambda log F(l; lambda) = -pmf(l; lambda) / F(l; lambda)
        log_pmf_at_limit = stats.poisson.logpmf(np.floor(limit), lam)
        hazard = np.exp(log_pmf_at_limit - log_norm)
        score_eta = y - lam + lam * hazard
        return -ll, -(X.T @ score_eta)

    result = optimize.minimize(
        negative_loglik,
        start,
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iter, "ftol": 1e-12, "gtol": 1e-10},
    )
    beta = result.x
    rate = np.exp(np.clip(X @ beta, -700.0, 700.0))
    return TruncatedGlmFit(
        coef=beta,
        fitted_rate=rate,
        loglik=truncated_loglik(y, rate, limit),
        limit=float(limit),
        converged=bool(result.success),
        iterations=int(result.nit),
    )
