"""The fit kernel: fast weighted solves and fit instrumentation.

Every GLM fit in this repo bottoms out in one numerical primitive —
solving the weighted least-squares normal equations of an IRLS step.
This module owns that primitive and the counters that make the fit
layer observable:

* :func:`weighted_least_squares` solves the normal equations with a
  Cholesky factorisation (O(n p^2 + p^3) instead of the O(n p^2) SVD
  with a much larger constant that ``np.linalg.lstsq`` pays), falling
  back to ``lstsq`` — the old behaviour, pseudo-inverse semantics and
  all — whenever the factorisation fails or produces a non-finite
  solution (rank-deficient or otherwise degenerate designs).
* :class:`BatchedIrlsSolver` runs the same solve over a stack of
  same-shape designs at once: one batched normal-equations build, one
  batched Cholesky of the ``(G, p, p)`` stack, and a per-member
  ``dposv``/``lstsq`` fallback for degenerate members only.  Stepwise
  selection and the profile scans group their candidate fits through
  it (see :func:`repro.core.glm.fit_poisson_batch`).
* :class:`FitCounters` and the module-level totals record fits, IRLS
  iterations run and saved, warm-start hits, memoisation hits, Cholesky
  fallbacks and design-matrix cache traffic.  The engine snapshots the
  totals around every stage execution and attaches the delta to the
  stage's record, so ``--report`` shows where the fit work went.

Counter semantics:

* ``fits`` / ``irls_iterations`` — IRLS fits executed and their total
  iteration count (truncated fits count their L-BFGS seed only when it
  actually runs).
* ``warm_start_hits`` — fits that started from caller-provided
  coefficients instead of the cold least-squares initialiser.
* ``warm_store_hits`` — final refits seeded from a persistent
  :class:`~repro.engine.store.FitMemoStore` entry written by an
  earlier run (see :func:`set_warm_store`).
* ``memo_hits`` / ``iterations_saved`` — fits avoided entirely because
  an identical ``(terms -> fit)`` was memoised; ``iterations_saved``
  accumulates the iteration count the memoised fit originally needed
  (the work a cold refit would have repeated).
* ``cholesky_fallbacks`` — weighted solves that fell back to ``lstsq``.
* ``design_cache_hits`` / ``design_cache_misses`` — design-matrix
  memoisation traffic (see :func:`repro.core.design.design_matrix`).

The totals are process-local; engine workers ship their deltas back to
the parent inside stage records, exactly like wall-time instrumentation.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, fields

import numpy as np
from scipy.linalg.lapack import dposv

from repro.obs.metrics import get_global_metrics


@dataclass(frozen=True)
class FitCounters:
    """Immutable bundle of fit-kernel counters (see module docstring)."""

    fits: int = 0
    irls_iterations: int = 0
    iterations_saved: int = 0
    warm_start_hits: int = 0
    warm_store_hits: int = 0
    memo_hits: int = 0
    cholesky_fallbacks: int = 0
    design_cache_hits: int = 0
    design_cache_misses: int = 0

    def __add__(self, other: "FitCounters") -> "FitCounters":
        return FitCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __sub__(self, other: "FitCounters") -> "FitCounters":
        return FitCounters(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __bool__(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for JSON reports."""
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}


#: Registry prefix under which the fit counters live in the process-global
#: :class:`~repro.obs.metrics.MetricsRegistry` (``fit_fits``,
#: ``fit_irls_iterations``, ...).
FIT_METRIC_PREFIX = "fit_"

_COUNTER_NAMES = tuple(f.name for f in fields(FitCounters))


def record(**deltas: int) -> None:
    """Add deltas to the process-wide totals (thread-safe).

    The totals live in the process-global metrics registry
    (:func:`repro.obs.metrics.get_global_metrics`) under the ``fit_``
    prefix; ``inc_many`` keeps the per-fit cost at one lock
    acquisition, matching the plain-dict accumulator it replaced.
    """
    get_global_metrics().inc_many(
        {FIT_METRIC_PREFIX + name: value for name, value in deltas.items()}
    )


def snapshot() -> FitCounters:
    """The current totals; subtract two snapshots to scope a region."""
    totals = get_global_metrics().counters_with_prefix(FIT_METRIC_PREFIX)
    prefix_len = len(FIT_METRIC_PREFIX)
    return FitCounters(
        **{
            name[prefix_len:]: int(value)
            for name, value in totals.items()
            if name[prefix_len:] in _COUNTER_NAMES
        }
    )


def reset_counters() -> None:
    """Zero the totals (tests and benchmarks)."""
    get_global_metrics().reset(FIT_METRIC_PREFIX)


def __getattr__(name: str):  # PEP 562: deprecated module attributes
    if name == "_TOTALS":
        warnings.warn(
            "fitkernel._TOTALS is deprecated; read counters via "
            "repro.obs.get_global_metrics() or fitkernel.snapshot()",
            DeprecationWarning,
            stacklevel=2,
        )
        return {name: getattr(snapshot(), name) for name in _COUNTER_NAMES}
    if name == "_LOCK":
        warnings.warn(
            "fitkernel._LOCK is deprecated; the metrics registry "
            "synchronises internally",
            DeprecationWarning,
            stacklevel=2,
        )
        return threading.Lock()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Cholesky pivot-ratio floor below which a solve is considered
#: degenerate (pivot ratio r implies cond(X'WX) >~ 1/r^2).
_PIVOT_RTOL = 1e-7


class IrlsSolver:
    """Weighted least-squares solves bound to one design matrix.

    One instance serves every IRLS step of one fit: the weighted design
    buffer is allocated once, and each :meth:`solve` is three BLAS
    calls plus one LAPACK ``dposv`` (Cholesky factor-and-solve of the
    normal equations) — the raw routine, because at contingency-table
    sizes (a few hundred cells, a few dozen parameters) wrapper
    overhead, not flops, dominates the fit.
    """

    __slots__ = ("_X", "_XT", "_XwT")

    def __init__(self, X: np.ndarray):
        self._X = X
        # The transposed copy makes both the weighting (a contiguous
        # row-major broadcast instead of a column-strided one) and the
        # gemv right-hand sides measurably cheaper at kernel sizes.
        self._XT = np.ascontiguousarray(X.T)
        self._XwT = np.empty_like(self._XT)

    @property
    def design_t(self) -> np.ndarray:
        """The contiguous transposed design (for caller-side gemvs)."""
        return self._XT

    def solve(self, weights: np.ndarray, target: np.ndarray) -> np.ndarray:
        """``argmin_b || sqrt(w) (X b - target) ||`` for this design.

        The fast path forms the weighted normal equations without ever
        taking square roots (``X' W X b = X' W target``) and factorises
        them with Cholesky; it falls back to ``np.linalg.lstsq`` on the
        sqrt-weighted design — the same pseudo-inverse solve the IRLS
        loop used before this kernel existed — whenever ``dposv``
        reports a non-positive-definite system or the factor's pivot
        ratio betrays near-singularity (rank-deficient or otherwise
        degenerate designs — float Cholesky can slip past an exactly
        collinear design on a tiny positive pivot; NaNs fail the pivot
        comparison too).  Fallbacks are counted in :class:`FitCounters`.
        """
        XT = self._XT
        XwT = self._XwT
        np.multiply(XT, weights, out=XwT)
        normal = XwT @ self._X
        rhs = XwT @ target
        factor, solution, info = dposv(normal, rhs, lower=1)
        if info == 0:
            pivots = factor.diagonal()
            if pivots.min() > _PIVOT_RTOL * pivots.max():
                return solution
        record(cholesky_fallbacks=1)
        w = np.sqrt(np.maximum(weights, 1e-12))
        solution, *_ = np.linalg.lstsq(
            self._X * w[:, None], target * w, rcond=None
        )
        return solution


def _superset_sums(table: np.ndarray, t: int) -> None:
    """In-place zeta transform over supersets, batched on axis 0.

    On return ``table[:, m] = sum_{h : h & m == m} table_in[:, h]`` for
    every ``t``-bit mask ``m``.  The bitwise sweep is a fixed summation
    order, so results are deterministic.
    """
    rows = table.shape[0]
    for bit in range(t):
        step = 1 << bit
        view = table.reshape(rows, -1, 2, step)
        view[:, :, 0, :] += view[:, :, 1, :]


def _subset_sums(table: np.ndarray, t: int) -> None:
    """In-place zeta transform over subsets, batched on axis 0: on
    return ``table[:, h] = sum_{m : m & h == m} table_in[:, m]``."""
    rows = table.shape[0]
    for bit in range(t):
        step = 1 << bit
        view = table.reshape(rows, -1, 2, step)
        view[:, :, 1, :] += view[:, :, 0, :]


class _LatticeStructure:
    """Subset-lattice view of a stack of log-linear indicator designs.

    When every column of every member is the superset indicator of a
    bitmask over ``t`` sources (exactly what :func:`design_matrix`
    builds, rows being capture histories in bitmask order), the normal
    equations collapse to table lookups into one superset-sum (zeta)
    transform of the weights:

    ``(X'WX)[j,k] = sum_{h >= mask_j | mask_k} w_h = Z(w)[mask_j | mask_k]``

    The transform costs ``t * 2**t`` adds per member instead of the
    ``n * p**2`` gemm, and the linear predictor is likewise a
    subset-sum of the coefficients scattered onto their masks — so IRLS
    never touches the dense design stack at all.
    """

    __slots__ = ("t", "offset", "masks", "union", "rowidx", "duplicates")

    def __init__(self, t, offset, masks, union):
        self.t = t
        self.offset = offset
        self.masks = masks
        self.union = union
        self.rowidx = np.arange(masks.shape[0])[:, None]
        # Distinct columns can share a mask only in degenerate designs
        # (duplicate columns); those need the accumulate-scatter.
        sorted_masks = np.sort(masks, axis=1)
        self.duplicates = bool(
            (sorted_masks[:, 1:] == sorted_masks[:, :-1]).any()
        )


def _lattice_shape(n: int) -> tuple[int, int] | None:
    """``(t, offset)`` when ``n`` rows cover a ``t``-bit history lattice
    (with or without the all-zero history), else ``None``."""
    if n >= 2 and n & (n + 1) == 0:  # n = 2**t - 1: histories 1 .. 2**t-1
        return (n + 1).bit_length() - 1, 1
    if n >= 2 and n & (n - 1) == 0:  # n = 2**t: history 0 included
        return n.bit_length() - 1, 0
    return None


def _lattice_from_masks(X: np.ndarray, masks) -> _LatticeStructure:
    """Build the lattice view from caller-supplied column masks.

    Trusted-caller fast path: skips the full structural scan of
    :func:`_detect_lattice`.  One column is still spot-checked against
    its indicator — that catches a misordered layout (the realistic
    caller bug) for ``O(n)`` instead of ``O(G n p)``.
    """
    G, n, p = X.shape
    masks = np.ascontiguousarray(masks, dtype=np.int64)
    if masks.shape != (G, p):
        raise ValueError(f"masks must be {(G, p)}, got {masks.shape}")
    shape = _lattice_shape(n)
    if shape is None:
        raise ValueError(f"{n} design rows do not cover a history lattice")
    t, offset = shape
    histories = np.arange(offset, offset + n, dtype=np.int64)
    mask = masks[0, p - 1]
    if not np.array_equal(
        (histories & mask) == mask, X[0, :, p - 1] != 0.0
    ):
        raise ValueError("masks do not describe the design stack")
    union = (masks[:, :, None] | masks[:, None, :]).reshape(G, p * p)
    return _LatticeStructure(t, offset, masks, union)


def _detect_lattice(X: np.ndarray) -> _LatticeStructure | None:
    """Exact structure check: ``X`` as a stack of history-indicator
    designs, or ``None`` (integer comparisons, no tolerance)."""
    G, n, p = X.shape
    shape = _lattice_shape(n)
    if shape is None or p > n:
        return None
    t, offset = shape
    if not ((X == 0.0) | (X == 1.0)).all():
        return None
    ones = X != 0.0
    histories = np.arange(offset, offset + n, dtype=np.int64)
    full = (1 << t) - 1
    # A column's mask is the AND of the histories it flags; the column
    # is lattice-structured iff it then equals that mask's indicator.
    selected = np.where(ones, histories[None, :, None], full)
    masks = np.bitwise_and.reduce(selected, axis=1)
    indicator = (histories[None, :, None] & masks[:, None, :]) == masks[:, None, :]
    if (indicator != ones).any():
        return None
    union = (masks[:, :, None] | masks[:, None, :]).reshape(G, p * p)
    return _LatticeStructure(t, offset, masks, union)


class BatchedIrlsSolver:
    """Weighted least-squares solves for a stack of same-shape designs.

    The batched analogue of :class:`IrlsSolver`: bound to a ``(G, n, p)``
    stack of designs, each :meth:`solve` forms every member's normal
    equations at once, factorises the ``(G, p, p)`` stack with one
    batched Cholesky, and back-substitutes with two batched
    triangular-system solves.  The normal equations build recognises
    the capture-history indicator structure of :func:`design_matrix`
    stacks (see :class:`_LatticeStructure`) and then costs one
    superset-sum transform of the weights per member; arbitrary designs
    fall back to two batched gemms.  Members whose factor fails
    (non-PD) or whose pivot ratio betrays near-singularity are
    re-solved one at a time through the exact :class:`IrlsSolver` path
    — ``dposv`` then the ``lstsq`` fallback — so degenerate members
    cost what they always did and healthy members share the batched
    flops.
    """

    __slots__ = ("_X", "_XT", "_lattice")

    def __init__(self, X: np.ndarray, masks=None):
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 3:
            raise ValueError(
                f"batched design stack must be (G, n, p), got shape {X.shape}"
            )
        self._X = np.ascontiguousarray(X)
        self._XT: np.ndarray | None = None
        # ``masks`` asserts the lattice structure (one int bitmask per
        # design column, per member) and skips the full detection scan.
        self._lattice = (
            _lattice_from_masks(self._X, masks)
            if masks is not None
            else _detect_lattice(self._X)
        )

    @property
    def num_members(self) -> int:
        return self._X.shape[0]

    @property
    def design_t(self) -> np.ndarray:
        """The contiguous ``(G, p, n)`` transposed stack (caller gemvs)."""
        if self._XT is None:
            self._XT = np.ascontiguousarray(self._X.transpose(0, 2, 1))
        return self._XT

    def linear_predictor(
        self, beta: np.ndarray, members: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-member ``eta_g = X_g beta_g`` for ``(A, p)`` coefficients."""
        lattice = self._lattice
        if lattice is None:
            XT = self.design_t
            if members is not None:
                XT = XT[members]
            return np.matmul(beta[:, None, :], XT)[:, 0, :]
        masks = lattice.masks if members is None else lattice.masks[members]
        table = np.zeros((beta.shape[0], 1 << lattice.t))
        rows = np.arange(beta.shape[0])[:, None] if members is not None else lattice.rowidx
        if lattice.duplicates:
            # Accumulate-scatter: a degenerate member may carry duplicate
            # columns, whose contributions must sum into one mask slot.
            np.add.at(table, (rows, masks), beta)
        else:
            table[rows, masks] = beta
        _subset_sums(table, lattice.t)
        return table[:, lattice.offset:]

    def solve(
        self,
        weights: np.ndarray,
        target: np.ndarray,
        members: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-member ``argmin_b || sqrt(w_g) (X_g b - target_g) ||``.

        ``weights`` and ``target`` are ``(A, n)`` where ``A`` is the
        number of active members — all of them, or the subset named by
        ``members`` (integer indices into the stack, e.g. the not-yet
        converged mask of an IRLS loop).  Returns ``(A, p)``.
        """
        p = self._X.shape[2]
        lattice = self._lattice
        if lattice is not None:
            size = 1 << lattice.t
            table = np.zeros((weights.shape[0], 2, size))
            table[:, 0, lattice.offset:] = weights
            table[:, 1, lattice.offset:] = weights * target
            _superset_sums(table.reshape(-1, size), lattice.t)
            union = lattice.union if members is None else lattice.union[members]
            masks = lattice.masks if members is None else lattice.masks[members]
            normal = np.take_along_axis(table[:, 0, :], union, axis=1)
            normal = normal.reshape(-1, p, p)
            rhs = np.take_along_axis(table[:, 1, :], masks, axis=1)
        else:
            X = self._X if members is None else self._X[members]
            XT = self.design_t
            XT = XT if members is None else XT[members]
            XwT = XT * weights[:, None, :]
            normal = XwT @ X
            rhs = np.matmul(XwT, target[..., None])[..., 0]
        try:
            factor = np.linalg.cholesky(normal)
            pivots = np.diagonal(factor, axis1=1, axis2=2)
            # NaN pivots compare False, routing poisoned members to the
            # per-member fallback exactly like the sequential kernel.
            healthy = pivots.min(axis=1) > _PIVOT_RTOL * pivots.max(axis=1)
            # The factorisation's job here is the health check; the
            # solve itself goes through one batched LU of the normal
            # matrix (numpy has no batched triangular solve — chaining
            # two ``solve`` calls on the factor would LU-factorise
            # twice for no accuracy gain on these tiny SPD systems).
            solution = np.linalg.solve(normal, rhs[..., None])[..., 0]
        except np.linalg.LinAlgError:
            healthy = np.zeros(weights.shape[0], dtype=bool)
            solution = np.empty((weights.shape[0], p))
        if not healthy.all():
            for a in np.nonzero(~healthy)[0]:
                g = int(a) if members is None else int(members[a])
                solution[a] = self._solve_one(
                    self._X[g], normal[a], rhs[a], weights[a], target[a]
                )
        return solution

    @staticmethod
    def _solve_one(X, normal, rhs, weights, target) -> np.ndarray:
        """Single-member retry: ``dposv`` with the ``lstsq`` fallback."""
        factor, solution, info = dposv(normal, rhs, lower=1)
        if info == 0:
            pivots = factor.diagonal()
            if pivots.min() > _PIVOT_RTOL * pivots.max():
                return solution
        record(cholesky_fallbacks=1)
        w = np.sqrt(np.maximum(weights, 1e-12))
        solution, *_ = np.linalg.lstsq(X * w[:, None], target * w, rcond=None)
        return solution


#: One-shot solver reuse: the memoised design matrices handed to
#: :func:`weighted_least_squares` are read-only and long-lived, so a
#: small id-keyed cache lets repeated one-shot solves against the same
#: design skip re-allocating the contiguous transpose copy.  Each cached
#: solver holds a reference to its design, which pins the id for the
#: cache's lifetime (no recycled-id aliasing).
_ONE_SHOT_SOLVERS: dict[int, IrlsSolver] = {}
_ONE_SHOT_SOLVERS_MAX = 64


def weighted_least_squares(
    X: np.ndarray, weights: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """One-shot :meth:`IrlsSolver.solve` (see there for semantics)."""
    X = np.asarray(X, dtype=np.float64)
    solver = None
    if X.ndim == 2 and not X.flags.writeable:
        key = id(X)
        solver = _ONE_SHOT_SOLVERS.get(key)
        if solver is None or solver._X is not X:
            if len(_ONE_SHOT_SOLVERS) >= _ONE_SHOT_SOLVERS_MAX:
                _ONE_SHOT_SOLVERS.clear()
            solver = IrlsSolver(X)
            _ONE_SHOT_SOLVERS[key] = solver
    if solver is None:
        solver = IrlsSolver(X)
    return solver.solve(
        np.asarray(weights, dtype=np.float64),
        np.asarray(target, dtype=np.float64),
    )


#: Process-wide batched-fit routing default.  The Executor *always* sets
#: this from ``PipelineOptions.batch_fits`` (including in pool workers,
#: which rebuild an Executor from the shipped options), so stepwise
#: selection and the profile scans pick the batched kernel without the
#: call sites threading a flag through every layer.  Callers can still
#: force either path per call via their ``batch=`` parameter.
_BATCH_FITS = True


def set_batch_fits(enabled: bool) -> None:
    """Set the process-wide batched-fit routing default."""
    global _BATCH_FITS
    _BATCH_FITS = bool(enabled)


def batch_fits_enabled() -> bool:
    """The process-wide batched-fit routing default."""
    return _BATCH_FITS


#: Process-wide persistent warm-start store (a
#: :class:`repro.engine.store.FitMemoStore`, duck typed — the core
#: layer must not import the engine).  The Executor installs its
#: store's fit-memo tier here and *always* sets it — including to
#: ``None`` for store-less executors — so no run inherits a stale
#: store from a previous Executor in the same process.
_WARM_STORE = None


def set_warm_store(store) -> None:
    """Install (or clear, with ``None``) the persistent warm-start store."""
    global _WARM_STORE
    _WARM_STORE = store


def get_warm_store():
    """The installed persistent warm-start store, or ``None``."""
    return _WARM_STORE


def usable_warm_start(beta0: np.ndarray | None, num_params: int) -> bool:
    """Whether ``beta0`` can seed a fit with ``num_params`` columns.

    Rejects a wrong-length or non-finite vector quietly (callers fall
    back to the cold initialiser) but raises on a non-1-D array: a
    ``(1, p)`` row vector is a caller bug that a silent ``False`` would
    bury as a mysteriously cold fit.
    """
    if beta0 is None:
        return False
    beta0 = np.asarray(beta0)
    if beta0.ndim != 1:
        raise ValueError(
            "warm-start coefficients must be a 1-D vector, got shape "
            f"{beta0.shape}; ravel a (1, p) row vector before seeding"
        )
    return beta0.shape == (num_params,) and bool(np.all(np.isfinite(beta0)))
