"""The fit kernel: fast weighted solves and fit instrumentation.

Every GLM fit in this repo bottoms out in one numerical primitive —
solving the weighted least-squares normal equations of an IRLS step.
This module owns that primitive and the counters that make the fit
layer observable:

* :func:`weighted_least_squares` solves the normal equations with a
  Cholesky factorisation (O(n p^2 + p^3) instead of the O(n p^2) SVD
  with a much larger constant that ``np.linalg.lstsq`` pays), falling
  back to ``lstsq`` — the old behaviour, pseudo-inverse semantics and
  all — whenever the factorisation fails or produces a non-finite
  solution (rank-deficient or otherwise degenerate designs).
* :class:`FitCounters` and the module-level totals record fits, IRLS
  iterations run and saved, warm-start hits, memoisation hits, Cholesky
  fallbacks and design-matrix cache traffic.  The engine snapshots the
  totals around every stage execution and attaches the delta to the
  stage's record, so ``--report`` shows where the fit work went.

Counter semantics:

* ``fits`` / ``irls_iterations`` — IRLS fits executed and their total
  iteration count (truncated fits count their L-BFGS seed only when it
  actually runs).
* ``warm_start_hits`` — fits that started from caller-provided
  coefficients instead of the cold least-squares initialiser.
* ``warm_store_hits`` — final refits seeded from a persistent
  :class:`~repro.engine.store.FitMemoStore` entry written by an
  earlier run (see :func:`set_warm_store`).
* ``memo_hits`` / ``iterations_saved`` — fits avoided entirely because
  an identical ``(terms -> fit)`` was memoised; ``iterations_saved``
  accumulates the iteration count the memoised fit originally needed
  (the work a cold refit would have repeated).
* ``cholesky_fallbacks`` — weighted solves that fell back to ``lstsq``.
* ``design_cache_hits`` / ``design_cache_misses`` — design-matrix
  memoisation traffic (see :func:`repro.core.design.design_matrix`).

The totals are process-local; engine workers ship their deltas back to
the parent inside stage records, exactly like wall-time instrumentation.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, fields

import numpy as np
from scipy.linalg.lapack import dposv

from repro.obs.metrics import get_global_metrics


@dataclass(frozen=True)
class FitCounters:
    """Immutable bundle of fit-kernel counters (see module docstring)."""

    fits: int = 0
    irls_iterations: int = 0
    iterations_saved: int = 0
    warm_start_hits: int = 0
    warm_store_hits: int = 0
    memo_hits: int = 0
    cholesky_fallbacks: int = 0
    design_cache_hits: int = 0
    design_cache_misses: int = 0

    def __add__(self, other: "FitCounters") -> "FitCounters":
        return FitCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __sub__(self, other: "FitCounters") -> "FitCounters":
        return FitCounters(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __bool__(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for JSON reports."""
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}


#: Registry prefix under which the fit counters live in the process-global
#: :class:`~repro.obs.metrics.MetricsRegistry` (``fit_fits``,
#: ``fit_irls_iterations``, ...).
FIT_METRIC_PREFIX = "fit_"

_COUNTER_NAMES = tuple(f.name for f in fields(FitCounters))


def record(**deltas: int) -> None:
    """Add deltas to the process-wide totals (thread-safe).

    The totals live in the process-global metrics registry
    (:func:`repro.obs.metrics.get_global_metrics`) under the ``fit_``
    prefix; ``inc_many`` keeps the per-fit cost at one lock
    acquisition, matching the plain-dict accumulator it replaced.
    """
    get_global_metrics().inc_many(
        {FIT_METRIC_PREFIX + name: value for name, value in deltas.items()}
    )


def snapshot() -> FitCounters:
    """The current totals; subtract two snapshots to scope a region."""
    totals = get_global_metrics().counters_with_prefix(FIT_METRIC_PREFIX)
    prefix_len = len(FIT_METRIC_PREFIX)
    return FitCounters(
        **{
            name[prefix_len:]: int(value)
            for name, value in totals.items()
            if name[prefix_len:] in _COUNTER_NAMES
        }
    )


def reset_counters() -> None:
    """Zero the totals (tests and benchmarks)."""
    get_global_metrics().reset(FIT_METRIC_PREFIX)


def __getattr__(name: str):  # PEP 562: deprecated module attributes
    if name == "_TOTALS":
        warnings.warn(
            "fitkernel._TOTALS is deprecated; read counters via "
            "repro.obs.get_global_metrics() or fitkernel.snapshot()",
            DeprecationWarning,
            stacklevel=2,
        )
        return {name: getattr(snapshot(), name) for name in _COUNTER_NAMES}
    if name == "_LOCK":
        warnings.warn(
            "fitkernel._LOCK is deprecated; the metrics registry "
            "synchronises internally",
            DeprecationWarning,
            stacklevel=2,
        )
        return threading.Lock()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Cholesky pivot-ratio floor below which a solve is considered
#: degenerate (pivot ratio r implies cond(X'WX) >~ 1/r^2).
_PIVOT_RTOL = 1e-7


class IrlsSolver:
    """Weighted least-squares solves bound to one design matrix.

    One instance serves every IRLS step of one fit: the weighted design
    buffer is allocated once, and each :meth:`solve` is three BLAS
    calls plus one LAPACK ``dposv`` (Cholesky factor-and-solve of the
    normal equations) — the raw routine, because at contingency-table
    sizes (a few hundred cells, a few dozen parameters) wrapper
    overhead, not flops, dominates the fit.
    """

    __slots__ = ("_X", "_XT", "_XwT")

    def __init__(self, X: np.ndarray):
        self._X = X
        # The transposed copy makes both the weighting (a contiguous
        # row-major broadcast instead of a column-strided one) and the
        # gemv right-hand sides measurably cheaper at kernel sizes.
        self._XT = np.ascontiguousarray(X.T)
        self._XwT = np.empty_like(self._XT)

    @property
    def design_t(self) -> np.ndarray:
        """The contiguous transposed design (for caller-side gemvs)."""
        return self._XT

    def solve(self, weights: np.ndarray, target: np.ndarray) -> np.ndarray:
        """``argmin_b || sqrt(w) (X b - target) ||`` for this design.

        The fast path forms the weighted normal equations without ever
        taking square roots (``X' W X b = X' W target``) and factorises
        them with Cholesky; it falls back to ``np.linalg.lstsq`` on the
        sqrt-weighted design — the same pseudo-inverse solve the IRLS
        loop used before this kernel existed — whenever ``dposv``
        reports a non-positive-definite system or the factor's pivot
        ratio betrays near-singularity (rank-deficient or otherwise
        degenerate designs — float Cholesky can slip past an exactly
        collinear design on a tiny positive pivot; NaNs fail the pivot
        comparison too).  Fallbacks are counted in :class:`FitCounters`.
        """
        XT = self._XT
        XwT = self._XwT
        np.multiply(XT, weights, out=XwT)
        normal = XwT @ self._X
        rhs = XwT @ target
        factor, solution, info = dposv(normal, rhs, lower=1)
        if info == 0:
            pivots = factor.diagonal()
            if pivots.min() > _PIVOT_RTOL * pivots.max():
                return solution
        record(cholesky_fallbacks=1)
        w = np.sqrt(np.maximum(weights, 1e-12))
        solution, *_ = np.linalg.lstsq(
            self._X * w[:, None], target * w, rcond=None
        )
        return solution


def weighted_least_squares(
    X: np.ndarray, weights: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """One-shot :meth:`IrlsSolver.solve` (see there for semantics)."""
    return IrlsSolver(np.asarray(X, dtype=np.float64)).solve(
        np.asarray(weights, dtype=np.float64),
        np.asarray(target, dtype=np.float64),
    )


#: Process-wide persistent warm-start store (a
#: :class:`repro.engine.store.FitMemoStore`, duck typed — the core
#: layer must not import the engine).  The Executor installs its
#: store's fit-memo tier here and *always* sets it — including to
#: ``None`` for store-less executors — so no run inherits a stale
#: store from a previous Executor in the same process.
_WARM_STORE = None


def set_warm_store(store) -> None:
    """Install (or clear, with ``None``) the persistent warm-start store."""
    global _WARM_STORE
    _WARM_STORE = store


def get_warm_store():
    """The installed persistent warm-start store, or ``None``."""
    return _WARM_STORE


def usable_warm_start(beta0: np.ndarray | None, num_params: int) -> bool:
    """Whether ``beta0`` can seed a fit with ``num_params`` columns."""
    if beta0 is None:
        return False
    beta0 = np.asarray(beta0)
    return beta0.shape == (num_params,) and bool(np.all(np.isfinite(beta0)))
