"""High-level capture-recapture facade.

:class:`CaptureRecapture` is the public entry point most users want:
hand it named address sets (one per measurement source) and ask for the
population estimate, the heuristic profile range, or a stratified
breakdown.  All the paper's knobs — information criterion, count
divisor, truncation — live on :class:`EstimatorOptions` with the
paper's final choices as defaults (BIC, adaptive divisor with maximum
1000, truncated Poisson when a limit is known).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro._aliases import resolve_deprecated_aliases, warn_legacy_entry_point
from repro.core.histories import ContingencyTable, tabulate_histories
from repro.core.loglinear import PopulationEstimate
from repro.core.profile_ci import (
    DEFAULT_ALPHA,
    ProfileInterval,
    profile_likelihood_interval,
)
from repro.core.selection import ModelSelection, select_model
from repro.core.stratified import Labeler, StratifiedEstimate, stratified_estimate
from repro.ipspace.ipset import IPSet


#: Deprecated EstimatorOptions keyword spellings -> canonical names.
_OPTION_ALIASES = {
    "min_observed": "min_stratum_observed",
    "truncation_limit": "limit",
}

_UNSET = object()


@dataclass(frozen=True, init=False)
class EstimatorOptions:
    """Configuration for :class:`CaptureRecapture`.

    Defaults follow the paper's Section 5.1 conclusion: adaptive
    divisor capped at 1000, BIC, and the right-truncated Poisson
    whenever a ``limit`` (routed-space size) is supplied.

    Deprecated keyword aliases (``min_observed``, ``truncation_limit``)
    are accepted with a :class:`DeprecationWarning` and resolve to
    their canonical fields.
    """

    criterion: str = "bic"
    divisor: int | str = "adaptive1000"
    max_order: int = 2
    distribution: str = "auto"
    limit: float | None = None
    min_stratum_observed: int = 1000

    def __init__(
        self,
        criterion: str = _UNSET,  # type: ignore[assignment]
        divisor: int | str = _UNSET,  # type: ignore[assignment]
        max_order: int = _UNSET,  # type: ignore[assignment]
        distribution: str = _UNSET,  # type: ignore[assignment]
        limit: float | None = _UNSET,  # type: ignore[assignment]
        min_stratum_observed: int = _UNSET,  # type: ignore[assignment]
        **deprecated,
    ) -> None:
        defaults = {
            "criterion": "bic",
            "divisor": "adaptive1000",
            "max_order": 2,
            "distribution": "auto",
            "limit": None,
            "min_stratum_observed": 1000,
        }
        explicit = {
            name: value
            for name, value in (
                ("criterion", criterion),
                ("divisor", divisor),
                ("max_order", max_order),
                ("distribution", distribution),
                ("limit", limit),
                ("min_stratum_observed", min_stratum_observed),
            )
            if value is not _UNSET
        }
        for name, value in resolve_deprecated_aliases(
            "EstimatorOptions", deprecated, _OPTION_ALIASES
        ).items():
            if name in explicit:
                raise TypeError(
                    f"EstimatorOptions() got both {name!r} and its deprecated alias"
                )
            explicit[name] = value
        for name, default in defaults.items():
            object.__setattr__(self, name, explicit.get(name, default))

    def resolved_distribution(self) -> str:
        """The effective likelihood: truncated when a limit is known."""
        if self.distribution != "auto":
            return self.distribution
        return "truncated" if self.limit is not None else "poisson"


class CaptureRecapture:
    """Estimate a population from several incomplete address sources."""

    def __init__(
        self,
        sources: Mapping[str, IPSet],
        options: EstimatorOptions | None = None,
    ) -> None:
        warn_legacy_entry_point("CaptureRecapture", "repro.Session.from_sets")
        if len(sources) < 2:
            raise ValueError("capture-recapture needs at least two sources")
        self.sources = dict(sources)
        self.options = options or EstimatorOptions()
        self._table: ContingencyTable | None = None
        self._selection: ModelSelection | None = None

    # -- data views -----------------------------------------------------

    @property
    def source_names(self) -> tuple[str, ...]:
        return tuple(self.sources)

    def observed_union(self) -> IPSet:
        """All individuals observed by any source."""
        sets = list(self.sources.values())
        return sets[0].union(*sets[1:])

    @property
    def num_observed(self) -> int:
        return len(self.observed_union())

    def table(self) -> ContingencyTable:
        """The (cached) contingency table over all sources."""
        if self._table is None:
            self._table = tabulate_histories(self.sources)
        return self._table

    # -- estimation ---------------------------------------------------------

    def selection(self) -> ModelSelection:
        """The (cached) model selection on the full table."""
        if self._selection is None:
            opts = self.options
            self._selection = select_model(
                self.table(),
                criterion=opts.criterion,
                divisor=opts.divisor,
                max_order=opts.max_order,
                distribution=opts.resolved_distribution(),
                limit=opts.limit,
            )
        return self._selection

    def estimate(self) -> PopulationEstimate:
        """Point estimate of the total population (observed + ghosts)."""
        return self.selection().fit.estimate()

    def profile_interval(self, alpha: float = DEFAULT_ALPHA) -> ProfileInterval:
        """Heuristic profile-likelihood range for the population size."""
        selection = self.selection()
        return profile_likelihood_interval(
            self.table(), selection.fit.terms, alpha=alpha
        )

    def diagnostics(self):
        """Goodness-of-fit residuals for the selected model."""
        from repro.core.diagnostics import diagnose_fit

        return diagnose_fit(self.selection().fit)

    def bootstrap(self, num_replicates: int = 200, confidence: float = 0.95,
                  seed: int = 0):
        """Bootstrap standard errors under the selected model."""
        from repro.core.bootstrap import bootstrap_population

        selection = self.selection()
        opts = self.options
        return bootstrap_population(
            self.table(),
            selection.fit.terms,
            num_replicates=num_replicates,
            confidence=confidence,
            seed=seed,
            distribution=opts.resolved_distribution(),
            limit=opts.limit,
        )

    def estimate_stratified(
        self,
        labeler: Labeler,
        limit_per_stratum=None,
        min_observed: int | None = None,
    ) -> StratifiedEstimate:
        """Per-stratum estimation summed to a total (Section 3.4)."""
        opts = self.options
        return stratified_estimate(
            self.sources,
            labeler,
            min_observed=(
                opts.min_stratum_observed if min_observed is None else min_observed
            ),
            criterion=opts.criterion,
            divisor=opts.divisor,
            distribution=opts.resolved_distribution(),
            limit_per_stratum=limit_per_stratum,
            max_order=opts.max_order,
        )

    def with_options(self, **changes) -> "CaptureRecapture":
        """A copy of this estimator with modified options."""
        return CaptureRecapture(self.sources, replace(self.options, **changes))

    def subnets24(self) -> "CaptureRecapture":
        """The /24-level estimator: every source projected to /24s."""
        projected = {name: s.subnets24() for name, s in self.sources.items()}
        opts = self.options
        if opts.limit is not None:
            opts = replace(opts, limit=max(1.0, opts.limit / 256.0))
        return CaptureRecapture(projected, opts)
