"""Privacy-preserving multi-source capture-recapture.

The paper's stated future work [33] is "securely applying CR to
multi-source measurement data without revealing which IPv4 addresses
each source contains".  This module implements the standard
keyed-hash-exchange construction: every party maps its addresses
through a shared-key pseudorandom function (HMAC-SHA-256 here) and
publishes only the digests; the coordinator tabulates capture histories
over digests.  Because the PRF is deterministic under the shared key,
digest equality is address equality — so the contingency table (and
therefore every CR estimate) is *exactly* the one plaintext data would
give — while a coordinator without the key cannot invert digests beyond
brute-forcing the 2^32 space (mitigated by using a high-entropy key and
discarding it afterwards; full PSI-style protocols are out of scope,
this is the paper's pragmatic proposal).
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.histories import ContingencyTable
from repro.ipspace.ipset import IPSet

#: Digest truncation: 16 bytes keeps collisions negligible for any
#: plausible dataset (birthday bound ~2^64) while halving exchange size.
DIGEST_BYTES = 16


def generate_session_key() -> bytes:
    """A fresh high-entropy shared key for one CR session."""
    return secrets.token_bytes(32)


def blind_addresses(addrs: np.ndarray, key: bytes) -> np.ndarray:
    """Map addresses to keyed digests (sorted bytes array, deduplicated).

    The output reveals only the dataset's cardinality; ordering is by
    digest, which is unrelated to address order under a PRF.
    """
    if not key:
        raise ValueError("a non-empty session key is required")
    digests = {
        hmac.new(key, int(a).to_bytes(4, "big"), hashlib.sha256).digest()[
            :DIGEST_BYTES
        ]
        for a in np.asarray(addrs, dtype=np.uint32)
    }
    out = np.frombuffer(
        b"".join(sorted(digests)), dtype=(np.void, DIGEST_BYTES)
    )
    return out.copy()


@dataclass(frozen=True)
class BlindedSource:
    """One party's contribution: a name and its blinded dataset."""

    name: str
    digests: np.ndarray

    def __len__(self) -> int:
        return int(self.digests.size)


def blind_source(name: str, dataset: IPSet, key: bytes) -> BlindedSource:
    """What a party publishes to the coordinator."""
    return BlindedSource(name=name, digests=blind_addresses(
        dataset.addresses, key
    ))


def tabulate_blinded(sources: Sequence[BlindedSource]) -> ContingencyTable:
    """Contingency table over digests — no addresses ever touched.

    Identical to :func:`repro.core.histories.tabulate_histories` on the
    plaintext data (up to digest collisions, which are negligible).
    """
    if not sources:
        raise ValueError("at least one blinded source required")
    union = np.unique(np.concatenate([s.digests for s in sources]))
    masks = np.zeros(union.shape, dtype=np.uint32)
    for bit, source in enumerate(sources):
        idx = np.searchsorted(union, source.digests)
        masks[idx] |= np.uint32(1 << bit)
    counts = np.bincount(masks, minlength=2 ** len(sources)).astype(np.int64)
    counts[0] = 0
    return ContingencyTable(
        len(sources), counts, tuple(s.name for s in sources)
    )


def private_contingency_table(
    datasets: Mapping[str, IPSet], key: bytes | None = None
) -> ContingencyTable:
    """End-to-end helper: blind every dataset, tabulate, forget the key.

    Convenience wrapper for tests and examples; in a real deployment
    each party runs :func:`blind_source` locally and only digests cross
    the trust boundary.
    """
    key = key or generate_session_key()
    blinded = [
        blind_source(name, dataset, key) for name, dataset in datasets.items()
    ]
    return tabulate_blinded(blinded)
