"""Stratified capture-recapture estimation (the paper's Section 3.4).

The population is split by a *labeler* — a vectorised function mapping
address arrays to stratum labels (RIR, country, prefix size, allocation
age, industry, static/dynamic) — each stratum gets its own model
selection and fit, and the per-stratum estimates are summed.  Strata
with fewer than ``min_observed`` observed individuals across all
sources are excluded from estimation (Section 3.3.4's sampling-zeros
guard); their observed individuals still count toward the total so the
sum stays comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

import numpy as np

from repro.core import fitkernel
from repro.core.histories import tabulate_histories
from repro.core.loglinear import PopulationEstimate
from repro.core.selection import select_model, select_models_batched
from repro.ipspace.ipset import IPSet

#: A labeler maps a uint32 address array to an equally long label array.
Labeler = Callable[[np.ndarray], np.ndarray]


def split_sources_by_label(
    sources: Mapping[str, IPSet], labeler: Labeler
) -> dict[Hashable, dict[str, IPSet]]:
    """Split every source by stratum label.

    Returns ``{label: {source_name: IPSet-of-that-stratum}}``; every
    stratum keeps an entry (possibly empty) for every source, so
    per-stratum tables retain the full source dimension.
    """
    per_label: dict[Hashable, dict[str, IPSet]] = {}
    for name, ipset in sources.items():
        addrs = ipset.addresses
        labels = np.asarray(labeler(addrs))
        if labels.shape != addrs.shape:
            raise ValueError("labeler output does not align with addresses")
        for label in np.unique(labels):
            key = label.item() if hasattr(label, "item") else label
            subset = IPSet.from_sorted_unique(addrs[labels == label])
            per_label.setdefault(key, {})[name] = subset
    empty = IPSet.empty()
    for label, split in per_label.items():
        for name in sources:
            split.setdefault(name, empty)
        per_label[label] = {name: split[name] for name in sources}
    return per_label


@dataclass(frozen=True)
class StratumResult:
    """Estimate (or exclusion record) for a single stratum."""

    label: Hashable
    observed: int
    estimate: PopulationEstimate | None
    excluded: bool

    @property
    def population(self) -> float:
        """Estimated total, falling back to observed for excluded strata."""
        if self.estimate is None:
            return float(self.observed)
        return self.estimate.population


@dataclass
class StratifiedEstimate:
    """Summed per-stratum capture-recapture estimate."""

    strata: dict[Hashable, StratumResult] = field(default_factory=dict)

    @property
    def population(self) -> float:
        return float(sum(s.population for s in self.strata.values()))

    @property
    def observed(self) -> int:
        return int(sum(s.observed for s in self.strata.values()))

    @property
    def unseen(self) -> float:
        return self.population - self.observed

    @property
    def num_excluded(self) -> int:
        return sum(1 for s in self.strata.values() if s.excluded)

    def stratum_population(self, label: Hashable) -> float:
        """Estimated population of one stratum."""
        return self.strata[label].population


def _estimate_one_stratum(
    label: Hashable,
    split: Mapping[str, IPSet],
    min_observed: int,
    criterion: str,
    divisor: int | str,
    distribution: str,
    limit: float | None,
    max_order: int,
) -> StratumResult:
    """Model-select and fit one stratum (or record its exclusion)."""
    observed = len(IPSet.empty().union(*split.values()))
    if observed < min_observed:
        return StratumResult(
            label=label, observed=observed, estimate=None, excluded=True
        )
    table = tabulate_histories(split)
    selection = select_model(
        table,
        criterion=criterion,
        divisor=divisor,
        distribution=distribution,
        limit=limit,
        max_order=max_order,
    )
    return StratumResult(
        label=label,
        observed=observed,
        estimate=selection.fit.estimate(),
        excluded=False,
    )


def stratified_estimate(
    sources: Mapping[str, IPSet],
    labeler: Labeler,
    min_observed: int = 1000,
    criterion: str = "bic",
    divisor: int | str = "adaptive1000",
    distribution: str = "poisson",
    limit_per_stratum: Callable[[Hashable], float] | None = None,
    max_order: int = 2,
    max_workers: int = 1,
    batch: bool | None = None,
) -> StratifiedEstimate:
    """Estimate the population stratum by stratum and sum.

    ``limit_per_stratum`` supplies the truncation bound per stratum
    (e.g. its routed-space size) when ``distribution="truncated"``.
    With ``max_workers > 1`` the independent per-stratum fits run on a
    thread pool (the tabulation and IRLS inner loops are numpy-bound
    and release the GIL); strata are always collected in label order,
    so the summed estimate is bit-identical to a serial run.

    ``batch`` (default: the process-wide batched-fit setting) instead
    routes every eligible stratum through one
    :func:`~repro.core.selection.select_models_batched` call — the
    stepwise searches advance in lockstep and same-shape candidate fits
    share batched solves across strata, which beats thread-level
    parallelism at these matrix sizes; ``max_workers`` is ignored on
    this path.  Results match the sequential path per stratum within
    float round-off.
    """
    items = list(split_sources_by_label(sources, labeler).items())
    if batch is None:
        batch = fitkernel.batch_fits_enabled()

    if batch:
        results: list[StratumResult | None] = []
        eligible: list[tuple[int, Hashable, int, object, float | None]] = []
        for label, split in items:
            observed = len(IPSet.empty().union(*split.values()))
            if observed < min_observed:
                results.append(
                    StratumResult(
                        label=label, observed=observed,
                        estimate=None, excluded=True,
                    )
                )
                continue
            table = tabulate_histories(split)
            limit = limit_per_stratum(label) if limit_per_stratum else None
            results.append(None)
            eligible.append((len(results) - 1, label, observed, table, limit))
        if eligible:
            selections = select_models_batched(
                [entry[3] for entry in eligible],
                criterion=criterion,
                divisor=divisor,
                max_order=max_order,
                distributions=distribution,
                limits=[entry[4] for entry in eligible],
            )
            for (index, label, observed, _, _), selection in zip(
                eligible, selections
            ):
                results[index] = StratumResult(
                    label=label,
                    observed=observed,
                    estimate=selection.fit.estimate(),
                    excluded=False,
                )
        result = StratifiedEstimate()
        for stratum in results:
            result.strata[stratum.label] = stratum
        return result

    def run_one(pair: tuple[Hashable, Mapping[str, IPSet]]) -> StratumResult:
        label, split = pair
        limit = limit_per_stratum(label) if limit_per_stratum else None
        return _estimate_one_stratum(
            label, split, min_observed, criterion, divisor,
            distribution, limit, max_order,
        )

    if max_workers > 1 and len(items) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            strata = list(pool.map(run_one, items))
    else:
        strata = [run_one(pair) for pair in items]
    result = StratifiedEstimate()
    for stratum in strata:
        result.strata[stratum.label] = stratum
    return result
