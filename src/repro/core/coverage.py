"""Sample-coverage estimators (Chao & Lee).

A third heterogeneity-aware baseline from the CR literature the paper
draws on [9, 19]: estimate the *sample coverage* ``C = 1 - f1/n`` (the
probability mass of the captured individuals) and inflate the observed
count by it, with a coefficient-of-variation correction for
heterogeneity:

    N-ACE = M_rare/C + f1/C * gamma^2   (+ the abundant individuals)

where the rare/abundant split defaults to the customary 10 captures.
On the simulator the ACE estimator lands between Chao's lower bound
and the log-linear estimates — a useful triangulation point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histories import ContingencyTable


@dataclass(frozen=True)
class CoverageEstimate:
    """Chao-Lee abundance-coverage estimate (ACE)."""

    population: float
    sample_coverage: float
    cv_squared: float
    observed: int

    @property
    def unseen(self) -> float:
        return max(0.0, self.population - self.observed)


def ace_estimate(
    table: ContingencyTable, rare_cutoff: int = 10
) -> CoverageEstimate:
    """Chao-Lee ACE from the capture-frequency counts.

    ``rare_cutoff`` splits individuals into "rare" (captured at most
    that many times — the only ones informative about the unseen) and
    "abundant".  Falls back to the coverage-only estimator
    (``gamma^2 = 0``) when the CV correction is degenerate.
    """
    freqs = table.capture_frequencies
    t = table.num_sources
    cutoff = min(rare_cutoff, t)
    k = np.arange(len(freqs))
    rare_mask = (k >= 1) & (k <= cutoff)
    m_rare = float(freqs[rare_mask].sum())
    n_rare = float((k[rare_mask] * freqs[rare_mask]).sum())
    m_abundant = float(freqs[~rare_mask & (k > 0)].sum())
    f1 = float(freqs[1]) if len(freqs) > 1 else 0.0
    observed = table.num_observed
    if n_rare <= 0 or m_rare <= 0:
        return CoverageEstimate(
            population=float(observed),
            sample_coverage=1.0,
            cv_squared=0.0,
            observed=observed,
        )
    coverage = 1.0 - f1 / n_rare
    if coverage <= 0:
        # Every rare individual a singleton: coverage undefined; fall
        # back to Chao's bias-corrected bound on the rare part.
        f2 = float(freqs[2]) if len(freqs) > 2 else 0.0
        unseen = f1 * (f1 - 1) / (2 * (f2 + 1))
        return CoverageEstimate(
            population=observed + unseen,
            sample_coverage=0.0,
            cv_squared=float("nan"),
            observed=observed,
        )
    base = m_rare / coverage
    # Squared coefficient of variation of the capture frequencies.
    kk = k[rare_mask]
    ff = freqs[rare_mask]
    numerator = float((kk * (kk - 1) * ff).sum())
    gamma_sq = max(
        base * numerator / (n_rare * (n_rare - 1.0)) - 1.0 if n_rare > 1
        else 0.0,
        0.0,
    )
    estimate = m_abundant + base + (f1 / coverage) * gamma_sq
    return CoverageEstimate(
        population=float(estimate),
        sample_coverage=float(coverage),
        cv_squared=float(gamma_sq),
        observed=observed,
    )
