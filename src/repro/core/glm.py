"""Poisson generalised linear model with log link, fitted by IRLS.

This is the numerical engine behind the log-linear capture-recapture
models: cell counts ``z_s`` are modelled as Poisson with
``log E[Z_s] = X u`` (the paper's equation 1), and the maximum
likelihood parameters are found by iteratively reweighted least
squares.  Each IRLS step solves its weighted least-squares problem
through :mod:`repro.core.fitkernel` — a Cholesky factorisation of the
normal equations with an ``lstsq`` fallback — and handles the
degeneracies real contingency tables produce: zero cells, collinear
designs, and separation (fitted means running away), via the fallback
solve and step halving.  Fits accept a ``beta0`` warm start so scans
over near-identical models (stepwise selection, profile likelihood)
skip the cold initialisation and most iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln, xlogy

from repro.core import fitkernel


class GlmError(RuntimeError):
    """Raised when a fit cannot be computed at all (e.g. empty data)."""


@dataclass(frozen=True)
class GlmFit:
    """A fitted Poisson GLM.

    ``loglik`` is split into two stored parts: ``loglik_kernel`` is
    ``y . log(mu) - sum(mu)`` (the part the IRLS loop tracks anyway for
    its deviance bookkeeping) and ``loglik_norm`` is the data-constant
    ``sum(gammaln(y + 1))`` normaliser — so constructing a fit never
    pays for a gammaln pass the caller may not need.
    """

    coef: np.ndarray
    fitted: np.ndarray
    deviance: float
    iterations: int
    converged: bool
    loglik_kernel: float
    loglik_norm: float

    @property
    def loglik(self) -> float:
        """Poisson log-likelihood (including the gammaln normaliser)."""
        return self.loglik_kernel - self.loglik_norm

    @property
    def num_params(self) -> int:
        return int(self.coef.size)

    @property
    def intercept(self) -> float:
        return float(self.coef[0])


#: Cap on the linear predictor, keeping exp() finite on bad steps.
_ETA_MAX = 700.0
#: Floor on fitted means, keeping logs finite for zero cells.
_MU_MIN = 1e-10
#: log(_MU_MIN): clipping eta below at this floors mu = exp(eta) at
#: _MU_MIN while keeping log(mu) == eta exact — one guard, both ends.
_ETA_MIN = float(np.log(_MU_MIN))
#: Smallest stack worth the batched IRLS loop; below this the fixed
#: per-iteration overhead beats the shared flops (measured crossover on
#: the t=9 profile scan, whose lockstep batches are pairs).
_MIN_BATCH = 4


def poisson_loglik(y: np.ndarray, mu: np.ndarray) -> float:
    """Poisson log-likelihood (including the gammaln normaliser)."""
    y = np.asarray(y, dtype=np.float64)
    mu = np.maximum(np.asarray(mu, dtype=np.float64), _MU_MIN)
    return float(np.sum(y * np.log(mu) - mu - gammaln(y + 1.0)))


def poisson_deviance(y: np.ndarray, mu: np.ndarray) -> float:
    """Residual deviance ``2 [l(y; y) - l(y; mu)]``."""
    y = np.asarray(y, dtype=np.float64)
    mu = np.maximum(np.asarray(mu, dtype=np.float64), _MU_MIN)
    with np.errstate(divide="ignore", invalid="ignore"):
        term = np.where(y > 0, y * np.log(y / mu), 0.0)
    return float(2.0 * np.sum(term - (y - mu)))


#: Per-counts fit constants, keyed on the raw bytes of the count vector
#: (content-hashed, so in-place mutation between calls cannot poison an
#: entry).  Selection fits dozens of candidates and benchmarks fit the
#: same table thousands of times; the saturated part of the deviance and
#: the gammaln normaliser only depend on the counts.
_Y_CONSTANTS: dict[bytes, tuple[float, float]] = {}
_Y_CONSTANTS_MAX = 256


def _y_constants(y: np.ndarray) -> tuple[float, float]:
    """``(sat_part, loglik_norm)`` for a count vector, memoised.

    ``sat_part = sum(y log y) - sum(y)`` is the saturated half of the
    deviance (``deviance = 2 (sat_part - L)``);
    ``loglik_norm = sum(gammaln(y + 1))`` completes the likelihood.
    """
    key = y.tobytes()
    hit = _Y_CONSTANTS.get(key)
    if hit is None:
        sat_part = float(xlogy(y, y).sum()) - float(y.sum())
        norm = float(gammaln(y + 1.0).sum())
        if len(_Y_CONSTANTS) >= _Y_CONSTANTS_MAX:
            _Y_CONSTANTS.clear()
        hit = (sat_part, norm)
        _Y_CONSTANTS[key] = hit
    return hit


def fit_poisson(
    design: np.ndarray,
    counts: np.ndarray,
    max_iter: int = 200,
    tol: float = 1e-9,
    beta0: np.ndarray | None = None,
) -> GlmFit:
    """Fit a log-link Poisson GLM by IRLS with step halving.

    ``design`` is (cells x params), ``counts`` the observed cell
    counts.  ``beta0`` optionally warm-starts the iteration from known
    coefficients (e.g. a neighbouring model's fit); the converged
    optimum is the same as a cold start's within float tolerance, only
    reached in fewer iterations.  Returns the ML fit; ``converged`` is
    False when the deviance was still moving after ``max_iter``
    iterations (the fit is still usable — selection treats it like any
    other candidate).
    """
    X = np.asarray(design, dtype=np.float64)
    y = np.asarray(counts, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise GlmError(f"design {X.shape} incompatible with counts {y.shape}")
    if X.shape[0] == 0:
        raise GlmError("empty data")

    solver = fitkernel.IrlsSolver(X)
    XT = solver.design_t  # contiguous transpose: beta @ XT == X @ beta
    # Per-fit constants: deviance = 2 * (sat_part - L) with
    # L = y . log(mu) - sum(mu), so the line search only ever pays for
    # one exp and three reductions per candidate.
    sat_part, loglik_norm = _y_constants(y)

    def eval_state(eta: np.ndarray):
        """(eta, mu, L) at a candidate predictor, with overflow guards.

        Clipping eta into [_ETA_MIN, _ETA_MAX] floors mu at _MU_MIN and
        caps it below overflow in one pass, and keeps log(mu) == eta
        exact — so L never needs a log.  The common path (everything in
        range) costs only the two bound checks.
        """
        if eta.max() > _ETA_MAX or eta.min() < _ETA_MIN:
            eta = np.clip(eta, _ETA_MIN, _ETA_MAX)
        mu = np.exp(eta)
        L = float(y @ eta) - float(mu.sum())
        return eta, mu, L

    warm = fitkernel.usable_warm_start(beta0, X.shape[1])
    if warm:
        beta = np.asarray(beta0, dtype=np.float64).copy()
        eta, mu, L = eval_state(beta @ XT)
        have_beta = True
    else:
        # Cold start from the saturated-ish state mu = y + 0.5: cheap,
        # always in the domain, and it feeds the first IRLS step
        # directly — no projection solve before the loop.
        mu = y + 0.5
        eta = np.log(mu)
        L = float(y @ eta) - float(mu.sum())
        beta = None
        have_beta = False
    dev = 2.0 * (sat_part - L)

    z = np.empty_like(y)
    iterations = 0
    converged = False
    prev_improvement = 0.0
    for iterations in range(1, max(max_iter, 1) + 1):
        # Working response z = eta + (y - mu) / mu, built in place.
        np.subtract(y, mu, out=z)
        np.divide(z, mu, out=z)
        np.add(z, eta, out=z)
        beta_new = solver.solve(mu, z)
        if not have_beta:
            # First cold step: the starting deviance is near-saturated
            # (not model-feasible), so monotone step halving would
            # reject everything — accept the projection outright.
            beta = beta_new
            eta, mu, L = eval_state(beta @ XT)
            dev = 2.0 * (sat_part - L)
            have_beta = True
            continue
        # Step-halving line search on the deviance.  A NaN deviance
        # fails the acceptance comparison, so bad steps shrink away.
        step = 1.0
        for _ in range(30):
            candidate = (
                beta_new if step == 1.0 else beta + step * (beta_new - beta)
            )
            eta_c, mu_c, L_c = eval_state(candidate @ XT)
            dev_c = 2.0 * (sat_part - L_c)
            if dev_c <= dev + 1e-12 * (1.0 + abs(dev)):
                break
            step /= 2.0
        else:
            candidate, eta_c, mu_c, L_c, dev_c = beta, eta, mu, L, dev
        improvement = dev - dev_c
        beta, eta, mu, L, dev = candidate, eta_c, mu_c, L_c, dev_c
        threshold = tol * (abs(dev) + tol)
        if improvement < threshold:
            converged = True
            break
        if (
            step == 1.0
            and prev_improvement > 0.0
            and improvement * improvement < prev_improvement * threshold * 1e-3
        ):
            # Quadratic convergence: with full Newton steps the next
            # improvement is ~ improvement^2 / prev_improvement.  When
            # that prediction sits 1000x below the deviance tolerance,
            # the next iteration is a pure confirmation pass — skip it.
            converged = True
            break
        prev_improvement = improvement

    fitkernel.record(
        fits=1, irls_iterations=iterations, warm_start_hits=int(warm)
    )
    return GlmFit(
        coef=beta,
        fitted=mu,
        deviance=dev,
        iterations=iterations,
        converged=converged,
        loglik_kernel=L,
        loglik_norm=loglik_norm,
    )


def _eval_state_batch(beta, y, solver, members):
    """Batched ``eval_state``: (eta, mu, L) rows for a coefficient block.

    ``beta`` is (A, p), ``y`` the (A, n) counts, and ``members`` the
    indices of the block's members in the ``solver``'s design stack
    (the solver computes each ``eta_g = X_g beta_g``).  Clipping is
    applied to the whole block when any entry strays — clipping is
    idempotent and only touches entries that are out of range, so
    per-member results match the sequential guard exactly.
    """
    eta = solver.linear_predictor(beta, members)
    if eta.size and (eta.max() > _ETA_MAX or eta.min() < _ETA_MIN):
        eta = np.clip(eta, _ETA_MIN, _ETA_MAX)
    mu = np.exp(eta)
    L = np.einsum("an,an->a", y, eta) - mu.sum(axis=1)
    return eta, mu, L


def fit_poisson_batch(
    designs: np.ndarray,
    counts: np.ndarray,
    max_iter: int = 200,
    tol: float = 1e-9,
    beta0=None,
    masks=None,
) -> list[GlmFit]:
    """Fit a stack of same-shape Poisson GLMs with one batched IRLS loop.

    ``designs`` is (G, n, p) — G models over the same cell count ``n``
    and parameter count ``p`` (stepwise candidates of one round, strata
    with equal source counts, profile-scan evaluation points).
    ``counts`` is (G, n), or (n,) to share one count vector across the
    stack.  ``beta0`` warm-starts members individually: ``None``, a
    (G, p) array, or a sequence of per-member vectors where ``None``
    entries fall back to the cold initialiser.

    Each member follows the exact :func:`fit_poisson` iteration —
    identical cold start, first-step acceptance, step-halving
    thresholds, and convergence tests — with converged members leaving
    the active set, so every weighted solve covers only the members
    still moving.  Degenerate members fall back per-member inside
    :class:`~repro.core.fitkernel.BatchedIrlsSolver`.  Results match the
    sequential kernel to float round-off (well inside rtol 1e-8).

    ``masks`` optionally passes each design column's history bitmask
    (``(G, p)`` ints) to the solver, asserting the capture-history
    lattice structure rather than having the solver detect it — see
    :class:`~repro.core.fitkernel.BatchedIrlsSolver`.

    Stacks below ``_MIN_BATCH`` members run through :func:`fit_poisson`
    one by one: the batched loop's fixed per-iteration overhead (index
    bookkeeping, batched LAPACK dispatch) outweighs the shared flops
    for a handful of members, and the per-member path is bitwise what
    the sequential kernel computes anyway.
    """
    X = np.asarray(designs, dtype=np.float64)
    if X.ndim != 3:
        raise GlmError(f"design stack must be (G, n, p), got {X.shape}")
    G, n, p = X.shape
    if G == 0:
        return []
    if n == 0:
        raise GlmError("empty data")
    if G < _MIN_BATCH:
        y = np.asarray(counts, dtype=np.float64)
        if y.ndim == 1:
            y = np.broadcast_to(y, (G, n))
        if y.shape != (G, n):
            raise GlmError(
                f"design stack {X.shape} incompatible with counts {y.shape}"
            )
        seeds = [None] * G if beta0 is None else list(beta0)
        if len(seeds) != G:
            raise GlmError(f"beta0 has {len(seeds)} seeds for {G} members")
        return [
            fit_poisson(
                X[g], y[g], max_iter=max_iter, tol=tol, beta0=seeds[g]
            )
            for g in range(G)
        ]
    y = np.asarray(counts, dtype=np.float64)
    if y.ndim == 1:
        y = np.broadcast_to(y, (G, n))
    if y.shape != (G, n):
        raise GlmError(f"design stack {X.shape} incompatible with counts {y.shape}")
    y = np.ascontiguousarray(y)

    solver = fitkernel.BatchedIrlsSolver(X, masks=masks)
    consts = [_y_constants(y[g]) for g in range(G)]
    sat = np.array([c[0] for c in consts])
    norms = [c[1] for c in consts]

    seeds: list = [None] * G
    if beta0 is not None:
        if isinstance(beta0, np.ndarray) and beta0.ndim == 2:
            seeds = list(beta0)
        else:
            seeds = list(beta0)
        if len(seeds) != G:
            raise GlmError(f"beta0 has {len(seeds)} seeds for {G} members")

    beta = np.zeros((G, p))
    eta = np.empty((G, n))
    mu = np.empty((G, n))
    L = np.empty(G)
    warm = np.zeros(G, dtype=bool)
    for g in range(G):
        if fitkernel.usable_warm_start(seeds[g], p):
            warm[g] = True
            beta[g] = np.asarray(seeds[g], dtype=np.float64)
    have_beta = warm.copy()
    widx = np.nonzero(warm)[0]
    if widx.size:
        eta[widx], mu[widx], L[widx] = _eval_state_batch(
            beta[widx], y[widx], solver, widx
        )
    cidx = np.nonzero(~warm)[0]
    if cidx.size:
        # Cold start mu = y + 0.5, as in fit_poisson; the first batched
        # step for these members is accepted unconditionally below.
        mu[cidx] = y[cidx] + 0.5
        eta[cidx] = np.log(mu[cidx])
        L[cidx] = (
            np.einsum("an,an->a", y[cidx], eta[cidx]) - mu[cidx].sum(axis=1)
        )
    dev = 2.0 * (sat - L)

    iterations = np.zeros(G, dtype=np.int64)
    converged = np.zeros(G, dtype=bool)
    prev_improvement = np.zeros(G)
    active = np.ones(G, dtype=bool)
    for it in range(1, max(max_iter, 1) + 1):
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            break
        iterations[idx] = it
        z = eta[idx] + (y[idx] - mu[idx]) / mu[idx]
        beta_new = solver.solve(mu[idx], z, members=idx)
        fresh = ~have_beta[idx]
        if fresh.any():
            f = idx[fresh]
            beta[f] = beta_new[fresh]
            eta[f], mu[f], L[f] = _eval_state_batch(beta[f], y[f], solver, f)
            dev[f] = 2.0 * (sat[f] - L[f])
            have_beta[f] = True
        li = idx[~fresh]
        if li.size == 0:
            continue
        bn = beta_new[~fresh]
        b_old = beta[li]
        dev_old = dev[li]
        step = np.ones(li.size)
        acc_beta = np.empty((li.size, p))
        acc_eta = np.empty((li.size, n))
        acc_mu = np.empty((li.size, n))
        acc_L = np.empty(li.size)
        acc_dev = np.empty(li.size)
        undecided = np.ones(li.size, dtype=bool)
        for _ in range(30):
            u = np.nonzero(undecided)[0]
            # step == 1.0 members take beta_new verbatim (no arithmetic),
            # matching the sequential line search bit for bit.
            cand = np.where(
                (step[u] == 1.0)[:, None],
                bn[u],
                b_old[u] + step[u, None] * (bn[u] - b_old[u]),
            )
            e_c, m_c, l_c = _eval_state_batch(cand, y[li[u]], solver, li[u])
            dev_c = 2.0 * (sat[li[u]] - l_c)
            with np.errstate(invalid="ignore"):
                ok = dev_c <= dev_old[u] + 1e-12 * (1.0 + np.abs(dev_old[u]))
            if ok.any():
                a = u[ok]
                acc_beta[a] = cand[ok]
                acc_eta[a] = e_c[ok]
                acc_mu[a] = m_c[ok]
                acc_L[a] = l_c[ok]
                acc_dev[a] = dev_c[ok]
                undecided[a] = False
            step[u[~ok]] /= 2.0
            if not undecided.any():
                break
        r = np.nonzero(undecided)[0]
        if r.size:
            # Line search exhausted: revert, like the sequential loop.
            acc_beta[r] = b_old[r]
            acc_eta[r] = eta[li[r]]
            acc_mu[r] = mu[li[r]]
            acc_L[r] = L[li[r]]
            acc_dev[r] = dev_old[r]
            step[r] = 0.0
        improvement = dev_old - acc_dev
        beta[li] = acc_beta
        eta[li] = acc_eta
        mu[li] = acc_mu
        L[li] = acc_L
        dev[li] = acc_dev
        threshold = tol * (np.abs(acc_dev) + tol)
        quad = (
            (step == 1.0)
            & (prev_improvement[li] > 0.0)
            & (improvement * improvement < prev_improvement[li] * threshold * 1e-3)
        )
        newly = (improvement < threshold) | quad
        converged[li[newly]] = True
        active[li[newly]] = False
        prev_improvement[li] = improvement

    fitkernel.record(
        fits=G,
        irls_iterations=int(iterations.sum()),
        warm_start_hits=int(warm.sum()),
    )
    return [
        GlmFit(
            coef=beta[g].copy(),
            fitted=mu[g].copy(),
            deviance=float(dev[g]),
            iterations=int(iterations[g]),
            converged=bool(converged[g]),
            loglik_kernel=float(L[g]),
            loglik_norm=norms[g],
        )
        for g in range(G)
    ]


