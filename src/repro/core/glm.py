"""Poisson generalised linear model with log link, fitted by IRLS.

This is the numerical engine behind the log-linear capture-recapture
models: cell counts ``z_s`` are modelled as Poisson with
``log E[Z_s] = X u`` (the paper's equation 1), and the maximum
likelihood parameters are found by iteratively reweighted least
squares.  Each IRLS step solves its weighted least-squares problem
through :mod:`repro.core.fitkernel` — a Cholesky factorisation of the
normal equations with an ``lstsq`` fallback — and handles the
degeneracies real contingency tables produce: zero cells, collinear
designs, and separation (fitted means running away), via the fallback
solve and step halving.  Fits accept a ``beta0`` warm start so scans
over near-identical models (stepwise selection, profile likelihood)
skip the cold initialisation and most iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln, xlogy

from repro.core import fitkernel


class GlmError(RuntimeError):
    """Raised when a fit cannot be computed at all (e.g. empty data)."""


@dataclass(frozen=True)
class GlmFit:
    """A fitted Poisson GLM.

    ``loglik`` is split into two stored parts: ``loglik_kernel`` is
    ``y . log(mu) - sum(mu)`` (the part the IRLS loop tracks anyway for
    its deviance bookkeeping) and ``loglik_norm`` is the data-constant
    ``sum(gammaln(y + 1))`` normaliser — so constructing a fit never
    pays for a gammaln pass the caller may not need.
    """

    coef: np.ndarray
    fitted: np.ndarray
    deviance: float
    iterations: int
    converged: bool
    loglik_kernel: float
    loglik_norm: float

    @property
    def loglik(self) -> float:
        """Poisson log-likelihood (including the gammaln normaliser)."""
        return self.loglik_kernel - self.loglik_norm

    @property
    def num_params(self) -> int:
        return int(self.coef.size)

    @property
    def intercept(self) -> float:
        return float(self.coef[0])


#: Cap on the linear predictor, keeping exp() finite on bad steps.
_ETA_MAX = 700.0
#: Floor on fitted means, keeping logs finite for zero cells.
_MU_MIN = 1e-10
#: log(_MU_MIN): clipping eta below at this floors mu = exp(eta) at
#: _MU_MIN while keeping log(mu) == eta exact — one guard, both ends.
_ETA_MIN = float(np.log(_MU_MIN))


def poisson_loglik(y: np.ndarray, mu: np.ndarray) -> float:
    """Poisson log-likelihood (including the gammaln normaliser)."""
    y = np.asarray(y, dtype=np.float64)
    mu = np.maximum(np.asarray(mu, dtype=np.float64), _MU_MIN)
    return float(np.sum(y * np.log(mu) - mu - gammaln(y + 1.0)))


def poisson_deviance(y: np.ndarray, mu: np.ndarray) -> float:
    """Residual deviance ``2 [l(y; y) - l(y; mu)]``."""
    y = np.asarray(y, dtype=np.float64)
    mu = np.maximum(np.asarray(mu, dtype=np.float64), _MU_MIN)
    with np.errstate(divide="ignore", invalid="ignore"):
        term = np.where(y > 0, y * np.log(y / mu), 0.0)
    return float(2.0 * np.sum(term - (y - mu)))


#: Per-counts fit constants, keyed on the raw bytes of the count vector
#: (content-hashed, so in-place mutation between calls cannot poison an
#: entry).  Selection fits dozens of candidates and benchmarks fit the
#: same table thousands of times; the saturated part of the deviance and
#: the gammaln normaliser only depend on the counts.
_Y_CONSTANTS: dict[bytes, tuple[float, float]] = {}
_Y_CONSTANTS_MAX = 256


def _y_constants(y: np.ndarray) -> tuple[float, float]:
    """``(sat_part, loglik_norm)`` for a count vector, memoised.

    ``sat_part = sum(y log y) - sum(y)`` is the saturated half of the
    deviance (``deviance = 2 (sat_part - L)``);
    ``loglik_norm = sum(gammaln(y + 1))`` completes the likelihood.
    """
    key = y.tobytes()
    hit = _Y_CONSTANTS.get(key)
    if hit is None:
        sat_part = float(xlogy(y, y).sum()) - float(y.sum())
        norm = float(gammaln(y + 1.0).sum())
        if len(_Y_CONSTANTS) >= _Y_CONSTANTS_MAX:
            _Y_CONSTANTS.clear()
        hit = (sat_part, norm)
        _Y_CONSTANTS[key] = hit
    return hit


def fit_poisson(
    design: np.ndarray,
    counts: np.ndarray,
    max_iter: int = 200,
    tol: float = 1e-9,
    beta0: np.ndarray | None = None,
) -> GlmFit:
    """Fit a log-link Poisson GLM by IRLS with step halving.

    ``design`` is (cells x params), ``counts`` the observed cell
    counts.  ``beta0`` optionally warm-starts the iteration from known
    coefficients (e.g. a neighbouring model's fit); the converged
    optimum is the same as a cold start's within float tolerance, only
    reached in fewer iterations.  Returns the ML fit; ``converged`` is
    False when the deviance was still moving after ``max_iter``
    iterations (the fit is still usable — selection treats it like any
    other candidate).
    """
    X = np.asarray(design, dtype=np.float64)
    y = np.asarray(counts, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise GlmError(f"design {X.shape} incompatible with counts {y.shape}")
    if X.shape[0] == 0:
        raise GlmError("empty data")

    solver = fitkernel.IrlsSolver(X)
    XT = solver.design_t  # contiguous transpose: beta @ XT == X @ beta
    # Per-fit constants: deviance = 2 * (sat_part - L) with
    # L = y . log(mu) - sum(mu), so the line search only ever pays for
    # one exp and three reductions per candidate.
    sat_part, loglik_norm = _y_constants(y)

    def eval_state(eta: np.ndarray):
        """(eta, mu, L) at a candidate predictor, with overflow guards.

        Clipping eta into [_ETA_MIN, _ETA_MAX] floors mu at _MU_MIN and
        caps it below overflow in one pass, and keeps log(mu) == eta
        exact — so L never needs a log.  The common path (everything in
        range) costs only the two bound checks.
        """
        if eta.max() > _ETA_MAX or eta.min() < _ETA_MIN:
            eta = np.clip(eta, _ETA_MIN, _ETA_MAX)
        mu = np.exp(eta)
        L = float(y @ eta) - float(mu.sum())
        return eta, mu, L

    warm = fitkernel.usable_warm_start(beta0, X.shape[1])
    if warm:
        beta = np.asarray(beta0, dtype=np.float64).copy()
        eta, mu, L = eval_state(beta @ XT)
        have_beta = True
    else:
        # Cold start from the saturated-ish state mu = y + 0.5: cheap,
        # always in the domain, and it feeds the first IRLS step
        # directly — no projection solve before the loop.
        mu = y + 0.5
        eta = np.log(mu)
        L = float(y @ eta) - float(mu.sum())
        beta = None
        have_beta = False
    dev = 2.0 * (sat_part - L)

    z = np.empty_like(y)
    iterations = 0
    converged = False
    prev_improvement = 0.0
    for iterations in range(1, max(max_iter, 1) + 1):
        # Working response z = eta + (y - mu) / mu, built in place.
        np.subtract(y, mu, out=z)
        np.divide(z, mu, out=z)
        np.add(z, eta, out=z)
        beta_new = solver.solve(mu, z)
        if not have_beta:
            # First cold step: the starting deviance is near-saturated
            # (not model-feasible), so monotone step halving would
            # reject everything — accept the projection outright.
            beta = beta_new
            eta, mu, L = eval_state(beta @ XT)
            dev = 2.0 * (sat_part - L)
            have_beta = True
            continue
        # Step-halving line search on the deviance.  A NaN deviance
        # fails the acceptance comparison, so bad steps shrink away.
        step = 1.0
        for _ in range(30):
            candidate = (
                beta_new if step == 1.0 else beta + step * (beta_new - beta)
            )
            eta_c, mu_c, L_c = eval_state(candidate @ XT)
            dev_c = 2.0 * (sat_part - L_c)
            if dev_c <= dev + 1e-12 * (1.0 + abs(dev)):
                break
            step /= 2.0
        else:
            candidate, eta_c, mu_c, L_c, dev_c = beta, eta, mu, L, dev
        improvement = dev - dev_c
        beta, eta, mu, L, dev = candidate, eta_c, mu_c, L_c, dev_c
        threshold = tol * (abs(dev) + tol)
        if improvement < threshold:
            converged = True
            break
        if (
            step == 1.0
            and prev_improvement > 0.0
            and improvement * improvement < prev_improvement * threshold * 1e-3
        ):
            # Quadratic convergence: with full Newton steps the next
            # improvement is ~ improvement^2 / prev_improvement.  When
            # that prediction sits 1000x below the deviance tolerance,
            # the next iteration is a pure confirmation pass — skip it.
            converged = True
            break
        prev_improvement = improvement

    fitkernel.record(
        fits=1, irls_iterations=iterations, warm_start_hits=int(warm)
    )
    return GlmFit(
        coef=beta,
        fitted=mu,
        deviance=dev,
        iterations=iterations,
        converged=converged,
        loglik_kernel=L,
        loglik_norm=loglik_norm,
    )


