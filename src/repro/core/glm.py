"""Poisson generalised linear model with log link, fitted by IRLS.

This is the numerical engine behind the log-linear capture-recapture
models: cell counts ``z_s`` are modelled as Poisson with
``log E[Z_s] = X u`` (the paper's equation 1), and the maximum
likelihood parameters are found by iteratively reweighted least
squares.  The implementation is self-contained (numpy + scipy.special
only) and handles the degeneracies real contingency tables produce:
zero cells, collinear designs, and separation (fitted means running
away), via pseudo-inverse solves and step halving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln


class GlmError(RuntimeError):
    """Raised when a fit cannot be computed at all (e.g. empty data)."""


@dataclass(frozen=True)
class GlmFit:
    """A fitted Poisson GLM."""

    coef: np.ndarray
    fitted: np.ndarray
    loglik: float
    deviance: float
    iterations: int
    converged: bool

    @property
    def num_params(self) -> int:
        return int(self.coef.size)

    @property
    def intercept(self) -> float:
        return float(self.coef[0])


#: Cap on the linear predictor, keeping exp() finite on bad steps.
_ETA_MAX = 700.0
#: Floor on fitted means, keeping logs finite for zero cells.
_MU_MIN = 1e-10


def poisson_loglik(y: np.ndarray, mu: np.ndarray) -> float:
    """Poisson log-likelihood (including the gammaln normaliser)."""
    y = np.asarray(y, dtype=np.float64)
    mu = np.maximum(np.asarray(mu, dtype=np.float64), _MU_MIN)
    return float(np.sum(y * np.log(mu) - mu - gammaln(y + 1.0)))


def poisson_deviance(y: np.ndarray, mu: np.ndarray) -> float:
    """Residual deviance ``2 [l(y; y) - l(y; mu)]``."""
    y = np.asarray(y, dtype=np.float64)
    mu = np.maximum(np.asarray(mu, dtype=np.float64), _MU_MIN)
    with np.errstate(divide="ignore", invalid="ignore"):
        term = np.where(y > 0, y * np.log(y / mu), 0.0)
    return float(2.0 * np.sum(term - (y - mu)))


def fit_poisson(
    design: np.ndarray,
    counts: np.ndarray,
    max_iter: int = 200,
    tol: float = 1e-9,
) -> GlmFit:
    """Fit a log-link Poisson GLM by IRLS with step halving.

    ``design`` is (cells x params), ``counts`` the observed cell
    counts.  Returns the ML fit; ``converged`` is False when the
    deviance was still moving after ``max_iter`` iterations (the fit is
    still usable — selection treats it like any other candidate).
    """
    X = np.asarray(design, dtype=np.float64)
    y = np.asarray(counts, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise GlmError(f"design {X.shape} incompatible with counts {y.shape}")
    if X.shape[0] == 0:
        raise GlmError("empty data")

    # Start from the saturated-ish predictor log(y + 0.5): cheap and
    # always in the domain.
    eta = np.log(y + 0.5)
    beta = _weighted_solve(X, np.ones_like(y), eta)
    eta = np.clip(X @ beta, -_ETA_MAX, _ETA_MAX)
    mu = np.maximum(np.exp(eta), _MU_MIN)
    dev = poisson_deviance(y, mu)

    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        weights = mu
        z = eta + (y - mu) / mu
        beta_new = _weighted_solve(X, weights, z)
        # Step-halving line search on the deviance.
        step = 1.0
        for _ in range(30):
            candidate = beta + step * (beta_new - beta)
            eta_c = np.clip(X @ candidate, -_ETA_MAX, _ETA_MAX)
            mu_c = np.maximum(np.exp(eta_c), _MU_MIN)
            dev_c = poisson_deviance(y, mu_c)
            if np.isfinite(dev_c) and dev_c <= dev + 1e-12:
                break
            step /= 2.0
        else:
            candidate, eta_c, mu_c, dev_c = beta, eta, mu, dev
        improvement = dev - dev_c
        beta, eta, mu, dev = candidate, eta_c, mu_c, dev_c
        if improvement < tol * (abs(dev) + tol):
            converged = True
            break

    return GlmFit(
        coef=beta,
        fitted=mu,
        loglik=poisson_loglik(y, mu),
        deviance=dev,
        iterations=iterations,
        converged=converged,
    )


def _weighted_solve(
    X: np.ndarray, weights: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Solve the weighted least-squares normal equations robustly."""
    w = np.sqrt(np.maximum(weights, 1e-12))
    Xw = X * w[:, None]
    zw = target * w
    solution, *_ = np.linalg.lstsq(Xw, zw, rcond=None)
    return solution
