"""Log-linear capture-recapture models (the paper's Section 3.3).

A :class:`LoglinearModel` is a hierarchical term set; fitting it to a
:class:`~repro.core.histories.ContingencyTable` yields a
:class:`FittedLoglinear`, whose :meth:`~FittedLoglinear.estimate`
produces the population estimate: the unseen count is
``Z-hat_0 = exp(u)`` under the Poisson likelihood, or the mean of the
right-truncated Poisson with rate ``exp(u)`` and remaining headroom
``l - M`` under the truncated likelihood — which is how the truncation
keeps small-stratum estimates below the routed-space size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.design import describe_terms, design_matrix, validate_terms
from repro.core.glm import fit_poisson
from repro.core.histories import ContingencyTable
from repro.core.truncated import fit_truncated_poisson, truncated_mean

#: Supported likelihoods.
DISTRIBUTIONS = ("poisson", "truncated")


@dataclass(frozen=True)
class PopulationEstimate:
    """A capture-recapture population estimate.

    ``population`` is N-hat = M + unseen; ``observed`` is M.  ``aic``
    and ``bic`` refer to the fit that produced the estimate (on the
    *unscaled* counts — selection-time ICs on divided counts live on
    :class:`~repro.core.selection.ModelSelection`).
    """

    population: float
    unseen: float
    observed: int
    loglik: float
    aic: float
    bic: float
    num_params: int
    terms: frozenset
    distribution: str
    converged: bool
    source_names: tuple[str, ...] = ()

    def describe(self) -> str:
        """One-line human summary of the estimate and its model."""
        return (
            f"N={self.population:.1f} (observed {self.observed}, "
            f"unseen {self.unseen:.1f}) via {self.distribution} LLM "
            f"{describe_terms(self.terms, self.source_names)}"
        )


@dataclass(frozen=True)
class FittedLoglinear:
    """A log-linear model fitted to a contingency table."""

    table: ContingencyTable
    terms: frozenset
    coef: np.ndarray
    fitted: np.ndarray
    loglik: float
    distribution: str
    limit: float | None
    converged: bool
    iterations: int = 0

    @property
    def num_params(self) -> int:
        return int(self.coef.size)

    @property
    def intercept(self) -> float:
        return float(self.coef[0])

    @property
    def aic(self) -> float:
        # Local import: selection imports this module at load time.
        from repro.core.selection import information_criterion

        return information_criterion(
            self.loglik, self.num_params, self.table.num_observed, "aic"
        )

    @property
    def bic(self) -> float:
        from repro.core.selection import information_criterion

        return information_criterion(
            self.loglik, self.num_params, self.table.num_observed, "bic"
        )

    def unseen_estimate(self) -> float:
        """Estimated count of the all-zero history, ``Z-hat_0``."""
        rate = float(np.exp(min(self.intercept, 700.0)))
        if self.distribution == "truncated" and self.limit is not None:
            headroom = max(0.0, float(self.limit) - self.table.num_observed)
            return float(truncated_mean(rate, headroom))
        return rate

    def estimate(self) -> PopulationEstimate:
        """Package the fit into a population estimate (N = M + ghosts)."""
        unseen = self.unseen_estimate()
        observed = self.table.num_observed
        return PopulationEstimate(
            population=observed + unseen,
            unseen=unseen,
            observed=observed,
            loglik=self.loglik,
            aic=self.aic,
            bic=self.bic,
            num_params=self.num_params,
            terms=self.terms,
            distribution=self.distribution,
            converged=self.converged,
            source_names=self.table.source_names,
        )


class LoglinearModel:
    """A hierarchical log-linear model over ``t`` sources."""

    def __init__(
        self,
        num_sources: int,
        terms: Iterable[frozenset],
        *,
        validate: bool = True,
    ):
        """``validate=False`` skips term validation; the caller then
        guarantees ``terms`` is a normalised hierarchical frozenset of
        frozensets (the stepwise search constructs thousands of models
        whose terms are valid by construction).  Invalid terms still
        fail on the first design-matrix build."""
        self.num_sources = num_sources
        self.terms = (
            validate_terms(num_sources, terms) if validate else terms
        )

    def __repr__(self) -> str:
        return f"LoglinearModel(t={self.num_sources}, {describe_terms(self.terms)})"

    def fit(
        self,
        table: ContingencyTable,
        distribution: str = "poisson",
        limit: float | None = None,
        beta0: np.ndarray | None = None,
    ) -> FittedLoglinear:
        """Fit by maximum likelihood.

        ``distribution`` is ``"poisson"`` or ``"truncated"``; the latter
        requires ``limit`` (the inclusive cell-count bound ``l``).
        ``beta0`` warm-starts the optimiser from known coefficients (one
        per intercept + ordered term); the optimum is unchanged within
        float tolerance.
        """
        if table.num_sources != self.num_sources:
            raise ValueError(
                f"table has {table.num_sources} sources, model expects "
                f"{self.num_sources}"
            )
        if distribution not in DISTRIBUTIONS:
            raise ValueError(f"unknown distribution: {distribution!r}")
        design, _ = design_matrix(self.num_sources, self.terms)
        counts = table.counts[1:]
        if distribution == "truncated":
            if limit is None:
                raise ValueError("truncated fits require a limit")
            fit = fit_truncated_poisson(design, counts, limit, beta0=beta0)
            return FittedLoglinear(
                table=table,
                terms=self.terms,
                coef=fit.coef,
                fitted=fit.fitted_rate,
                loglik=fit.loglik,
                distribution="truncated",
                limit=float(limit),
                converged=fit.converged,
                iterations=fit.iterations,
            )
        fit = fit_poisson(design, counts, beta0=beta0)
        return FittedLoglinear(
            table=table,
            terms=self.terms,
            coef=fit.coef,
            fitted=fit.fitted,
            loglik=fit.loglik,
            distribution="poisson",
            limit=limit,
            converged=fit.converged,
            iterations=fit.iterations,
        )
