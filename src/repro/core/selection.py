"""Model selection for log-linear CR models (the paper's Section 3.3.2).

Selection picks which interaction parameters ``u_h`` are freed.  We
search hierarchical models by forward stepwise addition of interaction
terms starting from the independence model, scoring candidates by an
information criterion (AIC or BIC) computed on *divided* counts — the
paper's heuristic for the Poisson likelihood overstating the effective
sample size: all ``z_s`` are integer-divided by ``d`` before computing
``L``, with ``d`` either fixed or adaptive ("start at 1000, halve until
``d`` is smaller than the smallest positive ``z_s``").

The final choice applies the paper's parsimony rule: take the simplest
model ``m`` on the search path such that no other visited model ``n``
has ``IC_n < IC_m - 7``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
import numpy as np

from repro.core import fitkernel
from repro.core.design import main_effect_terms, map_coefficients
from repro.core.histories import ContingencyTable
from repro.core.loglinear import FittedLoglinear, LoglinearModel

#: The parsimony margin of the "simplest within 7 IC units" rule [21].
IC_MARGIN = 7.0


def information_criterion(
    loglik: float, num_params: int, num_observed: int, kind: str = "aic"
) -> float:
    """AIC or BIC as defined in the paper (M = observed individuals)."""
    if kind == "aic":
        return 2.0 * num_params - 2.0 * loglik
    if kind == "bic":
        return float(np.log(max(num_observed, 1)) * num_params - 2.0 * loglik)
    raise ValueError(f"unknown information criterion: {kind!r}")


def adaptive_divisor(table: ContingencyTable, maximum: int = 1000) -> int:
    """The paper's adaptive ``d``: halve from ``maximum`` until below
    the smallest positive cell count (never below 1)."""
    if maximum < 1:
        raise ValueError(f"maximum divisor must be >= 1, got {maximum}")
    floor = table.positive_minimum()
    if floor <= 1:
        return 1
    divisor = maximum
    while divisor >= floor and divisor > 1:
        divisor //= 2
    return max(divisor, 1)


def resolve_divisor(table: ContingencyTable, divisor: int | str) -> int:
    """Interpret a divisor setting: an int, or ``"adaptive"``/``"adaptiveN"``."""
    if isinstance(divisor, int):
        if divisor < 1:
            raise ValueError(f"divisor must be >= 1, got {divisor}")
        return divisor
    if isinstance(divisor, str) and divisor.startswith("adaptive"):
        suffix = divisor[len("adaptive"):]
        maximum = int(suffix) if suffix else 1000
        return adaptive_divisor(table, maximum)
    raise ValueError(f"unknown divisor setting: {divisor!r}")


@dataclass(frozen=True)
class CandidateScore:
    """One model visited during the stepwise search."""

    terms: frozenset
    ic: float
    loglik: float
    num_params: int


@dataclass
class ModelSelection:
    """Outcome of :func:`select_model`.

    ``fit`` is the chosen model refitted on the *unscaled* table (the
    fit used for estimation); ``path`` records every model accepted
    during the search with its selection-time IC, and ``selected_ic``
    is the chosen model's IC on the divided counts.
    """

    fit: FittedLoglinear
    divisor: int
    criterion: str
    selected_ic: float
    path: list[CandidateScore] = field(default_factory=list)

    @property
    def terms(self) -> frozenset:
        return self.fit.terms


def _candidate_terms(
    num_sources: int, current: frozenset, max_order: int
) -> list[frozenset]:
    """Hierarchically addable terms: every subset already present."""
    candidates = []
    for order in range(2, min(max_order, num_sources - 1) + 1):
        for combo in combinations(range(num_sources), order):
            term = frozenset(combo)
            if term in current:
                continue
            subsets_present = all(
                frozenset(sub) in current
                for size in range(1, order)
                for sub in combinations(combo, size)
            )
            if subsets_present:
                candidates.append(term)
    return candidates


def _score(fitted: FittedLoglinear, criterion: str) -> CandidateScore:
    ic = information_criterion(
        fitted.loglik, fitted.num_params, fitted.table.num_observed, criterion
    )
    return CandidateScore(
        terms=fitted.terms,
        ic=ic,
        loglik=fitted.loglik,
        num_params=fitted.num_params,
    )


def select_model(
    table: ContingencyTable,
    criterion: str = "bic",
    divisor: int | str = "adaptive1000",
    max_order: int = 2,
    distribution: str = "poisson",
    limit: float | None = None,
) -> ModelSelection:
    """Stepwise model selection with the paper's heuristics.

    Forward search: start at independence, repeatedly add the
    interaction term (up to ``max_order`` sources) that lowers the IC
    most, computed on counts divided by ``divisor``; stop when nothing
    improves.  Then pick the simplest visited model within
    :data:`IC_MARGIN` of the best and refit it on the full counts.

    The search runs on the warm-started fit kernel: every candidate fit
    starts from its parent's coefficients (the one new column at 0),
    fits are memoised per term set so revisited models and the
    parsimony-rule refit never recompute, and the final full-count fit
    starts from the chosen candidate's coefficients with the intercept
    shifted by ``log(divisor)`` (undoing the count division).  Scores
    and estimates match the cold-start search within float tolerance.
    """
    if table.num_sources < 2:
        raise ValueError("capture-recapture needs at least two sources")
    resolved = resolve_divisor(table, divisor)
    scaled = table.scaled(resolved)
    if scaled.num_observed == 0:
        # All counts rounded away: fall back to the raw table, matching
        # the paper's note that too large a d breaks the LLM down.
        scaled = table
        resolved = 1

    # Candidates are always scored with the plain Poisson likelihood:
    # it is the cheap fit, and the paper notes truncation "otherwise
    # makes little difference" outside small strata — the final model
    # is refit with the requested distribution.
    memo: dict[frozenset, FittedLoglinear] = {}

    def fit_scaled(
        terms: frozenset, parent: FittedLoglinear | None
    ) -> FittedLoglinear:
        cached = memo.get(terms)
        if cached is not None:
            fitkernel.record(memo_hits=1, iterations_saved=cached.iterations)
            return cached
        beta0 = (
            map_coefficients(parent.terms, parent.coef, terms)
            if parent is not None
            else None
        )
        fitted = LoglinearModel(scaled.num_sources, terms, validate=False).fit(
            scaled, distribution="poisson", beta0=beta0
        )
        memo[terms] = fitted
        return fitted

    current = main_effect_terms(table.num_sources)
    current_fit = fit_scaled(current, None)
    best = _score(current_fit, criterion)
    path = [best]
    while True:
        candidates = _candidate_terms(table.num_sources, current, max_order)
        if not candidates:
            break
        scores = [
            _score(fit_scaled(current | {term}, current_fit), criterion)
            for term in candidates
        ]
        challenger = min(scores, key=lambda s: s.ic)
        if challenger.ic >= best.ic:
            break
        best = challenger
        current = challenger.terms
        current_fit = fit_scaled(current, None)
        path.append(challenger)

    # Parsimony rule: simplest visited model m with no n: IC_n < IC_m - 7.
    best_ic = min(score.ic for score in path)
    eligible = [score for score in path if score.ic <= best_ic + IC_MARGIN]
    chosen = min(eligible, key=lambda s: (s.num_params, s.ic))

    # Warm-start the full-count refit from the chosen candidate: counts
    # were integer-divided by d, so rates (and hence the intercept, on
    # the log scale) sit about log(d) higher on the unscaled table.
    beta0 = fit_scaled(chosen.terms, None).coef.copy()
    beta0[0] += float(np.log(resolved))
    # A persistent warm-start store (installed by an Executor running
    # against an artifact store) may hold this exact fit's converged
    # coefficients from an earlier run; an exact digest match seeds the
    # solver at the answer.  The fit still runs to its own convergence.
    warm_store = fitkernel.get_warm_store()
    warm_spec = (
        dict(
            num_sources=table.num_sources,
            terms=chosen.terms,
            counts=table.counts,
            distribution=distribution,
            limit=limit,
            divisor=resolved,
        )
        if warm_store is not None
        else None
    )
    if warm_store is not None:
        stored = warm_store.lookup(**warm_spec)
        if fitkernel.usable_warm_start(stored, beta0.shape[0]):
            beta0 = stored
            fitkernel.record(warm_store_hits=1)
    final_model = LoglinearModel(table.num_sources, chosen.terms, validate=False)
    final_fit = final_model.fit(
        table, distribution=distribution, limit=limit, beta0=beta0
    )
    if warm_store is not None and final_fit.converged:
        warm_store.store(final_fit.coef, **warm_spec)
    return ModelSelection(
        fit=final_fit,
        divisor=resolved,
        criterion=criterion,
        selected_ic=chosen.ic,
        path=path,
    )
