"""Model selection for log-linear CR models (the paper's Section 3.3.2).

Selection picks which interaction parameters ``u_h`` are freed.  We
search hierarchical models by forward stepwise addition of interaction
terms starting from the independence model, scoring candidates by an
information criterion (AIC or BIC) computed on *divided* counts — the
paper's heuristic for the Poisson likelihood overstating the effective
sample size: all ``z_s`` are integer-divided by ``d`` before computing
``L``, with ``d`` either fixed or adaptive ("start at 1000, halve until
``d`` is smaller than the smallest positive ``z_s``").

The final choice applies the paper's parsimony rule: take the simplest
model ``m`` on the search path such that no other visited model ``n``
has ``IC_n < IC_m - 7``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Sequence
import numpy as np

from repro.core import fitkernel
from repro.core.design import (
    design_matrix,
    main_effect_terms,
    map_coefficients,
    term_order,
)
from repro.core.glm import fit_poisson_batch
from repro.core.histories import ContingencyTable
from repro.core.loglinear import FittedLoglinear, LoglinearModel

#: The parsimony margin of the "simplest within 7 IC units" rule [21].
IC_MARGIN = 7.0


def information_criterion(
    loglik: float, num_params: int, num_observed: int, kind: str = "aic"
) -> float:
    """AIC or BIC as defined in the paper (M = observed individuals)."""
    if kind == "aic":
        return 2.0 * num_params - 2.0 * loglik
    if kind == "bic":
        return float(np.log(max(num_observed, 1)) * num_params - 2.0 * loglik)
    raise ValueError(f"unknown information criterion: {kind!r}")


def adaptive_divisor(table: ContingencyTable, maximum: int = 1000) -> int:
    """The paper's adaptive ``d``: halve from ``maximum`` until below
    the smallest positive cell count (never below 1)."""
    if maximum < 1:
        raise ValueError(f"maximum divisor must be >= 1, got {maximum}")
    floor = table.positive_minimum()
    if floor <= 1:
        return 1
    divisor = maximum
    while divisor >= floor and divisor > 1:
        divisor //= 2
    return max(divisor, 1)


def resolve_divisor(table: ContingencyTable, divisor: int | str) -> int:
    """Interpret a divisor setting: an int, or ``"adaptive"``/``"adaptiveN"``."""
    if isinstance(divisor, int):
        if divisor < 1:
            raise ValueError(f"divisor must be >= 1, got {divisor}")
        return divisor
    if isinstance(divisor, str) and divisor.startswith("adaptive"):
        suffix = divisor[len("adaptive"):]
        maximum = int(suffix) if suffix else 1000
        return adaptive_divisor(table, maximum)
    raise ValueError(f"unknown divisor setting: {divisor!r}")


@dataclass(frozen=True)
class CandidateScore:
    """One model visited during the stepwise search."""

    terms: frozenset
    ic: float
    loglik: float
    num_params: int


@dataclass
class ModelSelection:
    """Outcome of :func:`select_model`.

    ``fit`` is the chosen model refitted on the *unscaled* table (the
    fit used for estimation); ``path`` records every model accepted
    during the search with its selection-time IC, and ``selected_ic``
    is the chosen model's IC on the divided counts.
    """

    fit: FittedLoglinear
    divisor: int
    criterion: str
    selected_ic: float
    path: list[CandidateScore] = field(default_factory=list)

    @property
    def terms(self) -> frozenset:
        return self.fit.terms


def _candidate_terms(
    num_sources: int, current: frozenset, max_order: int
) -> list[frozenset]:
    """Hierarchically addable terms: every subset already present."""
    candidates = []
    for order in range(2, min(max_order, num_sources - 1) + 1):
        for combo in combinations(range(num_sources), order):
            term = frozenset(combo)
            if term in current:
                continue
            subsets_present = all(
                frozenset(sub) in current
                for size in range(1, order)
                for sub in combinations(combo, size)
            )
            if subsets_present:
                candidates.append(term)
    return candidates


def _score(fitted: FittedLoglinear, criterion: str) -> CandidateScore:
    ic = information_criterion(
        fitted.loglik, fitted.num_params, fitted.table.num_observed, criterion
    )
    return CandidateScore(
        terms=fitted.terms,
        ic=ic,
        loglik=fitted.loglik,
        num_params=fitted.num_params,
    )


def _resolve_scaled(
    table: ContingencyTable, divisor: int | str
) -> tuple[ContingencyTable, int]:
    """Resolve the divisor and produce the scaled search table."""
    resolved = resolve_divisor(table, divisor)
    scaled = table.scaled(resolved)
    if scaled.num_observed == 0:
        # All counts rounded away: fall back to the raw table, matching
        # the paper's note that too large a d breaks the LLM down.
        scaled = table
        resolved = 1
    return scaled, resolved


def _finalise(
    table: ContingencyTable,
    resolved: int,
    criterion: str,
    distribution: str,
    limit: float | None,
    path: list[CandidateScore],
    fetch_scaled: Callable[[frozenset], FittedLoglinear],
) -> ModelSelection:
    """Parsimony rule + full-count refit, shared by both search kernels."""
    # Parsimony rule: simplest visited model m with no n: IC_n < IC_m - 7.
    best_ic = min(score.ic for score in path)
    eligible = [score for score in path if score.ic <= best_ic + IC_MARGIN]
    chosen = min(eligible, key=lambda s: (s.num_params, s.ic))

    # Warm-start the full-count refit from the chosen candidate: counts
    # were integer-divided by d, so rates (and hence the intercept, on
    # the log scale) sit about log(d) higher on the unscaled table.
    beta0 = fetch_scaled(chosen.terms).coef.copy()
    beta0[0] += float(np.log(resolved))
    # A persistent warm-start store (installed by an Executor running
    # against an artifact store) may hold this exact fit's converged
    # coefficients from an earlier run; an exact digest match seeds the
    # solver at the answer.  The fit still runs to its own convergence.
    warm_store = fitkernel.get_warm_store()
    warm_spec = (
        dict(
            num_sources=table.num_sources,
            terms=chosen.terms,
            counts=table.counts,
            distribution=distribution,
            limit=limit,
            divisor=resolved,
        )
        if warm_store is not None
        else None
    )
    if warm_store is not None:
        stored = warm_store.lookup(**warm_spec)
        if fitkernel.usable_warm_start(stored, beta0.shape[0]):
            beta0 = stored
            fitkernel.record(warm_store_hits=1)
    final_model = LoglinearModel(table.num_sources, chosen.terms, validate=False)
    final_fit = final_model.fit(
        table, distribution=distribution, limit=limit, beta0=beta0
    )
    if warm_store is not None and final_fit.converged:
        warm_store.store(final_fit.coef, **warm_spec)
    return ModelSelection(
        fit=final_fit,
        divisor=resolved,
        criterion=criterion,
        selected_ic=chosen.ic,
        path=path,
    )


def select_model(
    table: ContingencyTable,
    criterion: str = "bic",
    divisor: int | str = "adaptive1000",
    max_order: int = 2,
    distribution: str = "poisson",
    limit: float | None = None,
    batch: bool | None = None,
) -> ModelSelection:
    """Stepwise model selection with the paper's heuristics.

    Forward search: start at independence, repeatedly add the
    interaction term (up to ``max_order`` sources) that lowers the IC
    most, computed on counts divided by ``divisor``; stop when nothing
    improves.  Then pick the simplest visited model within
    :data:`IC_MARGIN` of the best and refit it on the full counts.

    The search runs on the warm-started fit kernel: every candidate fit
    starts from its parent's coefficients (the one new column at 0),
    fits are memoised per term set so revisited models and the
    parsimony-rule refit never recompute, and the final full-count fit
    starts from the chosen candidate's coefficients with the intercept
    shifted by ``log(divisor)`` (undoing the count division).  Scores
    and estimates match the cold-start search within float tolerance.

    ``batch`` routes the candidate fits through the batched IRLS kernel
    (:func:`select_models_batched` with a single table); ``None`` defers
    to the process-wide default the Executor installs
    (:func:`repro.core.fitkernel.set_batch_fits`).  Both paths visit the
    same models and produce the same refit within float round-off.
    """
    if table.num_sources < 2:
        raise ValueError("capture-recapture needs at least two sources")
    if batch is None:
        batch = fitkernel.batch_fits_enabled()
    if batch:
        return select_models_batched(
            [table],
            criterion=criterion,
            divisor=divisor,
            max_order=max_order,
            distributions=distribution,
            limits=(limit,),
        )[0]
    scaled, resolved = _resolve_scaled(table, divisor)

    # Candidates are always scored with the plain Poisson likelihood:
    # it is the cheap fit, and the paper notes truncation "otherwise
    # makes little difference" outside small strata — the final model
    # is refit with the requested distribution.
    memo: dict[frozenset, FittedLoglinear] = {}

    def fit_scaled(
        terms: frozenset, parent: FittedLoglinear | None
    ) -> FittedLoglinear:
        cached = memo.get(terms)
        if cached is not None:
            fitkernel.record(memo_hits=1, iterations_saved=cached.iterations)
            return cached
        beta0 = (
            map_coefficients(parent.terms, parent.coef, terms)
            if parent is not None
            else None
        )
        fitted = LoglinearModel(scaled.num_sources, terms, validate=False).fit(
            scaled, distribution="poisson", beta0=beta0
        )
        memo[terms] = fitted
        return fitted

    current = main_effect_terms(table.num_sources)
    current_fit = fit_scaled(current, None)
    best = _score(current_fit, criterion)
    path = [best]
    while True:
        candidates = _candidate_terms(table.num_sources, current, max_order)
        if not candidates:
            break
        scores = [
            _score(fit_scaled(current | {term}, current_fit), criterion)
            for term in candidates
        ]
        challenger = min(scores, key=lambda s: s.ic)
        if challenger.ic >= best.ic:
            break
        best = challenger
        current = challenger.terms
        current_fit = fit_scaled(current, None)
        path.append(challenger)

    return _finalise(
        table,
        resolved,
        criterion,
        distribution,
        limit,
        path,
        lambda terms: fit_scaled(terms, None),
    )


def _term_mask(term: frozenset) -> int:
    """The history bitmask a term's indicator column flags supersets of."""
    mask = 0
    for source in term:
        mask |= 1 << source
    return mask


@dataclass
class _BatchJob:
    """One pending candidate fit inside the batched stepwise search."""

    state: "_SearchState"
    terms: frozenset
    design: np.ndarray
    layout: tuple  # term behind each design column past the intercept
    beta0: np.ndarray | None
    masks: tuple  # per-column history bitmasks (intercept first)


class _SearchState:
    """Per-table stepwise bookkeeping for :func:`select_models_batched`."""

    __slots__ = (
        "table",
        "scaled",
        "resolved",
        "distribution",
        "limit",
        "counts",
        "histories",
        "columns",
        "memo",
        "current",
        "current_fit",
        "best",
        "path",
        "active",
        "candidates",
    )

    def __init__(self, table, scaled, resolved, distribution, limit):
        self.table = table
        self.scaled = scaled
        self.resolved = resolved
        self.distribution = distribution
        self.limit = limit
        self.counts = np.ascontiguousarray(scaled.counts[1:], dtype=np.float64)
        self.histories = np.arange(1, 2**table.num_sources, dtype=np.uint32)
        self.columns: dict[frozenset, np.ndarray] = {}
        self.memo: dict[frozenset, FittedLoglinear] = {}
        self.path: list[CandidateScore] = []
        self.active = True
        self.candidates: list[frozenset] = []

    def column(self, term: frozenset) -> np.ndarray:
        """The design column of one term (memoised per table)."""
        col = self.columns.get(term)
        if col is None:
            mask = np.ones(self.histories.size, dtype=bool)
            for source in term:
                mask &= (
                    (self.histories >> np.uint32(source)) & np.uint32(1) == 1
                )
            col = mask.astype(np.float64)
            self.columns[term] = col
        return col

    def fetch(self, terms: frozenset) -> FittedLoglinear:
        """Memoised fit lookup, with the sequential path's counters."""
        cached = self.memo[terms]
        fitkernel.record(memo_hits=1, iterations_saved=cached.iterations)
        return cached


def _canonical_coef(
    coef: np.ndarray, layout: tuple, terms: frozenset
) -> np.ndarray:
    """Permute a fit's coefficients from batch layout to canonical order.

    Batched candidate designs append the new term's column after the
    parent's columns; the ML likelihood is invariant under column
    permutation, so only the coefficient vector needs reordering.
    """
    ordered = term_order(terms)
    if list(layout) == ordered:
        return coef
    position = {term: i for i, term in enumerate(layout, start=1)}
    out = np.empty_like(coef)
    out[0] = coef[0]
    for i, term in enumerate(ordered, start=1):
        out[i] = coef[position[term]]
    return out


def _run_batch_jobs(jobs: list[_BatchJob]) -> None:
    """Fit pending candidates, grouped by design shape, and memoise."""
    groups: dict[tuple[int, int], list[_BatchJob]] = {}
    for job in jobs:
        groups.setdefault(job.design.shape, []).append(job)
    for group in groups.values():
        designs = np.stack([job.design for job in group])
        counts = np.stack([job.state.counts for job in group])
        seeds = [job.beta0 for job in group]
        masks = np.array([job.masks for job in group], dtype=np.int64)
        fits = fit_poisson_batch(designs, counts, beta0=seeds, masks=masks)
        for job, fit in zip(group, fits):
            job.state.memo[job.terms] = FittedLoglinear(
                table=job.state.scaled,
                terms=job.terms,
                coef=_canonical_coef(fit.coef, job.layout, job.terms),
                fitted=fit.fitted,
                loglik=fit.loglik,
                distribution="poisson",
                limit=None,
                converged=fit.converged,
                iterations=fit.iterations,
            )


def select_models_batched(
    tables: Sequence[ContingencyTable],
    criterion: str = "bic",
    divisor: int | str = "adaptive1000",
    max_order: int = 2,
    distributions: str | Sequence[str] = "poisson",
    limits: Sequence[float | None] | None = None,
) -> list[ModelSelection]:
    """Stepwise selection over several tables with batched candidate fits.

    Runs the same forward search as :func:`select_model` on every table
    at once, round-synchronised: each round collects every (table,
    candidate) fit still pending across the whole collection, groups
    them by design shape, and sends each group through
    :func:`~repro.core.glm.fit_poisson_batch` — one batched
    normal-equations build and Cholesky per group per IRLS iteration
    instead of thousands of scalar ``dposv`` calls.  Candidate designs
    are assembled by appending the new term's indicator column to the
    parent's design (no per-candidate ``design_matrix`` build, whose
    cache thrashes under stepwise churn), and coefficients are permuted
    back to canonical term order afterwards — the likelihood is
    invariant under column permutation, so scores are unchanged.

    Tables may have different source counts; mixed shapes simply land
    in different batch groups.  ``distributions``/``limits`` give the
    final-refit settings per table (a single string broadcasts).  The
    final full-count refits run sequentially per table — identical code
    to the sequential path, each warm-started individually from the
    persistent fit-memo store when one is installed — so per-table
    results match :func:`select_model` within float round-off (well
    inside rtol 1e-8).
    """
    tables = list(tables)
    if not tables:
        return []
    if isinstance(distributions, str):
        distributions = [distributions] * len(tables)
    distributions = list(distributions)
    limits = [None] * len(tables) if limits is None else list(limits)
    if len(distributions) != len(tables) or len(limits) != len(tables):
        raise ValueError("distributions/limits must match the table count")

    states: list[_SearchState] = []
    for table, distribution, limit in zip(tables, distributions, limits):
        if table.num_sources < 2:
            raise ValueError("capture-recapture needs at least two sources")
        scaled, resolved = _resolve_scaled(table, divisor)
        states.append(_SearchState(table, scaled, resolved, distribution, limit))

    # Root fits (the independence model), batched across tables.
    jobs = []
    for state in states:
        state.current = main_effect_terms(state.table.num_sources)
        design, ordered = design_matrix(state.table.num_sources, state.current)
        masks = (0,) + tuple(_term_mask(term) for term in ordered)
        jobs.append(
            _BatchJob(state, state.current, design, tuple(ordered), None, masks)
        )
    _run_batch_jobs(jobs)
    for state in states:
        state.current_fit = state.memo[state.current]
        state.best = _score(state.current_fit, criterion)
        state.path.append(state.best)

    live = list(states)
    while live:
        jobs = []
        for state in live:
            state.candidates = _candidate_terms(
                state.table.num_sources, state.current, max_order
            )
            if not state.candidates:
                state.active = False
                continue
            parent_design, parent_ordered = design_matrix(
                state.table.num_sources, state.current
            )
            layout_head = tuple(parent_ordered)
            parent_masks = (0,) + tuple(
                _term_mask(term) for term in parent_ordered
            )
            for term in state.candidates:
                cand_terms = state.current | {term}
                cached = state.memo.get(cand_terms)
                if cached is not None:
                    fitkernel.record(
                        memo_hits=1, iterations_saved=cached.iterations
                    )
                    continue
                design = np.concatenate(
                    [parent_design, state.column(term)[:, None]], axis=1
                )
                beta0 = np.concatenate([state.current_fit.coef, [0.0]])
                jobs.append(
                    _BatchJob(
                        state,
                        cand_terms,
                        design,
                        layout_head + (term,),
                        beta0,
                        parent_masks + (_term_mask(term),),
                    )
                )
        _run_batch_jobs(jobs)
        for state in live:
            if not state.active:
                continue
            scores = [
                _score(state.memo[state.current | {term}], criterion)
                for term in state.candidates
            ]
            challenger = min(scores, key=lambda s: s.ic)
            if challenger.ic >= state.best.ic:
                state.active = False
                continue
            state.best = challenger
            state.current = challenger.terms
            state.current_fit = state.fetch(state.current)
            state.path.append(challenger)
        live = [state for state in live if state.active]

    return [
        _finalise(
            state.table,
            state.resolved,
            criterion,
            state.distribution,
            state.limit,
            state.path,
            state.fetch,
        )
        for state in states
    ]
