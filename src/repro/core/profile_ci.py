"""Profile-likelihood intervals for the population size (Section 3.3.3).

Following the procedure of Rcapture [23], the unseen count ``n_0`` is
profiled: for a candidate value the all-zero cell is added to the table
with count ``n_0`` (its design row is intercept-only) and the Poisson
log-linear model is refitted; the profile log-likelihood over ``n_0``
then yields a ``100 (1 - alpha) %`` interval via the chi-square
calibration ``2 [l_max - l(n_0)] <= chi2_{1, 1-alpha}``.

As the paper stresses, for these data the result is *not* a true
confidence interval — the sources are not random samples — so the
default ``alpha = 1e-7`` deliberately produces wide, heuristic
sensitivity ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core import fitkernel
from repro.core.design import design_matrix
from repro.core.glm import fit_poisson, fit_poisson_batch
from repro.core.histories import ContingencyTable

#: The paper's deliberately tiny alpha for wide heuristic ranges.
DEFAULT_ALPHA = 1e-7


@dataclass(frozen=True)
class ProfileInterval:
    """Profile-likelihood interval for the population size ``N``."""

    population_low: float
    population_high: float
    unseen_low: float
    unseen_high: float
    unseen_mode: float
    alpha: float

    def contains(self, population: float) -> bool:
        """Whether the interval covers ``population``."""
        return self.population_low <= population <= self.population_high


class _ProfileLoglik:
    """The profile curve ``n_0 -> l(n_0)``, memoised and warm-started.

    The golden-section and bisection scans evaluate hundreds of
    neighbouring ``n_0`` values; each evaluation refits the model, so
    (1) every fit is warm-started from the previous evaluation's
    coefficients — neighbouring profiles differ only slightly, and the
    IRLS then converges in a step or two — and (2) results are cached
    per exact ``n_0``, so the bracket-expansion and root-finding phases
    never refit a point the mode search already evaluated.

    ``unseen`` may be fractional; the factorial is continued via
    gammaln, which keeps the profile smooth for root finding.
    """

    def __init__(self, design_full: np.ndarray, observed_counts: np.ndarray):
        self._design = design_full
        self._observed = observed_counts
        self._coef: np.ndarray | None = None
        self._cache: dict[float, float] = {}

    def __call__(self, unseen: float) -> float:
        unseen = max(float(unseen), 0.0)
        cached = self._cache.get(unseen)
        if cached is not None:
            return cached
        counts = np.concatenate([[unseen], self._observed])
        fit = fit_poisson(self._design, counts, beta0=self._coef)
        self._coef = fit.coef
        # fit.loglik continues the factorial via gammaln on the
        # fractional n_0, exactly as the profile needs.
        value = fit.loglik
        self._cache[unseen] = value
        return value

    def many(self, values) -> list[float]:
        """Evaluate several ``n_0`` points, batching the uncached fits.

        All members share the profile's design, so the uncached points
        stack into one :func:`~repro.core.glm.fit_poisson_batch` call —
        every point warm-started from the last known coefficients.  Each
        fit converges to its own ML optimum regardless of the seed, so
        values match one-at-a-time evaluation to float round-off.
        """
        values = [max(float(v), 0.0) for v in values]
        missing: list[float] = []
        for v in values:
            if v not in self._cache and v not in missing:
                missing.append(v)
        if len(missing) >= 2:
            counts = np.stack(
                [np.concatenate([[v], self._observed]) for v in missing]
            )
            designs = np.broadcast_to(
                self._design, (len(missing), *self._design.shape)
            )
            beta0 = (
                None
                if self._coef is None
                else [self._coef] * len(missing)
            )
            fits = fit_poisson_batch(designs, counts, beta0=beta0)
            for v, fit in zip(missing, fits):
                self._cache[v] = fit.loglik
            self._coef = fits[-1].coef
        elif missing:
            self(missing[0])
        return [self._cache[v] for v in values]


def _profile_loglik(
    design_full: np.ndarray, observed_counts: np.ndarray, unseen: float
) -> float:
    """One cold evaluation of the profile log-likelihood (see
    :class:`_ProfileLoglik` for the scanning interface)."""
    return _ProfileLoglik(design_full, observed_counts)(unseen)


def profile_likelihood_interval(
    table: ContingencyTable,
    terms: frozenset,
    alpha: float = DEFAULT_ALPHA,
    max_expand: int = 60,
    batch: bool | None = None,
) -> ProfileInterval:
    """Profile-likelihood interval for ``N`` under the given model terms.

    ``batch`` routes the scan through the batched fit kernel: the
    bracket-expansion pairs, the golden-section seed pair, and the two
    root bisections (run in lockstep) each become one small
    :func:`~repro.core.glm.fit_poisson_batch` call instead of separate
    scalar fits.  ``None`` defers to the process-wide default
    (:func:`repro.core.fitkernel.set_batch_fits`); both paths follow the
    identical search trajectory and agree to float round-off.
    """
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if batch is None:
        batch = fitkernel.batch_fits_enabled()
    design_full, _ = design_matrix(
        table.num_sources, terms, include_unobserved=True
    )
    observed = table.counts[1:].astype(np.float64)
    M = table.num_observed

    # One memoised, warm-started profile curve shared by the bracket
    # expansion, the golden-section mode search, and both root finders.
    loglik = _ProfileLoglik(design_full, observed)
    pair = loglik.many if batch else None

    # Locate the mode: start from the closed-table fit's point estimate
    # and golden-section around it.
    from repro.core.loglinear import LoglinearModel  # local: avoid cycle

    point = LoglinearModel(table.num_sources, terms).fit(table).unseen_estimate()
    lo, hi = 0.0, max(4.0 * point + 10.0, 10.0)
    # Expand upward until the mode is bracketed.
    for _ in range(max_expand):
        if pair is not None:
            f_hi, f_lo = pair([hi, 0.75 * hi])
        else:
            f_hi, f_lo = loglik(hi), loglik(0.75 * hi)
        if f_hi < f_lo:
            break
        hi *= 2.0
    mode = _golden_max(loglik, lo, hi, pair=pair)
    ll_max = loglik(mode)
    threshold = ll_max - 0.5 * stats.chi2.ppf(1.0 - alpha, df=1)

    if batch:
        low, high = _lockstep(
            [
                _bisect_below(threshold, mode),
                _bisect_above(threshold, mode, max_expand),
            ],
            loglik.many,
        )
    else:
        low = _find_root_below(loglik, threshold, mode)
        high = _find_root_above(loglik, threshold, mode, max_expand)
    return ProfileInterval(
        population_low=M + low,
        population_high=M + high,
        unseen_low=low,
        unseen_high=high,
        unseen_mode=mode,
        alpha=alpha,
    )


def _golden_max(func, lo: float, hi: float, tol: float = 1e-3, pair=None) -> float:
    """Golden-section maximisation on [lo, hi].

    ``pair`` optionally evaluates the two seed points in one call (the
    batched profile scan); iterations place one new point each, so they
    stay scalar either way.
    """
    phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    if pair is not None:
        fc, fd = pair([c, d])
    else:
        fc, fd = func(c), func(d)
    while b - a > tol * (1.0 + abs(a) + abs(b)):
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = func(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = func(d)
    return 0.5 * (a + b)


def _find_root_below(func, threshold: float, mode: float) -> float:
    """Largest n <= mode with func(n) = threshold (0 if none)."""
    if func(0.0) >= threshold:
        return 0.0
    lo, hi = 0.0, mode
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if func(mid) < threshold:
            lo = mid
        else:
            hi = mid
        if hi - lo < max(1e-6, 1e-9 * mode):
            break
    return hi


def _find_root_above(func, threshold: float, mode: float, max_expand: int) -> float:
    """Smallest n >= mode with func(n) = threshold."""
    lo = mode
    hi = max(2.0 * mode + 10.0, 10.0)
    for _ in range(max_expand):
        if func(hi) < threshold:
            break
        lo = hi
        hi *= 2.0
    else:
        return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if func(mid) >= threshold:
            lo = mid
        else:
            hi = mid
        if hi - lo < max(1e-6, 1e-9 * hi):
            break
    return lo


def _bisect_below(threshold: float, mode: float):
    """Generator twin of :func:`_find_root_below`: yields the next point
    to evaluate, receives its profile value, returns the root."""
    if (yield 0.0) >= threshold:
        return 0.0
    lo, hi = 0.0, mode
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if (yield mid) < threshold:
            lo = mid
        else:
            hi = mid
        if hi - lo < max(1e-6, 1e-9 * mode):
            break
    return hi


def _bisect_above(threshold: float, mode: float, max_expand: int):
    """Generator twin of :func:`_find_root_above`."""
    lo = mode
    hi = max(2.0 * mode + 10.0, 10.0)
    for _ in range(max_expand):
        if (yield hi) < threshold:
            break
        lo = hi
        hi *= 2.0
    else:
        return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if (yield mid) >= threshold:
            lo = mid
        else:
            hi = mid
        if hi - lo < max(1e-6, 1e-9 * hi):
            break
    return lo


def _lockstep(searches, evaluate_many) -> list[float]:
    """Drive several point-request generators in lockstep.

    Each round collects one pending point per live search and evaluates
    them with a single ``evaluate_many`` call (one batched fit), so the
    low and high root searches advance together instead of issuing
    hundreds of scalar fits back to back.  Each generator follows its
    sequential twin's trajectory exactly.
    """
    results: list[float] = [0.0] * len(searches)
    pending: dict[int, float] = {}
    for i, gen in enumerate(searches):
        try:
            pending[i] = gen.send(None)
        except StopIteration as stop:
            results[i] = stop.value
    while pending:
        order = list(pending.items())
        values = evaluate_many([point for _, point in order])
        pending = {}
        for (i, _), value in zip(order, values):
            try:
                pending[i] = searches[i].send(value)
            except StopIteration as stop:
                results[i] = stop.value
    return results
