"""Profile-likelihood intervals for the population size (Section 3.3.3).

Following the procedure of Rcapture [23], the unseen count ``n_0`` is
profiled: for a candidate value the all-zero cell is added to the table
with count ``n_0`` (its design row is intercept-only) and the Poisson
log-linear model is refitted; the profile log-likelihood over ``n_0``
then yields a ``100 (1 - alpha) %`` interval via the chi-square
calibration ``2 [l_max - l(n_0)] <= chi2_{1, 1-alpha}``.

As the paper stresses, for these data the result is *not* a true
confidence interval — the sources are not random samples — so the
default ``alpha = 1e-7`` deliberately produces wide, heuristic
sensitivity ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.design import design_matrix
from repro.core.glm import fit_poisson
from repro.core.histories import ContingencyTable

#: The paper's deliberately tiny alpha for wide heuristic ranges.
DEFAULT_ALPHA = 1e-7


@dataclass(frozen=True)
class ProfileInterval:
    """Profile-likelihood interval for the population size ``N``."""

    population_low: float
    population_high: float
    unseen_low: float
    unseen_high: float
    unseen_mode: float
    alpha: float

    def contains(self, population: float) -> bool:
        """Whether the interval covers ``population``."""
        return self.population_low <= population <= self.population_high


class _ProfileLoglik:
    """The profile curve ``n_0 -> l(n_0)``, memoised and warm-started.

    The golden-section and bisection scans evaluate hundreds of
    neighbouring ``n_0`` values; each evaluation refits the model, so
    (1) every fit is warm-started from the previous evaluation's
    coefficients — neighbouring profiles differ only slightly, and the
    IRLS then converges in a step or two — and (2) results are cached
    per exact ``n_0``, so the bracket-expansion and root-finding phases
    never refit a point the mode search already evaluated.

    ``unseen`` may be fractional; the factorial is continued via
    gammaln, which keeps the profile smooth for root finding.
    """

    def __init__(self, design_full: np.ndarray, observed_counts: np.ndarray):
        self._design = design_full
        self._observed = observed_counts
        self._coef: np.ndarray | None = None
        self._cache: dict[float, float] = {}

    def __call__(self, unseen: float) -> float:
        unseen = max(float(unseen), 0.0)
        cached = self._cache.get(unseen)
        if cached is not None:
            return cached
        counts = np.concatenate([[unseen], self._observed])
        fit = fit_poisson(self._design, counts, beta0=self._coef)
        self._coef = fit.coef
        # fit.loglik continues the factorial via gammaln on the
        # fractional n_0, exactly as the profile needs.
        value = fit.loglik
        self._cache[unseen] = value
        return value


def _profile_loglik(
    design_full: np.ndarray, observed_counts: np.ndarray, unseen: float
) -> float:
    """One cold evaluation of the profile log-likelihood (see
    :class:`_ProfileLoglik` for the scanning interface)."""
    return _ProfileLoglik(design_full, observed_counts)(unseen)


def profile_likelihood_interval(
    table: ContingencyTable,
    terms: frozenset,
    alpha: float = DEFAULT_ALPHA,
    max_expand: int = 60,
) -> ProfileInterval:
    """Profile-likelihood interval for ``N`` under the given model terms."""
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    design_full, _ = design_matrix(
        table.num_sources, terms, include_unobserved=True
    )
    observed = table.counts[1:].astype(np.float64)
    M = table.num_observed

    # One memoised, warm-started profile curve shared by the bracket
    # expansion, the golden-section mode search, and both root finders.
    loglik = _ProfileLoglik(design_full, observed)

    # Locate the mode: start from the closed-table fit's point estimate
    # and golden-section around it.
    from repro.core.loglinear import LoglinearModel  # local: avoid cycle

    point = LoglinearModel(table.num_sources, terms).fit(table).unseen_estimate()
    lo, hi = 0.0, max(4.0 * point + 10.0, 10.0)
    # Expand upward until the mode is bracketed.
    for _ in range(max_expand):
        if loglik(hi) < loglik(0.75 * hi):
            break
        hi *= 2.0
    mode = _golden_max(loglik, lo, hi)
    ll_max = loglik(mode)
    threshold = ll_max - 0.5 * stats.chi2.ppf(1.0 - alpha, df=1)

    low = _find_root_below(loglik, threshold, mode)
    high = _find_root_above(loglik, threshold, mode, max_expand)
    return ProfileInterval(
        population_low=M + low,
        population_high=M + high,
        unseen_low=low,
        unseen_high=high,
        unseen_mode=mode,
        alpha=alpha,
    )


def _golden_max(func, lo: float, hi: float, tol: float = 1e-3) -> float:
    """Golden-section maximisation on [lo, hi]."""
    phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = func(c), func(d)
    while b - a > tol * (1.0 + abs(a) + abs(b)):
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = func(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = func(d)
    return 0.5 * (a + b)


def _find_root_below(func, threshold: float, mode: float) -> float:
    """Largest n <= mode with func(n) = threshold (0 if none)."""
    if func(0.0) >= threshold:
        return 0.0
    lo, hi = 0.0, mode
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if func(mid) < threshold:
            lo = mid
        else:
            hi = mid
        if hi - lo < max(1e-6, 1e-9 * mode):
            break
    return hi


def _find_root_above(func, threshold: float, mode: float, max_expand: int) -> float:
    """Smallest n >= mode with func(n) = threshold."""
    lo = mode
    hi = max(2.0 * mode + 10.0, 10.0)
    for _ in range(max_expand):
        if func(hi) < threshold:
            break
        lo = hi
        hi *= 2.0
    else:
        return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if func(mid) >= threshold:
            lo = mid
        else:
            hi = mid
        if hi - lo < max(1e-6, 1e-9 * hi):
            break
    return lo
