"""Profile-likelihood intervals for the population size (Section 3.3.3).

Following the procedure of Rcapture [23], the unseen count ``n_0`` is
profiled: for a candidate value the all-zero cell is added to the table
with count ``n_0`` (its design row is intercept-only) and the Poisson
log-linear model is refitted; the profile log-likelihood over ``n_0``
then yields a ``100 (1 - alpha) %`` interval via the chi-square
calibration ``2 [l_max - l(n_0)] <= chi2_{1, 1-alpha}``.

As the paper stresses, for these data the result is *not* a true
confidence interval — the sources are not random samples — so the
default ``alpha = 1e-7`` deliberately produces wide, heuristic
sensitivity ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats
from scipy.special import gammaln

from repro.core.design import design_matrix
from repro.core.glm import fit_poisson
from repro.core.histories import ContingencyTable

#: The paper's deliberately tiny alpha for wide heuristic ranges.
DEFAULT_ALPHA = 1e-7


@dataclass(frozen=True)
class ProfileInterval:
    """Profile-likelihood interval for the population size ``N``."""

    population_low: float
    population_high: float
    unseen_low: float
    unseen_high: float
    unseen_mode: float
    alpha: float

    def contains(self, population: float) -> bool:
        """Whether the interval covers ``population``."""
        return self.population_low <= population <= self.population_high


def _profile_loglik(
    design_full: np.ndarray, observed_counts: np.ndarray, unseen: float
) -> float:
    """Poisson log-likelihood with the all-zero cell set to ``unseen``.

    ``unseen`` may be fractional; the factorial is continued via
    gammaln, which keeps the profile smooth for root finding.
    """
    counts = np.concatenate([[unseen], observed_counts])
    fit = fit_poisson(design_full, counts)
    mu = np.maximum(fit.fitted, 1e-10)
    return float(np.sum(counts * np.log(mu) - mu - gammaln(counts + 1.0)))


def profile_likelihood_interval(
    table: ContingencyTable,
    terms: frozenset,
    alpha: float = DEFAULT_ALPHA,
    max_expand: int = 60,
) -> ProfileInterval:
    """Profile-likelihood interval for ``N`` under the given model terms."""
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    design_full, _ = design_matrix(
        table.num_sources, terms, include_unobserved=True
    )
    observed = table.counts[1:].astype(np.float64)
    M = table.num_observed

    def loglik(unseen: float) -> float:
        return _profile_loglik(design_full, observed, max(unseen, 0.0))

    # Locate the mode: start from the closed-table fit's point estimate
    # and golden-section around it.
    from repro.core.loglinear import LoglinearModel  # local: avoid cycle

    point = LoglinearModel(table.num_sources, terms).fit(table).unseen_estimate()
    lo, hi = 0.0, max(4.0 * point + 10.0, 10.0)
    # Expand upward until the mode is bracketed.
    for _ in range(max_expand):
        if loglik(hi) < loglik(0.75 * hi):
            break
        hi *= 2.0
    mode = _golden_max(loglik, lo, hi)
    ll_max = loglik(mode)
    threshold = ll_max - 0.5 * stats.chi2.ppf(1.0 - alpha, df=1)

    low = _find_root_below(loglik, threshold, mode)
    high = _find_root_above(loglik, threshold, mode, max_expand)
    return ProfileInterval(
        population_low=M + low,
        population_high=M + high,
        unseen_low=low,
        unseen_high=high,
        unseen_mode=mode,
        alpha=alpha,
    )


def _golden_max(func, lo: float, hi: float, tol: float = 1e-3) -> float:
    """Golden-section maximisation on [lo, hi]."""
    phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = func(c), func(d)
    while b - a > tol * (1.0 + abs(a) + abs(b)):
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = func(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = func(d)
    return 0.5 * (a + b)


def _find_root_below(func, threshold: float, mode: float) -> float:
    """Largest n <= mode with func(n) = threshold (0 if none)."""
    if func(0.0) >= threshold:
        return 0.0
    lo, hi = 0.0, mode
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if func(mid) < threshold:
            lo = mid
        else:
            hi = mid
        if hi - lo < max(1e-6, 1e-9 * mode):
            break
    return hi


def _find_root_above(func, threshold: float, mode: float, max_expand: int) -> float:
    """Smallest n >= mode with func(n) = threshold."""
    lo = mode
    hi = max(2.0 * mode + 10.0, 10.0)
    for _ in range(max_expand):
        if func(hi) < threshold:
            break
        lo = hi
        hi *= 2.0
    else:
        return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if func(mid) >= threshold:
            lo = mid
        else:
            hi = mid
        if hi - lo < max(1e-6, 1e-9 * hi):
            break
    return lo
