"""Capture histories and contingency tables.

A *capture history* records which of the ``t`` sources observed an
individual; it is a ``t``-bit string, stored here as an integer bitmask
with source ``i`` on bit ``i``.  The observed data reduces without loss
to the contingency table ``z_s`` counting individuals per history
(the paper's Table 1); everything downstream — L-P, Chao, the
log-linear models — consumes a :class:`ContingencyTable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.ipspace.ipset import IPSet


@dataclass(frozen=True)
class ContingencyTable:
    """Counts of individuals per capture history for ``t`` sources.

    ``counts`` has length ``2**t``; entry ``s`` is the number of
    individuals whose history bitmask is ``s``.  Entry 0 (never
    observed) is structurally zero — it is the unknown the models
    estimate.
    """

    num_sources: int
    counts: np.ndarray
    source_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        if counts.shape != (2**self.num_sources,):
            raise ValueError(
                f"counts must have length 2^{self.num_sources}, got {counts.shape}"
            )
        if counts[0] != 0:
            raise ValueError("history 0 (unobserved) must have count 0")
        if (counts < 0).any():
            raise ValueError("negative history count")
        object.__setattr__(self, "counts", counts)
        if self.source_names and len(self.source_names) != self.num_sources:
            raise ValueError("source_names length does not match num_sources")

    # -- aggregate views --------------------------------------------------

    @cached_property
    def _history_index(self) -> np.ndarray:
        """``np.arange(2**t)``, built once — source_total/overlap sit on
        the stratified hot path and were rebuilding it per call."""
        return np.arange(2**self.num_sources)

    @property
    def num_observed(self) -> int:
        """Total observed individuals ``M`` (all histories except 0)."""
        return int(self.counts.sum())

    def source_total(self, index: int) -> int:
        """Individuals captured by source ``index`` (any history with its bit)."""
        self._check_index(index)
        mask = (self._history_index >> index) & 1 == 1
        return int(self.counts[mask].sum())

    def overlap(self, i: int, j: int) -> int:
        """Individuals captured by both sources ``i`` and ``j``."""
        self._check_index(i)
        self._check_index(j)
        histories = self._history_index
        mask = ((histories >> i) & 1 == 1) & ((histories >> j) & 1 == 1)
        return int(self.counts[mask].sum())

    @cached_property
    def capture_frequencies(self) -> np.ndarray:
        """``f_k`` = number of individuals captured by exactly k sources.

        Index ``k`` runs 0..t; ``f_0`` is structurally 0.  These are the
        sufficient statistics for Chao-type estimators, consulted by
        every closed-population model — cached (and read-only) because
        the table is immutable.
        """
        histories = np.arange(2**self.num_sources, dtype=np.uint64)
        popcounts = np.zeros(2**self.num_sources, dtype=np.int64)
        for bit in range(self.num_sources):
            popcounts += ((histories >> np.uint64(bit)) & np.uint64(1)).astype(
                np.int64
            )
        freqs = np.zeros(self.num_sources + 1, dtype=np.int64)
        np.add.at(freqs, popcounts, self.counts)
        freqs.setflags(write=False)
        return freqs

    def positive_minimum(self) -> int:
        """Smallest strictly positive cell count (drives the adaptive divisor)."""
        positive = self.counts[self.counts > 0]
        return int(positive.min()) if positive.size else 0

    # -- transforms --------------------------------------------------------

    def collapse(self, keep: Sequence[int]) -> "ContingencyTable":
        """Marginalise onto the sources in ``keep`` (in the given order).

        Individuals seen only by dropped sources land in history 0 of
        the reduced table and are therefore *removed* (they become
        unobserved), matching how cross-validation restricts the data.
        """
        keep = list(keep)
        for index in keep:
            self._check_index(index)
        histories = self._history_index
        reduced = np.zeros(len(histories), dtype=np.int64)
        for new_bit, old_bit in enumerate(keep):
            reduced |= (((histories >> old_bit) & 1) << new_bit).astype(np.int64)
        new_counts = np.zeros(2 ** len(keep), dtype=np.int64)
        np.add.at(new_counts, reduced, self.counts)
        new_counts[0] = 0
        names = (
            tuple(self.source_names[i] for i in keep) if self.source_names else ()
        )
        return ContingencyTable(len(keep), new_counts, names)

    def scaled(self, divisor: int) -> "ContingencyTable":
        """Counts integer-divided by ``divisor`` (the paper's d heuristic)."""
        if divisor < 1:
            raise ValueError(f"divisor must be >= 1, got {divisor}")
        return ContingencyTable(
            self.num_sources, self.counts // divisor, self.source_names
        )

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_sources:
            raise IndexError(f"source index {index} out of range")

    def __repr__(self) -> str:
        return (
            f"ContingencyTable(t={self.num_sources}, M={self.num_observed}, "
            f"cells={np.count_nonzero(self.counts)})"
        )


def history_masks(member_arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Union of individuals and their history bitmask per individual.

    ``member_arrays`` holds one sorted-unique ``uint32`` array per
    source.  Returns ``(individuals, masks)`` where ``individuals`` is
    the sorted union and ``masks[i]`` is the capture-history bitmask of
    ``individuals[i]``.
    """
    arrays = [np.asarray(arr, dtype=np.uint32) for arr in member_arrays]
    if not arrays:
        raise ValueError("at least one source required")
    union = np.unique(np.concatenate(arrays))
    masks = np.zeros(union.shape, dtype=np.uint32)
    for bit, arr in enumerate(arrays):
        if arr.size == 0:
            continue  # empty sources contribute no bits (but keep their bit index)
        idx = np.searchsorted(union, arr)
        masks[idx] |= np.uint32(1 << bit)
    return union, masks


def tabulate_histories(
    sources: Sequence[IPSet] | dict[str, IPSet],
) -> ContingencyTable:
    """Build the contingency table for a collection of sources.

    Accepts either a sequence of :class:`IPSet` or a name -> IPSet
    mapping (names are preserved on the table).
    """
    if isinstance(sources, dict):
        names = tuple(sources.keys())
        sets = list(sources.values())
    else:
        sets = list(sources)
        names = ()
    if not sets:
        raise ValueError("at least one source required")
    arrays = [s.addresses for s in sets]
    _, masks = history_masks(arrays)
    counts = np.bincount(masks, minlength=2 ** len(sets)).astype(np.int64)
    counts[0] = 0
    return ContingencyTable(len(sets), counts, names)


def tabulate_within_universe(
    universe: IPSet, sources: Sequence[IPSet] | dict[str, IPSet]
) -> tuple[ContingencyTable, int]:
    """Table of sources restricted to ``universe`` plus the true unseen count.

    This is the cross-validation primitive: with ``universe`` playing
    the role of the total population, the second return value is the
    number of universe members no (restricted) source observed —
    the quantity CR must estimate.
    """
    if isinstance(sources, dict):
        restricted: Sequence[IPSet] | dict[str, IPSet] = {
            name: s.intersection(universe) for name, s in sources.items()
        }
        sets = list(restricted.values())
    else:
        restricted = [s.intersection(universe) for s in sources]
        sets = list(restricted)
    table = tabulate_histories(restricted)
    observed_union = IPSet.empty().union(*sets) if sets else IPSet.empty()
    unseen = len(universe) - len(observed_union)
    return table, unseen
