"""Capture-recapture statistics core.

This package implements the paper's primary contribution: log-linear
capture-recapture models over arbitrarily many sources (Section 3.3)
with Poisson and right-truncated-Poisson likelihoods, AIC/BIC model
selection with the count-division heuristic, profile-likelihood
intervals, and stratified estimation.  Two classic estimators —
Lincoln-Petersen (Section 3.2) and Chao's heterogeneity lower bound —
are included as baselines.
"""

from repro.core.chao import chao_estimate
from repro.core.closed_models import (
    ClosedModelEstimate,
    fit_all_closed_models,
    fit_m0,
    fit_mb,
    fit_mh_jackknife,
    fit_mt,
)
from repro.core.bootstrap import BootstrapResult, bootstrap_population
from repro.core.coverage import CoverageEstimate, ace_estimate
from repro.core.diagnostics import FitDiagnostics, diagnose_fit
from repro.core.private import (
    blind_source,
    generate_session_key,
    private_contingency_table,
    tabulate_blinded,
)
from repro.core.design import LoglinearTerms, design_matrix, hierarchical_closure
from repro.core.fitkernel import FitCounters, weighted_least_squares
from repro.core.estimator import CaptureRecapture, EstimatorOptions
from repro.core.histories import ContingencyTable, tabulate_histories
from repro.core.lincoln_petersen import (
    chapman_estimate,
    lincoln_petersen_estimate,
    lincoln_petersen_from_sets,
)
from repro.core.loglinear import LoglinearModel, PopulationEstimate
from repro.core.profile_ci import profile_likelihood_interval
from repro.core.selection import (
    ModelSelection,
    adaptive_divisor,
    information_criterion,
    select_model,
)
from repro.core.stratified import StratifiedEstimate, stratified_estimate

__all__ = [
    "BootstrapResult",
    "CaptureRecapture",
    "ClosedModelEstimate",
    "ContingencyTable",
    "CoverageEstimate",
    "FitCounters",
    "FitDiagnostics",
    "ace_estimate",
    "bootstrap_population",
    "diagnose_fit",
    "blind_source",
    "fit_all_closed_models",
    "fit_m0",
    "fit_mb",
    "fit_mh_jackknife",
    "fit_mt",
    "generate_session_key",
    "private_contingency_table",
    "tabulate_blinded",
    "EstimatorOptions",
    "LoglinearModel",
    "LoglinearTerms",
    "ModelSelection",
    "PopulationEstimate",
    "StratifiedEstimate",
    "adaptive_divisor",
    "chao_estimate",
    "chapman_estimate",
    "design_matrix",
    "hierarchical_closure",
    "information_criterion",
    "lincoln_petersen_estimate",
    "lincoln_petersen_from_sets",
    "profile_likelihood_interval",
    "select_model",
    "stratified_estimate",
    "tabulate_histories",
    "weighted_least_squares",
]
