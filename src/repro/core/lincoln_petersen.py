"""Two-sample Lincoln-Petersen estimation (the paper's Section 3.2).

The L-P estimator is included as the pedagogical baseline the paper
uses to introduce capture-recapture, together with Chapman's
bias-corrected variant and the classical variance.  The paper does not
*use* L-P for its results (its independence and homogeneity assumptions
fail for the IPv4 sources); the ablation bench quantifies that failure
against the log-linear models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy import stats

from repro.ipspace.ipset import IPSet


class CaptureRecaptureError(ValueError):
    """Raised when an estimator's inputs are degenerate (e.g. no recaptures)."""


@dataclass(frozen=True)
class TwoSampleEstimate:
    """Result of a two-sample estimator.

    ``population`` is the point estimate N-hat; ``ci_low``/``ci_high``
    bound a normal-approximation confidence interval (may equal the
    point estimate when the variance is undefined).
    """

    population: float
    variance: float
    ci_low: float
    ci_high: float
    first_sample: int
    second_sample: int
    recaptured: int

    @property
    def unseen(self) -> float:
        """Estimated individuals in neither sample."""
        union = (
            self.first_sample + self.second_sample - self.recaptured
        )
        return max(0.0, self.population - union)


def lincoln_petersen_estimate(
    first: int, second: int, recaptured: int, confidence: float = 0.95
) -> TwoSampleEstimate:
    """Classic L-P estimate ``N = M C / R`` with normal-theory CI.

    ``first`` is M (individuals in sample 1), ``second`` is C, and
    ``recaptured`` is R, the overlap.  Raises
    :class:`CaptureRecaptureError` when R is zero (N is unbounded).
    """
    _check_counts(first, second, recaptured)
    if recaptured == 0:
        raise CaptureRecaptureError("no recaptures: L-P estimate is unbounded")
    population = first * second / recaptured
    variance = (
        first
        * second
        * (first - recaptured)
        * (second - recaptured)
        / recaptured**3
    )
    return _with_interval(
        population, variance, first, second, recaptured, confidence
    )


def chapman_estimate(
    first: int, second: int, recaptured: int, confidence: float = 0.95
) -> TwoSampleEstimate:
    """Chapman's bias-corrected L-P variant (finite even when R = 0)."""
    _check_counts(first, second, recaptured)
    population = (first + 1) * (second + 1) / (recaptured + 1) - 1
    variance = (
        (first + 1)
        * (second + 1)
        * (first - recaptured)
        * (second - recaptured)
        / ((recaptured + 1) ** 2 * (recaptured + 2))
    )
    return _with_interval(
        population, variance, first, second, recaptured, confidence
    )


def lincoln_petersen_from_sets(
    sample1: IPSet, sample2: IPSet, confidence: float = 0.95
) -> TwoSampleEstimate:
    """L-P estimate straight from two address sets."""
    recaptured = sample1.overlap_count(sample2)
    return lincoln_petersen_estimate(
        len(sample1), len(sample2), recaptured, confidence
    )


def pairwise_chapman_matrix(
    datasets: Mapping[str, IPSet]
) -> tuple[tuple[str, ...], np.ndarray]:
    """Symmetric matrix of pairwise Chapman population estimates.

    Entry ``(i, j)`` is the two-sample Chapman estimate computed from
    sources ``i`` and ``j`` alone; the diagonal is NaN.  Chapman's
    variant is used (not classic L-P) because it stays finite when a
    pair has zero overlap — exactly the degenerate geometry a broken
    source produces.  The matrix is the integrity layer's consensus
    structure: under the paper's assumptions every pair estimates the
    same population, so a source whose row systematically departs from
    the global level disagrees with the consensus overlap structure.
    """
    names = tuple(datasets)
    matrix = np.full((len(names), len(names)), np.nan, dtype=np.float64)
    sets = [datasets[name] for name in names]
    sizes = [len(s) for s in sets]
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            recaptured = sets[i].overlap_count(sets[j])
            estimate = chapman_estimate(sizes[i], sizes[j], recaptured)
            matrix[i, j] = matrix[j, i] = estimate.population
    return names, matrix


def _check_counts(first: int, second: int, recaptured: int) -> None:
    if first < 0 or second < 0 or recaptured < 0:
        raise CaptureRecaptureError("sample counts must be non-negative")
    if recaptured > min(first, second):
        raise CaptureRecaptureError(
            "recaptures cannot exceed either sample size"
        )


def _with_interval(
    population: float,
    variance: float,
    first: int,
    second: int,
    recaptured: int,
    confidence: float,
) -> TwoSampleEstimate:
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    union = first + second - recaptured
    z = stats.norm.ppf(0.5 + confidence / 2)
    spread = z * np.sqrt(max(variance, 0.0))
    return TwoSampleEstimate(
        population=population,
        variance=variance,
        ci_low=max(float(union), population - spread),
        ci_high=population + spread,
        first_sample=first,
        second_sample=second,
        recaptured=recaptured,
    )
