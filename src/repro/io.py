"""Dataset and result persistence.

Measurement campaigns are long; users want to snapshot the collected
datasets and the per-window results and reload them later (or exchange
them — the address sets serialise to a compact ``.npz``, the metadata
to JSON).  Formats:

* :func:`save_datasets` / :func:`load_datasets` — a named mapping of
  :class:`~repro.ipspace.ipset.IPSet` into one ``.npz`` file (one
  ``uint32`` array per source).
* :func:`save_table` / :func:`load_table` — a contingency table as
  JSON (source names + non-zero cells).
* :func:`save_window_results` / :func:`load_window_results` — the
  pipeline's per-window scalar summary as a JSON list, sufficient to
  regenerate every growth figure without rerunning estimation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.windows import TimeWindow
from repro.core.histories import ContingencyTable
from repro.ipspace.ipset import IPSet


def save_datasets(path: str | Path, datasets: Mapping[str, IPSet]) -> None:
    """Write named address sets to a compressed ``.npz``."""
    arrays = {name: ipset.addresses for name, ipset in datasets.items()}
    np.savez_compressed(Path(path), **arrays)


def load_datasets(path: str | Path) -> dict[str, IPSet]:
    """Read named address sets written by :func:`save_datasets`."""
    with np.load(Path(path)) as archive:
        out = {}
        for name in archive.files:
            arr = archive[name].astype(np.uint32)
            out[name] = IPSet.from_sorted_unique(np.unique(arr))
        return out


def save_table(path: str | Path, table: ContingencyTable) -> None:
    """Write a contingency table as JSON (sparse cell encoding)."""
    cells = {
        str(history): int(count)
        for history, count in enumerate(table.counts)
        if count
    }
    payload = {
        "num_sources": table.num_sources,
        "source_names": list(table.source_names),
        "cells": cells,
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_table(path: str | Path) -> ContingencyTable:
    """Read a contingency table written by :func:`save_table`."""
    payload = json.loads(Path(path).read_text())
    num_sources = int(payload["num_sources"])
    counts = np.zeros(2**num_sources, dtype=np.int64)
    for history, count in payload["cells"].items():
        counts[int(history)] = int(count)
    return ContingencyTable(
        num_sources, counts, tuple(payload.get("source_names", ()))
    )


#: Scalar fields of a WindowResult worth persisting.
_RESULT_FIELDS = (
    "routed_addresses",
    "routed_subnets",
    "observed_addresses",
    "observed_subnets",
    "ping_addresses",
    "ping_subnets",
    "truth_addresses",
    "truth_subnets",
)


def save_window_results(path: str | Path, results: Sequence) -> None:
    """Persist pipeline window summaries (scalars only) as JSON."""
    rows = []
    for r in results:
        row = {
            "start": r.window.start,
            "end": r.window.end,
            "estimated_addresses": float(r.estimated_addresses),
            "estimated_subnets": float(r.estimated_subnets),
        }
        for field in _RESULT_FIELDS:
            row[field] = int(getattr(r, field))
        rows.append(row)
    Path(path).write_text(json.dumps(rows, indent=1))


class StoredWindowResult:
    """A reloaded window summary, duck-typed for the growth analyses."""

    def __init__(self, payload: dict):
        self.window = TimeWindow(payload["start"], payload["end"])
        self.estimated_addresses = float(payload["estimated_addresses"])
        self.estimated_subnets = float(payload["estimated_subnets"])
        for field in _RESULT_FIELDS:
            setattr(self, field, int(payload[field]))


def load_window_results(path: str | Path) -> list[StoredWindowResult]:
    """Reload summaries written by :func:`save_window_results`."""
    rows = json.loads(Path(path).read_text())
    return [StoredWindowResult(row) for row in rows]
