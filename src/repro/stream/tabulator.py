"""Incremental contingency-table maintenance in O(changed cells).

:class:`IncrementalTabulator` holds the same state
:func:`~repro.core.histories.tabulate_histories` derives from scratch —
per-history cell counts, optionally per stratum — but updates it as
deltas arrive: an address whose capture-history bitmask flips moves one
unit of count from its old cell to its new cell, and nothing else is
touched.  A delta batch therefore costs O(addresses in the batch), not
O(union of all sources), and the table for *any* source subset or
stratum is available at any moment without a rescan.

Membership is refcounted per (source, address): the streaming window
spans several quarters and the same source may observe an address in
more than one of them, so an expiring quarter must not evict an address
another in-window quarter still vouches for.  ``add`` increments,
``remove`` decrements, and the history bit is set exactly while the
count is positive.  Removing an address that is not present is an
error — silent tolerance there would let a buggy caller drift away
from the from-scratch truth :meth:`verify` checks against.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.core.histories import ContingencyTable, tabulate_histories
from repro.core.stratified import Labeler, split_sources_by_label
from repro.ipspace.ipset import IPSet

_SINGLE_STRATUM: Hashable = None

#: Sentinel asking :meth:`IncrementalTabulator.table` for the combined
#: (all-strata) table; ``None`` itself stays usable as a stratum label.
COMBINED = object()


class TabulatorDriftError(AssertionError):
    """Incremental state diverged from from-scratch tabulation."""


class IncrementalTabulator:
    """Contingency-table cell counts maintained under add/remove deltas."""

    def __init__(
        self,
        source_names: Iterable[str],
        *,
        labeler: Labeler | None = None,
    ) -> None:
        self.source_names: tuple[str, ...] = tuple(source_names)
        if not self.source_names:
            raise ValueError("at least one source required")
        if len(set(self.source_names)) != len(self.source_names):
            raise ValueError("duplicate source names")
        self.labeler = labeler
        self._bits = {name: bit for bit, name in enumerate(self.source_names)}
        self._cells = 2 ** len(self.source_names)
        # addr -> current history bitmask (absent == history 0).
        self._masks: dict[int, int] = {}
        # addr -> stratum label, computed once (labels are pure in addr).
        self._labels: dict[int, Hashable] = {}
        # per source: addr -> quarters-vouching refcount.
        self._refs: dict[str, dict[int, int]] = {
            name: {} for name in self.source_names
        }
        # per stratum: 2^t cell counts (history 0 structurally zero).
        self._counts: dict[Hashable, np.ndarray] = {}
        self.deltas_applied = 0
        self.addresses_touched = 0
        self.cells_touched = 0

    @property
    def num_sources(self) -> int:
        return len(self.source_names)

    # -- updates -----------------------------------------------------------

    def _label_of(self, addr: int) -> Hashable:
        if self.labeler is None:
            return _SINGLE_STRATUM
        label = self._labels.get(addr)
        if label is None and addr not in self._labels:
            raw = self.labeler(np.asarray([addr], dtype=np.uint32))[0]
            label = raw.item() if hasattr(raw, "item") else raw
            self._labels[addr] = label
        return label

    def _counts_for(self, label: Hashable) -> np.ndarray:
        counts = self._counts.get(label)
        if counts is None:
            counts = np.zeros(self._cells, dtype=np.int64)
            self._counts[label] = counts
        return counts

    def _move(self, addr: int, old_mask: int, new_mask: int) -> None:
        counts = self._counts_for(self._label_of(addr))
        if old_mask:
            counts[old_mask] -= 1
            self.cells_touched += 1
        if new_mask:
            counts[new_mask] += 1
            self._masks[addr] = new_mask
            self.cells_touched += 1
        else:
            del self._masks[addr]

    def add(self, source: str, addresses: Iterable[int] | np.ndarray) -> int:
        """Record one more observation of each address by ``source``.

        Returns the number of addresses whose history bit turned on.
        """
        bit = 1 << self._bits[source]
        refs = self._refs[source]
        flipped = 0
        for addr in np.asarray(
            list(addresses) if not isinstance(addresses, np.ndarray) else addresses,
            dtype=np.uint32,
        ).tolist():
            count = refs.get(addr, 0)
            refs[addr] = count + 1
            self.addresses_touched += 1
            if count == 0:
                old = self._masks.get(addr, 0)
                self._move(addr, old, old | bit)
                flipped += 1
        self.deltas_applied += 1
        return flipped

    def remove(self, source: str, addresses: Iterable[int] | np.ndarray) -> int:
        """Withdraw one observation of each address by ``source``.

        Returns the number of addresses whose history bit turned off.
        """
        bit = 1 << self._bits[source]
        refs = self._refs[source]
        flipped = 0
        for addr in np.asarray(
            list(addresses) if not isinstance(addresses, np.ndarray) else addresses,
            dtype=np.uint32,
        ).tolist():
            count = refs.get(addr, 0)
            if count <= 0:
                raise ValueError(
                    f"remove of address {addr} not observed by {source!r}"
                )
            self.addresses_touched += 1
            if count == 1:
                del refs[addr]
                old = self._masks[addr]
                self._move(addr, old, old & ~bit)
                flipped += 1
            else:
                refs[addr] = count - 1
        self.deltas_applied += 1
        return flipped

    # -- views -------------------------------------------------------------

    def members(self, source: str) -> IPSet:
        """Current membership of one source (refcount > 0)."""
        refs = self._refs[source]
        return IPSet(np.fromiter(refs.keys(), dtype=np.uint32, count=len(refs)))

    def sets(self) -> dict[str, IPSet]:
        """All current source memberships, in declared order."""
        return {name: self.members(name) for name in self.source_names}

    def _nonempty_names(self) -> tuple[str, ...]:
        return tuple(n for n in self.source_names if self._refs[n])

    def _combined_counts(self) -> np.ndarray:
        total = np.zeros(self._cells, dtype=np.int64)
        for counts in self._counts.values():
            total += counts
        return total

    def table(
        self, *, stratum: Hashable = COMBINED, drop_empty: bool = False
    ) -> ContingencyTable:
        """The current contingency table (one stratum, or combined).

        The default is the combined table across every stratum (the
        whole population when no labeler is set).  ``drop_empty``
        marginalises away sources with no current members — the batch
        pipeline's per-window empty-source-drop path (empty sources
        contribute no bits, so the collapse only relabels cells).
        """
        if stratum is COMBINED:
            counts = self._combined_counts()
        else:
            counts = self._counts.get(stratum)
            counts = counts.copy() if counts is not None else np.zeros(
                self._cells, dtype=np.int64
            )
        table = ContingencyTable(self.num_sources, counts, self.source_names)
        if drop_empty:
            keep = [self._bits[name] for name in self._nonempty_names()]
            if len(keep) != self.num_sources:
                table = table.collapse(keep)
        return table

    def tables(self) -> dict[Hashable, ContingencyTable]:
        """Per-stratum tables for every stratum seen so far."""
        return {
            label: ContingencyTable(
                self.num_sources, counts.copy(), self.source_names
            )
            for label, counts in sorted(
                self._counts.items(), key=lambda item: repr(item[0])
            )
        }

    @property
    def num_observed(self) -> int:
        """Total currently observed individuals across all strata."""
        return int(self._combined_counts().sum())

    def observed_union(self) -> IPSet:
        """Union of every source's current membership."""
        masks = self._masks
        return IPSet(np.fromiter(masks.keys(), dtype=np.uint32, count=len(masks)))

    # -- verification ------------------------------------------------------

    def verify(self) -> None:
        """Check every cell against from-scratch tabulation, or raise.

        Rebuilds the table(s) with
        :func:`~repro.core.histories.tabulate_histories` from the
        current memberships and compares cell-for-cell; per-stratum
        counts are additionally checked against
        :func:`~repro.core.stratified.split_sources_by_label`.
        """
        sets = self.sets()
        scratch = tabulate_histories(sets)
        live = self.table()
        if not np.array_equal(scratch.counts, live.counts):
            diff = int(np.count_nonzero(scratch.counts != live.counts))
            raise TabulatorDriftError(
                f"incremental table diverged from scratch in {diff} cells"
            )
        if self.labeler is not None:
            per_label = split_sources_by_label(sets, self.labeler)
            seen = {
                label for label, counts in self._counts.items()
                if counts.any()
            }
            for label, split in per_label.items():
                expected = tabulate_histories(split)
                got = self.table(stratum=label)
                if not np.array_equal(expected.counts, got.counts):
                    diff = int(
                        np.count_nonzero(expected.counts != got.counts)
                    )
                    raise TabulatorDriftError(
                        f"stratum {label!r} diverged from scratch in {diff} cells"
                    )
                seen.discard(label)
            if seen:
                raise TabulatorDriftError(
                    f"live strata {sorted(map(repr, seen))} hold counts "
                    "but no members exist there"
                )

    def counters(self) -> Mapping[str, int]:
        """Monotonic update counters, for the obs registry."""
        return {
            "deltas_applied": self.deltas_applied,
            "addresses_touched": self.addresses_touched,
            "cells_touched": self.cells_touched,
        }
