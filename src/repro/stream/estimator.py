"""Streaming estimation over a delta journal.

:class:`StreamEstimator` tails a :class:`~repro.stream.journal.DeltaJournal`
and turns it into the same artifacts the batch pipeline produces:

* **ingest** replays committed deltas into per-(source, quarter)
  membership arrays and an :class:`~repro.stream.tabulator.IncrementalTabulator`
  tracking the live sliding window in O(changed cells);
* **close** materialises a window through the ordinary stage pipeline —
  an :class:`~repro.engine.executor.Executor` over
  :class:`JournalSource` views of the journaled quarters — so spoof
  filtering, integrity scoring, quarantine→refit and the estimates
  themselves are *exactly* the batch computation (parity is by
  construction, not approximation), with the final refits warm-started
  from the previous window's coefficients;
* **snapshot** persists the whole stream state through the
  content-addressed :class:`~repro.engine.store.ArtifactStore`, and
  :meth:`StreamEstimator.resume` restores it and re-ingests only the
  journal tail.

Late events are first-class: a delta for an already-closed window bumps
the stream's data version, the affected windows show up in
:meth:`stale_windows`, and re-closing them emits a revised result with
an incremented revision counter.

Correctness note on caching: artifact keys are content-addressed in
*parameters* (window bounds + options), not in data, because batch
sources are immutable for a run.  Journaled data mutates, so the
stream uses a fresh per-version :class:`~repro.engine.artifacts.ArtifactCache`
— never the persistent artifact tier — for window closes; only
snapshots and fit-memo coefficients (which seed solvers without
changing their fixed point) touch the persistent store.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.engine.artifacts import MISS, ArtifactCache, ArtifactKey
from repro.engine.executor import ExecutionPolicy, Executor
from repro.engine.report import RunReport
from repro.engine.stages import PipelineOptions, WindowResult
from repro.ipspace.ipset import IPSet
from repro.obs.observer import Observer
from repro.sources.base import MeasurementSource, quarter_bounds, quarter_of
from repro.stream.journal import DeltaJournal, ObservationDelta, SourceRecord
from repro.stream.tabulator import IncrementalTabulator

if TYPE_CHECKING:
    from repro.analysis.growth import GrowthSeries
    from repro.analysis.windows import TimeWindow
    from repro.engine.faults import FaultInjector
    from repro.engine.store import ArtifactStore

#: Stage name of persisted stream snapshots in the artifact store.
SNAPSHOT_STAGE = "stream_snapshot"

#: The sliding live window spans this many trailing quarters (1 year,
#: matching the batch sweep's window length).
LIVE_WINDOW_QUARTERS = 4

_EMPTY = np.zeros(0, dtype=np.uint32)


class JournalSource(MeasurementSource):
    """A measurement source materialised from journaled quarters.

    ``collect`` reproduces :meth:`repro.sources.base.QuarterlySource.collect`
    over the journal's per-quarter membership arrays — same availability
    clipping, same quarter arithmetic — so every stage downstream sees
    byte-identical datasets to a live batch collection of the same
    history.
    """

    def __init__(
        self,
        name: str,
        available_from: float,
        available_to: float,
        quarters: Mapping[int, np.ndarray],
    ) -> None:
        super().__init__(name, available_from, available_to)
        self._quarters = dict(quarters)

    def quarter_set(self, index: int) -> np.ndarray:
        """Sorted-unique journaled addresses for one quarter."""
        return self._quarters.get(index, _EMPTY)

    def collect(self, start: float, end: float) -> IPSet:
        lo = max(start, self.available_from)
        hi = min(end, self.available_to)
        if lo >= hi:
            return IPSet.empty()
        first = quarter_of(lo)
        last = quarter_of(hi - 1e-9)
        chunks = [self.quarter_set(q) for q in range(first, last + 1)]
        chunks = [c for c in chunks if c.size]
        if not chunks:
            return IPSet.empty()
        return IPSet.from_sorted_unique(np.unique(np.concatenate(chunks)))


class _StreamWarmStore:
    """Warm-start coefficients chained across stream windows.

    Implements the :class:`~repro.engine.store.FitMemoStore` lookup/
    store contract the selection layer consults for the final refit.
    Lookups try the persistent exact-digest memo first (identical fit
    seen before — start at the answer), then fall back to the last
    converged fit for the *identical model*: same source count, same
    term set, same distribution, and a truncation limit in the same
    regime.  That exact-structure requirement is deliberate: the
    truncated likelihood is multi-modal, and seeding a refit from a
    merely *similar* model (e.g. coefficients bridged across a
    different term set) can start the solver in a different basin and
    converge to a materially different estimate — which would break the
    stream's rtol-1e-8 parity with the batch pipeline.  Exact-structure
    seeds start at (or next to) the shared optimum, so revisions and
    repeat selections converge to the same fixed point, just faster.
    """

    def __init__(self, base: Any | None = None) -> None:
        self.base = base
        # chain key -> [(converged coefficients, truncation limit), ...]
        # — one entry per limit regime (the address- and subnet-level
        # fits can share a term set; see _comparable_limits).
        self._previous: dict[
            tuple, list[tuple[np.ndarray, float | None]]
        ] = {}
        self.exact_hits = 0
        self.previous_hits = 0

    @staticmethod
    def _chain_key(spec: Mapping[str, Any]) -> tuple:
        terms = spec.get("terms")
        return (
            spec.get("num_sources"),
            frozenset(terms) if terms is not None else None,
            spec.get("distribution"),
        )

    @staticmethod
    def _comparable_limits(a: float | None, b: float | None) -> bool:
        # The truncation limit is the routed-space bound: it drifts a
        # few percent between adjacent windows but differs ~256x between
        # the address- and subnet-level fits.  Seeding across that gap
        # starts the solver far from the optimum, so only chain when
        # the limits are close.
        if a is None or b is None:
            return a is None and b is None
        if a <= 0 or b <= 0:
            return False
        ratio = a / b
        return 0.5 <= ratio <= 2.0

    def lookup(self, **spec: Any) -> np.ndarray | None:
        if self.base is not None:
            stored = self.base.lookup(**spec)
            if stored is not None:
                self.exact_hits += 1
                return stored
        entries = self._previous.get(self._chain_key(spec), [])
        limit = spec.get("limit")
        for previous_coef, previous_limit in entries:
            if self._comparable_limits(limit, previous_limit):
                self.previous_hits += 1
                return previous_coef
        return None

    def store(self, coef: np.ndarray, **spec: Any) -> None:
        coef = np.asarray(coef, dtype=np.float64)
        if self.base is not None:
            self.base.store(coef, **spec)
        if spec.get("terms") is None:
            return
        limit = spec.get("limit")
        entries = self._previous.setdefault(self._chain_key(spec), [])
        entry = (coef, limit)
        for i, (_, stored_limit) in enumerate(entries):
            if self._comparable_limits(limit, stored_limit):
                entries[i] = entry
                return
        entries.append(entry)


class ClosedWindow:
    """One closed (or revised) window and the stream state it saw."""

    __slots__ = ("result", "version", "last_seq", "revision")

    def __init__(
        self,
        result: WindowResult,
        version: int,
        last_seq: int,
        revision: int = 0,
    ) -> None:
        self.result = result
        self.version = version
        self.last_seq = last_seq
        self.revision = revision


class StreamEstimator:
    """Incremental estimation: ingest deltas, close windows on demand."""

    def __init__(
        self,
        internet,
        journal: DeltaJournal,
        *,
        options: PipelineOptions | None = None,
        policy: ExecutionPolicy | None = None,
        store: "ArtifactStore | None" = None,
        observer: Observer | None = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.internet = internet
        self.journal = journal
        self.options = options or PipelineOptions()
        self.policy = policy or ExecutionPolicy()
        self.store = store
        self.observer = observer if observer is not None else Observer.disabled()
        self.faults = faults
        self.report = RunReport()
        self._warm = _StreamWarmStore(getattr(store, "fitmemo", None))
        self._sources: dict[str, tuple[float, float]] = {}
        self._quarters: dict[str, dict[int, np.ndarray]] = {}
        self._quarter_versions: dict[tuple[str, int], int] = {}
        self._closed: dict[tuple[float, float], ClosedWindow] = {}
        self._next_seq = 0
        self._version = 0
        self._executor: Executor | None = None
        self._executor_version = -1
        self._tabulator: IncrementalTabulator | None = None
        self._live_quarters: tuple[int, ...] = ()
        self._latest_quarter: int | None = None
        self._snapshot_generation = 0
        self._snapshot_sig: tuple | None = None

    # -- ingest ------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The first journal sequence number not yet applied."""
        return self._next_seq

    @property
    def version(self) -> int:
        """Monotonic data version; bumps on every effective mutation."""
        return self._version

    def ingest(self, limit: int | None = None) -> int:
        """Apply the journal tail; returns the number of records applied.

        Only *effective* changes bump the data version: a delta whose
        adds are already present and whose removes are absent leaves
        the stream (and every cached close) untouched.
        """
        applied = 0
        for record in self.journal.replay(self._next_seq):
            if limit is not None and applied >= limit:
                break
            if isinstance(record, SourceRecord):
                self._apply_source(record)
            elif isinstance(record, ObservationDelta):
                self._apply_delta(record)
            self._next_seq = record.seq + 1
            applied += 1
        return applied

    def _apply_source(self, record: SourceRecord) -> None:
        meta = (record.available_from, record.available_to)
        if self._sources.get(record.name) == meta:
            return
        self._sources[record.name] = meta
        self._quarters.setdefault(record.name, {})
        self._version += 1
        self._tabulator = None  # source dimension changed: rebuild lazily
        self.observer.inc("stream_sources_declared_total")

    def _apply_delta(self, delta: ObservationDelta) -> None:
        name = delta.source
        if name not in self._sources:
            raise ValueError(
                f"delta seq {delta.seq} references undeclared source {name!r}"
            )
        quarters = self._quarters[name]
        current = quarters.get(delta.quarter, _EMPTY)
        updated = np.setdiff1d(
            np.union1d(current, delta.add), delta.remove, assume_unique=False
        ).astype(np.uint32)
        added = np.setdiff1d(updated, current, assume_unique=True)
        removed = np.setdiff1d(current, updated, assume_unique=True)
        self.observer.inc("stream_deltas_ingested_total")
        if not added.size and not removed.size:
            return
        if updated.size:
            quarters[delta.quarter] = updated
        else:
            quarters.pop(delta.quarter, None)
        self._version += 1
        self._quarter_versions[(name, delta.quarter)] = self._version
        if added.size:
            self.observer.inc("stream_addresses_added_total", float(added.size))
        if removed.size:
            self.observer.inc(
                "stream_addresses_removed_total", float(removed.size)
            )
        latest = self._latest_quarter
        if latest is None or delta.quarter > latest:
            self._latest_quarter = delta.quarter
        self._update_live(name, delta.quarter, added, removed)

    # -- live sliding window ----------------------------------------------

    def live_window(self) -> "TimeWindow | None":
        """The sliding 1-year window ending at the latest seen quarter."""
        from repro.analysis.windows import TimeWindow

        if self._latest_quarter is None:
            return None
        _, end = quarter_bounds(self._latest_quarter)
        return TimeWindow(end - LIVE_WINDOW_QUARTERS / 4.0, end)

    def _target_quarters(self) -> tuple[int, ...]:
        if self._latest_quarter is None:
            return ()
        first = self._latest_quarter - (LIVE_WINDOW_QUARTERS - 1)
        return tuple(range(first, self._latest_quarter + 1))

    def tabulator(self) -> IncrementalTabulator | None:
        """The live-window tabulator (built lazily, retargeted on demand)."""
        self._retarget_live()
        return self._tabulator

    def _retarget_live(self) -> None:
        target = self._target_quarters()
        if not target or not self._sources:
            return
        if self._tabulator is None:
            self._tabulator = IncrementalTabulator(sorted(self._sources))
            self._live_quarters = ()
        if self._live_quarters == target:
            return
        expired = set(self._live_quarters) - set(target)
        entering = set(target) - set(self._live_quarters)
        for name in self._tabulator.source_names:
            quarters = self._quarters.get(name, {})
            for q in sorted(expired):
                members = quarters.get(q)
                if members is not None and members.size:
                    self._tabulator.remove(name, members)
            for q in sorted(entering):
                members = quarters.get(q)
                if members is not None and members.size:
                    self._tabulator.add(name, members)
        self._live_quarters = target

    def _update_live(
        self, name: str, quarter: int, added: np.ndarray, removed: np.ndarray
    ) -> None:
        # Keep the tabulator aligned with the (possibly advanced)
        # sliding window before applying the in-window change.
        self._retarget_live()
        if self._tabulator is None or quarter not in self._live_quarters:
            return
        if added.size:
            self._tabulator.add(name, added)
        if removed.size:
            self._tabulator.remove(name, removed)

    # -- window closes -----------------------------------------------------

    def sources(self) -> dict[str, JournalSource]:
        """Journal-backed source views at the current data version."""
        return {
            name: JournalSource(name, *meta, self._quarters.get(name, {}))
            for name, meta in sorted(self._sources.items())
        }

    def executor(self) -> Executor:
        """An executor over the current data version.

        The artifact cache is rebuilt whenever the data version moved —
        stage keys carry no data dependence, so serving a stale
        artifact after a late event would silently corrupt a revision.
        The warm store survives rebuilds: coefficients only seed
        solvers, never short-circuit them.
        """
        if self._executor is None or self._executor_version != self._version:
            cache = ArtifactCache(faults=self.faults)
            cache.fitmemo = self._warm
            self._executor = Executor(
                self.internet,
                sources=self.sources(),
                options=self.options,
                cache=cache,
                report=self.report,
                policy=self.policy,
                faults=self.faults,
                observer=self.observer,
            )
            self._executor_version = self._version
        return self._executor

    def coverage_end(self) -> float | None:
        """End of the latest quarter any delta has touched."""
        if self._latest_quarter is None:
            return None
        return quarter_bounds(self._latest_quarter)[1]

    def closeable_windows(self) -> "list[TimeWindow]":
        """Standard sweep windows fully covered by ingested data."""
        from repro.analysis.windows import standard_windows

        end = self.coverage_end()
        if end is None:
            return []
        return [w for w in standard_windows() if w.end <= end + 1e-9]

    def close(self, window: "TimeWindow") -> WindowResult:
        """Close one window: the full batch-stage computation, warm fits.

        Re-closing a window after late events produces a *revision*:
        the previous result is replaced and the revision counter
        increments.  Closing at an unchanged version is a cache hit on
        the executor and returns the recorded result's artifact.
        """
        executor = self.executor()
        result = executor.window_result(window)
        bounds = (window.start, window.end)
        previous = self._closed.get(bounds)
        revision = 0
        if previous is not None:
            if previous.version == self._version:
                return previous.result
            revision = previous.revision + 1
        self._closed[bounds] = ClosedWindow(
            result, self._version, self._next_seq - 1, revision
        )
        self.observer.inc("stream_windows_closed_total")
        if revision:
            self.observer.inc("stream_windows_revised_total")
        self.observer.event(
            "stream.window_closed",
            level="info",
            window=f"{window.start:.2f}-{window.end:.2f}",
            seq=str(self._next_seq - 1),
            revision=str(revision),
            excluded=",".join(result.excluded_sources),
        )
        return result

    def advance(
        self, windows: "Sequence[TimeWindow] | None" = None
    ) -> list[WindowResult]:
        """Ingest the journal tail, then close every coverable window.

        Stale windows (closed before a late event touched their
        quarters) are re-closed too, so the returned results always
        reflect the full journal.
        """
        self.ingest()
        if windows is None:
            windows = self.closeable_windows()
        stale = set(self.stale_windows())
        out = []
        for window in windows:
            bounds = (window.start, window.end)
            if bounds in self._closed and window not in stale:
                out.append(self._closed[bounds].result)
            else:
                out.append(self.close(window))
        return out

    def results(self) -> list[WindowResult]:
        """Closed-window results in window order."""
        return [
            self._closed[bounds].result for bounds in sorted(self._closed)
        ]

    def series(self, level: str = "addresses") -> "GrowthSeries":
        """Figure 4/5 growth series over the closed windows."""
        from repro.analysis.growth import series_from_results

        return series_from_results(self.results(), level=level)

    def stale_windows(self) -> "list[TimeWindow]":
        """Closed windows invalidated by late events (need re-closing)."""
        from repro.analysis.windows import TimeWindow

        stale = []
        for bounds, closed in sorted(self._closed.items()):
            start, end = bounds
            touched = range(quarter_of(start), quarter_of(end - 1e-9) + 1)
            if any(
                self._quarter_versions.get((name, q), 0) > closed.version
                for name in self._sources
                for q in touched
            ):
                stale.append(TimeWindow(start, end))
        return stale

    def revision_of(self, window: "TimeWindow") -> int | None:
        """Revision counter of a closed window (None if never closed)."""
        closed = self._closed.get((window.start, window.end))
        return closed.revision if closed is not None else None

    # -- snapshots ---------------------------------------------------------

    def _snapshot_key(self, generation: int) -> ArtifactKey:
        # Content-addressed stores are idempotent per key (put skips
        # existing entries), so a mutating snapshot must move to a new
        # key every write: the generation counter is part of the key
        # and resume probes for the highest one present.
        return ArtifactKey(
            stage=SNAPSHOT_STAGE,
            params=(self.journal.journal_id, generation),
        )

    def snapshot(self) -> ArtifactKey:
        """Persist the stream state to the artifact store.

        The snapshot holds everything :meth:`resume` needs to skip the
        already-applied journal prefix: per-quarter membership, closed
        results with their version/seq/revision, and the warm
        coefficient chain.  Returns the store key.
        """
        if self.store is None:
            raise ValueError(
                "snapshot requires an artifact store (pass store= / --store)"
            )
        sig = (self._next_seq, self._version, tuple(sorted(self._closed)))
        if sig == self._snapshot_sig and self._snapshot_generation:
            return self._snapshot_key(self._snapshot_generation)
        payload = {
            "journal_id": self.journal.journal_id,
            "next_seq": self._next_seq,
            "version": self._version,
            "sources": dict(self._sources),
            "quarters": {
                name: dict(quarters)
                for name, quarters in self._quarters.items()
            },
            "quarter_versions": dict(self._quarter_versions),
            "latest_quarter": self._latest_quarter,
            "closed": [
                (bounds, closed.result, closed.version, closed.last_seq,
                 closed.revision)
                for bounds, closed in sorted(self._closed.items())
            ],
            "warm_previous": dict(self._warm._previous),
        }
        self._snapshot_generation += 1
        self._snapshot_sig = sig
        key = self._snapshot_key(self._snapshot_generation)
        self.store.put(key, payload)
        self.observer.inc("stream_snapshots_written_total")
        return key

    @classmethod
    def resume(
        cls,
        internet,
        journal: DeltaJournal,
        *,
        options: PipelineOptions | None = None,
        policy: ExecutionPolicy | None = None,
        store: "ArtifactStore | None" = None,
        observer: Observer | None = None,
        faults: "FaultInjector | None" = None,
    ) -> "StreamEstimator":
        """Restore from the last snapshot (if any), positioned at its seq.

        Without a store — or with no snapshot for this journal — this
        is simply a fresh estimator; either way the caller follows with
        :meth:`ingest`/:meth:`advance` to absorb the journal tail.
        """
        stream = cls(
            internet,
            journal,
            options=options,
            policy=policy,
            store=store,
            observer=observer,
            faults=faults,
        )
        if store is None:
            return stream
        generation = 0
        while stream._snapshot_key(generation + 1) in store:
            generation += 1
        if generation == 0:
            return stream
        payload = store.get(stream._snapshot_key(generation))
        if payload is MISS:
            return stream
        if payload.get("journal_id") != journal.journal_id:
            return stream
        stream._snapshot_generation = generation
        stream._next_seq = int(payload["next_seq"])
        stream._version = int(payload["version"])
        stream._sources = {
            name: (float(meta[0]), float(meta[1]))
            for name, meta in payload["sources"].items()
        }
        stream._quarters = {
            name: {
                int(q): np.asarray(arr, dtype=np.uint32)
                for q, arr in quarters.items()
            }
            for name, quarters in payload["quarters"].items()
        }
        stream._quarter_versions = {
            (name, int(q)): int(v)
            for (name, q), v in payload["quarter_versions"].items()
        }
        latest = payload.get("latest_quarter")
        stream._latest_quarter = int(latest) if latest is not None else None
        for bounds, result, version, last_seq, revision in payload["closed"]:
            stream._closed[tuple(bounds)] = ClosedWindow(
                result, int(version), int(last_seq), int(revision)
            )
        stream._warm._previous = {
            key: [
                (np.asarray(coef, dtype=np.float64), limit)
                for coef, limit in entries
            ]
            for key, entries in payload["warm_previous"].items()
        }
        stream._snapshot_sig = (
            stream._next_seq,
            stream._version,
            tuple(sorted(stream._closed)),
        )
        stream.observer.inc("stream_snapshots_restored_total")
        return stream

    # -- introspection -----------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """A flat status snapshot for the CLI and tests."""
        tab = self.tabulator()
        live = self.live_window()
        return {
            "journal_id": self.journal.journal_id,
            "next_seq": self._next_seq,
            "version": self._version,
            "sources": {
                name: {
                    "available_from": meta[0],
                    "available_to": meta[1],
                    "quarters": len(self._quarters.get(name, {})),
                    "addresses": int(
                        sum(
                            arr.size
                            for arr in self._quarters.get(name, {}).values()
                        )
                    ),
                }
                for name, meta in sorted(self._sources.items())
            },
            "live_window": (live.start, live.end) if live is not None else None,
            "live_observed": tab.num_observed if tab is not None else 0,
            "closed_windows": [
                {
                    "window": list(bounds),
                    "revision": closed.revision,
                    "seq": closed.last_seq,
                    "estimated_addresses": closed.result.estimated_addresses,
                }
                for bounds, closed in sorted(self._closed.items())
            ],
            "stale_windows": [
                (w.start, w.end) for w in self.stale_windows()
            ],
            "warm_hits": {
                "exact": self._warm.exact_hits,
                "previous_window": self._warm.previous_hits,
            },
        }
