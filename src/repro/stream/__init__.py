"""Streaming/incremental estimation over an observation-delta journal.

The batch pipeline recomputes every window from scratch; this package
makes observations *deltas*.  A :class:`DeltaJournal` is the durable
append-only history (checksummed JSONL segments, crash-safe replay);
an :class:`IncrementalTabulator` keeps contingency-table cells current
in O(changed cells) per delta batch; and a :class:`StreamEstimator`
closes windows on demand through the ordinary stage pipeline — so a
replayed journal reproduces the batch ``windows`` sweep exactly —
with final refits warm-started from the previous window and state
snapshots persisted through the content-addressed artifact store.

See ``docs/STREAM.md`` for the journal format and the snapshot/replay
invariants.
"""

from repro.stream.journal import (
    DeltaJournal,
    JournalCorruptionError,
    ObservationDelta,
    SourceRecord,
    journal_from_sources,
)
from repro.stream.estimator import (
    ClosedWindow,
    JournalSource,
    StreamEstimator,
)
from repro.stream.tabulator import IncrementalTabulator, TabulatorDriftError

__all__ = [
    "ClosedWindow",
    "DeltaJournal",
    "IncrementalTabulator",
    "JournalCorruptionError",
    "JournalSource",
    "ObservationDelta",
    "SourceRecord",
    "StreamEstimator",
    "TabulatorDriftError",
    "journal_from_sources",
]
