"""Append-only observation journal: the stream's source of truth.

Observations arrive as :class:`ObservationDelta` events — "source S
saw these addresses during quarter Q" (and, for revisions, "unsee
those") — appended to checksummed JSONL segments under a journal
directory.  The journal is the only durable state the streaming
estimator needs: replaying it deterministically rebuilds the exact
per-(source, quarter) membership the batch pipeline would have
collected, which is what makes stream-vs-batch parity exact rather
than approximate.

Format (one JSON object per line, ``crc`` last):

* ``{"kind": "source", "seq": n, "name": ..., "available_from": ...,
  "available_to": ..., "crc": ...}`` — declares a measurement source
  and its availability window (must precede the source's deltas);
* ``{"kind": "delta", "seq": n, "source": ..., "quarter": q,
  "add": [...], "remove": [...], "crc": ...}`` — one delta batch.

Sequence numbers are monotonic and gap-free across segments.  The
``crc`` field is the crc32 of the canonical JSON of the record without
it.  Crash safety: a torn final line (interrupted append) is ignored
on replay; corruption anywhere else raises
:class:`JournalCorruptionError` — silently skipping an interior record
would silently skew every estimate after it.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro._canonical import canonical_digest
from repro.sources.base import (
    TIME_HORIZON,
    TIME_ORIGIN,
    MeasurementSource,
    QuarterlySource,
    quarter_bounds,
    quarter_of,
)

#: Records per segment before :meth:`DeltaJournal.append` rotates.
DEFAULT_SEGMENT_RECORDS = 4096

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


class JournalCorruptionError(RuntimeError):
    """An interior journal record failed its checksum or sequencing."""


@dataclass(frozen=True)
class SourceRecord:
    """Declaration of a measurement source and its availability."""

    seq: int
    name: str
    available_from: float
    available_to: float = TIME_HORIZON


@dataclass(frozen=True)
class ObservationDelta:
    """One delta batch: addresses (un)observed by a source in a quarter."""

    seq: int
    source: str
    quarter: int
    add: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint32))
    remove: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint32))

    def __post_init__(self) -> None:
        for name in ("add", "remove"):
            arr = np.unique(np.asarray(getattr(self, name), dtype=np.uint32))
            object.__setattr__(self, name, arr)

    @property
    def bounds(self) -> tuple[float, float]:
        """The quarter's (start, end) fractional years."""
        return quarter_bounds(self.quarter)


def _encode(record: dict) -> str:
    """One journal line: canonical JSON with a trailing crc field."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8"))
    return body[:-1] + f',"crc":{crc}}}\n'


def _decode(line: str) -> dict | None:
    """Parse and verify one line; ``None`` when it fails (torn tail?)."""
    try:
        record = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    crc = record.pop("crc")
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(body.encode("utf-8")) != crc:
        return None
    return record


class DeltaJournal:
    """An append-only, checksummed, segmented journal of deltas.

    Appends go to the newest segment (rotated every
    ``segment_records`` records); replay streams every segment in
    order, verifying checksums and sequence continuity.  The journal
    object is cheap: opening one scans segment *names* and only the
    last segment's tail, not the full history.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
    ) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.segment_records = int(segment_records)
        self._segments = sorted(
            p for p in self.path.iterdir()
            if p.name.startswith(_SEGMENT_PREFIX)
            and p.name.endswith(_SEGMENT_SUFFIX)
        )
        self._next_seq = 0
        self._tail_records = 0
        # (segment, byte offset) of a torn trailing write to truncate
        # away before the next append — appending after the fragment
        # would glue the new record onto it and tear that one too.
        self._torn: tuple[Path, int] | None = None
        if self._segments:
            tail = self._segments[-1]
            data = tail.read_bytes()
            keep = 0
            for raw in data.splitlines(keepends=True):
                if raw.strip():
                    record = _decode(
                        raw.decode("utf-8", errors="replace").strip()
                    )
                    if record is None:
                        break
                    self._next_seq = record["seq"] + 1
                    self._tail_records += 1
                keep += len(raw)
            if keep < len(data):
                self._torn = (tail, keep)
            if len(self._segments) > 1 and self._tail_records == 0:
                # Tail segment exists but holds nothing valid: count
                # from the previous segment so seqs stay gap-free.
                for record in self._iter_segment(self._segments[-2], len(self._segments) - 2):
                    self._next_seq = record["seq"] + 1

    @property
    def journal_id(self) -> str:
        """Stable content key of this journal's location."""
        return "j" + canonical_digest(str(self.path.resolve()))[:16]

    @property
    def last_seq(self) -> int:
        """Highest appended sequence number (-1 when empty)."""
        return self._next_seq - 1

    def __len__(self) -> int:
        return self._next_seq

    # -- writing ----------------------------------------------------------

    def _segment_for_append(self) -> Path:
        if not self._segments or self._tail_records >= self.segment_records:
            index = len(self._segments)
            segment = self.path / f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"
            self._segments.append(segment)
            self._tail_records = 0
        return self._segments[-1]

    def _append_record(self, record: dict) -> int:
        if self._torn is not None:
            torn_segment, keep = self._torn
            with torn_segment.open("r+b") as fh:
                fh.truncate(keep)
            self._torn = None
        seq = self._next_seq
        record = dict(record, seq=seq)
        segment = self._segment_for_append()
        with segment.open("a", encoding="utf-8") as fh:
            fh.write(_encode(record))
        self._next_seq += 1
        self._tail_records += 1
        return seq

    def declare_source(
        self,
        name: str,
        available_from: float,
        available_to: float = TIME_HORIZON,
    ) -> SourceRecord:
        """Append a source declaration (idempotent re-declares are fine)."""
        seq = self._append_record({
            "kind": "source",
            "name": str(name),
            "available_from": float(available_from),
            "available_to": float(available_to),
        })
        return SourceRecord(seq, name, available_from, available_to)

    def append(
        self,
        source: str,
        quarter: int,
        add: Iterable[int] | np.ndarray = (),
        remove: Iterable[int] | np.ndarray = (),
    ) -> ObservationDelta:
        """Append one delta batch and return it with its sequence number."""
        add = np.unique(np.asarray(list(add) if not isinstance(add, np.ndarray) else add, dtype=np.uint32))
        remove = np.unique(np.asarray(list(remove) if not isinstance(remove, np.ndarray) else remove, dtype=np.uint32))
        seq = self._append_record({
            "kind": "delta",
            "source": str(source),
            "quarter": int(quarter),
            "add": [int(a) for a in add],
            "remove": [int(r) for r in remove],
        })
        return ObservationDelta(seq, source, int(quarter), add, remove)

    # -- replay -----------------------------------------------------------

    def _iter_segment(self, segment: Path, index: int) -> Iterator[dict]:
        last_segment = index == len(self._segments) - 1
        try:
            lines = segment.read_text(encoding="utf-8", errors="replace").splitlines()
        except FileNotFoundError:
            return
        for line_no, line in enumerate(lines):
            if not line.strip():
                continue
            record = _decode(line)
            if record is None:
                if last_segment and line_no == len(lines) - 1:
                    # Torn tail from an interrupted append: the record
                    # never committed, so replay simply ends here.
                    return
                raise JournalCorruptionError(
                    f"corrupt record at {segment.name}:{line_no + 1} "
                    "(checksum or JSON failure in the journal interior)"
                )
            yield record

    def replay(
        self, start_seq: int = 0
    ) -> Iterator[SourceRecord | ObservationDelta]:
        """Yield every committed record with ``seq >= start_seq``, in order.

        Verifies both checksums and gap-free sequencing; replay after a
        crash therefore either reproduces the exact committed prefix or
        raises, never a silently different history.
        """
        expected: int | None = None
        for index, segment in enumerate(list(self._segments)):
            for record in self._iter_segment(segment, index):
                seq = record["seq"]
                if expected is not None and seq != expected:
                    raise JournalCorruptionError(
                        f"sequence gap in {segment.name}: "
                        f"expected seq {expected}, found {seq}"
                    )
                expected = seq + 1
                if seq < start_seq:
                    continue
                if record["kind"] == "source":
                    yield SourceRecord(
                        seq,
                        record["name"],
                        float(record["available_from"]),
                        float(record["available_to"]),
                    )
                elif record["kind"] == "delta":
                    yield ObservationDelta(
                        seq,
                        record["source"],
                        int(record["quarter"]),
                        np.asarray(record["add"], dtype=np.uint32),
                        np.asarray(record["remove"], dtype=np.uint32),
                    )
                else:  # unknown kinds are forward-compatibility: skip
                    continue


def journal_from_sources(
    sources: Mapping[str, MeasurementSource],
    path: str | Path,
    *,
    through: float = TIME_HORIZON,
) -> DeltaJournal:
    """Write a simulated history into a journal, quarter by quarter.

    Emits one source declaration per source, then one delta per
    (quarter, source) in chronological order — exactly the granularity
    :class:`~repro.sources.base.QuarterlySource` accumulates at, so a
    window materialised from the journal is identical to one collected
    live.  ``through`` bounds the emitted history (exclusive), letting
    tests and rehearsals stop mid-stream and append the rest later.
    """
    journal = DeltaJournal(path)
    if len(journal):
        raise ValueError(
            f"journal at {journal.path} is not empty "
            f"(seq {journal.last_seq}); refusing to re-append the history"
        )
    ordered = dict(sorted(sources.items()))
    for name, source in ordered.items():
        journal.declare_source(
            name, source.available_from, source.available_to
        )
    first = quarter_of(TIME_ORIGIN)
    last = quarter_of(min(through, TIME_HORIZON) - 1e-9)
    for quarter in range(first, last + 1):
        q_start, q_end = quarter_bounds(quarter)
        for name, source in ordered.items():
            lo = max(q_start, source.available_from)
            hi = min(q_end, source.available_to)
            if lo >= hi:
                continue
            if isinstance(source, QuarterlySource):
                observed = source.quarter_set(quarter)
            else:
                # Faulty wrappers and custom sources: one collect per
                # quarter reproduces the window union bit-for-bit
                # because perturbations are seeded per quarter.
                observed = source.collect(q_start, q_end).addresses
            journal.append(name, quarter, add=observed)
    return journal
