"""Measurement-source framework.

Sources observe the population in *quarters* (3-month blocks anchored
at 1 Jan 2011) and a window's dataset is the union of its quarters.
This mirrors how the paper's logs accumulate and guarantees that
overlapping 12-month windows agree on shared months.  Per-quarter
observations are cached and derived from a deterministic per-quarter
RNG, so any window can be recollected bit-identically.
"""

from __future__ import annotations

import hashlib
import math
from abc import ABC, abstractmethod

import numpy as np

from repro.ipspace.ipset import IPSet
from repro.simnet.population import GroundTruthPopulation

#: Simulated time origin (1 Jan 2011) and horizon (30 Jun 2014).
TIME_ORIGIN = 2011.0
TIME_HORIZON = 2014.5


def quarter_of(year: float) -> int:
    """Quarter index of a fractional year (quarter 0 starts Jan 2011)."""
    return int(math.floor((year - TIME_ORIGIN) * 4.0 + 1e-9))


def quarter_bounds(index: int) -> tuple[float, float]:
    """(start, end) fractional years of a quarter."""
    start = TIME_ORIGIN + index / 4.0
    return start, start + 0.25


class MeasurementSource(ABC):
    """A dataset of observed IPv4 addresses accumulated over time."""

    def __init__(
        self,
        name: str,
        available_from: float,
        available_to: float = TIME_HORIZON,
    ) -> None:
        self.name = name
        self.available_from = available_from
        self.available_to = available_to

    def available_in(self, start: float, end: float) -> bool:
        """Whether the source produced any data during the window."""
        return self.available_from < min(end, self.available_to) and start < (
            self.available_to
        )

    @abstractmethod
    def collect(self, start: float, end: float) -> IPSet:
        """The raw dataset for the window (before any preprocessing)."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{self.available_from:.2f}-{self.available_to:.2f})"
        )


def _derive_seed(*parts) -> int:
    """Stable 64-bit seed from heterogeneous parts."""
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little")


class QuarterlySource(MeasurementSource):
    """Base class for sources that observe quarter by quarter."""

    def __init__(
        self,
        name: str,
        population: GroundTruthPopulation,
        seed: int,
        available_from: float,
        available_to: float = TIME_HORIZON,
    ) -> None:
        super().__init__(name, available_from, available_to)
        self.population = population
        self._seed = seed
        self._quarter_cache: dict[int, np.ndarray] = {}

    def _quarter_rng(self, index: int) -> np.random.Generator:
        return np.random.default_rng(_derive_seed(self._seed, self.name, index))

    @abstractmethod
    def _observe_quarter(
        self, index: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Addresses observed during one quarter (uint32, any order)."""

    def quarter_set(self, index: int) -> np.ndarray:
        """Cached sorted-unique addresses for one quarter."""
        if index not in self._quarter_cache:
            rng = self._quarter_rng(index)
            self._quarter_cache[index] = np.unique(
                self._observe_quarter(index, rng)
            )
        return self._quarter_cache[index]

    def collect(self, start: float, end: float) -> IPSet:
        """Union of the window's (availability-clipped) quarters."""
        lo = max(start, self.available_from)
        hi = min(end, self.available_to)
        if lo >= hi:
            return IPSet.empty()
        first = quarter_of(lo)
        last = quarter_of(hi - 1e-9)
        chunks = [self.quarter_set(q) for q in range(first, last + 1)]
        chunks = [c for c in chunks if c.size]
        if not chunks:
            return IPSet.empty()
        return IPSet.from_sorted_unique(np.unique(np.concatenate(chunks)))

    # -- helpers for subclasses ---------------------------------------------

    def _active_mask(self, index: int) -> np.ndarray:
        """Population active at some point during the quarter."""
        _, q_end = quarter_bounds(index)
        return self.population.active_from < q_end
