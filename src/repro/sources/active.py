"""Active probing censuses (IPING, TPING).

The paper probed every allocated address once per six months (ICMP
from March 2011, TCP port 80 from March 2012).  The census model
responds by host type: servers and routers answer ICMP readily, many
clients are firewalled or behind NAT home routers, and specialised
devices mostly answer only on specific TCP ports — which is what makes
pinging alone under-count and gives TPING its ICMP-silent tail.

Responses are per-(host, census) Bernoulli draws with a persistent
per-host openness component: a firewalled host tends to stay
firewalled across censuses, so two censuses of the same window overlap
heavily rather than doubling coverage.
"""

from __future__ import annotations

import numpy as np

from repro.ipspace.ipset import IPSet
from repro.ipspace.prefixes import Prefix
from repro.simnet.hosts import HostType
from repro.simnet.population import GroundTruthPopulation
from repro.sources.base import (
    TIME_HORIZON,
    MeasurementSource,
    _derive_seed,
)

#: P(responds to ICMP echo | host type): ROUTER, SERVER, CLIENT, SPECIALISED.
ICMP_RESPONSE = np.array([0.78, 0.82, 0.36, 0.10])
#: P(responds with SYN/ACK on port 80 | host type).
TCP_RESPONSE = np.array([0.35, 0.55, 0.06, 0.30])

#: Census epochs: every six months starting at the source's first census.
CENSUS_INTERVAL = 0.5


class CensusSource(MeasurementSource):
    """An Internet-wide probing census run every six months."""

    def __init__(
        self,
        name: str,
        population: GroundTruthPopulation,
        seed: int,
        response_probs: np.ndarray,
        first_census: float,
        available_to: float = TIME_HORIZON,
        blocked_prefixes: tuple[Prefix, ...] = (),
        openness_weight: float = 0.75,
        subnet_block_prob: float = 0.20,
    ) -> None:
        super().__init__(name, first_census, available_to)
        self.population = population
        self.response_probs = np.asarray(response_probs, dtype=np.float64)
        if self.response_probs.shape != (len(HostType),):
            raise ValueError("response_probs must have one entry per host type")
        self.first_census = first_census
        self.blocked_prefixes = tuple(blocked_prefixes)
        self.openness_weight = openness_weight
        self.subnet_block_prob = subnet_block_prob
        self._seed = seed
        self._census_cache: dict[int, np.ndarray] = {}
        # Persistent per-host openness: the filtering fate of a host is
        # mostly a property of its network, not of the probe instant.
        openness_rng = np.random.default_rng(_derive_seed(seed, name, "openness"))
        self._openness = openness_rng.random(len(population))
        # Whole /24s sit behind probe-dropping firewalls: persistent
        # subnet-level blocking is what leaves some used /24s invisible
        # to a census (the paper: ~10 % of most sources' /24s never
        # appear in IPING).
        subnet_rng = np.random.default_rng(
            _derive_seed(seed, name, "subnet-filter")
        )
        sub24 = population.addresses >> np.uint32(8)
        unique24, inverse = np.unique(sub24, return_inverse=True)
        open24 = subnet_rng.random(len(unique24)) >= subnet_block_prob
        self._subnet_open = open24[inverse]

    def census_times(self, start: float, end: float) -> list[float]:
        """Census epochs that fall inside [start, end)."""
        times = []
        t = self.first_census
        while t < min(end, self.available_to):
            if t >= start:
                times.append(round(t, 4))
            t += CENSUS_INTERVAL
        return times

    def _census_index(self, time: float) -> int:
        return int(round((time - self.first_census) / CENSUS_INTERVAL))

    def _blocked_mask(self) -> np.ndarray:
        pop = self.population
        mask = np.zeros(len(pop), dtype=bool)
        for prefix in self.blocked_prefixes:
            mask |= (pop.addresses >= prefix.base) & (
                pop.addresses < prefix.end
            )
        return mask

    def _run_census(self, index: int) -> np.ndarray:
        if index in self._census_cache:
            return self._census_cache[index]
        pop = self.population
        time = self.first_census + index * CENSUS_INTERVAL
        rng = np.random.default_rng(_derive_seed(self._seed, self.name, index))
        base = self.response_probs[pop.host_type]
        active = pop.active_from <= time
        # Blend persistent openness with per-census noise: a host whose
        # openness draw is far above the threshold always answers, one
        # far below never does, the margin flips census to census.
        w = self.openness_weight
        score = w * self._openness + (1.0 - w) * rng.random(len(pop))
        responds = (
            active & (score < base) & self._subnet_open & ~self._blocked_mask()
        )
        result = pop.addresses[responds]
        self._census_cache[index] = result
        return result

    def collect(self, start: float, end: float) -> IPSet:
        """Union of all censuses run during the window."""
        times = self.census_times(start, end)
        if not times:
            return IPSet.empty()
        chunks = [self._run_census(self._census_index(t)) for t in times]
        return IPSet.from_sorted_unique(np.unique(np.concatenate(chunks)))


def icmp_census(
    population: GroundTruthPopulation,
    seed: int,
    blocked_prefixes: tuple[Prefix, ...] = (),
) -> CensusSource:
    """The IPING source: ICMP censuses every six months from March 2011."""
    return CensusSource(
        "IPING",
        population,
        seed,
        ICMP_RESPONSE,
        first_census=2011.17,
        blocked_prefixes=blocked_prefixes,
    )


def tcp_census(
    population: GroundTruthPopulation,
    seed: int,
    blocked_prefixes: tuple[Prefix, ...] = (),
) -> CensusSource:
    """The TPING source: TCP port-80 censuses from March 2012."""
    return CensusSource(
        "TPING",
        population,
        seed,
        TCP_RESPONSE,
        first_census=2012.17,
        blocked_prefixes=blocked_prefixes,
        subnet_block_prob=0.35,
    )
