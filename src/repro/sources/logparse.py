"""Parsers turning real-world log files into address datasets.

The library's estimators consume :class:`~repro.ipspace.ipset.IPSet`s;
this module produces them from the kinds of files the paper's sources
were built from, so users can run capture-recapture on *their own*
data:

* :func:`parse_common_log` — Apache/nginx Common/Combined Log Format
  (the WEB/WIKI-style source).
* :func:`parse_flow_csv` — CSV flow exports with a source-address
  column (the SWIN/CALT-style source).
* :func:`parse_address_list` — one address per line, comments allowed
  (ping-census output, blocklists, the SPAM-style source).

All parsers are forgiving: malformed lines are counted, not fatal —
real logs always contain garbage — and the result reports exactly what
was skipped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.ipspace.addresses import AddressError, parse_addr
from repro.ipspace.ipset import IPSet

#: Dotted-quad at the start of a Common Log Format line.
_CLF_PATTERN = re.compile(r"^(\d{1,3}(?:\.\d{1,3}){3})\s")
#: A dotted quad anywhere (used by the generic list parser).
_ADDR_PATTERN = re.compile(r"^(\d{1,3}(?:\.\d{1,3}){3})$")


@dataclass(frozen=True)
class ParseResult:
    """Addresses extracted from a log plus skip accounting."""

    dataset: IPSet
    lines_read: int
    lines_skipped: int

    @property
    def skip_fraction(self) -> float:
        if self.lines_read == 0:
            return 0.0
        return self.lines_skipped / self.lines_read


def _collect(values: Iterator[int | None]) -> ParseResult:
    addrs: list[int] = []
    read = skipped = 0
    for value in values:
        read += 1
        if value is None:
            skipped += 1
        else:
            addrs.append(value)
    dataset = IPSet(np.array(addrs, dtype=np.uint32) if addrs else [])
    return ParseResult(dataset=dataset, lines_read=read,
                       lines_skipped=skipped)


def _maybe_addr(text: str) -> int | None:
    try:
        return parse_addr(text)
    except AddressError:
        return None


def parse_common_log(lines: Iterable[str]) -> ParseResult:
    """Client addresses from Apache/nginx access-log lines.

    Only the leading remote-host field is consumed; hostnames (when
    ``HostnameLookups`` is on) and malformed lines are skipped.
    """

    def values():
        for line in lines:
            match = _CLF_PATTERN.match(line)
            yield _maybe_addr(match.group(1)) if match else None

    return _collect(values())


def parse_flow_csv(
    lines: Iterable[str],
    column: str = "srcaddr",
    delimiter: str = ",",
) -> ParseResult:
    """Source addresses from a CSV flow export with a header row.

    ``column`` names the source-address field (nfdump exports call it
    ``sa``, SiLK ``sIP``, many collectors ``srcaddr``).
    """
    iterator = iter(lines)
    try:
        header = next(iterator)
    except StopIteration:
        return ParseResult(IPSet.empty(), 0, 0)
    fields = [f.strip() for f in header.rstrip("\n").split(delimiter)]
    try:
        index = fields.index(column)
    except ValueError as exc:
        raise ValueError(
            f"column {column!r} not in header {fields!r}"
        ) from exc

    def values():
        for line in iterator:
            parts = line.rstrip("\n").split(delimiter)
            if len(parts) <= index:
                yield None
            else:
                yield _maybe_addr(parts[index].strip())

    return _collect(values())


def parse_address_list(lines: Iterable[str]) -> ParseResult:
    """One address per line; blank lines and ``#`` comments skipped
    silently (they are structure, not garbage)."""

    def values():
        for line in lines:
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            yield _maybe_addr(text) if _ADDR_PATTERN.match(text) else None

    return _collect(values())


def load_dataset(path: str | Path, fmt: str = "list", **kwargs) -> ParseResult:
    """Parse a file by format name (``"clf"``, ``"flow"``, ``"list"``)."""
    parsers = {
        "clf": parse_common_log,
        "flow": parse_flow_csv,
        "list": parse_address_list,
    }
    if fmt not in parsers:
        raise ValueError(f"unknown log format {fmt!r}")
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return parsers[fmt](handle, **kwargs)
