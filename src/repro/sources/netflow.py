"""NetFlow sources (SWIN, CALT): broad legitimate sampling plus spoofing.

An access router's incoming NetFlow sees whichever remote addresses
exchange traffic with the site: clients, servers and routers alike,
weighted by activity.  Unlike the log sources, NetFlow also records
*spoofed* source addresses from DDoS floods and decoy scans —
uniformly random addresses that contaminate the dataset and that the
paper's two-stage heuristic (reimplemented in
:mod:`repro.filtering.spoof_filter`) must remove.
"""

from __future__ import annotations

import numpy as np

from repro.simnet.population import GroundTruthPopulation
from repro.ipspace.intervals import IntervalSet
from repro.sources.base import TIME_HORIZON, QuarterlySource, _derive_seed
from repro.sources.spoofing import draw_spoofed_addresses, draw_spoofed_in_space

#: NetFlow affinity: nearly type-blind, with specialised devices absent
#: (they rarely initiate wide-area traffic).
NETFLOW_AFFINITY = np.array([0.40, 0.80, 1.0, 0.02])


class NetFlowSource(QuarterlySource):
    """Access-router NetFlow with uniform spoof contamination."""

    def __init__(
        self,
        name: str,
        population: GroundTruthPopulation,
        seed: int,
        rate: float,
        available_from: float,
        available_to: float = TIME_HORIZON,
        spoof_per_quarter: int = 0,
        spoof_spike_quarter: int | None = None,
        spoof_spike_factor: float = 12.0,
        activity_exponent: float = 1.0,
        spoof_support: IntervalSet | None = None,
    ) -> None:
        super().__init__(name, population, seed, available_from, available_to)
        self.rate = rate
        self.spoof_per_quarter = spoof_per_quarter
        self.spoof_spike_quarter = spoof_spike_quarter
        self.spoof_spike_factor = spoof_spike_factor
        self.activity_exponent = activity_exponent
        # Restricting spoof generation to the allocated space is a pure
        # optimisation: addresses outside it are removed unseen by
        # preprocessing, and the in-support density is unchanged.
        self.spoof_support = spoof_support

    def _spoof_count(self, index: int, rng: np.random.Generator) -> int:
        count = int(rng.poisson(self.spoof_per_quarter))
        if index == self.spoof_spike_quarter:
            count = int(count * self.spoof_spike_factor)
        return count

    def _observe_quarter(self, index: int, rng: np.random.Generator) -> np.ndarray:
        pop = self.population
        active = self._active_mask(index)
        aff = NETFLOW_AFFINITY[pop.host_type]
        weight = pop.activity.astype(np.float64) ** self.activity_exponent
        prob = -np.expm1(-(self.rate / 4.0) * weight * aff)
        legit = pop.addresses[active & (rng.random(len(pop)) < prob)]
        spoof_rng = np.random.default_rng(
            _derive_seed(self._seed, self.name, "spoof", index)
        )
        count = self._spoof_count(index, spoof_rng)
        if self.spoof_support is not None:
            spoofed = draw_spoofed_in_space(spoof_rng, count, self.spoof_support)
        else:
            spoofed = draw_spoofed_addresses(spoof_rng, count)
        return np.concatenate([legit, spoofed])

    def legitimate_quarter(self, index: int) -> np.ndarray:
        """The quarter's observation *without* spoofing (for validation).

        Uses the same RNG stream as :meth:`_observe_quarter`, so it is
        exactly the spoof-free part of the published dataset.
        """
        rng = self._quarter_rng(index)
        pop = self.population
        active = self._active_mask(index)
        aff = NETFLOW_AFFINITY[pop.host_type]
        weight = pop.activity.astype(np.float64) ** self.activity_exponent
        prob = -np.expm1(-(self.rate / 4.0) * weight * aff)
        return pop.addresses[active & (rng.random(len(pop)) < prob)]
