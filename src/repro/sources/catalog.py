"""The standard nine-source suite of the paper (Table 2).

Rates and availability windows are tuned so that, at any simulation
scale, the *relative* dataset sizes match Table 2: IPING the largest,
CALT huge but late (Jun 2013 on), WEB big and growing strongly, SPAM
starting May 2012, TPING from March 2012, WIKI small but steady.
Spoof volumes follow Section 4.5 (SWIN stable, CALT spiking in March
2014).
"""

from __future__ import annotations

import numpy as np

from repro.simnet.internet import SyntheticInternet
from repro.sources.active import icmp_census, tcp_census
from repro.sources.base import MeasurementSource, quarter_of
from repro.sources.netflow import NetFlowSource
from repro.sources.passive import LogSource

SOURCE_NAMES: tuple[str, ...] = (
    "WIKI",
    "SPAM",
    "MLAB",
    "WEB",
    "GAME",
    "SWIN",
    "CALT",
    "IPING",
    "TPING",
)

#: Real spoofed addresses per 12-month window across the whole 32-bit
#: space implied by the paper's per-/8 numbers (S x 256): SWIN
#: 10-15 k/8, CALT 15-20 k/8 jumping to ~250 k/8 in March 2014.
#: These volumes are *not* scaled down with the simulation: spoofing is
#: an attack-traffic density over the whole 32-bit space, and the
#: filter's binomial calibration depends on that density, not on the
#: size of the legitimate population.
_SWIN_SPOOF_PER_YEAR = 3_200_000
_CALT_SPOOF_PER_YEAR = 4_500_000


def build_standard_sources(
    internet: SyntheticInternet, seed: int | None = None
) -> dict[str, MeasurementSource]:
    """Instantiate the nine paper sources over a synthetic Internet.

    ``seed`` defaults to the Internet's own seed; sources are fully
    deterministic given (internet, seed).  Ground-truth network F's
    prefix is blocked on both censuses, reproducing Table 4's
    ping-less network.
    """
    pop = internet.population
    if seed is None:
        seed = internet.config.seed + 1
    spoof_support = internet.registry.allocated_space()
    networks = internet.ground_truth_networks()
    blocked = tuple(
        n.allocation.prefix for n in networks if n.blocks_pings
    )
    spike_quarter = quarter_of(2014.25)
    sources: dict[str, MeasurementSource] = {
        "WIKI": LogSource(
            "WIKI", pop, seed, rate=0.0062, available_from=2011.0,
            activity_exponent=1.1, yearly_rate_growth=0.10,
        ),
        "SPAM": LogSource(
            "SPAM", pop, seed, rate=0.025, available_from=2012.37,
            activity_exponent=0.8,
            affinity=np.array([0.02, 0.35, 1.0, 0.0]),
        ),
        "MLAB": LogSource(
            "MLAB", pop, seed, rate=0.040, available_from=2011.0,
            activity_exponent=0.9, yearly_rate_growth=-0.12,
        ),
        "WEB": LogSource(
            "WEB", pop, seed, rate=0.047, available_from=2011.17,
            activity_exponent=1.0, yearly_rate_growth=0.75,
        ),
        "GAME": LogSource(
            "GAME", pop, seed, rate=0.055, available_from=2011.0,
            activity_exponent=0.7, yearly_rate_growth=0.18,
        ),
        "SWIN": NetFlowSource(
            "SWIN", pop, seed, rate=0.16, available_from=2011.0,
            spoof_per_quarter=_SWIN_SPOOF_PER_YEAR // 4,
            activity_exponent=1.05, spoof_support=spoof_support,
        ),
        "CALT": NetFlowSource(
            "CALT", pop, seed, rate=1.30, available_from=2013.42,
            spoof_per_quarter=_CALT_SPOOF_PER_YEAR // 4,
            spoof_spike_quarter=spike_quarter,
            spoof_spike_factor=13.0,
            activity_exponent=0.95, spoof_support=spoof_support,
        ),
        "IPING": icmp_census(pop, seed, blocked_prefixes=blocked),
        "TPING": tcp_census(pop, seed, blocked_prefixes=blocked),
    }
    assert tuple(sources) == SOURCE_NAMES
    return sources
