"""Spoofed-address generation.

The paper's Section 4.5 attributes spoofed source addresses in NetFlow
data to randomly spoofed DDoS floods and nmap-style decoy scans, both
of which draw addresses uniformly from the whole 32-bit space — the
uniformity assumption its removal heuristic is built on.  This module
generates exactly that traffic (the filter never sees this code; it
must *infer* the uniform level from 'empty' blocks).
"""

from __future__ import annotations

import numpy as np

from repro.ipspace.addresses import ADDRESS_SPACE_SIZE


def draw_spoofed_addresses(rng: np.random.Generator, count: int) -> np.ndarray:
    """``count`` spoofed source addresses, uniform over the 32-bit space."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    return rng.integers(0, ADDRESS_SPACE_SIZE, size=count, dtype=np.uint64).astype(
        np.uint32
    )


def draw_spoofed_in_space(
    rng: np.random.Generator, full_space_count: int, support
) -> np.ndarray:
    """Spoofed addresses restricted to ``support`` (an IntervalSet).

    Equivalent in distribution to drawing ``full_space_count`` uniform
    addresses over the whole 32-bit space and keeping those inside
    ``support`` — but without materialising the rejected draws, which
    matters because spoof volumes stay at real-world magnitude while
    the simulated allocated space is tiny.  The count inside the
    support is Binomial(full_space_count, |support| / 2^32).
    """
    size = support.size()
    if size == 0 or full_space_count <= 0:
        return np.zeros(0, dtype=np.uint32)
    count = int(rng.binomial(full_space_count, size / ADDRESS_SPACE_SIZE))
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    offsets = rng.integers(0, size, size=count, dtype=np.uint64)
    starts = support._starts  # noqa: SLF001 - package-internal fast path
    ends = support._ends  # noqa: SLF001
    sizes = ends - starts
    cumulative = np.concatenate([[np.uint64(0)], np.cumsum(sizes)])
    idx = np.searchsorted(cumulative, offsets, side="right") - 1
    return (starts[idx] + (offsets - cumulative[idx])).astype(np.uint32)


def ddos_campaign_sizes(
    rng: np.random.Generator, base_per_quarter: int, num_quarters: int,
    spike_quarter: int | None = None, spike_factor: float = 12.0,
) -> np.ndarray:
    """Spoofed-address volume per quarter with an optional attack spike.

    The paper observed CALT's spoof level jump from 15-20 k to almost
    250 k per /8 in March 2014; ``spike_quarter`` reproduces that kind
    of event.
    """
    sizes = rng.poisson(base_per_quarter, size=num_quarters).astype(np.int64)
    if spike_quarter is not None and 0 <= spike_quarter < num_quarters:
        sizes[spike_quarter] = int(sizes[spike_quarter] * spike_factor)
    return sizes
