"""Passive log sources (WIKI, SPAM, MLAB, WEB, GAME).

A log source captures a host in a quarter with probability

    p = 1 - exp(-(rate / 4) * growth(t) * activity^gamma * affinity(type))

where ``activity`` is the host's shared latent traffic level — the
heterogeneity that makes passive sources *apparently dependent* on one
another (hosts busy in one log tend to be busy in all), the central
statistical difficulty the paper's log-linear interaction terms exist
to absorb.  ``gamma`` varies per source so the sources are biased
samplers of the same latent activity rather than clones, and
``affinity`` encodes the client bias (servers appear rarely,
specialised devices never).
"""

from __future__ import annotations

import numpy as np

from repro.simnet.hosts import HostType
from repro.simnet.population import GroundTruthPopulation
from repro.sources.base import TIME_HORIZON, QuarterlySource, quarter_bounds

#: Default passive affinity: strongly client-biased, thin server/router
#: tails, blind to specialised devices (indexed by HostType).
CLIENT_AFFINITY = np.array([0.05, 0.15, 1.0, 0.0])


class LogSource(QuarterlySource):
    """A server-log style source sampling active clients."""

    def __init__(
        self,
        name: str,
        population: GroundTruthPopulation,
        seed: int,
        rate: float,
        available_from: float,
        available_to: float = TIME_HORIZON,
        affinity: np.ndarray | None = None,
        activity_exponent: float = 1.0,
        yearly_rate_growth: float = 0.0,
    ) -> None:
        super().__init__(name, population, seed, available_from, available_to)
        self.rate = rate
        self.affinity = (
            CLIENT_AFFINITY if affinity is None else np.asarray(affinity, float)
        )
        if self.affinity.shape != (len(HostType),):
            raise ValueError("affinity must have one entry per host type")
        self.activity_exponent = activity_exponent
        self.yearly_rate_growth = yearly_rate_growth

    def _rate_at(self, index: int) -> float:
        start, _ = quarter_bounds(index)
        years = max(0.0, start - 2011.0)
        return self.rate * (1.0 + self.yearly_rate_growth) ** years

    def _observe_quarter(self, index: int, rng: np.random.Generator) -> np.ndarray:
        pop = self.population
        active = self._active_mask(index)
        aff = self.affinity[pop.host_type]
        weight = pop.activity.astype(np.float64) ** self.activity_exponent
        intensity = (self._rate_at(index) / 4.0) * weight * aff
        prob = -np.expm1(-intensity)
        seen = active & (rng.random(len(pop)) < prob)
        return pop.addresses[seen]
