"""Measurement sources: the paper's nine datasets, simulated.

Each source subsamples the ground-truth population with its own bias:
the ICMP/TCP censuses respond by host type, the five log sources see
activity-weighted client traffic, and the two NetFlow sources add
uniform spoofed addresses on top of broad legitimate sampling.  All
sources observe at quarter granularity so that overlapping 12-month
windows see consistent data, exactly like logs accumulated over time.
"""

from repro.sources.active import CensusSource, icmp_census, tcp_census
from repro.sources.base import MeasurementSource, QuarterlySource, quarter_of
from repro.sources.catalog import SOURCE_NAMES, build_standard_sources
from repro.sources.logparse import (
    ParseResult,
    load_dataset,
    parse_address_list,
    parse_common_log,
    parse_flow_csv,
)
from repro.sources.netflow import NetFlowSource
from repro.sources.passive import LogSource
from repro.sources.spoofing import draw_spoofed_addresses

__all__ = [
    "CensusSource",
    "LogSource",
    "MeasurementSource",
    "NetFlowSource",
    "ParseResult",
    "QuarterlySource",
    "SOURCE_NAMES",
    "load_dataset",
    "parse_address_list",
    "parse_common_log",
    "parse_flow_csv",
    "build_standard_sources",
    "draw_spoofed_addresses",
    "icmp_census",
    "quarter_of",
    "tcp_census",
]
