"""Command-line interface: ``python -m repro <command>``.

The main entry points:

* ``simulate``  — build a synthetic Internet and print its vitals.
* ``estimate``  — run the full pipeline on one observation window.
* ``windows``   — sweep all 11 standard windows through the engine
  (``--workers`` fans them across processes) and print the growth
  series plus per-stage instrumentation.
* ``crossval``  — leave-one-source-out validation for a window.
* ``supply``    — the Table 6 runout forecast.
* ``campaign``  — estimation-as-a-service: ``submit`` a campaign
  (windows x sensitivity grid) into a service directory, poll
  ``status``, fetch ``results``.
* ``query``     — answer totals/growth/window queries from a completed
  campaign's query ledger at interactive latency, without any refits.
* ``stream``    — incremental estimation over an observation-delta
  journal: ``ingest`` the tail (or ``--simulate`` a journal from the
  standard sources), ``advance`` to close every coverable window
  through warm-started refits, ``snapshot`` the stream state into the
  artifact store so a restart resumes from the tail.

The pipeline knobs — ``--inject-faults``, ``--quarantine-policy``,
``--store``, ``--trace``/``--metrics-out`` — are accepted both before
the subcommand and after it (every estimating subcommand carries the
identical set via shared parent parsers).

All commands share ``--scale-log2`` (size of the simulated Internet as
a power of two; -12 is 1/4096 of the real one) and ``--seed``.
Commands that orchestrate repeated estimation accept ``--workers``;
results are bit-identical whatever the worker count.

Fault tolerance is configured globally: ``--retries`` bounds the extra
attempts per stage or pool task, ``--task-timeout`` puts a wall-clock
limit on pool tasks (hung workers are terminated and the task
retried), and ``--inject-faults SPEC`` arms the deterministic fault
injector (``stage:kind[:index[:count[:seconds]]]``) to rehearse those
paths.  Tasks that exhaust their retries are reported as degraded and
dropped; surviving windows/folds still produce their estimates.

Source integrity: ``--inject-faults`` also accepts *data* faults of
the form ``source:NAME:kind[:amount[:start]]`` (kind one of
drop/truncate/duplicate/skew/spoof) that poison a measurement source
instead of a stage.  ``--quarantine-policy`` selects the preset the
integrity layer judges sources under (``off``, ``lenient``,
``default``, ``strict``), and ``repro health`` prints one window's
per-source verdicts and the pairwise agreement matrix.
"""

from __future__ import annotations

import argparse
import math
import sys
import warnings
from typing import Sequence

from repro.analysis.crossval import cross_validate_window
from repro.analysis.pipeline import EstimationPipeline
from repro.analysis.report import format_table, to_real
from repro.analysis.supply import supply_by_rir, world_supply
from repro.analysis.windows import TimeWindow
from repro.engine.executor import ExecutionPolicy, Executor
from repro.engine.faults import (
    FaultInjector,
    SourceFaultSpec,
    apply_source_faults,
    parse_fault,
)
from repro.engine.stages import PipelineOptions
from repro.engine.store import LocalStore, open_store
from repro.integrity import POLICY_PRESETS, QuarantinePolicy
from repro.obs.ledger import RunLedger, absorb_engine_accounting
from repro.obs.observer import Observer
from repro.obs.reporting import render_run_diff, render_run_report
from repro.service import LedgerSchemaError
from repro.simnet.internet import SimulationConfig, SyntheticInternet
from repro.sources.base import TIME_HORIZON
from repro.stream import DeltaJournal, StreamEstimator, journal_from_sources


#: Size-suffix multipliers for ``--max-bytes`` (binary, case-insensitive).
_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}

#: Age-suffix multipliers for ``--max-age`` (seconds).
_AGE_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def _parse_size(text: str) -> int:
    """``500M``/``2G``/plain bytes -> byte count."""
    raw = text.strip().lower()
    try:
        if raw and raw[-1] in _SIZE_SUFFIXES:
            return int(float(raw[:-1]) * _SIZE_SUFFIXES[raw[-1]])
        return int(raw)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"size must look like 1048576, 500M or 2G, got {text!r}"
        ) from exc


def _parse_age(text: str) -> float:
    """``7d``/``12h``/``30m``/plain seconds -> seconds."""
    raw = text.strip().lower()
    try:
        if raw and raw[-1] in _AGE_SUFFIXES:
            return float(raw[:-1]) * _AGE_SUFFIXES[raw[-1]]
        return float(raw)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"age must look like 3600, 12h or 7d, got {text!r}"
        ) from exc


def _parse_window(text: str) -> TimeWindow:
    try:
        start_text, _, end_text = text.partition(":")
        return TimeWindow(float(start_text), float(end_text))
    except (TypeError, ValueError) as exc:
        raise argparse.ArgumentTypeError(
            f"window must look like 2013.5:2014.5, got {text!r}"
        ) from exc


def _parse_workers(text: str) -> int:
    """Worker-pool width; ``0`` is rejected up front (an empty pool
    would otherwise just sit there instead of computing anything)."""
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--workers must be an integer >= 1, got {text!r}"
        ) from exc
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--workers must be >= 1, got {value} "
            "(0 workers would mean an empty pool and no progress)"
        )
    return value


class _DeprecatedSpelling(argparse.Action):
    """A hidden legacy flag spelling: parses, warns, stores to the
    canonical dest so downstream code never sees the old name."""

    def __init__(self, *args, preferred: str, append: bool = False, **kwargs):
        self._preferred = preferred
        self._append = append
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        warnings.warn(
            f"{option_string} is deprecated; use {self._preferred}",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._append:
            items = list(getattr(namespace, self.dest, None) or [])
            items.append(values)
            setattr(namespace, self.dest, items)
        else:
            setattr(namespace, self.dest, values)


def _pipeline_parents() -> list[argparse.ArgumentParser]:
    """Shared parents carrying the pipeline knobs into every estimating
    subcommand (one canonical definition each, like ``workers_parent``).

    Defaults are ``SUPPRESS`` so a flag given *before* the subcommand —
    where the main parser defines the same option with its real default
    — is not clobbered by the subparser's parse.  Each knob also keeps
    its pre-normalization spelling as a hidden deprecated alias.
    """
    faults = argparse.ArgumentParser(add_help=False)
    faults.add_argument(
        "--inject-faults", action="append", default=argparse.SUPPRESS,
        metavar="SPEC", type=parse_fault,
        help="deterministic fault injection, repeatable "
        "(stage:kind[:index[:count[:seconds]]] or "
        "source:NAME:kind[:amount[:start]])")
    faults.add_argument(
        "--inject-fault", action=_DeprecatedSpelling,
        preferred="--inject-faults", append=True, dest="inject_faults",
        default=argparse.SUPPRESS, metavar="SPEC", type=parse_fault,
        help=argparse.SUPPRESS)
    faults.add_argument(
        "--quarantine-policy", choices=POLICY_PRESETS,
        default=argparse.SUPPRESS, metavar="PRESET",
        help="source-integrity preset judging each source per window "
        f"({', '.join(POLICY_PRESETS)})")
    faults.add_argument(
        "--quarantine", action=_DeprecatedSpelling,
        preferred="--quarantine-policy", dest="quarantine_policy",
        default=argparse.SUPPRESS, choices=POLICY_PRESETS,
        help=argparse.SUPPRESS)

    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument(
        "--trace", metavar="DIR", default=argparse.SUPPRESS,
        help="enable tracing and persist the run ledger to DIR")
    obs.add_argument(
        "--trace-dir", action=_DeprecatedSpelling, preferred="--trace",
        dest="trace", default=argparse.SUPPRESS, metavar="DIR",
        help=argparse.SUPPRESS)
    obs.add_argument(
        "--metrics-out", metavar="PATH", default=argparse.SUPPRESS,
        help="enable metrics and write the JSON export to PATH")
    obs.add_argument(
        "--metrics", action=_DeprecatedSpelling, preferred="--metrics-out",
        dest="metrics_out", default=argparse.SUPPRESS, metavar="PATH",
        help=argparse.SUPPRESS)

    store = argparse.ArgumentParser(add_help=False)
    store.add_argument(
        "--store", metavar="DIR", default=argparse.SUPPRESS,
        help="persistent artifact store directory (content-addressed "
        "stage outputs reused across runs and workers)")
    store.add_argument(
        "--artifact-store", action=_DeprecatedSpelling, preferred="--store",
        dest="store", default=argparse.SUPPRESS, metavar="DIR",
        help=argparse.SUPPRESS)
    return [faults, obs, store]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Capture-recapture estimation of the used IPv4 space "
        "(IMC 2014 'Capturing Ghosts' reproduction)",
    )
    parser.add_argument("--scale-log2", type=int, default=-12,
                        help="log2 of the simulation scale (default -12)")
    parser.add_argument("--seed", type=int, default=20140630)
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts per stage/task before it is "
                        "degraded (default 1)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock timeout per pool task; a hung "
                        "task's pool is respawned and the task retried")
    parser.add_argument("--inject-faults", action="append", default=[],
                        metavar="SPEC", type=parse_fault,
                        help="deterministic fault injection, repeatable; "
                        "SPEC is stage:kind[:index[:count[:seconds]]] with "
                        "kind one of error/delay/kill/corrupt, e.g. "
                        "window_result:kill:1 or crossval:delay:0:1:5 — or "
                        "a source data fault "
                        "source:NAME:kind[:amount[:start]] with kind one "
                        "of drop/truncate/duplicate/skew/spoof, e.g. "
                        "source:SWIN:spoof:200000:2013.5")
    parser.add_argument("--quarantine-policy", choices=POLICY_PRESETS,
                        default="default", metavar="PRESET",
                        help="source-integrity preset judging each "
                        f"source per window ({', '.join(POLICY_PRESETS)}); "
                        "quarantined sources are excluded and the window "
                        "refit on the rest (default: default)")
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="enable tracing and persist the run ledger "
                        "(spans, metrics, events, provenance) to DIR; "
                        "render it later with 'repro report DIR'")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="enable metrics and write the JSON metrics "
                        "export to PATH after the run")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent artifact store directory: stage "
                        "outputs (tabulations, fits, window results) are "
                        "content-addressed and reused across runs and "
                        "worker processes; a repeat run against a warm "
                        "store skips recomputation wholesale")
    parser.add_argument("--batch-fits", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="group same-shape model fits across "
                        "levels/strata/scan points into batched IRLS "
                        "solves (default: on; --no-batch-fits restores "
                        "the sequential kernel — estimates agree at "
                        "rtol 1e-8 and cache artifacts are shared)")
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared parent for every command that fans work out: one canonical
    # ``--workers`` definition (help text included) instead of a copy
    # per subcommand, and widths below 1 are rejected at parse time.
    workers_parent = argparse.ArgumentParser(add_help=False)
    workers_parent.add_argument(
        "--workers", type=_parse_workers, default=1,
        help="worker-pool width for the parallel fan-out (>= 1; "
        "results are bit-identical whatever the width)")

    # The pipeline knobs, shared by every estimating subcommand so the
    # flags parse identically before or after the subcommand name.
    pipeline_parents = _pipeline_parents()

    sub.add_parser("simulate", help="build the synthetic Internet and "
                   "print its vitals")

    estimate = sub.add_parser("estimate", parents=pipeline_parents,
                              help="run the estimation "
                              "pipeline on one window")
    estimate.add_argument("--window", type=_parse_window,
                          default=TimeWindow(2013.5, 2014.5))

    windows = sub.add_parser(
        "windows",
        parents=[workers_parent, *pipeline_parents],
        help="sweep the 11 standard windows through the staged engine",
    )
    windows.add_argument("--report", action="store_true",
                         help="print the per-stage instrumentation table, "
                         "including fit-kernel counters (fits, warm-start "
                         "hits, IRLS iterations saved, Cholesky fallbacks)")

    health = sub.add_parser(
        "health",
        parents=pipeline_parents,
        help="per-source integrity verdicts and the pairwise "
        "agreement matrix for one window",
    )
    health.add_argument("--window", type=_parse_window,
                        default=TimeWindow(2013.5, 2014.5))

    crossval = sub.add_parser("crossval",
                              parents=[workers_parent, *pipeline_parents],
                              help="leave-one-source-out cross-validation")
    crossval.add_argument("--window", type=_parse_window,
                          default=TimeWindow(2013.5, 2014.5))

    sub.add_parser("supply", parents=pipeline_parents,
                   help="Table 6 supply runout forecast")

    sensitivity = sub.add_parser(
        "sensitivity", parents=[workers_parent, *pipeline_parents],
        help="leave-one-source-out estimate leverage",
    )
    sensitivity.add_argument("--window", type=_parse_window,
                             default=TimeWindow(2013.5, 2014.5))

    churn = sub.add_parser(
        "churn", help="the Section 4.6 dynamic-address session experiment"
    )
    churn.add_argument("--clients", type=int, default=100_000)
    churn.add_argument("--days", type=int, default=16)

    files = sub.add_parser(
        "estimate-files",
        help="capture-recapture over YOUR datasets (one file per source)",
    )
    files.add_argument("paths", nargs="+",
                       help="dataset files (>= 2), one source each")
    files.add_argument("--fmt", choices=["list", "clf", "flow"],
                       default="list",
                       help="file format: address list, Apache CLF, "
                       "or flow CSV")
    files.add_argument("--limit", type=float, default=None,
                       help="optional population bound (routed size) for "
                       "truncated estimation")

    report = sub.add_parser(
        "report",
        help="render a persisted run ledger (written by --trace)",
    )
    report.add_argument("run_dir", help="run directory written by --trace")
    report.add_argument("--top", type=int, default=10,
                        help="how many slowest spans to show (default 10)")
    report.add_argument("--diff", metavar="OTHER_RUN_DIR", default=None,
                        help="diff this run against a baseline run ledger: "
                        "provenance drift, per-stage timing deltas, "
                        "cache/store efficiency and fit-kernel totals")

    store = sub.add_parser(
        "store",
        help="inspect and maintain a persistent artifact store directory",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_stats = store_sub.add_parser(
        "stats", help="entry counts, bytes and per-stage breakdown"
    )
    store_stats.add_argument("path", help="store directory (as in --store)")

    store_gc = store_sub.add_parser(
        "gc", help="reclaim space by age and/or total size (oldest first)"
    )
    store_gc.add_argument("path", help="store directory (as in --store)")
    store_gc.add_argument("--max-bytes", type=_parse_size, default=None,
                          metavar="SIZE",
                          help="keep the store under SIZE (e.g. 500M, 2G)")
    store_gc.add_argument("--max-age", type=_parse_age, default=None,
                          metavar="AGE",
                          help="drop entries unused for AGE (e.g. 7d, 12h)")

    store_verify = store_sub.add_parser(
        "verify", help="checksum-verify every entry in the store"
    )
    store_verify.add_argument("path", help="store directory (as in --store)")
    store_verify.add_argument("--delete", action="store_true",
                              help="unlink entries that fail verification")

    # Shared parent for the campaign-service commands: every verb needs
    # the service directory holding per-campaign state + query ledgers.
    service_parent = argparse.ArgumentParser(add_help=False)
    service_parent.add_argument(
        "--service", metavar="DIR", default="campaigns",
        help="service directory holding campaign state and query "
        "ledgers (default: campaigns)")

    campaign = sub.add_parser(
        "campaign",
        help="estimation campaigns: submit once, poll status, fetch "
        "results (see also 'repro query')",
    )
    campaign_sub = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    submit = campaign_sub.add_parser(
        "submit", parents=[workers_parent, service_parent,
                           *pipeline_parents],
        help="submit a campaign (windows x sensitivity grid) and run "
        "it to completion on the in-process backend",
    )
    submit.add_argument("--window", action="append", type=_parse_window,
                        default=None, metavar="START:END",
                        help="campaign window, repeatable (default: the "
                        "11 standard windows)")
    submit.add_argument("--drop", action="append", default=[],
                        metavar="SOURCE",
                        help="sensitivity axis: also re-estimate every "
                        "window with SOURCE removed (repeatable)")

    campaign_status = campaign_sub.add_parser(
        "status", parents=[service_parent],
        help="per-task pending/running/done/degraded accounting",
    )
    campaign_status.add_argument("campaign_id")

    campaign_results = campaign_sub.add_parser(
        "results", parents=[service_parent],
        help="the completed campaign's window sweep and sensitivity grid",
    )
    campaign_results.add_argument("campaign_id")

    query = sub.add_parser(
        "query", parents=[service_parent],
        help="answer repeated queries (totals, growth, windows, "
        "sensitivity) from a campaign's query ledger — no refits",
    )
    query.add_argument("campaign_id", nargs="?", default=None,
                       help="campaign to query (default: the most "
                       "recently touched campaign in the service dir)")
    query.add_argument("--what", default="totals",
                       choices=("totals", "growth", "windows",
                                "sensitivity"),
                       help="which precomputed answer to serve "
                       "(default: totals)")

    # Shared parent for the stream verbs: every one tails a journal.
    journal_parent = argparse.ArgumentParser(add_help=False)
    journal_parent.add_argument(
        "--journal", metavar="DIR", required=True,
        help="observation-delta journal directory (append-only, "
        "checksummed JSONL segments)")

    stream = sub.add_parser(
        "stream",
        help="incremental estimation over an observation-delta journal "
        "(ingest the tail, close windows with warm refits, snapshot "
        "state for restart)",
    )
    stream_sub = stream.add_subparsers(dest="stream_command", required=True)

    stream_ingest = stream_sub.add_parser(
        "ingest", parents=[journal_parent, *pipeline_parents],
        help="apply the journal tail to the stream state (optionally "
        "writing the journal first from the simulated sources)",
    )
    stream_ingest.add_argument(
        "--simulate", action="store_true",
        help="first write the standard simulated sources into the "
        "journal, quarter by quarter (the journal must be empty)")
    stream_ingest.add_argument(
        "--through", type=float, default=TIME_HORIZON, metavar="YEAR",
        help="with --simulate, journal observations up to YEAR "
        f"(default {TIME_HORIZON})")
    stream_ingest.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="apply at most N journal records (the rest stay in the "
        "tail for the next ingest/advance)")

    stream_advance = stream_sub.add_parser(
        "advance", parents=[journal_parent, *pipeline_parents],
        help="ingest the tail, close every coverable standard window "
        "(re-closing ones invalidated by late events) and print the "
        "growth series",
    )
    stream_advance.add_argument(
        "--window", action="append", type=_parse_window, default=None,
        metavar="START:END",
        help="close this window instead of every coverable one "
        "(repeatable)")

    stream_sub.add_parser(
        "snapshot", parents=[journal_parent, *pipeline_parents],
        help="ingest the tail and persist the stream state into the "
        "artifact store (requires --store); a later command resumes "
        "from the snapshot plus the journal tail",
    )
    return parser


def _internet(args: argparse.Namespace) -> SyntheticInternet:
    return SyntheticInternet(
        SimulationConfig(scale=2.0**args.scale_log2, seed=args.seed)
    )


def _pipeline(args: argparse.Namespace) -> EstimationPipeline:
    """A pipeline whose engine runs under the CLI's execution policy."""
    internet = _internet(args)
    policy = ExecutionPolicy(
        retries=args.retries, task_timeout=args.task_timeout
    )
    stage_specs = [
        s for s in args.inject_faults if not isinstance(s, SourceFaultSpec)
    ]
    source_specs = [
        s for s in args.inject_faults if isinstance(s, SourceFaultSpec)
    ]
    faults = (
        FaultInjector(stage_specs, seed=args.seed) if stage_specs else None
    )
    sources = None
    if source_specs:
        from repro.sources.catalog import build_standard_sources

        # Spoof injections draw from allocated space so they survive
        # routed-space preprocessing and actually stress the filter.
        sources = apply_source_faults(
            build_standard_sources(internet),
            source_specs,
            seed=args.seed,
            spoof_support=internet.registry.allocated_space(),
        )
    options = PipelineOptions(
        quarantine=QuarantinePolicy.named(args.quarantine_policy),
        batch_fits=args.batch_fits,
    )
    observer = Observer() if (args.trace or args.metrics_out) else None
    cache = (
        open_store(args.store, observer=observer, faults=faults)
        if getattr(args, "store", None)
        else None
    )
    engine = Executor(
        internet, sources, options, policy=policy, faults=faults,
        observer=observer, cache=cache,
    )
    pipeline = EstimationPipeline(internet, engine=engine)
    if observer is not None and args.trace:
        # Built here, not at finalize, so the ledger clocks the whole run.
        args._obs_ledger = RunLedger(
            args.trace,
            seed=args.seed,
            options=pipeline.options,
            policy=policy,
        )
    args._obs_pipeline = pipeline
    return pipeline


def _finalize_observability(args: argparse.Namespace) -> None:
    """Persist the run ledger and/or metrics export, if requested."""
    pipeline = getattr(args, "_obs_pipeline", None)
    stream = getattr(args, "_obs_stream", None)
    if (pipeline is None and stream is None) or not (
        args.trace or args.metrics_out
    ):
        return
    if pipeline is not None:
        observer = pipeline.engine.observer
    else:
        observer = stream.observer
    if pipeline is not None:
        report, cache = pipeline.report, pipeline.engine.cache
    else:
        report, cache = stream.report, None
    ledger = getattr(args, "_obs_ledger", None)
    if ledger is not None:
        run_dir = ledger.finalize(observer, report=report, cache=cache)
        print(f"\nrun ledger written to {run_dir} "
              f"(render with: python -m repro report {run_dir})")
    else:
        absorb_engine_accounting(observer, report=report, cache=cache)
    if args.metrics_out:
        from pathlib import Path

        path = Path(args.metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(observer.metrics.to_json_text() + "\n")
        print(f"metrics written to {path}")


def _print_fault_summary(report) -> None:
    """One line per degraded task, if the run was not clean."""
    degraded = report.degraded_records()
    if not degraded and not report.retry_count:
        return
    print(f"\nfault tolerance: {report.retry_count} retried attempt(s), "
          f"{len(degraded)} degraded task(s)")
    for rec in degraded:
        print(f"  degraded {rec.stage} {rec.key}: {rec.error}")


def cmd_simulate(args: argparse.Namespace) -> int:
    """Build the synthetic Internet and print its vitals."""
    internet = _internet(args)
    scale = internet.config.scale
    print(internet.describe())
    rows = []
    for start, end in [(2011.0, 2012.0), (2013.5, 2014.5)]:
        rows.append([
            f"{start:.2f}-{end:.2f}",
            internet.routed_size(start, end),
            internet.truth_used_addresses(start, end),
            internet.truth_used_subnets(start, end),
            f"{to_real(internet.truth_used_addresses(start, end), scale) / 1e6:.0f}",
        ])
    print(format_table(
        ["window", "routed", "used addrs", "used /24s", "real-equiv used[M]"],
        rows,
    ))
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    """Run the estimation pipeline on one window and print it."""
    pipeline = _pipeline(args)
    result = pipeline.run_window(args.window)
    scale = pipeline.internet.config.scale
    rows = [
        ["routed", result.routed_addresses, result.routed_subnets],
        ["pingable", result.ping_addresses, result.ping_subnets],
        ["observed", result.observed_addresses, result.observed_subnets],
        ["estimated", f"{result.estimated_addresses:.0f}",
         f"{result.estimated_subnets:.0f}"],
        ["truth", result.truth_addresses, result.truth_subnets],
    ]
    print(format_table(
        ["quantity", "addresses", "/24 subnets"],
        rows,
        title=f"window {args.window.label()} "
        f"(x{1 / scale:.0f} for real-equivalent)",
    ))
    print(f"\nest/ping {result.estimated_addresses / result.ping_addresses:.2f}"
          f"  est/obs {result.estimated_addresses / result.observed_addresses:.2f}")
    _print_integrity_summary(result)
    return 0


def _print_integrity_summary(result) -> None:
    """One line per integrity action taken on a window result."""
    health = result.health
    if health is None:
        return
    for name in result.excluded_sources:
        record = next(h for h in health.sources if h.source == name)
        print(f"quarantined {name}: {'; '.join(record.reasons)} "
              f"(estimate refit without it)")
    for name in health.suspect:
        record = next(h for h in health.sources if h.source == name)
        print(f"suspect {name}: {'; '.join(record.reasons)}")
    if result.suspect_bracket is not None:
        low, high = result.suspect_bracket
        print(f"suspect sensitivity bracket: [{low:.0f}, {high:.0f}]")
    for name, reason in health.dropped:
        print(f"dropped {name} for this window: {reason}")


def cmd_health(args: argparse.Namespace) -> int:
    """Print one window's per-source verdicts and agreement matrix."""
    pipeline = _pipeline(args)
    report = pipeline.window_health(args.window)

    def score(value: float) -> str:
        return "-" if math.isnan(value) else f"{value:.3f}"

    rows = [
        [
            h.source,
            f"{h.addresses}",
            score(h.bogon_fraction),
            score(h.capture_zscore),
            score(h.agreement_score),
            h.verdict,
            "; ".join(h.reasons),
        ]
        for h in report.sources
    ]
    print(format_table(
        ["source", "addresses", "bogon", "zscore", "agreement",
         "verdict", "reasons"],
        rows,
        title=f"source health, window {args.window.label()} "
        f"(policy: {args.quarantine_policy})",
    ))
    names = report.agreement_names
    if len(names):
        print("\npairwise Chapman agreement matrix (population estimates)")
        matrix_rows = [
            [a] + [
                "-" if math.isnan(report.agreement_matrix[i, j])
                else f"{report.agreement_matrix[i, j]:.3g}"
                for j in range(len(names))
            ]
            for i, a in enumerate(names)
        ]
        print(format_table([""] + list(names), matrix_rows))
    for name, reason in report.dropped:
        print(f"dropped {name} for this window: {reason}")
    return 0


def _print_sweep_table(series, scale: float, title: str) -> None:
    """The windows growth table — shared by ``windows`` and campaign
    ``results`` so a campaign renders byte-identically to the direct
    sweep it equals."""
    rows = [
        [label, f"{r:.0f}", f"{o:.0f}", f"{e:.0f}", f"{t:.0f}",
         f"{to_real(e, scale) / 1e6:.0f}"]
        for label, r, o, e, t in zip(
            series.labels, series.routed, series.observed,
            series.estimated, series.truth,
        )
    ]
    print(format_table(
        ["window", "routed", "observed", "estimated", "truth",
         "real-equiv est[M]"],
        rows,
        title=title,
    ))


def _print_growth_rate(series) -> None:
    if len(series.labels) >= 2:
        print(f"\nestimated growth/yr: "
              f"{series.growth_per_year('estimated'):.0f} addresses "
              f"(observed {series.growth_per_year('observed'):.0f})")


def _degraded_refit_line(label: str, quarantined, dropped) -> str:
    parts = []
    if quarantined:
        parts.append("quarantined " + ",".join(quarantined))
    if dropped:
        parts.append("dropped " + ",".join(dropped))
    return f"window {label}: refit degraded ({'; '.join(parts)})"


def cmd_windows(args: argparse.Namespace) -> int:
    """Sweep all standard windows through the engine and print them."""
    from repro.analysis.growth import series_from_results
    from repro.analysis.windows import missing_windows, standard_windows

    pipeline = _pipeline(args)
    windows = standard_windows()
    results = pipeline.run_all(windows, workers=args.workers)
    if not results:
        print("every window degraded; no estimates produced",
              file=sys.stderr)
        _print_fault_summary(pipeline.report)
        return 1
    series = series_from_results(results)
    scale = pipeline.internet.config.scale
    _print_sweep_table(
        series, scale,
        title=f"standard window sweep ({args.workers} worker(s))",
    )
    for window in missing_windows(windows, results):
        print(f"window {window.label()}: degraded, no estimate")
    for result in results:
        if result.is_degraded:
            print(_degraded_refit_line(
                result.window.label(),
                result.excluded_sources,
                [n for n, _ in result.health.dropped]
                if result.health is not None else [],
            ))
    _print_growth_rate(series)
    _print_fault_summary(pipeline.report)
    if args.report:
        print()
        print(pipeline.report.summary())
    return 0


def cmd_crossval(args: argparse.Namespace) -> int:
    """Leave-one-source-out cross-validation for one window."""
    pipeline = _pipeline(args)
    rows = []
    for r in cross_validate_window(pipeline, args.window,
                                   workers=args.workers):
        rows.append([
            r.source,
            r.universe_size,
            r.observed_by_others,
            r.true_unseen,
            f"{r.estimated_unseen:.0f}",
            f"{r.error / max(r.universe_size, 1) * 100:+.1f}%",
        ])
    print(format_table(
        ["held-out", "size", "seen by rest", "true unseen", "est unseen",
         "error/size"],
        rows,
        title=f"cross-validation, window {args.window.label()}",
    ))
    _print_fault_summary(pipeline.report)
    return 0


def cmd_supply(args: argparse.Namespace) -> int:
    """Print the Table 6 runout forecast."""
    pipeline = _pipeline(args)
    internet = pipeline.internet
    first = TimeWindow(2011.0, 2012.0)
    last = TimeWindow(2013.5, 2014.5)
    rows = supply_by_rir(pipeline, first, last)
    world = world_supply(rows, now=last.end)
    printable = [
        [
            r.label,
            f"{to_real(r.available, internet.config.scale) / 1e6:.0f}",
            f"{to_real(r.growth_per_year, internet.config.scale) / 1e6:.0f}",
            "never" if math.isinf(r.runout_year) else f"{r.runout_year:.0f}",
        ]
        for r in rows + [world]
    ]
    print(format_table(
        ["RIR", "available[M]", "growth[M/yr]", "runout"],
        printable,
        title="supply forecast (real-equivalent millions)",
    ))
    return 0


def cmd_sensitivity(args: argparse.Namespace) -> int:
    """Print each source's leave-one-out leverage."""
    from repro.analysis.sensitivity import source_leverage_window

    pipeline = _pipeline(args)
    report = source_leverage_window(pipeline, args.window,
                                    workers=args.workers)
    rows = [
        [row.source, f"{row.estimate_without:.0f}", f"{row.shift:+.1%}"]
        for row in report.rows
    ]
    print(format_table(
        ["dropped source", "estimate without", "shift"],
        rows,
        title=f"baseline estimate {report.baseline:.0f} "
        f"({args.window.label()}); "
        f"robust: {report.is_robust()}",
    ))
    _print_fault_summary(pipeline.report)
    return 0


def cmd_churn(args: argparse.Namespace) -> int:
    """Run the Section 4.6 session-churn experiment."""
    import numpy as np

    from repro.simnet.dynamics import simulate_session_churn

    rng = np.random.default_rng(args.seed)
    obs = simulate_session_churn(
        rng, num_clients=args.clients, num_days=args.days
    )
    addr_factor, subnet_factor = obs.growth_after_saturation()
    rows = [
        [int(d), int(a), int(s)]
        for d, a, s in zip(obs.days, obs.distinct_addresses,
                           obs.distinct_subnets)
    ]
    print(format_table(["day", "distinct IPs", "distinct /24s"], rows))
    print(f"\npost-saturation growth: IPs {addr_factor:.2f}x, "
          f"/24s {subnet_factor:.2f}x (paper: 2.7x / 1.2x)")
    return 0


def cmd_estimate_files(args: argparse.Namespace) -> int:
    """Run capture-recapture over user-supplied dataset files."""
    from pathlib import Path

    from repro.core.estimator import CaptureRecapture, EstimatorOptions
    from repro.sources.logparse import load_dataset

    if len(args.paths) < 2:
        print("need at least two dataset files", file=sys.stderr)
        return 2
    datasets = {}
    rows = []
    for path in args.paths:
        name = Path(path).stem
        result = load_dataset(path, fmt=args.fmt)
        datasets[name] = result.dataset
        rows.append([
            name, len(result.dataset), result.lines_read,
            result.lines_skipped,
        ])
    print(format_table(
        ["source", "addresses", "lines", "skipped"], rows,
        title="parsed datasets",
    ))
    cr = CaptureRecapture(datasets, EstimatorOptions(limit=args.limit))
    estimate = cr.estimate()
    interval = cr.profile_interval(alpha=0.001)
    print(f"\nestimate: {estimate.describe()}")
    print(f"range:    [{interval.population_low:.0f}, "
          f"{interval.population_high:.0f}]")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render a run ledger written by ``--trace`` (or diff two)."""
    from pathlib import Path

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"no run directory at {run_dir}", file=sys.stderr)
        return 2
    if args.diff is not None:
        other = Path(args.diff)
        if not other.is_dir():
            print(f"no run directory at {other}", file=sys.stderr)
            return 2
        print(render_run_diff(run_dir, other))
        return 0
    print(render_run_report(run_dir, top=args.top))
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """Inspect or maintain a persistent artifact store directory."""
    from pathlib import Path

    path = Path(args.path)
    if args.store_command != "stats" and not path.is_dir():
        print(f"no store directory at {path}", file=sys.stderr)
        return 2
    store = LocalStore(path)
    if args.store_command == "stats":
        usage = store.usage()
        print(f"store: {path}")
        print(f"  entries: {usage['entries']}")
        print(f"  bytes:   {usage['bytes']}")
        for stage, count in sorted(usage["stages"].items()):
            print(f"  {stage:<14} {count}")
        return 0
    if args.store_command == "gc":
        summary = store.gc(max_bytes=args.max_bytes, max_age=args.max_age)
        print(f"store gc: {path}")
        print(f"  removed: {summary['removed']} entries "
              f"({summary['removed_bytes']} bytes), "
              f"{summary['tmp_removed']} stale temp file(s)")
        print(f"  kept:    {summary['kept']} entries "
              f"({summary['kept_bytes']} bytes)")
        return 0
    summary = store.verify(delete=args.delete)
    print(f"store verify: {path}")
    print(f"  checked: {summary['checked']}")
    print(f"  corrupt: {summary['corrupt']}"
          + (" (deleted)" if args.delete and summary["corrupt"] else ""))
    for corrupt_path in summary["corrupt_paths"]:
        print(f"  corrupt entry: {corrupt_path}")
    return 0 if summary["corrupt"] == 0 else 1


def _scheduler(args: argparse.Namespace):
    """A read-side scheduler over the service directory (no simulator)."""
    from repro.service.scheduler import CampaignScheduler

    return CampaignScheduler(args.service)


def _print_campaign_status(status) -> None:
    print(status.summary())
    for state in ("pending", "running", "done", "degraded"):
        print(f"  {state:<9} {status.counts.get(state, 0)}")


def cmd_campaign(args: argparse.Namespace) -> int:
    """Dispatch the campaign service verbs (submit/status/results)."""
    if args.campaign_command == "submit":
        return _cmd_campaign_submit(args)
    from repro.service.queryledger import LEDGER_FILENAME

    scheduler = _scheduler(args)
    try:
        status = scheduler.status(args.campaign_id)
    except FileNotFoundError:
        print(f"no campaign {args.campaign_id} under {args.service}",
              file=sys.stderr)
        return 2
    if args.campaign_command == "status":
        _print_campaign_status(status)
        return 0
    # results
    if not status.finished:
        print(f"campaign {args.campaign_id} is {status.state}; results "
              "are published at completion", file=sys.stderr)
        return 1
    try:
        ledger = scheduler.ledger(args.campaign_id)
    except LedgerSchemaError as exc:
        print(f"cannot read campaign {args.campaign_id} ledger: {exc}",
              file=sys.stderr)
        return 2
    spec = ledger.spec()
    scale = 2.0 ** spec.scale_log2
    series = ledger.growth_series()
    _print_sweep_table(
        series, scale, title=f"campaign {args.campaign_id} window sweep"
    )
    for row in ledger.missing():
        if row.get("kind", "window") == "window":
            print(f"window {row['label']}: degraded, no estimate")
    for row in ledger.windows():
        if row["degraded"]:
            print(_degraded_refit_line(
                row["label"], row["excluded_sources"], row["dropped_sources"]
            ))
    _print_growth_rate(series)
    sensitivity = ledger.sensitivity()
    if sensitivity:
        print()
        print(format_table(
            ["window", "dropped source", "estimate without"],
            [[r["label"], r["source"], f"{r['estimate_without']:.0f}"]
             for r in sensitivity],
            title="sensitivity grid",
        ))
    ledger_path = scheduler.campaign_dir(args.campaign_id) / LEDGER_FILENAME
    print(f"\nquery ledger: {ledger_path} "
          f"(serve with: python -m repro query {args.campaign_id} "
          f"--service {args.service})")
    return 0


def _cmd_campaign_submit(args: argparse.Namespace) -> int:
    """Submit a campaign and drain it on the in-process backend."""
    from repro.analysis.windows import standard_windows
    from repro.service.campaign import CampaignSpec
    from repro.service.scheduler import CampaignScheduler

    pipeline = _pipeline(args)
    executor = pipeline.engine
    windows = args.window if args.window else standard_windows()
    spec = CampaignSpec(
        windows=tuple((w.start, w.end) for w in windows),
        scale_log2=args.scale_log2,
        seed=args.seed,
        options=executor.options,
        drop_sources=tuple(args.drop),
    )
    scheduler = CampaignScheduler(
        args.service,
        observer=executor.observer,
        faults=executor.faults,
        retries=args.retries,
    )
    campaign_id = scheduler.submit(spec)
    status = scheduler.status(campaign_id)
    if status.finished:
        print(f"campaign {campaign_id} already complete; "
              "status and results served from the existing ledger")
    else:
        status = scheduler.run(
            campaign_id, workers=args.workers, executor=executor
        )
    _print_campaign_status(status)
    print(f"\nresults: python -m repro campaign results {campaign_id} "
          f"--service {args.service}")
    return 0 if status.finished else 1


def cmd_query(args: argparse.Namespace) -> int:
    """Serve a precomputed answer from a campaign's query ledger."""
    from repro.core import fitkernel

    scheduler = _scheduler(args)
    campaign_id = args.campaign_id
    if campaign_id is None:
        known = scheduler.campaigns()
        if not known:
            print(f"no campaigns under {args.service}", file=sys.stderr)
            return 2
        campaign_id = known[0]
    try:
        ledger = scheduler.ledger(campaign_id)
    except FileNotFoundError:
        print(f"campaign {campaign_id} has no query ledger yet "
              f"(still running, or unknown under {args.service})",
              file=sys.stderr)
        return 2
    except LedgerSchemaError as exc:
        print(f"cannot read campaign {campaign_id} ledger: {exc}",
              file=sys.stderr)
        return 2
    spec = ledger.spec()
    scale = 2.0 ** spec.scale_log2
    if args.what == "totals":
        totals = ledger.totals()
        rows = [
            ["routed", f"{totals['routed_addresses']:.0f}"],
            ["observed", f"{totals['observed_addresses']:.0f}"],
            ["estimated", f"{totals['estimated_addresses']:.0f}"],
            ["estimated /24s", f"{totals['estimated_subnets']:.0f}"],
            ["truth", f"{totals['truth_addresses']:.0f}"],
            ["real-equiv est[M]",
             f"{to_real(totals['estimated_addresses'], scale) / 1e6:.0f}"],
        ]
        print(format_table(
            ["quantity", "addresses"], rows,
            title=f"totals, window {totals['window']} "
            f"(campaign {campaign_id})",
        ))
    elif args.what == "growth":
        growth = ledger.growth()
        rows = [
            [name, f"{value:.0f}",
             f"{to_real(value, scale) / 1e6:.1f}"]
            for name, value in growth.items()
        ]
        print(format_table(
            ["series", "growth/yr", "real-equiv[M/yr]"], rows,
            title=f"growth rates (campaign {campaign_id})",
        ))
    elif args.what == "windows":
        series = ledger.growth_series()
        _print_sweep_table(
            series, scale, title=f"campaign {campaign_id} window sweep"
        )
    else:  # sensitivity
        rows = ledger.sensitivity()
        if not rows:
            print("campaign requested no sensitivity grid", file=sys.stderr)
            return 1
        print(format_table(
            ["window", "dropped source", "estimate without"],
            [[r["label"], r["source"], f"{r['estimate_without']:.0f}"]
             for r in rows],
            title=f"sensitivity grid (campaign {campaign_id})",
        ))
    fits = fitkernel.snapshot().fits
    print(f"\nserved from query ledger {ledger.path} "
          f"({fits:.0f} GLM fits this process)")
    return 0


def _stream(args: argparse.Namespace) -> StreamEstimator:
    """A stream estimator resumed under the CLI's execution policy.

    Mirrors :func:`_pipeline` knob for knob — same options, policy,
    fault injector, observer and store wiring — so a stream close
    computes exactly what the batch subcommands would.
    """
    internet = _internet(args)
    policy = ExecutionPolicy(
        retries=args.retries, task_timeout=args.task_timeout
    )
    stage_specs = [
        s for s in args.inject_faults if not isinstance(s, SourceFaultSpec)
    ]
    faults = (
        FaultInjector(stage_specs, seed=args.seed) if stage_specs else None
    )
    options = PipelineOptions(
        quarantine=QuarantinePolicy.named(args.quarantine_policy),
        batch_fits=args.batch_fits,
    )
    observer = Observer() if (args.trace or args.metrics_out) else None
    store = (
        open_store(args.store, observer=observer, faults=faults)
        if args.store
        else None
    )
    stream = StreamEstimator.resume(
        internet,
        DeltaJournal(args.journal),
        options=options,
        policy=policy,
        store=store,
        observer=observer,
        faults=faults,
    )
    if observer is not None and args.trace:
        args._obs_ledger = RunLedger(
            args.trace, seed=args.seed, options=stream.options, policy=policy
        )
    args._obs_stream = stream
    return stream


def _print_snapshot_line(stream: StreamEstimator) -> None:
    stream.snapshot()
    print(f"snapshot written (journal {stream.journal.journal_id}, "
          f"seq {stream.next_seq})")


def _cmd_stream_ingest(args: argparse.Namespace) -> int:
    """Apply the journal tail (optionally simulating the journal first)."""
    if args.simulate:
        from repro.sources.catalog import build_standard_sources

        internet = _internet(args)
        sources = build_standard_sources(internet)
        source_specs = [
            s for s in args.inject_faults if isinstance(s, SourceFaultSpec)
        ]
        if source_specs:
            sources = apply_source_faults(
                sources, source_specs, seed=args.seed,
                spoof_support=internet.registry.allocated_space(),
            )
        try:
            journal = journal_from_sources(
                sources, args.journal, through=args.through
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(f"journal {args.journal}: wrote {len(journal)} record(s) "
              f"from {len(sources)} simulated source(s)")
    stream = _stream(args)
    applied = stream.ingest(limit=args.limit)
    remaining = len(stream.journal) - stream.next_seq
    print(f"ingested {applied} record(s) "
          f"(next seq {stream.next_seq}, {remaining} in tail)")
    end = stream.coverage_end()
    coverage = f"{end:.2f}" if end is not None else "none"
    print(f"sources: {len(stream.sources())}  coverage: through {coverage}"
          f"  closeable windows: {len(stream.closeable_windows())}")
    if stream.store is not None:
        _print_snapshot_line(stream)
    return 0


def _cmd_stream_advance(args: argparse.Namespace) -> int:
    """Ingest the tail, close every coverable window, print the series."""
    from repro.analysis.growth import series_from_results

    stream = _stream(args)
    results = stream.advance(args.window)
    if not results:
        print("journal covers no standard window yet; nothing to close",
              file=sys.stderr)
        return 1
    series = series_from_results(results)
    scale = stream.internet.config.scale
    _print_sweep_table(
        series, scale,
        title=f"stream window sweep (journal {stream.journal.journal_id})",
    )
    for result in results:
        if result.is_degraded:
            print(_degraded_refit_line(
                result.window.label(),
                result.excluded_sources,
                [n for n, _ in result.health.dropped]
                if result.health is not None else [],
            ))
    _print_growth_rate(series)
    for result in results:
        revision = stream.revision_of(result.window)
        if revision:
            print(f"window {result.window.label()}: revision {revision} "
                  "(late events absorbed)")
    _print_fault_summary(stream.report)
    if stream.store is not None:
        _print_snapshot_line(stream)
    return 0


def _cmd_stream_snapshot(args: argparse.Namespace) -> int:
    """Ingest the tail and persist the stream state into the store."""
    stream = _stream(args)
    if stream.store is None:
        print("stream snapshot requires --store DIR", file=sys.stderr)
        return 2
    stream.ingest()
    status = stream.describe()
    rows = [
        [name, meta["quarters"], meta["addresses"]]
        for name, meta in status["sources"].items()
    ]
    if rows:
        print(format_table(["source", "quarters", "addresses"], rows))
    print(f"closed windows: {len(status['closed_windows'])}  "
          f"stale: {len(status['stale_windows'])}")
    _print_snapshot_line(stream)
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Dispatch the streaming verbs (ingest/advance/snapshot)."""
    if args.stream_command == "ingest":
        return _cmd_stream_ingest(args)
    if args.stream_command == "advance":
        return _cmd_stream_advance(args)
    return _cmd_stream_snapshot(args)


COMMANDS = {
    "simulate": cmd_simulate,
    "estimate": cmd_estimate,
    "windows": cmd_windows,
    "health": cmd_health,
    "crossval": cmd_crossval,
    "supply": cmd_supply,
    "sensitivity": cmd_sensitivity,
    "churn": cmd_churn,
    "estimate-files": cmd_estimate_files,
    "report": cmd_report,
    "store": cmd_store,
    "campaign": cmd_campaign,
    "query": cmd_query,
    "stream": cmd_stream,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Parse arguments and dispatch to the chosen command."""
    args = build_parser().parse_args(argv)
    code = COMMANDS[args.command](args)
    _finalize_observability(args)
    return code


if __name__ == "__main__":
    sys.exit(main())
