"""Routed-space model (the Route Views substitute).

The paper identifies routed space from weekly Route Views snapshots
aggregated per 12-month window, excluding unallocated-but-advertised
prefixes.  Here each allocation carries a ``routed_from`` year;
the aggregated window view is the union of allocations advertised at
any time during the window, plus short-lived "flapped" advertisements
that only an aggregation over snapshots would catch — reproducing why
window-aggregated routed space slightly exceeds any instantaneous
table.  Bogus advertisements of unallocated space are generated and
then excluded, mirroring the paper's filtering step.
"""

from __future__ import annotations

import numpy as np

from repro.ipspace.intervals import IntervalSet
from repro.ipspace.prefixes import Prefix
from repro.ipspace.trie import PrefixTrie
from repro.registry.allocations import AllocationRegistry


class RoutedSpace:
    """Window-aggregated view of publicly routed space."""

    def __init__(
        self,
        registry: AllocationRegistry,
        rng: np.random.Generator,
        flap_fraction: float = 0.01,
        num_bogons: int = 3,
    ) -> None:
        self.registry = registry
        self._flap_fraction = flap_fraction
        # Pre-draw per-allocation flap activity deterministically so
        # different windows see consistent behaviour.
        n = len(registry)
        self._flap_scores = rng.random(n)
        self._bogons = self._draw_bogons(rng, num_bogons)
        self._cache: dict[tuple[float, float], IntervalSet] = {}

    def _draw_bogons(self, rng: np.random.Generator, count: int) -> list[Prefix]:
        """Unallocated-but-advertised prefixes (to be excluded)."""
        allocated = self.registry.allocated_space()
        from repro.ipspace.special import public_space

        free = public_space().difference(allocated)
        prefixes = [p for p in free.to_prefixes() if p.length <= 24]
        if not prefixes:
            return []
        picks = rng.choice(len(prefixes), size=min(count, len(prefixes)), replace=False)
        bogons = []
        for i in np.atleast_1d(picks):
            block = prefixes[int(i)]
            # Advertise a /24 inside the free block.
            bogons.append(Prefix(block.base, min(24, max(block.length, 24))))
        return bogons

    @property
    def bogon_prefixes(self) -> list[Prefix]:
        """The unallocated-but-advertised prefixes the model excludes."""
        return list(self._bogons)

    def routed_allocation_mask(self, start: float, end: float) -> np.ndarray:
        """Bool mask over allocations: advertised during [start, end)."""
        stable = self.registry.routed_from < end
        # A small fraction of not-yet-stable allocations flap into view
        # during a long window (aggregation over weekly snapshots).
        flapped = (
            (self.registry.routed_from >= end)
            & np.isfinite(self.registry.routed_from)
            & (self.registry.routed_from < end + 1.0)
            & (self._flap_scores < self._flap_fraction * max(end - start, 0.0))
        )
        return stable | flapped

    def window(self, start: float, end: float) -> IntervalSet:
        """Aggregated routed space for the window [start, end)."""
        key = (round(start, 4), round(end, 4))
        if key not in self._cache:
            mask = self.routed_allocation_mask(start, end)
            prefixes = [
                alloc.prefix
                for alloc, routed in zip(self.registry.allocations, mask)
                if routed
            ]
            self._cache[key] = IntervalSet.from_prefixes(prefixes)
        return self._cache[key]

    def size(self, start: float, end: float) -> int:
        """Routed addresses in the window."""
        return self.window(start, end).size()

    def subnet24_count(self, start: float, end: float) -> int:
        """Routed /24 blocks in the window."""
        return self.window(start, end).subnet24_count()

    def routing_table(self, start: float, end: float) -> PrefixTrie:
        """A longest-prefix-match table of the window's advertisements.

        Used for FIB-size accounting (Section 7.2.1) and by examples
        that want per-address origin lookups.
        """
        trie = PrefixTrie()
        mask = self.routed_allocation_mask(start, end)
        for alloc, routed in zip(self.registry.allocations, mask):
            if routed:
                trie.insert(alloc.prefix, alloc.index)
        return trie
