"""Whois-style records and industry classification.

The paper's industry stratification comes from whois: "We classified
88 % of the allocated address space based on whois information (down
to /17 networks)" into education / military / government / corporate /
ISP.  This module closes the loop on that substrate: it renders the
synthetic registry as RPSL-ish ``inetnum`` records (with realistic
noise — a fraction of records carry no usable organisation info),
parses such records back, and classifies organisation names into the
paper's industry buckets by keyword, reporting the classified-space
coverage the paper quotes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.ipspace.addresses import format_addr
from repro.registry.allocations import Allocation, AllocationRegistry
from repro.registry.rir import Industry

#: Organisation-name stems per industry used when rendering records.
_ORG_STEMS: dict[Industry, tuple[str, ...]] = {
    Industry.ISP: ("Telecom", "Broadband", "Cable", "Net Services", "ISP",
                   "Communications"),
    Industry.CORPORATE: ("Holdings", "Industries", "Trading Co", "Logistics",
                         "Manufacturing", "Retail Group"),
    Industry.EDUCATION: ("University", "Institute of Technology", "College",
                         "Academy"),
    Industry.GOVERNMENT: ("Ministry of Interior", "National Agency",
                          "Department of Transport", "City Council"),
    Industry.MILITARY: ("Defence Forces", "Army Network", "Naval Command"),
    Industry.UNCLASSIFIED: ("",),
}

#: Keyword -> industry rules for the classifier (checked in order; the
#: military stems must match before the government ones).
_KEYWORD_RULES: tuple[tuple[str, Industry], ...] = (
    (r"defen[cs]e|army|naval|military|air force", Industry.MILITARY),
    (r"universit|college|institute of technology|academy|school",
     Industry.EDUCATION),
    (r"ministry|government|national agency|department of|council|federal",
     Industry.GOVERNMENT),
    (r"telecom|broadband|cable|isp|net services|communications|internet",
     Industry.ISP),
    (r"holdings|industries|trading|logistics|manufacturing|retail|bank|corp",
     Industry.CORPORATE),
)


@dataclass(frozen=True)
class WhoisRecord:
    """One parsed ``inetnum`` record."""

    first: int
    last: int
    netname: str
    organisation: str
    country: str

    @property
    def size(self) -> int:
        return self.last - self.first + 1


def render_whois(
    alloc: Allocation, rng: np.random.Generator, missing_prob: float = 0.12
) -> str:
    """An RPSL-style record for one allocation.

    With probability ``missing_prob`` the organisation field is the
    useless ``"Private Customer"`` — the 12 % of space the paper could
    not classify.
    """
    if rng.random() < missing_prob:
        org = "Private Customer"
    else:
        stems = _ORG_STEMS[alloc.industry]
        stem = stems[int(rng.integers(len(stems)))]
        org = f"{alloc.country} {stem}".strip() or "Private Customer"
    return "\n".join([
        f"inetnum:      {format_addr(alloc.prefix.base)} - "
        f"{format_addr(alloc.prefix.last)}",
        f"netname:      NET-{alloc.country}-{alloc.index:05d}",
        f"organisation: {org}",
        f"country:      {alloc.country}",
        f"created:      {alloc.year}-01-01",
        "source:       SYNTHETIC-RIR",
    ])


def parse_whois(text: str) -> WhoisRecord:
    """Parse one rendered record (raises ValueError on malformed input)."""
    fields: dict[str, str] = {}
    for line in text.splitlines():
        key, _, value = line.partition(":")
        fields[key.strip().lower()] = value.strip()
    if "inetnum" not in fields:
        raise ValueError("record has no inetnum line")
    match = re.match(
        r"^(\d+\.\d+\.\d+\.\d+)\s*-\s*(\d+\.\d+\.\d+\.\d+)$",
        fields["inetnum"],
    )
    if not match:
        raise ValueError(f"malformed inetnum range: {fields['inetnum']!r}")
    from repro.ipspace.addresses import parse_addr

    first = parse_addr(match.group(1))
    last = parse_addr(match.group(2))
    if last < first:
        raise ValueError("inetnum range reversed")
    return WhoisRecord(
        first=first,
        last=last,
        netname=fields.get("netname", ""),
        organisation=fields.get("organisation", ""),
        country=fields.get("country", "??"),
    )


def classify_industry(organisation: str) -> Industry:
    """Keyword classification of an organisation name (the paper's
    whois-based industry assignment)."""
    lowered = organisation.lower()
    for pattern, industry in _KEYWORD_RULES:
        if re.search(pattern, lowered):
            return industry
    return Industry.UNCLASSIFIED


@dataclass(frozen=True)
class ClassificationReport:
    """Outcome of classifying a whole registry from whois text."""

    total_space: int
    classified_space: int
    correct_space: int

    @property
    def coverage(self) -> float:
        """Fraction of space assigned a (non-UNCLASSIFIED) industry."""
        if self.total_space == 0:
            return 0.0
        return self.classified_space / self.total_space

    @property
    def accuracy(self) -> float:
        """Fraction of *classified* space assigned its true industry."""
        if self.classified_space == 0:
            return 0.0
        return self.correct_space / self.classified_space


def classify_registry(
    registry: AllocationRegistry,
    rng: np.random.Generator,
    missing_prob: float = 0.12,
) -> ClassificationReport:
    """Render + parse + classify every allocation; report coverage.

    The paper classified 88 % of the allocated space; with the default
    missing probability this round-trip reproduces that figure.
    """
    total = classified = correct = 0
    for alloc in registry:
        record = parse_whois(render_whois(alloc, rng, missing_prob))
        industry = classify_industry(record.organisation)
        total += alloc.prefix.size
        if industry is not Industry.UNCLASSIFIED:
            classified += alloc.prefix.size
            true_industry = alloc.industry
            if industry == true_industry or (
                true_industry is Industry.UNCLASSIFIED
            ):
                correct += alloc.prefix.size
    return ClassificationReport(
        total_space=total,
        classified_space=classified,
        correct_space=correct,
    )
