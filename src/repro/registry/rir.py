"""Regional Internet Registry model.

Encodes the five RIRs with the coarse real-world shape the paper's
regional analyses depend on: share of total allocated space, runout
year (after which an RIR only hands out small final-policy blocks, e.g.
APNIC's /22-only policy from April 2011), typical utilisation level and
relative growth rate (AfriNIC/LACNIC fastest in relative terms,
APNIC/ARIN faster than RIPE among the big three — Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class RIR(IntEnum):
    """The five Regional Internet Registries."""

    AFRINIC = 0
    APNIC = 1
    ARIN = 2
    LACNIC = 3
    RIPE = 4


RIR_NAMES: tuple[str, ...] = tuple(r.name for r in RIR)


@dataclass(frozen=True)
class RirProfile:
    """Shape parameters for one RIR's synthetic registry.

    ``space_share``: fraction of total allocated space.
    ``legacy_share``: fraction of its space allocated before 1998
    (drives the allocation-age analysis of Fig 8).
    ``runout_year``: when the final-/22-style policy kicks in.
    ``utilisation``: mean fraction of a routed block's /24s in use by
    mid 2014 (drives regional supply, Table 6).
    ``growth_rate``: relative yearly growth of used addresses
    (drives Fig 6's normalised curves).
    """

    rir: RIR
    space_share: float
    legacy_share: float
    runout_year: float
    utilisation: float
    growth_rate: float
    #: Pool space still unallocated mid-2014, as a fraction of the
    #: RIR's allocated space (AfriNIC held ~2.5 of the 5.5 remaining
    #: /8s; the exhausted RIRs held only final-policy crumbs).
    unallocated_fraction: float = 0.02


#: Coarse real-world shapes; shares sum to 1.
_PROFILES: tuple[RirProfile, ...] = (
    RirProfile(RIR.AFRINIC, 0.03, 0.02, 2018.0, 0.45, 0.45, 0.38),
    RirProfile(RIR.APNIC, 0.24, 0.10, 2011.3, 0.72, 0.22, 0.015),
    RirProfile(RIR.ARIN, 0.38, 0.45, 2015.5, 0.42, 0.12, 0.016),
    RirProfile(RIR.LACNIC, 0.05, 0.03, 2014.5, 0.62, 0.30, 0.030),
    RirProfile(RIR.RIPE, 0.30, 0.15, 2012.7, 0.60, 0.08, 0.010),
)


def rir_profiles() -> dict[RIR, RirProfile]:
    """Profile per RIR, keyed by the enum."""
    return {profile.rir: profile for profile in _PROFILES}


class Industry(IntEnum):
    """Whois-derived industry classes used for stratification."""

    ISP = 0
    CORPORATE = 1
    EDUCATION = 2
    GOVERNMENT = 3
    MILITARY = 4
    UNCLASSIFIED = 5


INDUSTRY_NAMES: tuple[str, ...] = tuple(i.name for i in Industry)

#: Share of allocations per industry; the paper classified 88 % of the
#: allocated space, the remainder is UNCLASSIFIED.
INDUSTRY_WEIGHTS: dict[Industry, float] = {
    Industry.ISP: 0.52,
    Industry.CORPORATE: 0.20,
    Industry.EDUCATION: 0.08,
    Industry.GOVERNMENT: 0.05,
    Industry.MILITARY: 0.03,
    Industry.UNCLASSIFIED: 0.12,
}

#: Relative density of *used* addresses inside routed blocks per
#: industry: ISPs fill pools densely, military space is often dark.
INDUSTRY_UTILISATION: dict[Industry, float] = {
    Industry.ISP: 1.00,
    Industry.CORPORATE: 0.55,
    Industry.EDUCATION: 0.50,
    Industry.GOVERNMENT: 0.35,
    Industry.MILITARY: 0.06,
    Industry.UNCLASSIFIED: 0.45,
}

#: Probability that an allocation is ever publicly routed, per industry
#: (about 80 % of allocated space is routed overall [14]).
INDUSTRY_ROUTED_PROB: dict[Industry, float] = {
    Industry.ISP: 0.95,
    Industry.CORPORATE: 0.80,
    Industry.EDUCATION: 0.85,
    Industry.GOVERNMENT: 0.60,
    Industry.MILITARY: 0.40,
    Industry.UNCLASSIFIED: 0.70,
}
