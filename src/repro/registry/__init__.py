"""Allocation and routing registry substrate.

Stand-in for the paper's RIR allocation files, whois industry
classification and Route Views BGP snapshots: a synthetic but
realistically shaped registry of IPv4 allocations (RIR, country,
allocation year, prefix size, industry) plus a routed-space model with
weekly-snapshot aggregation semantics.
"""

from repro.registry.allocations import Allocation, AllocationRegistry, generate_registry
from repro.registry.countries import COUNTRIES_BY_RIR, country_weights
from repro.registry.rir import RIR, RIR_NAMES, RirProfile, rir_profiles
from repro.registry.routing import RoutedSpace

__all__ = [
    "Allocation",
    "AllocationRegistry",
    "COUNTRIES_BY_RIR",
    "RIR",
    "RIR_NAMES",
    "RirProfile",
    "RoutedSpace",
    "country_weights",
    "generate_registry",
    "rir_profiles",
]
