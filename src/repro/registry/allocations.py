"""Synthetic RIR allocation registry.

The generator produces a registry whose *shape* matches what the
paper's stratifications need: five RIRs with realistic space shares,
per-RIR country mixes, allocation years 1983-2014 with a legacy era and
per-RIR runout policies, a heavy-tailed prefix-size distribution, and
whois-style industry classes.

Scaling: the simulated Internet is a linearly scaled-down copy of the
real one.  ``scale`` multiplies the number of /24-blocks of allocated
space; allocation prefix *sizes* shrink by ``log2(1/scale)`` bits
(clamped so no allocation is smaller than a /24, preserving realistic
/24 interiors), while each allocation remembers its *real-equivalent*
prefix length (8-24) for stratification, so Figure 7's x-axis matches
the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Iterable

import numpy as np

from repro.ipspace.intervals import IntervalSet
from repro.ipspace.prefixes import Prefix
from repro.ipspace.special import public_space
from repro.registry.countries import country_weights
from repro.registry.rir import (
    INDUSTRY_ROUTED_PROB,
    INDUSTRY_WEIGHTS,
    RIR,
    Industry,
    RirProfile,
    rir_profiles,
)

#: Total allocated IPv4 space in /24 units (~3.55 B addresses / 256).
REAL_ALLOCATED_24S = 13_870_000

#: First and last years of the simulated allocation history.
FIRST_ALLOCATION_YEAR = 1983
LAST_ALLOCATION_YEAR = 2014


@dataclass(frozen=True)
class Allocation:
    """One RIR delegation."""

    index: int
    prefix: Prefix
    rir: RIR
    country: str
    year: int
    real_length: int
    industry: Industry
    routed_from: float  # fractional year; inf = never routed
    darknet: bool = False

    @property
    def is_routed_ever(self) -> bool:
        return math.isfinite(self.routed_from)

    def routed_in(self, start: float, end: float) -> bool:
        """Advertised at some point during the window [start, end)."""
        return self.routed_from < end


class AllocationRegistry:
    """Immutable set of non-overlapping allocations with fast lookup."""

    def __init__(
        self,
        allocations: Iterable[Allocation],
        rir_pools: dict[RIR, list[Prefix]] | None = None,
    ):
        #: Top-level space each RIR administers (used for Table 6's
        #: unallocated-supply accounting); may be empty for
        #: hand-constructed registries.
        self.rir_pools = rir_pools or {}
        ordered = sorted(allocations, key=lambda a: a.prefix.base)
        # Re-index in address order so ``allocations[i].index == i`` and
        # lookup positions line up with every attribute array.
        self.allocations = [
            replace(alloc, index=i) for i, alloc in enumerate(ordered)
        ]
        self._starts = np.array(
            [a.prefix.base for a in self.allocations], dtype=np.uint64
        )
        self._ends = np.array(
            [a.prefix.end for a in self.allocations], dtype=np.uint64
        )
        if np.any(self._starts[1:] < self._ends[:-1]):
            raise ValueError("allocations overlap")
        self.rir_codes = np.array([a.rir for a in self.allocations], dtype=np.int8)
        self.years = np.array([a.year for a in self.allocations], dtype=np.int16)
        self.real_lengths = np.array(
            [a.real_length for a in self.allocations], dtype=np.int8
        )
        self.industry_codes = np.array(
            [a.industry for a in self.allocations], dtype=np.int8
        )
        self.routed_from = np.array(
            [a.routed_from for a in self.allocations], dtype=np.float64
        )
        self.countries = np.array([a.country for a in self.allocations])

    def __len__(self) -> int:
        return len(self.allocations)

    def __iter__(self):
        return iter(self.allocations)

    def lookup(self, addrs) -> np.ndarray:
        """Allocation index per address (-1 where unallocated)."""
        arr = np.atleast_1d(np.asarray(addrs)).astype(np.uint64)
        if not len(self.allocations):
            return np.full(arr.shape, -1, dtype=np.int64)
        idx = np.searchsorted(self._starts, arr, side="right") - 1
        valid = idx >= 0
        clipped = np.clip(idx, 0, None)
        valid &= arr < self._ends[clipped]
        return np.where(valid, idx, -1)

    def allocated_space(self) -> IntervalSet:
        """Union of all allocations."""
        return IntervalSet.from_prefixes(a.prefix for a in self.allocations)

    def allocated_space_at(self, year: float) -> IntervalSet:
        """Union of allocations made up to ``year``."""
        return IntervalSet.from_prefixes(
            a.prefix for a in self.allocations if a.year <= year
        )

    def rir_space(self, rir: RIR) -> IntervalSet:
        """The top-level pool a RIR administers (empty if untracked)."""
        return IntervalSet.from_prefixes(self.rir_pools.get(rir, []))

    def unallocated_in_pool(self, rir: RIR) -> IntervalSet:
        """The RIR's remaining unallocated pool space."""
        return self.rir_space(rir).difference(self.allocated_space())

    def allocated_space_of(self, rir: RIR) -> IntervalSet:
        """Union of one RIR's allocations."""
        return IntervalSet.from_prefixes(
            a.prefix for a in self.allocations if a.rir == rir
        )

    # -- stratification labelers ------------------------------------------

    def labeler(self, kind: str) -> Callable[[np.ndarray], np.ndarray]:
        """Vectorised address -> stratum-label function.

        ``kind`` is one of ``"rir"``, ``"country"``, ``"industry"``,
        ``"prefix"`` (real-equivalent allocation length) or ``"age"``
        (allocation year).  Unallocated addresses label as -1 (or
        ``"??"`` for country).
        """
        attr = {
            "rir": self.rir_codes,
            "industry": self.industry_codes,
            "prefix": self.real_lengths,
            "age": self.years,
        }
        if kind in attr:
            values = attr[kind]

            def label_numeric(addrs: np.ndarray) -> np.ndarray:
                idx = self.lookup(addrs)
                out = np.full(idx.shape, -1, dtype=np.int64)
                hit = idx >= 0
                out[hit] = values[idx[hit]]
                return out

            return label_numeric
        if kind == "country":

            def label_country(addrs: np.ndarray) -> np.ndarray:
                idx = self.lookup(addrs)
                out = np.full(idx.shape, "??", dtype=self.countries.dtype)
                hit = idx >= 0
                out[hit] = self.countries[idx[hit]]
                return out

            return label_country
        raise ValueError(f"unknown stratification kind: {kind!r}")


class _FreePool:
    """Per-RIR pool of free CIDR blocks supporting random carve-outs."""

    def __init__(self, prefixes: Iterable[Prefix], rng: np.random.Generator):
        self._by_length: dict[int, list[Prefix]] = {}
        self._rng = rng
        for prefix in prefixes:
            self._by_length.setdefault(prefix.length, []).append(prefix)

    def carve(self, length: int) -> Prefix | None:
        """Remove and return a free /``length`` block, splitting as needed."""
        # Find the longest (smallest) available block that still fits,
        # which keeps large blocks intact for future large requests.
        candidates = [
            l for l, blocks in self._by_length.items() if blocks and l <= length
        ]
        if not candidates:
            return None
        source_length = max(candidates)
        blocks = self._by_length[source_length]
        block = blocks.pop(int(self._rng.integers(len(blocks))))
        while block.length < length:
            low, high = block.split()
            keep, give = (low, high) if self._rng.random() < 0.5 else (high, low)
            self._by_length.setdefault(give.length, []).append(give)
            block = keep
        return block

    def remaining_size(self) -> int:
        return sum(
            p.size for blocks in self._by_length.values() for p in blocks
        )


def _era_shares(profile: RirProfile) -> list[tuple[float, float, float]]:
    """(year_lo, year_hi, weight) eras for one RIR's allocation years."""
    legacy = profile.legacy_share
    boom_end = min(profile.runout_year, 2011.0)
    return [
        (FIRST_ALLOCATION_YEAR, 1998.0, legacy),
        (1998.0, 2004.0, (1.0 - legacy) * 0.3),
        (2004.0, boom_end, (1.0 - legacy) * 0.55),
        (boom_end, 2014.5, (1.0 - legacy) * 0.15),
    ]


#: Real-world prefix-length distribution by era: (length, weight).
_LEGACY_LENGTHS = ((8, 0.30), (12, 0.10), (16, 0.40), (20, 0.05), (24, 0.15))
_BOOM_LENGTHS = (
    (10, 0.08),
    (11, 0.08),
    (12, 0.10),
    (13, 0.10),
    (14, 0.12),
    (15, 0.10),
    (16, 0.14),
    (17, 0.06),
    (18, 0.06),
    (19, 0.06),
    (20, 0.04),
    (21, 0.03),
    (22, 0.03),
)
_RUNOUT_LENGTHS = ((21, 0.15), (22, 0.70), (23, 0.08), (24, 0.07))


def _draw_length(rng: np.random.Generator, year: float, runout: float) -> int:
    if year < 1998.0:
        table = _LEGACY_LENGTHS
    elif year >= runout:
        table = _RUNOUT_LENGTHS
    else:
        table = _BOOM_LENGTHS
    lengths = [l for l, _ in table]
    weights = np.array([w for _, w in table])
    return int(rng.choice(lengths, p=weights / weights.sum()))


def _split_public_space(
    rng: np.random.Generator, profiles: dict[RIR, RirProfile]
) -> dict[RIR, list[Prefix]]:
    """Assign top-level public-space blocks to RIRs by space share."""
    blocks = public_space().to_prefixes()
    # Work at /8 granularity like the real registry.
    units: list[Prefix] = []
    for block in blocks:
        if block.length < 8:
            units.extend(block.subnets(8))
        else:
            units.append(block)
    order = rng.permutation(len(units))
    total = sum(units[i].size for i in order)
    shares = {rir: profile.space_share for rir, profile in profiles.items()}
    pools: dict[RIR, list[Prefix]] = {rir: [] for rir in profiles}
    assigned = {rir: 0.0 for rir in profiles}
    for i in order:
        # Give the next unit to the RIR furthest below its target share.
        deficit = {
            rir: shares[rir] - assigned[rir] / total for rir in profiles
        }
        rir = max(deficit, key=deficit.get)
        pools[rir].append(units[i])
        assigned[rir] += units[i].size
    return pools


def generate_registry(
    rng: np.random.Generator,
    scale: float = 2.0**-10,
    num_darknets: int = 2,
) -> AllocationRegistry:
    """Generate a scaled synthetic allocation registry.

    ``scale`` shrinks the allocated space (in /24 units) linearly;
    ``num_darknets`` large routed-but-unused blocks are planted for the
    spoof filter's empty-block calibration (the paper's 53/8-style
    prefixes).
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    profiles = rir_profiles()
    shift = max(0, int(round(-math.log2(scale))))
    target_24s = max(64, int(REAL_ALLOCATED_24S * scale))
    pool_prefixes = _split_public_space(rng, profiles)
    pools = {
        rir: _FreePool(prefixes, rng) for rir, prefixes in pool_prefixes.items()
    }

    # Plant the darknets first: large, early-routed, essentially unused
    # military blocks (the analogue of 53/8 / 55/8) sized to ~3 % of
    # the allocated space each so the spoof filter's calibration sees
    # enough uniform hits at any simulation scale.
    allocations: list[Allocation] = []
    index = 0
    darknet_addresses = max(4096, (target_24s * 256) // 32)
    darknet_length = max(8, 32 - (int(darknet_addresses) - 1).bit_length())
    for _ in range(num_darknets):
        rir = RIR.ARIN if rng.random() < 0.6 else RIR.APNIC
        prefix = pools[rir].carve(darknet_length)
        if prefix is None:
            continue
        allocations.append(
            Allocation(
                index=index,
                prefix=prefix,
                rir=rir,
                country="US" if rir == RIR.ARIN else "AU",
                year=int(rng.integers(1988, 1995)),
                real_length=8,
                industry=Industry.MILITARY,
                routed_from=1998.0 + float(rng.uniform(0.0, 2.0)),
                darknet=True,
            )
        )
        index += 1

    rir_list = list(profiles)
    shares = {r: profiles[r].space_share for r in rir_list}
    carved_24s = {r: 0.0 for r in rir_list}

    capacity_24s = 0
    attempts = 0
    max_attempts = 500_000
    while capacity_24s < target_24s and attempts < max_attempts:
        attempts += 1
        # Deficit-driven RIR choice keeps realised space shares close
        # to the profile targets even though block sizes vary by era.
        deficits = {
            r: shares[r] - carved_24s[r] / max(target_24s, 1)
            for r in rir_list
        }
        rir = max(deficits, key=deficits.get)
        profile = profiles[rir]
        eras = _era_shares(profile)
        weights = np.array([w for _, _, w in eras])
        lo, hi, _ = eras[int(rng.choice(len(eras), p=weights / weights.sum()))]
        year = float(rng.uniform(lo, hi))
        real_length = _draw_length(rng, year, profile.runout_year)
        sim_length = min(24, real_length + shift)
        prefix = pools[rir].carve(sim_length)
        if prefix is None:
            continue
        codes, cweights = country_weights(rir)
        country = codes[int(rng.choice(len(codes), p=cweights))]
        industries = list(INDUSTRY_WEIGHTS)
        iweights = np.array([INDUSTRY_WEIGHTS[i] for i in industries])
        industry = industries[
            int(rng.choice(len(industries), p=iweights / iweights.sum()))
        ]
        if rng.random() < INDUSTRY_ROUTED_PROB[industry]:
            routed_from = max(year, 1995.0) + float(rng.exponential(1.5))
        else:
            routed_from = math.inf
        allocations.append(
            Allocation(
                index=index,
                prefix=prefix,
                rir=rir,
                country=country,
                year=int(year),
                real_length=real_length,
                industry=industry,
                routed_from=routed_from,
            )
        )
        block_24s = max(1, prefix.size // 256)
        capacity_24s += block_24s
        carved_24s[rir] += block_24s
        index += 1

    return AllocationRegistry(allocations, rir_pools=pool_prefixes)
