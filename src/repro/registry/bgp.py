"""BGP announcement dynamics and a Route-Views-style collector.

`repro.registry.routing.RoutedSpace` gives the window-aggregated view
the estimation pipeline consumes.  This module models the layer under
it: a stream of per-prefix announce/withdraw events (initial
announcements when an allocation is first advertised, flap
withdraw/re-announce pairs, and short-lived bogon advertisements of
unallocated space), plus a collector that replays the stream into a
longest-prefix-match table and takes periodic snapshots — the paper's
"weekly snapshots from Route Views, aggregated per window, excluding
unallocated-but-advertised prefixes" in executable form.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

import numpy as np

from repro.ipspace.intervals import IntervalSet
from repro.ipspace.prefixes import Prefix
from repro.ipspace.trie import PrefixTrie
from repro.registry.allocations import AllocationRegistry


class EventKind(Enum):
    """Whether a prefix appears in or vanishes from the table."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"


@dataclass(frozen=True, order=True)
class RouteEvent:
    """One update at a collector: a prefix appears or disappears."""

    time: float
    prefix: Prefix
    kind: EventKind
    origin: int  # allocation index, or -1 for bogons


def generate_route_events(
    registry: AllocationRegistry,
    rng: np.random.Generator,
    horizon: float = 2014.5,
    flap_rate_per_year: float = 0.3,
    flap_duration_days: float = 2.0,
    bogon_prefixes: Iterable[Prefix] = (),
    bogon_lifetime_days: float = 30.0,
) -> list[RouteEvent]:
    """A plausible update stream for all ever-routed allocations.

    Every routed allocation announces at its ``routed_from`` time and
    stays up, apart from Poisson-arriving flaps (withdraw then
    re-announce after ``flap_duration_days``).  Bogon prefixes appear
    once for ``bogon_lifetime_days`` at a random time.
    """
    events: list[RouteEvent] = []
    day = 1.0 / 365.0
    for alloc in registry:
        start = alloc.routed_from
        if not np.isfinite(start) or start >= horizon:
            continue
        start = max(start, 1995.0)
        events.append(
            RouteEvent(start, alloc.prefix, EventKind.ANNOUNCE, alloc.index)
        )
        # Poisson flaps over the advertised lifetime.
        lifetime = horizon - start
        for _ in range(int(rng.poisson(flap_rate_per_year * lifetime))):
            t = float(rng.uniform(start, horizon))
            events.append(
                RouteEvent(t, alloc.prefix, EventKind.WITHDRAW, alloc.index)
            )
            back = t + float(rng.exponential(flap_duration_days * day))
            if back < horizon:
                events.append(
                    RouteEvent(
                        back, alloc.prefix, EventKind.ANNOUNCE, alloc.index
                    )
                )
    for prefix in bogon_prefixes:
        t = float(rng.uniform(2011.0, horizon - bogon_lifetime_days * day))
        events.append(RouteEvent(t, prefix, EventKind.ANNOUNCE, -1))
        events.append(
            RouteEvent(
                t + bogon_lifetime_days * day, prefix, EventKind.WITHDRAW, -1
            )
        )
    events.sort()
    return events


class RouteCollector:
    """Replays an update stream; answers point-in-time and aggregate
    queries like a Route Views archive."""

    def __init__(self, events: list[RouteEvent]):
        self._events = sorted(events)
        self._times = [e.time for e in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def events_until(self, time: float) -> Iterator[RouteEvent]:
        """All events with timestamp at or before ``time``."""
        idx = bisect_right(self._times, time)
        return iter(self._events[:idx])

    def table_at(self, time: float) -> PrefixTrie:
        """The RIB at an instant (last event per prefix wins)."""
        state: dict[Prefix, RouteEvent] = {}
        for event in self.events_until(time):
            state[event.prefix] = event
        trie = PrefixTrie()
        for prefix, event in state.items():
            if event.kind is EventKind.ANNOUNCE:
                trie.insert(prefix, event.origin)
        return trie

    def snapshot_prefixes(self, time: float) -> list[Prefix]:
        """Advertised prefixes at an instant."""
        return self.table_at(time).prefixes()

    def aggregated_window(
        self,
        start: float,
        end: float,
        snapshot_interval_days: float = 7.0,
        exclude_bogons: bool = True,
    ) -> IntervalSet:
        """Union of periodic snapshots over a window (the paper's
        per-window Route Views aggregation), optionally excluding
        unallocated-but-advertised prefixes."""
        day = 1.0 / 365.0
        step = snapshot_interval_days * day
        seen: set[Prefix] = set()
        time = start
        while time < end:
            table = self.table_at(time)
            for prefix, origin in table.items():
                if exclude_bogons and origin == -1:
                    continue
                seen.add(prefix)
            time += step
        return IntervalSet.from_prefixes(seen)

    def churn_counts(self, start: float, end: float) -> tuple[int, int]:
        """(announcements, withdrawals) during a window."""
        announces = withdraws = 0
        for event in self._events:
            if start <= event.time < end:
                if event.kind is EventKind.ANNOUNCE:
                    announces += 1
                else:
                    withdraws += 1
        return announces, withdraws
