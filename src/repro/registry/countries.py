"""Country composition per RIR.

Weights are Zipf-flavoured approximations of where allocated space
sits; the exact values only need to reproduce the qualitative country
ranking of the paper's Figure 9 (US and CN largest in absolute terms,
fast relative growth in Asia and South America plus Romania).
"""

from __future__ import annotations

import numpy as np

from repro.registry.rir import RIR

#: (country code, space weight, relative growth multiplier) per RIR.
#: The growth multiplier scales the RIR's base growth rate, letting
#: countries like BR, RO, VN, ID grow visibly faster than their region.
COUNTRIES_BY_RIR: dict[RIR, tuple[tuple[str, float, float], ...]] = {
    RIR.AFRINIC: (
        ("ZA", 0.40, 1.0),
        ("EG", 0.18, 1.2),
        ("MA", 0.12, 1.1),
        ("NG", 0.10, 1.5),
        ("KE", 0.08, 1.4),
        ("TN", 0.07, 1.0),
        ("GH", 0.05, 1.3),
    ),
    RIR.APNIC: (
        ("CN", 0.35, 1.4),
        ("JP", 0.18, 0.6),
        ("KR", 0.12, 0.8),
        ("AU", 0.08, 0.7),
        ("IN", 0.07, 1.6),
        ("TW", 0.06, 1.2),
        ("ID", 0.04, 1.8),
        ("VN", 0.03, 1.9),
        ("TH", 0.03, 1.5),
        ("HK", 0.02, 0.9),
        ("MY", 0.02, 1.2),
    ),
    RIR.ARIN: (
        ("US", 0.82, 1.0),
        ("CA", 0.13, 0.8),
        ("PR", 0.02, 0.9),
        ("JM", 0.02, 1.0),
        ("BS", 0.01, 1.0),
    ),
    RIR.LACNIC: (
        ("BR", 0.45, 1.7),
        ("MX", 0.15, 1.1),
        ("AR", 0.13, 1.5),
        ("CO", 0.10, 1.9),
        ("CL", 0.09, 1.3),
        ("PE", 0.04, 1.4),
        ("VE", 0.04, 1.0),
    ),
    RIR.RIPE: (
        ("DE", 0.14, 0.7),
        ("GB", 0.13, 0.7),
        ("FR", 0.11, 0.7),
        ("RU", 0.10, 1.1),
        ("IT", 0.08, 0.9),
        ("NL", 0.07, 0.6),
        ("ES", 0.06, 0.8),
        ("SE", 0.05, 0.6),
        ("PL", 0.05, 1.0),
        ("RO", 0.04, 1.8),
        ("TR", 0.04, 1.3),
        ("CH", 0.03, 0.7),
        ("NO", 0.03, 0.8),
        ("CZ", 0.02, 0.9),
        ("UA", 0.02, 1.2),
        ("FI", 0.02, 0.7),
        ("DK", 0.01, 0.8),
    ),
}


def country_weights(rir: RIR) -> tuple[list[str], np.ndarray]:
    """Country codes and normalised space weights for one RIR."""
    rows = COUNTRIES_BY_RIR[rir]
    codes = [code for code, _, _ in rows]
    weights = np.array([weight for _, weight, _ in rows], dtype=np.float64)
    return codes, weights / weights.sum()


def country_growth_multiplier(rir: RIR, code: str) -> float:
    """Relative growth multiplier for a country within its RIR."""
    for row_code, _, growth in COUNTRIES_BY_RIR[rir]:
        if row_code == code:
            return growth
    raise KeyError(f"unknown country {code!r} for {rir.name}")


def all_country_codes() -> list[str]:
    """Every country code across all RIRs, sorted."""
    codes = {
        code
        for rows in COUNTRIES_BY_RIR.values()
        for code, _, _ in rows
    }
    return sorted(codes)
