"""Query ledgers: precomputed campaign answers, served without IRLS.

A completed campaign is distilled into one JSON document — the *query
ledger* — holding everything the repeated-query workloads ask for:

* per-window entries (routed/observed/estimated/truth at both
  granularity levels, exclusions, degradation), keyed by the canonical
  digest of ``(options, window bounds, exclusions)`` so a reader can
  address an answer content-wise, exactly like the artifact store
  addresses the fit that produced it;
* the growth series (the paper's Figure 4/5 arrays) plus the
  least-squares growth rates;
* the sensitivity grid (estimate with each dropped source), when the
  campaign requested one;
* provenance (campaign id, spec, seed, git revision, python, wall
  time) so a served answer is auditable back to its run.

:class:`QueryLedger` is the read side: loading it touches JSON only —
no simulator, no tabulation, no GLM fit — which is what makes
``repro query`` interactive-latency and lets the CI smoke job assert a
zero fit-counter delta on repeated queries.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro._canonical import canonical_digest
from repro.obs.ledger import git_revision
from repro.service.campaign import CampaignSpec

#: Bump when the ledger document layout changes.
LEDGER_SCHEMA_VERSION = 1

#: File name of the ledger inside a campaign directory.
LEDGER_FILENAME = "ledger.json"


class LedgerSchemaError(ValueError):
    """A ledger document this reader cannot interpret.

    Carries the ``found`` schema version (``None`` when the document
    has no ``schema`` field at all) and the ``supported`` version this
    build reads, so callers can distinguish "written by a newer build"
    from "not a ledger" without parsing the message.
    """

    def __init__(self, found: Any, supported: int = LEDGER_SCHEMA_VERSION):
        self.found = found
        self.supported = supported
        if found is None:
            detail = (
                "document has no schema field (not a query ledger, or "
                "written before ledgers were versioned)"
            )
        elif isinstance(found, int) and found > supported:
            detail = (
                f"query ledger schema {found} was written by a newer build; "
                f"this build reads schema {supported} — upgrade to read it"
            )
        else:
            detail = (
                f"query ledger schema {found!r} unsupported "
                f"(this build reads {supported})"
            )
        super().__init__(detail)


def entry_key(
    options: Any, bounds: Sequence[float], exclude: Sequence[str] = ()
) -> str:
    """Canonical content key of one ledger entry (``q`` + 16 hex)."""
    digest = canonical_digest(
        (
            LEDGER_SCHEMA_VERSION,
            options,
            (float(bounds[0]), float(bounds[1])),
            tuple(exclude),
        )
    )
    return "q" + digest[:16]


def build_ledger(
    spec: CampaignSpec,
    campaign_id: str,
    window_rows: Sequence[Mapping[str, Any]],
    sensitivity_rows: Sequence[Mapping[str, Any]] = (),
    missing: Sequence[Mapping[str, Any]] = (),
    *,
    wall_seconds: float | None = None,
) -> dict[str, Any]:
    """Assemble the ledger document from a campaign's task results.

    ``window_rows`` are the serialised per-window bundles in report
    order (degraded windows absent, listed in ``missing`` instead);
    ``sensitivity_rows`` the per-(window, dropped-source) estimates.
    """
    entries: dict[str, Any] = {}
    order: list[str] = []
    for row in window_rows:
        key = entry_key(spec.options, (row["start"], row["end"]))
        entries[key] = dict(row)
        order.append(key)
    sens = []
    for row in sensitivity_rows:
        key = entry_key(
            spec.options, (row["start"], row["end"]), (row["source"],)
        )
        sens.append(dict(row, key=key))
    series = {
        "labels": [row["label"] for row in window_rows],
        "window_ends": [row["end"] for row in window_rows],
        "routed": [float(row["routed_addresses"]) for row in window_rows],
        "observed": [float(row["observed_addresses"]) for row in window_rows],
        "estimated": [row["estimated_addresses"] for row in window_rows],
        "truth": [float(row["truth_addresses"]) for row in window_rows],
    }
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "campaign_id": campaign_id,
        "spec": spec.to_json(),
        "provenance": {
            "git_revision": git_revision(),
            "python": sys.version.split()[0],
            "created_at": time.time(),
            "wall_seconds": wall_seconds,
            "seed": spec.seed,
            "scale_log2": spec.scale_log2,
        },
        "windows": entries,
        "order": order,
        "missing": [dict(m) for m in missing],
        "series": series,
        "sensitivity": sens,
    }


class QueryLedger:
    """Read-side view over one persisted ledger document."""

    def __init__(self, document: Mapping[str, Any], path: Path | None = None):
        schema = document.get("schema")
        if schema != LEDGER_SCHEMA_VERSION:
            raise LedgerSchemaError(schema)
        self.document = document
        self.path = path

    @classmethod
    def load(cls, path: str | Path) -> "QueryLedger":
        path = Path(path)
        if path.is_dir():
            path = path / LEDGER_FILENAME
        return cls(json.loads(path.read_text()), path=path)

    # -- identity ----------------------------------------------------------

    @property
    def campaign_id(self) -> str:
        return self.document["campaign_id"]

    @property
    def provenance(self) -> Mapping[str, Any]:
        return self.document["provenance"]

    def spec(self) -> CampaignSpec:
        return CampaignSpec.from_json(self.document["spec"])

    # -- queries (all pure JSON reads, no fits) ----------------------------

    def windows(self) -> list[dict[str, Any]]:
        """Per-window entries in report order."""
        doc = self.document
        return [dict(doc["windows"][key]) for key in doc["order"]]

    def window(
        self, bounds: Sequence[float], exclude: Sequence[str] = ()
    ) -> dict[str, Any] | None:
        """One window's entry, addressed by canonical content key."""
        key = entry_key(self.spec().options, bounds, exclude)
        entry = self.document["windows"].get(key)
        return dict(entry) if entry is not None else None

    def totals(self) -> dict[str, Any]:
        """The latest window's headline numbers (the 90% query)."""
        rows = self.windows()
        if not rows:
            raise ValueError("ledger holds no completed windows")
        last = rows[-1]
        return {
            "window": last["label"],
            "start": last["start"],
            "end": last["end"],
            "routed_addresses": last["routed_addresses"],
            "observed_addresses": last["observed_addresses"],
            "estimated_addresses": last["estimated_addresses"],
            "estimated_subnets": last["estimated_subnets"],
            "truth_addresses": last["truth_addresses"],
        }

    def growth_series(self):
        """The ledger's series as a :class:`~repro.analysis.growth.GrowthSeries`.

        Floats round-trip JSON exactly (``repr`` encoding), so tables
        and growth rates rendered from the ledger are byte-identical to
        ones rendered from the live sweep results.
        """
        from repro.analysis.growth import GrowthSeries

        series = self.document["series"]
        return GrowthSeries(
            window_ends=np.array(series["window_ends"], dtype=np.float64),
            labels=tuple(series["labels"]),
            routed=np.array(series["routed"], dtype=np.float64),
            observed=np.array(series["observed"], dtype=np.float64),
            estimated=np.array(series["estimated"], dtype=np.float64),
            truth=np.array(series["truth"], dtype=np.float64),
        )

    def growth(self) -> dict[str, float]:
        """Least-squares growth per year of each series."""
        series = self.growth_series()
        return {
            name: series.growth_per_year(name)
            for name in ("routed", "observed", "estimated", "truth")
        }

    def sensitivity(self) -> list[dict[str, Any]]:
        """The (window, dropped source) grid, in decomposition order."""
        return [dict(row) for row in self.document["sensitivity"]]

    def missing(self) -> list[dict[str, Any]]:
        """Windows the campaign degraded on (no entry served)."""
        return [dict(m) for m in self.document.get("missing", ())]


def write_ledger(document: Mapping[str, Any], directory: str | Path) -> Path:
    """Persist a ledger document into a campaign directory."""
    path = Path(directory) / LEDGER_FILENAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
